"""Integration-level tests for the experiment harness (small scales)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import FigureConfig, TableConfig
from repro.experiments.harness import (
    GREEDY,
    MAXDEGREE,
    NOBLOCKING,
    PROXIMITY,
    SCBG,
    make_model,
    run_figure,
    run_table,
)


@pytest.fixture(scope="module")
def opoao_result():
    config = FigureConfig(
        name="mini-opoao",
        dataset="enron-small",
        model="opoao",
        rumor_fraction=0.1,
        hops=10,
        runs=8,
        draws=1,
        scale=0.02,
        greedy_runs=3,
        greedy_max_candidates=25,
        seed=21,
    )
    return run_figure(config)


@pytest.fixture(scope="module")
def doam_result():
    config = FigureConfig(
        name="mini-doam",
        dataset="enron-small",
        model="doam",
        rumor_fraction=0.1,
        hops=8,
        runs=1,
        draws=2,
        scale=0.02,
        seed=22,
    )
    return run_figure(config)


class TestMakeModel:
    def test_all_keys(self):
        for key in ("opoao", "doam", "ic", "lt"):
            assert make_model(key).name

    def test_unknown_rejected(self):
        with pytest.raises(ExperimentError):
            make_model("sir")


class TestOpoaoFigure:
    def test_series_present_for_all_algorithms(self, opoao_result):
        assert set(opoao_result.series) == {GREEDY, PROXIMITY, MAXDEGREE, NOBLOCKING}

    def test_series_lengths(self, opoao_result):
        for values in opoao_result.series.values():
            assert len(values) == opoao_result.config.hops + 1

    def test_budget_is_rumor_count(self, opoao_result):
        for name in (GREEDY, PROXIMITY, MAXDEGREE):
            assert opoao_result.protectors_used[name] == opoao_result.rumor_seeds
        assert opoao_result.protectors_used[NOBLOCKING] == 0

    def test_noblocking_is_worst(self, opoao_result):
        worst = opoao_result.final_infected(NOBLOCKING)
        for name in (GREEDY, PROXIMITY, MAXDEGREE):
            assert opoao_result.final_infected(name) <= worst

    def test_series_monotone(self, opoao_result):
        for values in opoao_result.series.values():
            assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_metadata(self, opoao_result):
        assert opoao_result.nodes == round(36692 * 0.02)
        assert opoao_result.rumor_seeds >= 1
        assert opoao_result.bridge_ends >= 0


class TestDoamFigure:
    def test_scbg_in_series(self, doam_result):
        assert SCBG in doam_result.series
        assert GREEDY not in doam_result.series

    def test_heuristics_use_scbg_budget(self, doam_result):
        budget = doam_result.protectors_used[SCBG]
        assert doam_result.protectors_used[PROXIMITY] <= budget
        assert doam_result.protectors_used[MAXDEGREE] <= budget

    def test_scbg_protects_most(self, doam_result):
        # SCBG's whole purpose: fewest infected at the end.
        scbg_final = doam_result.final_infected(SCBG)
        assert scbg_final <= doam_result.final_infected(NOBLOCKING)


class TestTable:
    def test_rows_and_shape(self):
        config = TableConfig(
            rows={"enron-small": (0.05, 0.10)}, draws=2, scale=0.02, seed=23
        )
        result = run_table(config)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row[SCBG] >= 0
            assert row[PROXIMITY] >= 0
            assert row[MAXDEGREE] >= 0

    def test_cell_lookup(self):
        config = TableConfig(rows={"enron-small": (0.05,)}, draws=1, scale=0.02)
        result = run_table(config)
        assert result.cell("enron-small", 0.05, SCBG) == result.rows[0][SCBG]
        with pytest.raises(KeyError):
            result.cell("hep", 0.05, SCBG)

    def test_scbg_uses_fewest_protectors_typically(self):
        config = TableConfig(
            rows={"enron-small": (0.10,)}, draws=3, scale=0.03, seed=24
        )
        result = run_table(config)
        row = result.rows[0]
        assert row[SCBG] <= row[PROXIMITY]
