"""Unit tests for experiment configs."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import FigureConfig, TableConfig


class TestFigureConfig:
    def test_valid(self):
        config = FigureConfig(name="x", dataset="hep", model="opoao")
        assert config.hops == 31

    def test_bad_model_rejected(self):
        with pytest.raises(ExperimentError):
            FigureConfig(name="x", dataset="hep", model="sir")

    def test_bad_fraction_rejected(self):
        with pytest.raises(ExperimentError):
            FigureConfig(name="x", dataset="hep", model="doam", rumor_fraction=0.0)

    def test_bad_counts_rejected(self):
        with pytest.raises(ExperimentError):
            FigureConfig(name="x", dataset="hep", model="doam", runs=0)

    def test_scaled_override(self):
        config = FigureConfig(name="x", dataset="hep", model="opoao")
        smaller = config.scaled(runs=5, scale=0.02)
        assert smaller.runs == 5
        assert smaller.scale == 0.02
        assert smaller.dataset == "hep"
        assert config.runs == 100  # original untouched

    def test_frozen(self):
        config = FigureConfig(name="x", dataset="hep", model="opoao")
        with pytest.raises(Exception):
            config.runs = 7


class TestTableConfig:
    def test_default_rows_match_paper(self):
        config = TableConfig()
        assert config.rows["hep"] == (0.01, 0.05, 0.10)
        assert config.rows["enron-small"] == (0.05, 0.10, 0.20)
        assert config.rows["enron-large"] == (0.01, 0.05, 0.10)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ExperimentError):
            TableConfig(rows={"hep": (0.0,)})

    def test_bad_draws_rejected(self):
        with pytest.raises(ExperimentError):
            TableConfig(draws=0)

    def test_scaled_override(self):
        config = TableConfig().scaled(draws=2)
        assert config.draws == 2
