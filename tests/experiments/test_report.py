"""Unit tests for experiment result rendering."""

import io
import json

import pytest

from repro.experiments.config import FigureConfig, TableConfig
from repro.experiments.harness import FigureResult, TableResult, SCBG, PROXIMITY, MAXDEGREE
from repro.experiments.report import (
    figure_to_dict,
    render_figure,
    render_table,
    save_json,
    table_to_dict,
)


@pytest.fixture
def figure_result():
    config = FigureConfig(
        name="figX", dataset="hep", model="opoao", hops=3, title="Demo figure"
    )
    result = FigureResult(config)
    result.nodes, result.edges = 100, 800
    result.community_size, result.rumor_seeds = 10, 2
    result.bridge_ends = 5.0
    result.series = {
        "Greedy": [2.0, 3.0, 4.0, 5.0],
        "NoBlocking": [2.0, 6.0, 9.0, 12.0],
    }
    result.protectors_used = {"Greedy": 2.0, "NoBlocking": 0.0}
    return result


@pytest.fixture
def table_result():
    config = TableConfig(rows={"hep": (0.01,)}, draws=2)
    result = TableResult(config)
    result.rows.append(
        {
            "dataset": "hep",
            "nodes": 1523,
            "community": 31,
            "fraction": 0.01,
            "rumor_seeds": 1,
            SCBG: 3.5,
            PROXIMITY: 7.0,
            MAXDEGREE: 14.2,
        }
    )
    return result


class TestRenderFigure:
    def test_contains_header_and_series(self, figure_result):
        text = render_figure(figure_result)
        assert "Demo figure" in text
        assert "|N|=100" in text
        assert "Greedy" in text and "NoBlocking" in text
        assert "12.0" in text

    def test_final_infected_accessor(self, figure_result):
        assert figure_result.final_infected("Greedy") == 5.0


class TestRenderTable:
    def test_paper_layout(self, table_result):
        text = render_table(table_result)
        assert "hep/1523/31" in text
        assert "1%" in text
        assert "3.5" in text and "14.2" in text
        assert "DOAM" in text


class TestSerialisation:
    def test_figure_round_trip(self, figure_result):
        payload = figure_to_dict(figure_result)
        assert payload["kind"] == "figure"
        assert payload["series"]["Greedy"] == [2.0, 3.0, 4.0, 5.0]
        json.dumps(payload)  # must be JSON-safe

    def test_table_round_trip(self, table_result):
        payload = table_to_dict(table_result)
        assert payload["kind"] == "table"
        assert payload["rows"][0][SCBG] == 3.5
        json.dumps(payload)

    def test_save_json_path_and_handle(self, tmp_path, table_result):
        payload = table_to_dict(table_result)
        path = tmp_path / "out.json"
        save_json(payload, path)
        assert json.loads(path.read_text())["kind"] == "table"
        buffer = io.StringIO()
        save_json(payload, buffer)
        assert json.loads(buffer.getvalue())["kind"] == "table"


class TestPaperRoster:
    def test_all_experiments_present(self):
        from repro.experiments.paper import PAPER_EXPERIMENTS, paper_experiment

        assert set(PAPER_EXPERIMENTS) == {
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "table1",
        }
        assert paper_experiment("fig4").dataset == "hep"

    def test_unknown_experiment_rejected(self):
        from repro.errors import ExperimentError
        from repro.experiments.paper import paper_experiment

        with pytest.raises(ExperimentError):
            paper_experiment("fig99")

    def test_model_assignment_matches_paper(self):
        from repro.experiments.paper import PAPER_EXPERIMENTS

        for key in ("fig4", "fig5", "fig6"):
            assert PAPER_EXPERIMENTS[key].model == "opoao"
            assert PAPER_EXPERIMENTS[key].hops == 31
        for key in ("fig7", "fig8", "fig9"):
            assert PAPER_EXPERIMENTS[key].model == "doam"
