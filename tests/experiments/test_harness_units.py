"""Unit tests for harness internals (counting/sampling rules)."""


from repro.experiments.harness import _rumor_count, _sampled
from repro.rng import RngStream


class TestRumorCount:
    def test_ceil_of_fraction(self):
        # The paper's |R| = 1% of |C| = 308 gives 3.08 -> 4 with ceil?
        # Table I reports "3 rumor originators" for 1% of 308, i.e. floor
        # -- but ceil(0.01 * 308) = 4. We use ceil for small communities
        # where floor would give 0; document the difference:
        assert _rumor_count(0.01, 308) == 4
        assert _rumor_count(0.05, 308) == 16

    def test_at_least_one(self):
        assert _rumor_count(0.01, 10) == 1

    def test_leaves_room_for_non_seeds(self):
        assert _rumor_count(1.0, 10) == 9
        assert _rumor_count(0.99, 2) == 1

    def test_single_member_community(self):
        assert _rumor_count(0.5, 1) == 1


class TestSampled:
    def test_subset_of_solution(self):
        solution = list(range(20))
        picks = _sampled(solution, 5, RngStream(1))
        assert len(picks) == 5
        assert set(picks) <= set(solution)

    def test_whole_solution_when_budget_exceeds(self):
        solution = [1, 2, 3]
        assert _sampled(solution, 10, RngStream(2)) == [1, 2, 3]

    def test_reproducible(self):
        solution = list(range(30))
        assert _sampled(solution, 7, RngStream(3)) == _sampled(
            solution, 7, RngStream(3)
        )
