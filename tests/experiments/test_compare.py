"""Unit tests for result comparison utilities."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.compare import (
    compare_figures,
    compare_tables,
    figure_winner_order,
    table_winners,
)


def figure_doc(finals):
    return {
        "kind": "figure",
        "series": {name: [0.0, value] for name, value in finals.items()},
    }


def table_doc(rows):
    return {"kind": "table", "rows": rows}


class TestFigureComparison:
    def test_winner_order_excludes_noblocking(self):
        doc = figure_doc({"Greedy": 10, "MaxDegree": 20, "NoBlocking": 99})
        assert figure_winner_order(doc) == ["Greedy", "MaxDegree"]

    def test_compare_same_order(self):
        left = figure_doc({"Greedy": 10, "MaxDegree": 20})
        right = figure_doc({"Greedy": 100, "MaxDegree": 250})
        result = compare_figures(left, right)
        assert result["same_winner"] and result["same_order"]
        assert result["relative_final"]["Greedy"] == pytest.approx(10.0)

    def test_compare_flipped_order(self):
        left = figure_doc({"Greedy": 10, "MaxDegree": 20})
        right = figure_doc({"Greedy": 30, "MaxDegree": 25})
        result = compare_figures(left, right)
        assert not result["same_winner"]

    def test_algorithm_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            compare_figures(
                figure_doc({"Greedy": 1}), figure_doc({"MaxDegree": 1})
            )

    def test_wrong_kind_rejected(self):
        with pytest.raises(ExperimentError):
            figure_winner_order({"kind": "table"})


class TestTableComparison:
    def rows(self, scbg, proximity):
        return [
            {
                "dataset": "hep",
                "fraction": 0.05,
                "SCBG": scbg,
                "Proximity": proximity,
                "MaxDegree": 99.0,
            }
        ]

    def test_winners(self):
        doc = table_doc(self.rows(3.0, 10.0))
        assert table_winners(doc) == {("hep", 0.05): "SCBG"}

    def test_agreement(self):
        left = table_doc(self.rows(3.0, 10.0))
        right = table_doc(self.rows(5.0, 30.0))
        result = compare_tables(left, right)
        assert result["agreement"] == 1.0
        assert result["disagreements"] == []

    def test_disagreement_reported(self):
        left = table_doc(self.rows(3.0, 10.0))
        right = table_doc(self.rows(12.0, 10.0))
        result = compare_tables(left, right)
        assert result["agreement"] == 0.0
        assert result["disagreements"][0]["left"] == "SCBG"
        assert result["disagreements"][0]["right"] == "Proximity"

    def test_no_common_cells_rejected(self):
        left = table_doc(self.rows(1.0, 2.0))
        right = table_doc(
            [
                {
                    "dataset": "enron-small",
                    "fraction": 0.1,
                    "SCBG": 1.0,
                    "Proximity": 2.0,
                    "MaxDegree": 3.0,
                }
            ]
        )
        with pytest.raises(ExperimentError):
            compare_tables(left, right)
