"""Unit tests for markdown report rendering."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.markdown import (
    figure_markdown,
    roster_markdown,
    table_markdown,
)


@pytest.fixture
def figure_doc():
    return {
        "kind": "figure",
        "name": "figX",
        "title": "Demo figure",
        "model": "opoao",
        "runs": 10,
        "draws": 1,
        "scale": 0.1,
        "nodes": 100,
        "edges": 500,
        "community_size": 20,
        "bridge_ends": 7.0,
        "rumor_seeds": 2,
        "series": {
            "Greedy": [2.0, 3.0, 4.0, 5.0, 6.0],
            "NoBlocking": [2.0, 10.0, 20.0, 30.0, 40.0],
        },
    }


@pytest.fixture
def table_doc():
    return {
        "kind": "table",
        "name": "table1",
        "draws": 5,
        "scale": 0.1,
        "rows": [
            {
                "dataset": "hep",
                "nodes": 1523,
                "community": 55,
                "fraction": 0.05,
                "SCBG": 2.7,
                "Proximity": 13.3,
                "MaxDegree": 14.1,
            }
        ],
    }


class TestFigureMarkdown:
    def test_contains_title_meta_and_finals(self, figure_doc):
        text = figure_markdown(figure_doc)
        assert text.startswith("## Demo figure")
        assert "|N|=100" in text
        assert "| Greedy | 6.0 |" in text

    def test_finals_sorted_best_first(self, figure_doc):
        text = figure_markdown(figure_doc)
        assert text.index("Greedy") < text.index("NoBlocking")

    def test_series_sampled_includes_endpoints(self, figure_doc):
        text = figure_markdown(figure_doc)
        assert "| 0 |" in text
        assert "| 4 |" in text

    def test_wrong_kind_rejected(self, table_doc):
        with pytest.raises(ExperimentError):
            figure_markdown(table_doc)


class TestTableMarkdown:
    def test_layout(self, table_doc):
        text = table_markdown(table_doc)
        assert "hep/1523/55" in text
        assert "| 5% |" in text
        assert "13.3" in text

    def test_wrong_kind_rejected(self, figure_doc):
        with pytest.raises(ExperimentError):
            table_markdown(figure_doc)


class TestRoster:
    def test_mixed_roster(self, figure_doc, table_doc):
        text = roster_markdown([figure_doc, table_doc], heading="Report")
        assert text.startswith("# Report")
        assert "## Demo figure" in text
        assert "## Table I" in text

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExperimentError):
            roster_markdown([{"kind": "mystery"}])
