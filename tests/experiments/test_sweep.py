"""Unit tests for the parameter-sweep harness."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.sweep import mixing_sweep, run_sweep


class TestRunSweep:
    def test_rows_and_averaging(self):
        calls = []

        def metric(value, rng):
            calls.append(value)
            return {"double": 2 * value, "noise": rng.random()}

        rows = run_sweep([1, 2, 3], metric, draws=4, seed=5)
        assert [row["value"] for row in rows] == [1, 2, 3]
        assert rows[1]["double"] == 4.0
        assert calls.count(2) == 4

    def test_reproducible(self):
        def metric(value, rng):
            return {"x": rng.random()}

        a = run_sweep([1, 2], metric, draws=2, seed=9)
        b = run_sweep([1, 2], metric, draws=2, seed=9)
        assert a == b

    def test_validation(self):
        with pytest.raises(ExperimentError):
            run_sweep([], lambda v, r: {}, draws=1)
        with pytest.raises(ExperimentError):
            run_sweep([1], lambda v, r: {}, draws=0)


class TestMixingSweep:
    def test_small_sweep_shapes(self):
        rows = mixing_sweep(
            mixings=(0.05, 0.30), nodes=400, draws=2, seed=11
        )
        assert len(rows) == 2
        for row in rows:
            assert row["scbg_protectors"] >= 0
            assert row["bridge_ends"] >= 0
        # Blurrier communities leak more: boundary edges must grow.
        assert rows[1]["boundary_edges"] > rows[0]["boundary_edges"]
