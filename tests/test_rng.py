"""Unit tests for seeded RNG streams."""


from repro.rng import DEFAULT_SEED, RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_path_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a", 1) != derive_seed(1, "a", 2)
        assert derive_seed(1) != derive_seed(2)

    def test_non_negative_63_bit(self):
        for seed in range(20):
            value = derive_seed(seed, "x")
            assert 0 <= value < 2**63


class TestRngStream:
    def test_default_seed_is_fixed(self):
        assert RngStream().seed == DEFAULT_SEED
        assert RngStream().randrange(10**9) == RngStream().randrange(10**9)

    def test_same_seed_same_draws(self):
        a, b = RngStream(42), RngStream(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_fork_independent_of_consumption(self):
        a, b = RngStream(42), RngStream(42)
        a.random()  # consume some entropy
        assert a.fork("child").randrange(10**9) == b.fork("child").randrange(10**9)

    def test_fork_label_distinguishes(self):
        root = RngStream(42)
        assert root.fork("x").seed != root.fork("y").seed

    def test_replicas_distinct(self):
        root = RngStream(42)
        seeds = {replica.seed for replica in root.replicas(50)}
        assert len(seeds) == 50

    def test_restart_replays(self):
        stream = RngStream(7)
        first = [stream.random() for _ in range(4)]
        stream.restart()
        assert [stream.random() for _ in range(4)] == first

    def test_draw_helpers(self):
        stream = RngStream(3)
        assert 0 <= stream.randint(0, 5) <= 5
        assert stream.choice(["a"]) == "a"
        sample = stream.sample(list(range(10)), 4)
        assert len(set(sample)) == 4
        items = [1, 2, 3]
        stream.shuffle(items)
        assert sorted(items) == [1, 2, 3]
        assert 1.0 <= stream.uniform(1.0, 2.0) <= 2.0
        assert stream.expovariate(2.0) >= 0.0
        assert stream.paretovariate(2.0) >= 1.0

    def test_name_tracks_forks(self):
        stream = RngStream(1, name="root").fork("louvain", 3)
        assert stream.name == "root/louvain/3"


class TestStateDict:
    def test_round_trip_resumes_draw_sequence(self):
        stream = RngStream(11, name="ckpt")
        [stream.random() for _ in range(7)]
        state = stream.state_dict()
        tail = [stream.random() for _ in range(5)]
        restored = RngStream.from_state(state)
        assert [restored.random() for _ in range(5)] == tail
        assert restored.seed == stream.seed and restored.name == stream.name

    def test_state_is_json_serialisable(self):
        import json

        stream = RngStream(5)
        stream.random()
        round_tripped = json.loads(json.dumps(stream.state_dict()))
        assert RngStream.from_state(round_tripped).random() == stream.random()


class TestEventOrder:
    def test_keys_sort_by_time_then_priority_then_seq(self):
        from repro.rng import EventOrder

        order = EventOrder()
        later = order.key(2.0, 0)
        early_low = order.key(1.0, -1)
        early_high = order.key(1.0, 3)
        tie_a = order.key(1.5, 1)
        tie_b = order.key(1.5, 1)
        ranked = sorted([later, early_low, early_high, tie_a, tie_b])
        assert ranked == [early_low, early_high, tie_a, tie_b, later]
        # equal (time, priority) ties break on insertion order via seq
        assert tie_a < tie_b

    def test_jitter_requires_stream_and_is_deterministic(self):
        from repro.rng import EventOrder

        bare = EventOrder()
        assert bare.key(1.0, 0, jitter=True)[2] == 0
        a = RngStream(3).event_order()
        b = RngStream(3).event_order()
        keys_a = [a.key(1.0, 0, jitter=True) for _ in range(5)]
        keys_b = [b.key(1.0, 0, jitter=True) for _ in range(5)]
        assert keys_a == keys_b
        assert len({key[2] for key in keys_a}) > 1

    def test_state_round_trip_continues_sequence(self):
        import json

        from repro.rng import EventOrder

        order = RngStream(9).event_order()
        [order.key(1.0, 0, jitter=True) for _ in range(4)]
        state = json.loads(json.dumps(order.state_dict()))
        restored = EventOrder.from_state(state)
        assert restored.key(2.0, 1, jitter=True) == order.key(2.0, 1, jitter=True)
        assert restored.seq == order.seq
