"""Smoke tests for the example scripts.

Full executions are exercised manually / by the docs; here each script is
compiled and its module-level structure checked, so a broken import or
syntax error in an example fails the suite immediately.
"""

import ast
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_expected_examples_present():
    names = {path.name for path in EXAMPLE_FILES}
    assert {
        "quickstart.py",
        "earthquake_rumor.py",
        "viral_misinformation.py",
        "custom_diffusion_model.py",
        "locate_rumor_source.py",
        "bring_your_own_network.py",
        "gossip_blocking.py",
    } <= names


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    functions = {
        node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
    }
    assert "main" in functions, f"{path.name} lacks a main()"
    # Must be runnable as a script.
    assert any(
        isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and getattr(node.test.left, "id", "") == "__name__"
        for node in tree.body
    ), f"{path.name} lacks a __main__ guard"


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Every `from repro...` / `import repro...` target must exist."""
    import importlib

    tree = ast.parse(path.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and (
            node.module == "repro" or node.module.startswith("repro.")
        ):
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} missing"
                )

    docstring = ast.get_docstring(tree)
    assert docstring and "Run:" in docstring, f"{path.name} lacks run instructions"
