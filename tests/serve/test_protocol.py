"""Newline-JSON protocol: dispatch, error surfacing, transports."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.graph.generators import planted_partition
from repro.rng import RngStream
from repro.serve import (
    RumorBlockingService,
    handle_connection,
    process_request,
    serve_unix_socket,
)


def build_service():
    digraph, membership = planted_partition(
        [15, 15, 15], 0.35, 0.03, RngStream(5)
    )
    indexed = digraph.to_indexed()
    community = sorted(
        indexed.indices(n for n, c in membership.items() if c == 0)
    )
    service = RumorBlockingService(
        indexed, community, steps=6, seed=13, initial_worlds=16, max_worlds=32
    )
    return service, community


def run(coro):
    return asyncio.run(coro)


class TestProcessRequest:
    def test_query_op(self):
        service, community = build_service()
        response = run(
            process_request(
                service,
                {
                    "op": "query",
                    "id": 7,
                    "seeds": community[:2],
                    "budget": 3,
                    "eps": 0.3,
                    "delta": 0.1,
                },
            )
        )
        assert response["ok"] is True
        assert response["id"] == 7
        assert isinstance(response["blockers"], list)
        assert response["cold"] is True

    def test_update_op(self):
        service, _ = build_service()
        graph = service.graph
        tail = next(t for t in range(graph.node_count) if graph.out[t])
        head = graph.out[tail][0]
        response = run(
            process_request(
                service,
                {"op": "update", "id": "u1", "delete": [[tail, head]]},
            )
        )
        assert response["ok"] is True
        assert response["touched"] == sorted({tail, head})
        assert response["graph_version"] == 1

    def test_stats_op(self):
        service, _ = build_service()
        response = run(process_request(service, {"op": "stats"}))
        assert response["ok"] is True
        assert response["id"] is None
        assert response["instances"] == []

    def test_shutdown_op(self):
        service, _ = build_service()
        response = run(process_request(service, {"op": "shutdown", "id": 9}))
        assert response == {"id": 9, "ok": True, "shutdown": True}

    def test_unknown_op(self):
        service, _ = build_service()
        response = run(process_request(service, {"op": "divine", "id": 1}))
        assert response["ok"] is False
        assert "unknown op" in response["error"]

    def test_non_object_request(self):
        service, _ = build_service()
        response = run(process_request(service, [1, 2, 3]))
        assert response["ok"] is False

    def test_service_errors_surface_without_raising(self):
        service, _ = build_service()
        response = run(
            process_request(service, {"op": "query", "id": 2, "seeds": []})
        )
        assert response["ok"] is False
        assert response["error"].startswith("SeedError:")

    def test_missing_seeds_key_surfaces_as_error(self):
        service, _ = build_service()
        response = run(process_request(service, {"op": "query", "id": 3}))
        assert response["ok"] is False
        assert response["error"].startswith("KeyError:")


class TestUnixSocketTransport:
    def test_round_trip_and_shutdown(self, tmp_path):
        socket_path = str(tmp_path / "serve.sock")

        async def scenario():
            service, community = build_service()
            server = asyncio.ensure_future(
                serve_unix_socket(service, socket_path)
            )
            await asyncio.sleep(0.05)
            reader, writer = await asyncio.open_unix_connection(socket_path)

            async def ask(payload):
                writer.write((json.dumps(payload) + "\n").encode())
                await writer.drain()
                return json.loads(await reader.readline())

            query = {
                "op": "query",
                "id": 1,
                "seeds": community[:2],
                "budget": 3,
                "eps": 0.3,
                "delta": 0.1,
            }
            first = await ask(query)
            bad = await ask({"op": "query", "id": 2, "seeds": []})
            second = await ask({**query, "id": 3})
            stats = await ask({"op": "stats", "id": 4})
            done = await ask({"op": "shutdown", "id": 5})
            writer.close()
            await asyncio.wait_for(server, timeout=5)
            return first, bad, second, stats, done

        first, bad, second, stats, done = run(scenario())
        assert first["ok"] and first["cold"] is True
        assert bad["ok"] is False  # error answered, connection survived
        assert second["ok"] and second["cold"] is False
        assert second["blockers"] == first["blockers"]
        assert len(stats["instances"]) == 1
        assert done["shutdown"] is True

    def test_invalid_json_is_answered_not_fatal(self, tmp_path):
        socket_path = str(tmp_path / "serve.sock")

        async def scenario():
            service, _ = build_service()
            server = asyncio.ensure_future(
                serve_unix_socket(service, socket_path)
            )
            await asyncio.sleep(0.05)
            reader, writer = await asyncio.open_unix_connection(socket_path)
            writer.write(b"this is not json\n")
            await writer.drain()
            garbled = json.loads(await reader.readline())
            writer.write(
                (json.dumps({"op": "stats", "id": 1}) + "\n").encode()
            )
            await writer.drain()
            alive = json.loads(await reader.readline())
            writer.write(
                (json.dumps({"op": "shutdown", "id": 2}) + "\n").encode()
            )
            await writer.drain()
            await reader.readline()
            writer.close()
            await asyncio.wait_for(server, timeout=5)
            return garbled, alive

        garbled, alive = run(scenario())
        assert garbled["ok"] is False
        assert "invalid JSON" in garbled["error"]
        assert alive["ok"] is True


class TestHandleConnection:
    def test_eof_returns_false(self):
        async def scenario():
            service, _ = build_service()
            reader = asyncio.StreamReader()
            reader.feed_eof()
            writer = _NullWriter()
            return await handle_connection(service, reader, writer)

        assert run(scenario()) is False

    def test_blank_lines_are_skipped(self):
        async def scenario():
            service, _ = build_service()
            reader = asyncio.StreamReader()
            reader.feed_data(b"\n\n")
            reader.feed_data(
                (json.dumps({"op": "shutdown", "id": 1}) + "\n").encode()
            )
            writer = _NullWriter()
            stopped = await handle_connection(service, reader, writer)
            return stopped, writer.lines

        stopped, lines = run(scenario())
        assert stopped is True
        assert len(lines) == 1
        assert json.loads(lines[0])["shutdown"] is True


class _NullWriter:
    """Just enough of StreamWriter for handle_connection."""

    def __init__(self):
        self.lines = []

    def write(self, data: bytes) -> None:
        self.lines.append(data.decode("utf-8"))

    async def drain(self) -> None:
        return None
