"""Concurrent queries: bit-identical to serial, counters merge exactly.

The service's asyncio wrappers serialise on one FIFO lock, so N
concurrent ``query_async`` calls must return exactly what the same N
calls return when issued serially in submission order — including with
a shared warm pool underneath, over both graph publication paths
(``pickle`` always; ``shm`` when NumPy is present).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.exec import shm as shm_module
from repro.exec.pool import ParallelExecutor
from repro.graph.generators import planted_partition
from repro.obs.registry import MetricsRegistry, use_registry
from repro.rng import RngStream
from repro.serve import RumorBlockingService


def build_network(seed: int = 5):
    digraph, membership = planted_partition(
        [15, 15, 15], 0.35, 0.03, RngStream(seed)
    )
    indexed = digraph.to_indexed()
    community = sorted(
        indexed.indices(n for n, c in membership.items() if c == 0)
    )
    return indexed, community


def build_service(executor=None, workers=None):
    graph, community = build_network()
    service = RumorBlockingService(
        graph,
        community,
        steps=6,
        seed=13,
        initial_worlds=16,
        max_worlds=32,
        workers=workers,
        executor=executor,
    )
    return service, community


QUERY = dict(budget=3, epsilon=0.3, delta=0.1)


def plan(community):
    """Deterministic mixed workload: 6 queries over 3 seed sets."""
    seed_sets = [community[:1], community[:2], community[1:3]]
    return [seed_sets[i % 3] for i in range(6)]


def run_serial(service, community):
    return [service.query(seeds, **QUERY) for seeds in plan(community)]


def run_concurrent(service, community):
    async def scenario():
        return await asyncio.gather(
            *(service.query_async(seeds, **QUERY) for seeds in plan(community))
        )

    return asyncio.run(scenario())


def strip_timing(result):
    return {k: v for k, v in result.items()}


class TestConcurrentEqualsSerial:
    def test_answers_bit_identical(self):
        serial_service, community = build_service()
        concurrent_service, _ = build_service()
        serial = run_serial(serial_service, community)
        concurrent = run_concurrent(concurrent_service, community)
        assert [strip_timing(r) for r in concurrent] == [
            strip_timing(r) for r in serial
        ]

    def test_merged_counters_equal_serial(self):
        """Work counters are a pure function of the workload, not the
        interleaving: the concurrent run's registry equals the serial
        run's registry on every serve.* and sketch sampling counter."""
        serial_registry = MetricsRegistry()
        concurrent_registry = MetricsRegistry()
        serial_service, community = build_service()
        concurrent_service, _ = build_service()
        with use_registry(serial_registry):
            run_serial(serial_service, community)
        with use_registry(concurrent_registry):
            run_concurrent(concurrent_service, community)
        serial_counts = serial_registry.counter_values()
        concurrent_counts = concurrent_registry.counter_values()
        compared = [
            name
            for name in serial_counts
            if name.startswith(("serve.", "sketch."))
        ]
        assert compared, "expected serve.* counters to be recorded"
        for name in compared:
            assert concurrent_counts.get(name) == serial_counts[name], name
        assert serial_counts["serve.queries"] == 6
        assert serial_counts["serve.queries.cold"] == 3

    def test_interleaved_updates_serialise_in_submission_order(self):
        """query/update/query submitted concurrently resolve in FIFO
        order, so the trailing query sees the mutated graph."""

        def mutation(service):
            graph = service.graph
            tail = next(t for t in range(graph.node_count) if graph.out[t])
            return [(tail, graph.out[tail][0])]

        async def scenario(service, community):
            seeds = community[:2]
            return await asyncio.gather(
                service.query_async(seeds, **QUERY),
                service.apply_updates_async([], mutation(service)),
                service.query_async(seeds, **QUERY),
            )

        concurrent_service, community = build_service()
        before, touched, after = asyncio.run(
            scenario(concurrent_service, community)
        )
        serial_service, _ = build_service()
        seeds = community[:2]
        serial_before = serial_service.query(seeds, **QUERY)
        serial_touched = serial_service.apply_updates(
            [], mutation(serial_service)
        )
        serial_after = serial_service.query(seeds, **QUERY)
        assert before == serial_before
        assert touched == serial_touched
        assert after == serial_after
        assert after["graph_version"] == 1


class TestPublicationPaths:
    """The shared warm pool underneath must not perturb answers."""

    def check_executor_matches_inline(self, share):
        inline_service, community = build_service()
        inline = run_serial(inline_service, community)
        executor = ParallelExecutor(workers=2, share=share)
        try:
            pooled_service, _ = build_service(executor=executor, workers=2)
            pooled = run_concurrent(pooled_service, community)
        finally:
            executor.close()
        assert [strip_timing(r) for r in pooled] == [
            strip_timing(r) for r in inline
        ]

    def test_pickle_publication_path(self):
        self.check_executor_matches_inline("pickle")

    def test_shm_publication_path(self):
        if shm_module.np is None:
            pytest.skip("shm publication requires NumPy")
        self.check_executor_matches_inline("shm")
