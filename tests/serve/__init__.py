"""Tests for the rumor-blocking query service (repro.serve)."""
