"""Load generator: deterministic sampling counts, coherent report."""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.graph.generators import planted_partition
from repro.rng import RngStream
from repro.serve import RumorBlockingService, run_loadgen


def build_service():
    digraph, membership = planted_partition(
        [15, 15, 15], 0.35, 0.03, RngStream(5)
    )
    indexed = digraph.to_indexed()
    community = sorted(
        indexed.indices(n for n, c in membership.items() if c == 0)
    )
    return RumorBlockingService(
        indexed, community, steps=6, seed=13, initial_worlds=16, max_worlds=32
    )


def run(**overrides):
    kwargs = dict(
        queries=12,
        update_every=4,
        update_size=1,
        seed_sets=2,
        budget=3,
        epsilon=0.3,
        delta=0.1,
        seed=7,
    )
    kwargs.update(overrides)
    return run_loadgen(build_service(), **kwargs)


class TestDeterminism:
    def test_sampling_counts_repeat_across_runs(self):
        """Wall-clock varies; every count in the report must not."""
        first, second = run(), run()
        timing_keys = {"seconds", "qps", "latency_ms"}
        assert {k: v for k, v in first.items() if k not in timing_keys} == {
            k: v for k, v in second.items() if k not in timing_keys
        }

    def test_different_seed_changes_the_workload(self):
        assert run()["rrsets_sampled_trace"] != run(seed=8)[
            "rrsets_sampled_trace"
        ]


class TestReportShape:
    def test_report_is_json_ready_and_coherent(self):
        report = run()
        json.dumps(report)  # must serialise as-is
        assert report["queries"] == 12
        assert report["cold_queries"] + report["warm_queries"] == 12
        assert report["cold_queries"] == 2  # one per seed set
        assert report["updates"] == 2  # before queries 4 and 8
        assert report["graph_version"] == report["updates"]
        assert len(report["rrsets_sampled_trace"]) == 12
        assert report["rrsets_sampled_total"] == sum(
            report["rrsets_sampled_trace"]
        )
        assert report["cold_to_warm_ratio"] > 0
        for key in ("mean", "p50", "p90", "p99", "warm_p50"):
            assert report["latency_ms"][key] >= 0.0

    def test_pure_warm_workload_samples_only_cold(self):
        """update_every=0 disables mutations: after the cold queries
        every repeat answers from the warm index with zero sampling."""
        report = run(update_every=0)
        assert report["updates"] == 0
        assert report["graph_version"] == 0
        assert report["warm_rrsets_mean"] == 0.0
        assert report["rrsets_invalidated_total"] == 0
        trace = report["rrsets_sampled_trace"]
        assert all(count == 0 for count in trace[2:])

    def test_rejects_nonpositive_queries(self):
        with pytest.raises(ValidationError):
            run(queries=0)


class TestPercentile:
    """Nearest-rank boundaries of the private percentile helper."""

    def percentile(self, values, q):
        from repro.serve.loadgen import _percentile

        return _percentile(values, q)

    def test_empty_input_raises(self):
        with pytest.raises(ValueError, match="empty"):
            self.percentile([], 50)

    def test_q_zero_is_the_minimum(self):
        assert self.percentile([3.0, 1.0, 2.0], 0) == 1.0

    def test_q50_even_count_takes_the_lower_middle(self):
        # Nearest rank: ceil(0.5 * 4) = 2 -> the second smallest.
        assert self.percentile([4.0, 1.0, 3.0, 2.0], 50) == 2.0

    def test_q50_odd_count_is_the_median(self):
        assert self.percentile([5.0, 1.0, 3.0], 50) == 3.0

    def test_q99_of_100_values(self):
        values = [float(v) for v in range(1, 101)]
        assert self.percentile(values, 99) == 99.0

    def test_q100_is_the_maximum(self):
        assert self.percentile([4.0, 1.0, 3.0, 2.0], 100) == 4.0

    def test_rank_never_exceeds_the_sample(self):
        # q > 100 clamps to the maximum instead of indexing out of range.
        assert self.percentile([1.0, 2.0], 150) == 2.0

    def test_single_value_every_q(self):
        for q in (0, 50, 99, 100):
            assert self.percentile([7.0], q) == 7.0
