"""RumorBlockingService: warm-state reuse, lazy reconcile, validation.

The core contract: a warm service answering after edge updates returns
exactly what a cold service built on the mutated graph would return —
the incremental path (footprint refresh or B-change rebuild) is an
optimisation, never a semantic change.
"""

from __future__ import annotations

import pytest

from repro.errors import NodeNotFoundError, SeedError, ValidationError
from repro.graph.generators import planted_partition
from repro.rng import RngStream
from repro.serve import RumorBlockingService


def build_network(seed: int = 5):
    digraph, membership = planted_partition(
        [15, 15, 15], 0.35, 0.03, RngStream(seed)
    )
    indexed = digraph.to_indexed()
    community = sorted(
        indexed.indices(n for n, c in membership.items() if c == 0)
    )
    return indexed, community


def build_service(**overrides):
    graph, community = build_network()
    kwargs = dict(
        steps=6, seed=13, initial_worlds=16, max_worlds=32, epsilon=None
    )
    kwargs.pop("epsilon")
    kwargs.update(overrides)
    return RumorBlockingService(graph, community, **kwargs), community


QUERY = dict(budget=3, epsilon=0.3, delta=0.1)


class TestWarmReuse:
    def test_cold_then_warm_identical_and_free(self):
        service, community = build_service()
        seeds = community[:2]
        first = service.query(seeds, **QUERY)
        second = service.query(seeds, **QUERY)
        assert first["cold"] is True
        assert second["cold"] is False
        assert second["rrsets_sampled"] == 0
        assert second["blockers"] == first["blockers"]
        assert second["sigma"] == first["sigma"]
        assert second["worlds"] == first["worlds"]

    def test_seed_key_normalises_order_and_duplicates(self):
        service, community = build_service()
        a, b = community[0], community[1]
        service.query([a, b], **QUERY)
        follow = service.query([b, a, b], **QUERY)
        assert follow["cold"] is False
        assert len(service.stats()["instances"]) == 1

    def test_distinct_seed_sets_get_distinct_instances(self):
        service, community = build_service()
        service.query(community[:1], **QUERY)
        service.query(community[:2], **QUERY)
        assert len(service.stats()["instances"]) == 2

    def test_query_order_does_not_change_answers(self):
        """Per-instance RNG derives from (service seed, seed ids) alone."""
        service_ab, community = build_service()
        service_ba, _ = build_service()
        seeds_a, seeds_b = community[:1], community[:2]
        first_a = service_ab.query(seeds_a, **QUERY)
        service_ab.query(seeds_b, **QUERY)
        service_ba.query(seeds_b, **QUERY)
        second_a = service_ba.query(seeds_a, **QUERY)
        assert first_a["blockers"] == second_a["blockers"]
        assert first_a["sigma"] == second_a["sigma"]


class TestDynamicUpdates:
    def mutate(self, service):
        graph = service.graph
        tail = next(t for t in range(graph.node_count) if graph.out[t])
        return service.apply_updates([], [(tail, graph.out[tail][0])])

    def test_apply_updates_records_pending(self):
        service, community = build_service()
        service.query(community[:2], **QUERY)
        touched = self.mutate(service)
        assert touched == sorted(touched)
        stats = service.stats()
        assert stats["instances"][0]["pending_touched"] == len(touched)
        service.query(community[:2], **QUERY)
        assert service.stats()["instances"][0]["pending_touched"] == 0

    def test_warm_after_update_equals_cold_on_mutated_graph(self):
        service, community = build_service()
        seeds = community[:2]
        service.query(seeds, **QUERY)
        self.mutate(service)
        warm = service.query(seeds, **QUERY)
        fresh = RumorBlockingService(
            service.graph, community, steps=6, seed=13,
            initial_worlds=16, max_worlds=32,
        )
        cold = fresh.query(seeds, **QUERY)
        assert warm["blockers"] == cold["blockers"]
        assert warm["sigma"] == cold["sigma"]
        assert warm["worlds"] == cold["worlds"]

    def test_bridge_end_change_rebuilds_instance(self):
        service, community = build_service()
        seeds = community[:2]
        before = service.query(seeds, **QUERY)
        graph = service.graph
        outside = next(
            node
            for node in range(graph.node_count)
            if node not in set(community)
            and all(t not in set(community) for t in graph.inn[node])
        )
        service.apply_updates([(seeds[0], outside)], [])
        warm = service.query(seeds, **QUERY)
        assert warm["bridge_ends"] != before["bridge_ends"]
        fresh = RumorBlockingService(
            service.graph, community, steps=6, seed=13,
            initial_worlds=16, max_worlds=32,
        )
        cold = fresh.query(seeds, **QUERY)
        assert warm["blockers"] == cold["blockers"]
        assert warm["sigma"] == cold["sigma"]

    def test_doam_semantics_after_update(self):
        service, community = build_service(semantics="doam", steps=4)
        seeds = community[:2]
        service.query(seeds, budget=3)
        self.mutate(service)
        warm = service.query(seeds, budget=3)
        fresh = RumorBlockingService(
            service.graph, community, semantics="doam", steps=4,
            seed=13, initial_worlds=16, max_worlds=32,
        )
        cold = fresh.query(seeds, budget=3)
        assert warm["blockers"] == cold["blockers"]
        assert warm["sigma"] == cold["sigma"]

    def test_updates_reach_every_instance(self):
        service, community = build_service()
        service.query(community[:1], **QUERY)
        service.query(community[:2], **QUERY)
        self.mutate(service)
        stats = service.stats()
        assert all(
            entry["pending_touched"] > 0 for entry in stats["instances"]
        )


class TestValidation:
    def test_rejects_empty_seed_set(self):
        service, _ = build_service()
        with pytest.raises(SeedError):
            service.query([], **QUERY)

    def test_rejects_seed_outside_community(self):
        service, community = build_service()
        outside = next(
            node
            for node in range(service.graph.node_count)
            if node not in set(community)
        )
        with pytest.raises(SeedError):
            service.query([outside], **QUERY)

    def test_rejects_unknown_node(self):
        service, _ = build_service()
        with pytest.raises(NodeNotFoundError):
            service.query([10**6], **QUERY)

    def test_rejects_bad_budget(self):
        service, community = build_service()
        with pytest.raises(ValidationError):
            service.query(community[:1], budget=-1)
        with pytest.raises(ValidationError):
            service.query(community[:1], budget=True)

    def test_zero_budget_is_a_noop_answer(self):
        service, community = build_service()
        result = service.query(community[:1], budget=0)
        assert result["blockers"] == []
        assert result["sigma"] == 0.0

    def test_rejects_bad_semantics_and_invalidation(self):
        graph, community = build_network()
        with pytest.raises(ValidationError):
            RumorBlockingService(graph, community, semantics="viral")
        with pytest.raises(ValidationError):
            RumorBlockingService(graph, community, invalidation="psychic")

    def test_rejects_empty_community(self):
        graph, _ = build_network()
        with pytest.raises(ValidationError):
            RumorBlockingService(graph, [])


class TestPipelineHandoff:
    def test_service_from_context_answers_the_same_instance(self):
        """The batch pipeline's resolved instance promotes to a warm
        service sharing the same id space."""
        from repro.lcrb import build_context, service_from_context

        digraph, _ = planted_partition(
            [15, 15, 15], 0.35, 0.03, RngStream(5)
        )
        context, _, _ = build_context(digraph, rng=RngStream(11))
        service, seed_ids = service_from_context(
            context, steps=6, seed=13, initial_worlds=16, max_worlds=32
        )
        assert set(seed_ids) <= service.community
        result = service.query(seed_ids, **QUERY)
        assert result["cold"] is True
        assert service.query(seed_ids, **QUERY)["rrsets_sampled"] == 0


class TestStats:
    def test_snapshot_shape(self):
        service, community = build_service()
        service.query(community[:2], **QUERY)
        stats = service.stats()
        assert stats["graph"]["nodes"] == service.graph.node_count
        assert stats["graph"]["version"] == 0
        assert stats["community_size"] == len(community)
        (entry,) = stats["instances"]
        assert entry["seeds"] == sorted(community[:2])
        assert entry["worlds"] >= 16
