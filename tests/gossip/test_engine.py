"""Behavioral tests of the single-replica gossip engine.

Includes the hand-enumerated oracle: on the path ``0 <-> 1 <-> 2`` under
push gossip with fanout 1 and a round budget of ``B``, node 1 picks
uniformly between its two neighbors each of its ``B`` active rounds, so
``P(node 2 ever infected) = 1 - 2^-B`` exactly.
"""

import json

import pytest

from repro.diffusion.base import INFECTED, PROTECTED
from repro.errors import SeedError
from repro.gossip import GossipConfig, GossipEngine, run_gossip
from repro.rng import RngStream


def outcome_fingerprint(outcome):
    return (
        outcome.states,
        outcome.messages,
        outcome.events,
        outcome.rounds,
        outcome.infected_series,
    )


class TestDeterminism:
    @pytest.mark.parametrize("protocol", ["push", "pull", "push-pull"])
    def test_same_seed_same_outcome(self, ring_graph, protocol):
        config = GossipConfig(
            protocol=protocol,
            fanout=2,
            rumor_budget=4,
            max_rounds=12,
            anti_entropy_every=5,
        )

        def one(seed):
            return outcome_fingerprint(
                run_gossip(
                    ring_graph, config, [0], [12], rng=RngStream(seed).replica(0)
                )
            )

        assert one(42) == one(42)
        assert one(42) != one(43)

    def test_seed_validation(self, path3):
        config = GossipConfig()
        with pytest.raises(SeedError):
            GossipEngine(path3, config, [])
        with pytest.raises(SeedError):
            GossipEngine(path3, config, [0], [0])
        with pytest.raises(SeedError):
            GossipEngine(path3, config, [99])


class TestOracle:
    @pytest.mark.parametrize("budget,expected", [(1, 0.5), (2, 0.75), (3, 0.875)])
    def test_push_path_infection_probability(self, path3, budget, expected):
        config = GossipConfig(
            protocol="push", fanout=1, rumor_budget=budget, max_rounds=budget + 5
        )
        base = RngStream(123, name="oracle")
        replicas = 600
        hits = sum(
            run_gossip(path3, config, [0], rng=base.replica(i)).states[2] == INFECTED
            for i in range(replicas)
        )
        assert abs(hits / replicas - expected) < 0.07

    def test_seed_always_infects_sole_neighbor(self, path3):
        config = GossipConfig(protocol="push", fanout=1, rumor_budget=1, max_rounds=5)
        outcome = run_gossip(path3, config, [0], rng=RngStream(1).replica(0))
        assert outcome.states[1] == INFECTED  # node 0's only neighbor
        assert outcome.infected_series[0] == 1


class TestStopRules:
    def test_budget_caps_sends(self, path3):
        config = GossipConfig(protocol="push", fanout=1, rumor_budget=2, max_rounds=30)
        outcome = run_gossip(path3, config, [0], rng=RngStream(5).replica(0))
        # every node sends at most budget pushes; 3 nodes x 2 rounds x fanout 1
        assert outcome.messages["push.rumor"] <= 3 * 2

    def test_counter_rule_stops_after_k_seen(self):
        # complete bidirectional triangle: once everyone is informed, each
        # push is a "seen" contact, so counter k=1 kills spreading fast
        from tests.gossip.conftest import bidirectional

        graph = bidirectional([(0, 1), (1, 2), (0, 2)], 3)
        fast = GossipConfig(
            protocol="push", fanout=1, rumor_budget=30,
            stop_rule="counter", stop_k=1, max_rounds=40,
        )
        slow = fast.with_overrides(stop_k=10)
        base = RngStream(7, name="counter")
        fast_msgs = run_gossip(graph, fast, [0], rng=base.replica(0)).messages_total
        slow_msgs = run_gossip(graph, slow, [0], rng=base.replica(0)).messages_total
        assert fast_msgs < slow_msgs

    def test_lose_interest_certain_with_k_1(self):
        from tests.gossip.conftest import bidirectional

        graph = bidirectional([(0, 1), (1, 2), (0, 2)], 3)
        config = GossipConfig(
            protocol="push", fanout=1, rumor_budget=50,
            stop_rule="lose-interest", stop_k=1, max_rounds=60,
        )
        outcome = run_gossip(graph, config, [0], rng=RngStream(9).replica(0))
        # with k=1 a spreader dies on its first seen contact, so the
        # message count stays far below the budget ceiling
        assert outcome.messages["push.rumor"] < 3 * 50


class TestProtocols:
    def test_pull_informs_whole_component(self, ring_graph):
        config = GossipConfig(protocol="pull", fanout=2, max_rounds=30)
        outcome = run_gossip(ring_graph, config, [0], rng=RngStream(3).replica(0))
        assert outcome.infected_count == ring_graph.node_count
        assert outcome.messages["pull.request"] > 0
        assert outcome.messages["pull.response"] == outcome.messages["pull.request"]
        assert outcome.messages["push.rumor"] == 0

    def test_push_pull_uses_both_channels(self, ring_graph):
        config = GossipConfig(protocol="push-pull", fanout=1, max_rounds=20)
        outcome = run_gossip(ring_graph, config, [0], rng=RngStream(3).replica(0))
        assert outcome.messages["push.rumor"] > 0
        assert outcome.messages["pull.request"] > 0

    def test_anti_entropy_completes_budget_starved_spread(self, ring_graph):
        # a tiny budget stalls organic push spread; periodic anti-entropy
        # reconciliation still drags the rumor through the ring
        starved = GossipConfig(
            protocol="push", fanout=1, rumor_budget=1, max_rounds=40
        )
        repaired = starved.with_overrides(anti_entropy_every=2)
        base = RngStream(11, name="ae")
        stalled = run_gossip(ring_graph, starved, [0], rng=base.replica(0))
        healed = run_gossip(ring_graph, repaired, [0], rng=base.replica(0))
        assert healed.infected_count > stalled.infected_count
        assert healed.messages["anti_entropy"] > 0


class TestBlocking:
    def test_protectors_inoculate_first_reached(self, path3):
        # protector at the middle of the path, injected before the rumor
        # moves: node 2 can only ever hear the antidote
        config = GossipConfig(
            protocol="push", fanout=1, rumor_budget=8, max_rounds=30,
            protector_delay=0.0,
        )
        outcome = run_gossip(path3, config, [0], [1], rng=RngStream(5).replica(0))
        assert outcome.states == (INFECTED, PROTECTED, PROTECTED)
        assert outcome.infected_count == 1

    def test_late_protectors_block_less(self, ring_graph):
        early = GossipConfig(
            protocol="push", fanout=2, rumor_budget=6, max_rounds=25,
            protector_delay=0.0,
        )
        late = early.with_overrides(protector_delay=12.0)
        protectors = [6, 12, 18]
        base = RngStream(21, name="delay")
        replicas = 40
        early_mean = sum(
            run_gossip(ring_graph, early, [0], protectors, rng=base.replica(i)).infected_count
            for i in range(replicas)
        ) / replicas
        late_mean = sum(
            run_gossip(ring_graph, late, [0], protectors, rng=base.replica(i)).infected_count
            for i in range(replicas)
        ) / replicas
        assert early_mean < late_mean

    def test_protector_seed_skipped_when_already_infected(self, path3):
        # delay long enough for the rumor to own the whole path first
        config = GossipConfig(
            protocol="push", fanout=1, rumor_budget=8, max_rounds=40,
            protector_delay=30.0,
        )
        base = RngStream(31, name="late")
        protected_totals = [
            run_gossip(path3, config, [0], [2], rng=base.replica(i)).protected_count
            for i in range(30)
        ]
        # whenever the rumor reached node 2 first, the injection is a no-op
        infected_first = sum(1 for total in protected_totals if total == 0)
        assert infected_first > 0


class TestCheckpoint:
    def test_state_round_trip_is_bit_identical(self, ring_graph):
        config = GossipConfig(
            protocol="push-pull", fanout=2, rumor_budget=5, max_rounds=15,
            anti_entropy_every=4, protector_delay=3.0,
            stop_rule="lose-interest", stop_k=3,
        )

        def engine():
            return GossipEngine(
                ring_graph, config, [0], [8, 16], rng=RngStream(9).replica(0)
            )

        full = engine()
        full.run()
        baseline = outcome_fingerprint(full.outcome())

        paused = engine()
        assert paused.run(max_events=50) is False
        state = json.loads(json.dumps(paused.state_dict()))
        resumed = engine()
        resumed.load_state(state)
        assert resumed.run() is True
        assert outcome_fingerprint(resumed.outcome()) == baseline

    def test_pause_points_do_not_matter(self, ring_graph):
        config = GossipConfig(protocol="push", fanout=2, rumor_budget=4, max_rounds=10)

        def run_with_pauses(pause_every):
            engine = GossipEngine(
                ring_graph, config, [0], rng=RngStream(4).replica(0)
            )
            while not engine.run(max_events=pause_every):
                engine.load_state(
                    json.loads(json.dumps(engine.state_dict()))
                )
            return outcome_fingerprint(engine.outcome())

        assert run_with_pauses(7) == run_with_pauses(23) == run_with_pauses(10_000)

    def test_series_has_fixed_length(self, ring_graph):
        config = GossipConfig(protocol="push", rumor_budget=2, max_rounds=9)
        outcome = run_gossip(ring_graph, config, [0], rng=RngStream(2).replica(0))
        assert len(outcome.infected_series) == config.max_rounds + 1
        assert outcome.infected_series[-1] == outcome.infected_count
