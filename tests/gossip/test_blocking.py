"""The gossip blocking study (repro.lcrb.gossip_blocking)."""

import pytest

from repro.algorithms.base import SelectionContext
from repro.algorithms.heuristics import MaxDegreeSelector, RandomSelector
from repro.gossip import GossipConfig
from repro.graph.digraph import DiGraph
from repro.lcrb.gossip_blocking import (
    GossipBlockingScenario,
    default_gossip_selectors,
)
from repro.rng import RngStream


@pytest.fixture
def context():
    """A two-community barbell: rumors in the left clique, a bridge to
    the right — protectors on the bridge visibly cut the spread."""
    left = [0, 1, 2, 3]
    right = [4, 5, 6, 7, 8, 9]
    edges = []
    for group in (left, right):
        for a in group:
            for b in group:
                if a != b:
                    edges.append((a, b))
    edges += [(3, 4), (4, 3)]
    graph = DiGraph.from_edges(edges)
    return SelectionContext(graph, left, [0])


def scenario(runs=8, budget=2):
    config = GossipConfig(
        protocol="push", fanout=2, rumor_budget=5, max_rounds=15,
        protector_delay=1.0,
    )
    return GossipBlockingScenario(config, runs=runs, budget=budget)


class TestScenario:
    def test_panel_rows_and_baseline(self, context):
        result = scenario().run(context, RngStream(17, name="blocking"))
        names = [row.strategy for row in result.rows]
        assert names == ["none", "random", "maxdegree", "ris-greedy"]
        baseline = result.row("none")
        assert baseline.protectors == 0
        assert baseline.mean_protected == 0.0
        for row in result.rows[1:]:
            assert row.protectors >= 1
            # any protector set can only lower the infected mean on
            # this graph (the rumor otherwise owns both cliques)
            assert row.mean_infected <= baseline.mean_infected

    def test_deterministic_and_order_independent(self, context):
        first = scenario().run(context, RngStream(17, name="blocking"))
        second = scenario().run(context, RngStream(17, name="blocking"))
        assert first.to_dict() == second.to_dict()
        # a reordered/subset panel reproduces the same rows per strategy
        reordered = scenario().run(
            context,
            RngStream(17, name="blocking"),
            selectors={
                "maxdegree": MaxDegreeSelector(),
                "none": None,
            },
        )
        assert (
            reordered.row("maxdegree").to_dict()
            if hasattr(reordered.row("maxdegree"), "to_dict")
            else reordered.row("maxdegree")
        ) == first.row("maxdegree")
        assert reordered.row("none") == first.row("none")

    def test_table_and_dict_render(self, context):
        result = scenario(runs=4).run(
            context,
            RngStream(3, name="blocking"),
            selectors={"none": None, "random": RandomSelector(rng=RngStream(3))},
        )
        table = result.to_table()
        assert "strategy" in table and "none" in table and "random" in table
        payload = result.to_dict()
        assert payload["replicas"] == 4
        assert len(payload["strategies"]) == 2
        assert payload["strategies"][0]["strategy"] == "none"

    def test_unknown_row_raises(self, context):
        result = scenario(runs=2).run(
            context, RngStream(5), selectors={"none": None}
        )
        with pytest.raises(KeyError):
            result.row("maxdegree")

    def test_default_selectors_panel(self):
        panel = default_gossip_selectors(RngStream(7))
        assert list(panel) == ["none", "random", "maxdegree", "ris-greedy"]
        assert panel["none"] is None
