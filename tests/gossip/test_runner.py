"""Replica fan-out contracts: bit-identity, checkpointing, obs counters."""

import pytest

from repro.exec.checkpoint import CheckpointStore
from repro.gossip import GossipConfig, GossipMonteCarlo
from repro.gossip.runner import (
    GossipAggregate,
    GossipReplicaRecord,
    _records_from_state,
    _records_to_state,
)
from repro.gossip.sim import MESSAGE_KINDS
from repro.obs.registry import MetricsRegistry, use_registry
from repro.rng import RngStream

CONFIG = GossipConfig(
    protocol="push-pull",
    fanout=2,
    rumor_budget=4,
    max_rounds=10,
    anti_entropy_every=4,
    protector_delay=2.0,
    stop_rule="counter",
    stop_k=3,
)


def run(graph, runs=10, processes=1, checkpoint=None, seed=42):
    runner = GossipMonteCarlo(
        CONFIG, runs=runs, processes=processes, checkpoint=checkpoint
    )
    return runner.run_detailed(
        graph, [0], [6, 12], rng=RngStream(seed, name="runner")
    )


class TestBitIdentity:
    def test_serial_vs_two_workers(self, ring_graph):
        _, serial = run(ring_graph, processes=1)
        _, parallel = run(ring_graph, processes=2)
        assert serial == parallel

    def test_aggregate_matches_records(self, ring_graph):
        aggregate, records = run(ring_graph)
        assert aggregate.replicas == len(records) == 10
        assert aggregate.messages_total == sum(r.messages_total for r in records)
        assert aggregate.events == sum(r.events for r in records)
        assert aggregate.max_infected == max(r.final_infected for r in records)
        assert aggregate.mean_infected == pytest.approx(
            sum(r.final_infected for r in records) / len(records)
        )

    def test_requires_rng(self, ring_graph):
        with pytest.raises(ValueError):
            GossipMonteCarlo(CONFIG).run(ring_graph, [0])


class TestCheckpoint:
    def test_resume_extends_prefix_bit_identically(self, ring_graph, tmp_path):
        path = tmp_path / "gossip.ckpt"
        _, uninterrupted = run(ring_graph, runs=10)
        _, prefix = run(ring_graph, runs=6, checkpoint=path)
        assert prefix == uninterrupted[:6]
        store = CheckpointStore(path, resume=True)
        registry = MetricsRegistry()
        with use_registry(registry):
            _, resumed = run(ring_graph, runs=10, checkpoint=store)
        assert resumed == uninterrupted
        assert registry.counter_value("exec.resumed_rounds") == 6

    def test_longer_checkpoint_truncates(self, ring_graph, tmp_path):
        path = tmp_path / "gossip.ckpt"
        _, full = run(ring_graph, runs=10, checkpoint=path)
        store = CheckpointStore(path, resume=True)
        _, shorter = run(ring_graph, runs=4, checkpoint=store)
        assert shorter == full[:4]

    def test_different_seed_refuses_to_resume(self, ring_graph, tmp_path):
        from repro.errors import CheckpointError

        path = tmp_path / "gossip.ckpt"
        run(ring_graph, runs=5, checkpoint=path, seed=42)
        store = CheckpointStore(path, resume=True)
        with pytest.raises(CheckpointError):
            run(ring_graph, runs=5, checkpoint=store, seed=43)

    def test_record_state_round_trip(self):
        records = [
            GossipReplicaRecord(3, 2, tuple(range(len(MESSAGE_KINDS))), 40, 12, (1, 2, 3)),
            GossipReplicaRecord(5, 0, tuple(1 for _ in MESSAGE_KINDS), 9, 4, (1, 5, 5)),
        ]
        assert _records_from_state(_records_to_state(records)) == records


class TestObsCounters:
    def test_counters_histogram_and_gauge(self, ring_graph):
        registry = MetricsRegistry()
        with use_registry(registry):
            aggregate, records = run(ring_graph, processes=2)
        counters = registry.counter_values()
        assert counters["gossip.replicas"] == 10
        assert counters["gossip.messages"] == aggregate.messages_total
        assert counters["gossip.events"] == aggregate.events
        assert counters["gossip.rounds"] == aggregate.rounds
        for kind, total in aggregate.messages.items():
            if total:
                assert counters[f"gossip.messages.{kind}"] == total
        histogram = registry.histogram("gossip.final_infected")
        assert sorted(histogram.values) == sorted(
            float(r.final_infected) for r in records
        )
        gauge = registry.gauge("gossip.residual_infected")
        assert gauge.value == float(aggregate.max_infected)

    def test_serial_and_parallel_counters_match(self, ring_graph):
        serial_registry = MetricsRegistry()
        with use_registry(serial_registry):
            run(ring_graph, processes=1)
        parallel_registry = MetricsRegistry()
        with use_registry(parallel_registry):
            run(ring_graph, processes=2)
        serial = {
            name: value
            for name, value in serial_registry.counter_values().items()
            if name.startswith("gossip.")
        }
        parallel = {
            name: value
            for name, value in parallel_registry.counter_values().items()
            if name.startswith("gossip.")
        }
        assert serial == parallel


class TestAggregate:
    def test_empty_aggregate_is_zero(self):
        aggregate = GossipAggregate(5)
        assert aggregate.mean_infected == 0.0
        assert aggregate.mean_messages == 0.0
        assert aggregate.mean_series() == [0.0] * 6

    def test_summary_keys(self, ring_graph):
        aggregate, _ = run(ring_graph, runs=3)
        summary = aggregate.summary()
        for key in (
            "replicas",
            "mean_infected",
            "mean_protected",
            "max_infected",
            "messages_total",
            "mean_messages",
            "messages",
            "events",
            "rounds",
            "infected_series",
        ):
            assert key in summary
        assert len(summary["infected_series"]) == CONFIG.max_rounds + 1
