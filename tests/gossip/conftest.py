"""Shared fixtures for the gossip workload tests."""

import pytest

from repro.graph.compact import IndexedDiGraph


def bidirectional(edges, nodes):
    """An IndexedDiGraph with every listed edge in both directions."""
    out = [[] for _ in range(nodes)]
    inn = [[] for _ in range(nodes)]
    for tail, head in edges:
        out[tail].append(head)
        inn[head].append(tail)
        out[head].append(tail)
        inn[tail].append(head)
    return IndexedDiGraph(list(range(nodes)), out, inn)


@pytest.fixture
def path3():
    """0 <-> 1 <-> 2: the hand-enumerable oracle graph."""
    return bidirectional([(0, 1), (1, 2)], 3)


@pytest.fixture
def ring_graph():
    """A 24-node bidirectional ring with skip chords (dense enough for
    every protocol variant to make progress)."""
    nodes = 24
    edges = [(i, (i + 1) % nodes) for i in range(nodes)]
    edges += [(i, (i + 5) % nodes) for i in range(0, nodes, 3)]
    return bidirectional(edges, nodes)
