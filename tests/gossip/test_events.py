"""Unit tests for the gossip event queue and its config object."""

import json

import pytest

from repro.errors import ValidationError
from repro.gossip.config import GossipConfig, PROTOCOLS, STOP_RULES
from repro.gossip.events import (
    EventQueue,
    PRIORITY_ANTI_ENTROPY,
    PRIORITY_MSG_PROTECTOR,
    PRIORITY_MSG_RUMOR,
    PRIORITY_PROTECT,
    PRIORITY_ROUND,
)
from repro.rng import EventOrder, RngStream


class TestGossipConfig:
    def test_defaults_validate(self):
        config = GossipConfig()
        assert config.protocol in PROTOCOLS
        assert config.stop_rule in STOP_RULES

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValidationError):
            GossipConfig(protocol="shout")

    def test_rejects_unknown_stop_rule(self):
        with pytest.raises(ValidationError):
            GossipConfig(stop_rule="never")

    @pytest.mark.parametrize(
        "field,value",
        [
            ("fanout", 0),
            ("rumor_budget", 0),
            ("stop_k", 0),
            ("max_rounds", 0),
            ("anti_entropy_every", -1),
            ("protector_delay", -0.5),
            ("protector_budget", 0),
        ],
    )
    def test_rejects_out_of_range(self, field, value):
        with pytest.raises(ValidationError):
            GossipConfig(**{field: value})

    def test_effective_protector_budget_defaults_to_rumor(self):
        assert GossipConfig(rumor_budget=7).effective_protector_budget == 7
        assert (
            GossipConfig(rumor_budget=7, protector_budget=3).effective_protector_budget
            == 3
        )

    def test_dict_round_trip(self):
        config = GossipConfig(protocol="pull", fanout=3, anti_entropy_every=5)
        assert GossipConfig.from_dict(config.to_dict()) == config

    def test_with_overrides_revalidates(self):
        config = GossipConfig()
        assert config.with_overrides(fanout=4).fanout == 4
        with pytest.raises(ValidationError):
            config.with_overrides(fanout=0)


class TestEventQueue:
    def test_pops_in_time_priority_order(self):
        queue = EventQueue(EventOrder())
        queue.push(2.0, PRIORITY_ROUND, ("round", 1))
        queue.push(1.0, PRIORITY_MSG_RUMOR, ("push", 0, 1, 1))
        queue.push(1.0, PRIORITY_MSG_PROTECTOR, ("push", 2, 1, 2))
        queue.push(1.0, PRIORITY_PROTECT, ("protect",))
        queue.push(1.0, PRIORITY_ANTI_ENTROPY, ("anti",))
        kinds = [queue.pop()[2][0] for _ in range(len(queue))]
        assert kinds == ["protect", "push", "push", "anti", "round"]

    def test_equal_keys_preserve_insertion_order(self):
        queue = EventQueue(EventOrder())
        for node in range(5):
            queue.push(1.0, PRIORITY_ROUND, ("round", node))
        order = [queue.pop()[2][1] for _ in range(5)]
        assert order == [0, 1, 2, 3, 4]

    def test_jitter_shuffles_ties_deterministically(self):
        def drain(seed):
            queue = EventQueue(RngStream(seed).event_order())
            for node in range(12):
                queue.push(1.0, PRIORITY_ROUND, ("round", node), jitter=True)
            return [queue.pop()[2][1] for _ in range(12)]

        assert drain(5) == drain(5)
        assert drain(5) != drain(6)

    def test_state_round_trip_preserves_order(self):
        queue = EventQueue(RngStream(3).event_order())
        for node in range(8):
            queue.push(float(node % 3), node % 2, ("round", node), jitter=True)
        state = json.loads(json.dumps(queue.state_dict()))
        restored = EventQueue.from_state(state)
        assert len(restored) == len(queue)
        while queue:
            assert restored.pop() == queue.pop()
        # the restored order continues issuing fresh, later keys
        assert restored.order.seq == 8
