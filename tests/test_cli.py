"""Unit tests for the CLI (in-process, small scales)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_keys_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_verbosity_flag(self):
        args = build_parser().parse_args(["-vv", "datasets"])
        assert args.verbose == 2


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "hep" in out and "enron-large" in out

    def test_stats(self, capsys):
        assert main(["stats", "--dataset", "hep", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "|N|=" in out and "rumor community" in out

    def test_communities(self, capsys):
        assert main(["communities", "--dataset", "hep", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "communities detected" in out

    def test_select_scbg(self, capsys):
        code = main(
            [
                "select",
                "--dataset",
                "enron-small",
                "--scale",
                "0.02",
                "--algorithm",
                "scbg",
            ]
        )
        assert code == 0
        assert "SCBG selected" in capsys.readouterr().out

    def test_select_ris_greedy(self, capsys):
        code = main(
            [
                "select",
                "--dataset",
                "enron-small",
                "--scale",
                "0.02",
                "--algorithm",
                "ris-greedy",
                "--budget",
                "3",
                "--epsilon",
                "0.2",
                "--delta",
                "0.1",
            ]
        )
        assert code == 0
        assert "RIS-Greedy selected" in capsys.readouterr().out

    def test_simulate_ris_greedy_opoao(self, capsys):
        code = main(
            [
                "simulate",
                "--dataset",
                "enron-small",
                "--scale",
                "0.02",
                "--model",
                "opoao",
                "--algorithm",
                "ris-greedy",
                "--budget",
                "2",
                "--runs",
                "5",
            ]
        )
        assert code == 0
        assert "RIS-Greedy" in capsys.readouterr().out

    def test_simulate_noblocking(self, capsys):
        code = main(
            [
                "simulate",
                "--dataset",
                "enron-small",
                "--scale",
                "0.02",
                "--model",
                "doam",
                "--algorithm",
                "none",
                "--runs",
                "1",
                "--hops",
                "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "NoBlocking" in out
        assert "infected per hop" in out

    def test_simulate_with_chart(self, capsys):
        code = main(
            [
                "simulate",
                "--dataset",
                "enron-small",
                "--scale",
                "0.02",
                "--model",
                "doam",
                "--algorithm",
                "maxdegree",
                "--budget",
                "2",
                "--runs",
                "1",
                "--hops",
                "6",
                "--chart",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MaxDegree" in out
        assert "+------" in out  # the chart's x-axis line

    def test_select_greedy_path(self, capsys):
        code = main(
            [
                "select",
                "--dataset",
                "enron-small",
                "--scale",
                "0.02",
                "--algorithm",
                "greedy",
                "--budget",
                "1",
            ]
        )
        assert code == 0
        assert "selected 1 protector" in capsys.readouterr().out

    def test_inspect(self, capsys):
        code = main(["inspect", "--dataset", "hep", "--scale", "0.02"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rumor community" in out
        assert "conductance" in out

    def test_sources(self, capsys):
        code = main(
            [
                "sources",
                "--dataset",
                "hep",
                "--scale",
                "0.02",
                "--trials",
                "2",
                "--spread-hops",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "true source" in out

    def test_sweep(self, capsys):
        code = main(
            ["sweep", "--nodes", "300", "--draws", "1", "--mixings", "0.05", "0.2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Community-mixing sweep" in out
        assert "SCBG |P|" in out

    def test_experiment_table_with_json_and_markdown(self, tmp_path, capsys):
        json_path = tmp_path / "table.json"
        md_path = tmp_path / "table.md"
        code = main(
            [
                "experiment",
                "table1",
                "--scale",
                "0.02",
                "--draws",
                "1",
                "--json",
                str(json_path),
                "--markdown",
                str(md_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DOAM" in out
        payload = json.loads(json_path.read_text())
        assert payload["kind"] == "table"
        assert len(payload["rows"]) == 9
        markdown = md_path.read_text()
        assert markdown.startswith("# Experiment report")
        assert "Table I" in markdown


class TestMetricsOut:
    def test_select_ris_greedy_emits_schema(self, tmp_path, capsys):
        """Golden-schema check for --metrics-out (the acceptance criterion)."""
        path = tmp_path / "metrics.json"
        code = main(
            [
                "select",
                "--dataset",
                "enron-small",
                "--scale",
                "0.02",
                "--algorithm",
                "ris-greedy",
                "--budget",
                "2",
                "--metrics-out",
                str(path),
            ]
        )
        assert code == 0
        assert "wrote metrics JSON" in capsys.readouterr().out
        document = json.loads(path.read_text())
        assert document["schema"] == "repro.obs/v1"
        assert document["command"] == "select"
        assert document["dataset"] == "enron-small"
        assert set(document) >= {"counters", "gauges", "histograms", "timers"}
        counters = document["counters"]
        assert counters["sketch.rrsets_sampled"] > 0
        assert counters["selector.sigma_evaluations"] > 0
        assert counters["selector.celf_queue_hits"] > 0
        assert document["timers"]["stage.load"]["calls"] == 1
        assert document["timers"]["stage.select"]["calls"] == 1

    def test_simulate_metrics_include_world_counters(self, tmp_path):
        path = tmp_path / "metrics.json"
        code = main(
            [
                "simulate",
                "--dataset",
                "enron-small",
                "--scale",
                "0.02",
                "--model",
                "opoao",
                "--algorithm",
                "maxdegree",
                "--budget",
                "2",
                "--runs",
                "4",
                "--hops",
                "6",
                "--metrics-out",
                str(path),
            ]
        )
        assert code == 0
        counters = json.loads(path.read_text())["counters"]
        assert counters["sim.worlds"] == 4
        assert counters["sim.runs"] == 4
        assert counters["sim.node_visits"] > 0

    def test_bench_subcommand(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        code = main(
            [
                "bench",
                "--dataset",
                "enron-small",
                "--scale",
                "0.02",
                "--model",
                "doam",
                "--runs",
                "3",
                "--hops",
                "6",
                "--metrics-out",
                str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "runs/s" in out
        counters = json.loads(path.read_text())["counters"]
        assert counters["sim.runs"] == 3
        assert counters["sim.edge_visits"] > 0

    def test_metrics_off_by_default(self, capsys):
        from repro.obs import NULL_REGISTRY, metrics

        assert main(["datasets"]) == 0
        assert metrics() is NULL_REGISTRY
        assert NULL_REGISTRY.to_dict()["counters"] == {}


class TestGossipCommand:
    BASE = [
        "gossip",
        "--dataset",
        "hep",
        "--scale",
        "0.03",
        "--seed",
        "13",
        "--runs",
        "4",
    ]

    def test_gossip_runs_and_reports(self, capsys):
        assert main(self.BASE) == 0
        out = capsys.readouterr().out
        assert "push gossip on hep" in out
        assert "messages by kind:" in out
        assert "infected per round:" in out

    def test_gossip_is_reproducible(self, capsys):
        assert main(self.BASE) == 0
        first = capsys.readouterr().out
        assert main(self.BASE) == 0
        assert capsys.readouterr().out == first

    def test_gossip_serial_matches_workers(self, capsys):
        assert main(self.BASE) == 0
        serial = capsys.readouterr().out
        assert main(self.BASE + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_gossip_protocol_and_selector_flags(self, capsys):
        argv = self.BASE + [
            "--protocol",
            "push-pull",
            "--stop-rule",
            "counter",
            "--stop-k",
            "2",
            "--anti-entropy-every",
            "5",
            "--protector-selector",
            "none",
            "--rounds",
            "10",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "push-pull gossip" in out
        assert "NoBlocking" in out
        assert "pull.request=" in out

    def test_gossip_checkpoint_resume_matches(self, tmp_path, capsys):
        path = tmp_path / "gossip.ckpt"
        assert main(self.BASE) == 0
        uninterrupted = capsys.readouterr().out
        short = [arg if arg != "4" else "2" for arg in self.BASE]
        assert main(short + ["--checkpoint", str(path)]) == 0
        capsys.readouterr()
        resumed_argv = self.BASE + ["--checkpoint", str(path), "--resume"]
        assert main(resumed_argv) == 0
        assert capsys.readouterr().out == uninterrupted

    def test_gossip_metrics_out(self, tmp_path):
        path = tmp_path / "gossip-metrics.json"
        assert main(self.BASE + ["--metrics-out", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["counters"]["gossip.replicas"] == 4
        assert payload["counters"]["gossip.messages"] > 0
        assert payload["counters"]["gossip.events"] > 0
        assert "gossip.final_infected" in payload["histograms"]

    def test_gossip_compare_table(self, capsys):
        argv = self.BASE + ["--compare", "--protectors", "2"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "gossip blocking" in out
        for strategy in ("none", "random", "maxdegree", "ris-greedy"):
            assert strategy in out


class TestServeCommand:
    BASE = [
        "serve",
        "--dataset",
        "enron-small",
        "--scale",
        "0.02",
        "--seed",
        "13",
        "--steps",
        "6",
        "--initial-worlds",
        "16",
        "--max-worlds",
        "32",
        "--epsilon",
        "0.3",
        "--delta",
        "0.1",
        "--loadgen",
        "8",
        "--update-every",
        "4",
        "--budget",
        "3",
    ]

    def test_loadgen_report(self, capsys):
        assert main(self.BASE) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["queries"] == 8
        assert report["cold_queries"] >= 1
        assert "cold_to_warm_ratio" in report
        assert "rrsets_sampled_trace" not in report  # trimmed for TTY

    def test_loadgen_counts_are_reproducible(self, capsys):
        assert main(self.BASE) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(self.BASE) == 0
        second = json.loads(capsys.readouterr().out)
        for key in ("seconds", "qps", "latency_ms"):
            first.pop(key), second.pop(key)
        assert first == second

    def test_loadgen_metrics_out(self, tmp_path):
        path = tmp_path / "serve-metrics.json"
        assert main(self.BASE + ["--metrics-out", str(path)]) == 0
        counters = json.loads(path.read_text())["counters"]
        assert counters["serve.queries"] == 8
        assert counters["serve.queries.cold"] >= 1
        assert counters["serve.rrsets.sampled"] > 0
        assert counters["serve.updates"] == 1


class TestMultiCascadeCommands:
    DISTRIBUTED = [
        "distributed",
        "--dataset", "enron-small",
        "--scale", "0.02",
        "--model", "doam",
        "--campaigns", "2",
        "--budget", "1",
        "--runs", "4",
        "--select-runs", "2",
        "--hops", "8",
    ]

    def test_distributed_reports_price(self, capsys):
        assert main(self.DISTRIBUTED) == 0
        out = capsys.readouterr().out
        assert "distributed blocking" in out
        assert "price of non-cooperation" in out
        assert "campaign 2" in out

    def test_distributed_json_and_chart(self, tmp_path, capsys):
        path = tmp_path / "distributed.json"
        argv = self.DISTRIBUTED + ["--json", str(path), "--chart"]
        assert main(argv) == 0
        payload = json.loads(path.read_text())
        assert len(payload["campaigns"]) == 2
        assert "price_of_noncooperation" in payload
        assert len(payload["distributed_series"]) == len(
            payload["centralized_series"]
        )

    def test_distributed_is_reproducible(self, capsys):
        assert main(self.DISTRIBUTED + ["--seed", "9"]) == 0
        first = capsys.readouterr().out
        assert main(self.DISTRIBUTED + ["--seed", "9"]) == 0
        assert capsys.readouterr().out == first

    IMPRESSIONS = [
        "impressions",
        "--dataset", "enron-small",
        "--scale", "0.02",
        "--model", "ic",
        "--campaigns", "2",
        "--budget", "1",
        "--runs", "6",
        "--hops", "8",
    ]

    def test_impressions_reports_domination(self, capsys):
        assert main(self.IMPRESSIONS) == 0
        out = capsys.readouterr().out
        assert "impression domination" in out
        assert "rumor-dominated nodes (mean)" in out
        assert "campaign 2" in out

    def test_impressions_weights_and_priority(self, tmp_path, capsys):
        path = tmp_path / "impressions.json"
        argv = self.IMPRESSIONS + [
            "--weights", "2,1,1",
            "--threshold", "2.0",
            "--priority", "rumor-first",
            "--json", str(path),
        ]
        assert main(argv) == 0
        payload = json.loads(path.read_text())
        assert payload["weights"] == [2.0, 1.0, 1.0]
        assert payload["threshold"] == 2.0
        assert payload["priority"] == [0, 1, 2]
        assert len(payload["cascade_means"]) == 3

    def test_impressions_checkpoint_resume_matches(self, tmp_path, capsys):
        path = tmp_path / "impressions.ckpt"
        argv = self.IMPRESSIONS + ["--checkpoint", str(path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert path.exists()
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first
