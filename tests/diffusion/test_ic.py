"""Unit tests for the competitive Independent Cascade extension."""

import pytest

from repro.diffusion.base import PROTECTED, SeedSets
from repro.diffusion.ic import CompetitiveICModel
from repro.graph.digraph import DiGraph
from repro.rng import RngStream


def run(graph, rumors, protectors=(), p=1.0, rng=None, max_hops=50):
    indexed = graph.to_indexed()
    seeds = SeedSets(
        rumors=indexed.indices(rumors), protectors=indexed.indices(protectors)
    )
    outcome = CompetitiveICModel(probability=p).run(
        indexed, seeds, rng=rng or RngStream(1), max_hops=max_hops
    )
    return indexed, outcome


class TestIC:
    def test_probability_validated(self):
        with pytest.raises(Exception):
            CompetitiveICModel(probability=1.5)

    def test_p_one_behaves_like_doam_broadcast(self):
        star = DiGraph.from_edges([(0, i) for i in range(1, 6)])
        _, outcome = run(star, rumors=[0], p=1.0)
        assert outcome.trace.infected == [1, 6]

    def test_p_zero_never_spreads(self, chain):
        _, outcome = run(chain, rumors=[0], p=0.0)
        assert outcome.infected_count == 1

    def test_single_chance_per_edge(self):
        # With p=0 nothing activates; with p=1 each front node tries its
        # neighbors exactly once — run long enough to see no re-tries.
        g = DiGraph.from_edges([(0, 1), (1, 0)])
        _, outcome = run(g, rumors=[0], p=1.0, max_hops=10)
        assert outcome.trace.hops <= 3

    def test_protector_priority_on_tie(self):
        g = DiGraph.from_edges([("r", "m"), ("p", "m")])
        indexed, outcome = run(g, rumors=["r"], protectors=["p"], p=1.0)
        assert outcome.states[indexed.index("m")] == PROTECTED

    def test_deterministic_given_stream(self):
        g = DiGraph.from_edges([(0, i) for i in range(1, 10)])
        _, a = run(g, rumors=[0], p=0.5, rng=RngStream(3))
        _, b = run(g, rumors=[0], p=0.5, rng=RngStream(3))
        assert a.states == b.states

    def test_intermediate_probability_partial_spread(self):
        g = DiGraph.from_edges([(0, i) for i in range(1, 30)])
        _, outcome = run(g, rumors=[0], p=0.3, rng=RngStream(5))
        assert 1 <= outcome.infected_count < 30

    def test_progressive(self, rng):
        g = DiGraph.from_edges([(i, j) for i in range(8) for j in range(8) if i != j])
        _, outcome = run(g, rumors=[0], protectors=[1], p=0.4, rng=rng)
        for earlier, later in zip(outcome.trace.infected, outcome.trace.infected[1:]):
            assert later >= earlier
