"""Unit tests for infected-series analytics."""

import pytest

from repro.diffusion.analysis import (
    is_growth_non_accelerating,
    newly_infected,
    relative_growth,
    saturation_hop,
)
from repro.errors import ValidationError


class TestNewlyInfected:
    def test_increments(self):
        assert newly_infected([1, 3, 6, 6]) == [2, 3, 0]

    def test_single_point(self):
        assert newly_infected([5]) == []

    def test_decreasing_rejected(self):
        with pytest.raises(ValidationError):
            newly_infected([3, 1])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            newly_infected([])


class TestRelativeGrowth:
    def test_values(self):
        assert relative_growth([2, 4, 6]) == [1.0, 0.5]

    def test_zero_base_skipped(self):
        assert relative_growth([0, 0, 2, 3]) == [0.5]


class TestNonAccelerating:
    def test_logistic_like_curve_passes(self):
        series = [2, 4, 7, 11, 15, 18, 20, 21, 21.5, 21.7]
        assert is_growth_non_accelerating(series)

    def test_exploding_curve_fails(self):
        # Relative growth rises from ~0 to ~1 — clear acceleration.
        series = [10, 10.1, 10.2, 10.4, 11, 13, 20, 40, 80, 160, 320, 640]
        assert not is_growth_non_accelerating(series)

    def test_short_series_trivially_passes(self):
        assert is_growth_non_accelerating([1, 2, 3])

    def test_noise_tolerance(self):
        series = [10, 15, 19, 23.2, 26.5, 29.1, 31.0, 32.2, 33.0]
        assert is_growth_non_accelerating(series, tolerance=0.05)


class TestSaturationHop:
    def test_flat_tail_found(self):
        series = [1, 10, 50, 90, 99, 100, 100, 100]
        assert saturation_hop(series, epsilon=0.02) == 4

    def test_never_settles(self):
        series = [float(2**i) for i in range(8)]
        assert saturation_hop(series, epsilon=0.001) == 7

    def test_constant_series(self):
        assert saturation_hop([5, 5, 5]) == 0

    def test_single_point(self):
        assert saturation_hop([5]) == 0

    def test_all_zero(self):
        assert saturation_hop([0, 0, 0]) == 0


class TestOnRealSimulation:
    def test_doam_flood_saturates_fast(self, chain):
        from repro.diffusion.base import SeedSets
        from repro.diffusion.doam import DOAMModel

        outcome = DOAMModel().run(chain.to_indexed(), SeedSets(rumors=[0]), max_hops=20)
        series = outcome.trace.padded_infected(20)
        assert saturation_hop(series) <= 5
        assert is_growth_non_accelerating(series, tolerance=0.25)
