"""Unit tests for the OPOAO model (Section III.A)."""


from repro.diffusion.base import INACTIVE, INFECTED, PROTECTED, SeedSets
from repro.diffusion.opoao import OPOAOModel
from repro.graph.digraph import DiGraph
from repro.rng import RngStream


def run(graph, rumors, protectors=(), rng=None, max_hops=50):
    indexed = graph.to_indexed()
    seeds = SeedSets(
        rumors=indexed.indices(rumors), protectors=indexed.indices(protectors)
    )
    outcome = OPOAOModel().run(
        indexed, seeds, rng=rng or RngStream(1), max_hops=max_hops
    )
    return indexed, outcome


class TestMechanics:
    def test_single_out_neighbor_always_chosen(self, chain):
        # On a chain every node has exactly one target: spread is
        # deterministic, one hop per step.
        _, outcome = run(chain, rumors=[0])
        assert outcome.trace.infected[:6] == [1, 2, 3, 4, 5, 6]

    def test_one_activation_per_node_per_step(self):
        # A star center with many leaves activates at most one leaf per
        # step (one-activate-ONE, unlike DOAM).
        star = DiGraph.from_edges([(0, i) for i in range(1, 8)])
        _, outcome = run(star, rumors=[0])
        newly = [len(batch) for batch in outcome.trace.newly_infected[1:]]
        assert all(count <= 1 for count in newly)

    def test_repeat_selection_slows_spread(self):
        # With 7 leaves, full infection needs at least 7 steps.
        star = DiGraph.from_edges([(0, i) for i in range(1, 8)])
        _, outcome = run(star, rumors=[0], max_hops=500)
        assert outcome.infected_count == 8
        first_full = outcome.trace.infected.index(8)
        assert first_full >= 7

    def test_progressive_counts_non_decreasing(self, rng):
        g = DiGraph.from_edges([(i, (i * 3 + 1) % 20) for i in range(20)])
        _, outcome = run(g, rumors=[0], rng=rng)
        for earlier, later in zip(outcome.trace.infected, outcome.trace.infected[1:]):
            assert later >= earlier

    def test_deterministic_given_stream(self, cycle):
        _, a = run(cycle, rumors=[0], rng=RngStream(7))
        _, b = run(cycle, rumors=[0], rng=RngStream(7))
        assert a.states == b.states

    def test_different_streams_can_differ(self):
        star = DiGraph.from_edges([(0, i) for i in range(1, 8)])
        outcomes = set()
        for seed in range(10):
            _, outcome = run(star, rumors=[0], rng=RngStream(seed), max_hops=1)
            outcomes.add(tuple(outcome.states))
        assert len(outcomes) > 1  # the chosen first leaf varies


class TestPriorityAndCompetition:
    def test_p_priority_on_simultaneous_target(self):
        # Both seeds have a single shared out-neighbor: they must both
        # target it on step 1, and P wins.
        g = DiGraph.from_edges([("r", "m"), ("p", "m")])
        indexed, outcome = run(g, rumors=["r"], protectors=["p"])
        assert outcome.states[indexed.index("m")] == PROTECTED

    def test_protected_node_blocks_rumor(self):
        # p -> a -> b chain with rumor far away: protector cascade takes
        # a and b; the rumor, arriving later, cannot flip them.
        g = DiGraph.from_edges(
            [("p", "a"), ("a", "b"), ("r", "x"), ("x", "y"), ("y", "a")]
        )
        indexed, outcome = run(g, rumors=["r"], protectors=["p"], max_hops=200)
        assert outcome.states[indexed.index("a")] == PROTECTED
        assert outcome.states[indexed.index("b")] == PROTECTED

    def test_states_only_from_seed_cascades(self, rng):
        g = DiGraph.from_edges([(0, 1), (1, 2), (3, 4)])
        indexed, outcome = run(g, rumors=[0], protectors=[3], rng=rng)
        # Node 4 is reachable only from the protector seed.
        assert outcome.states[indexed.index(4)] == PROTECTED
        # Nodes 1, 2 only from the rumor seed.
        assert outcome.states[indexed.index(1)] == INFECTED


class TestTermination:
    def test_stops_when_no_inactive_reachable(self, cycle):
        # All nodes active after 4 hops; the trace must not keep recording
        # empty hops to the horizon.
        _, outcome = run(cycle, rumors=[0], max_hops=1000)
        assert outcome.trace.hops <= 10

    def test_zero_out_degree_seed(self):
        g = DiGraph.from_edges([], nodes=["lonely", "other"])
        g.add_edge("other", "lonely")
        indexed, outcome = run(g, rumors=["lonely"])
        assert outcome.infected_count == 1
        assert outcome.states[indexed.index("other")] == INACTIVE

    def test_horizon_respected(self):
        g = DiGraph.from_edges([(i, i + 1) for i in range(30)])
        _, outcome = run(g, rumors=[0], max_hops=5)
        assert outcome.infected_count == 6
