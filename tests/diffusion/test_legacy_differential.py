"""Differential tests: the K-cascade engine vs the frozen two-cascade one.

The K-cascade refactor promises that K=2 is **bit-identical** to the
pre-refactor engine — same final states, same hop series, same newly
lists, same RNG consumption order. ``legacy_reference`` is a verbatim
behavioural copy of the old engine; hypothesis drives both over random
graphs/seeds/streams and requires exact equality for every model.

A second class exercises the genuinely new K=3 surface of the per-run
models: seed invariants, trace bookkeeping, and the two priority rules
disagreeing exactly on contested nodes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion.base import (
    INACTIVE,
    PRIORITY_RULES,
    CascadeSet,
    SeedSets,
    priority_order,
)
from repro.diffusion.doam import DOAMModel
from repro.diffusion.ic import CompetitiveICModel
from repro.diffusion.lt import CompetitiveLTModel
from repro.diffusion.opoao import OPOAOModel
from repro.errors import SeedError
from repro.graph.digraph import DiGraph
from repro.rng import RngStream
from tests.diffusion.legacy_reference import legacy_run

import pytest

MAX_HOPS = 16


@st.composite
def diffusion_instances(draw):
    """(graph, rumor_ids, protector_ids) with disjoint non-empty rumors."""
    n = draw(st.integers(min_value=2, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=36,
        )
    )
    graph = DiGraph()
    graph.add_nodes(range(n))
    for tail, head in edges:
        if tail != head:
            graph.add_edge(tail, head)
    rumors = draw(st.sets(st.integers(0, n - 1), min_size=1, max_size=3))
    protectors = draw(st.sets(st.integers(0, n - 1), max_size=3)) - rumors
    return graph, sorted(rumors), sorted(protectors)


def assert_bit_identical(outcome, legacy):
    trace = legacy["trace"]
    assert outcome.states == legacy["states"]
    assert outcome.trace.infected == trace.infected
    assert outcome.trace.protected == trace.protected
    assert outcome.trace.newly_infected == trace.newly_infected
    assert outcome.trace.newly_protected == trace.newly_protected


class TestLegacyDifferential:
    """K=2 states/traces/RNG order must match the pre-refactor engine."""

    @given(diffusion_instances(), st.integers(0, 200))
    @settings(max_examples=80, deadline=None)
    def test_ic_bit_identical(self, instance, seed):
        graph, rumors, protectors = instance
        indexed = graph.to_indexed()
        legacy = legacy_run(
            "ic", indexed, rumors, protectors, RngStream(seed), MAX_HOPS,
            probability=0.35,
        )
        outcome = CompetitiveICModel(probability=0.35).run(
            indexed,
            SeedSets(rumors=rumors, protectors=protectors),
            rng=RngStream(seed),
            max_hops=MAX_HOPS,
        )
        assert_bit_identical(outcome, legacy)

    @given(diffusion_instances(), st.integers(0, 200))
    @settings(max_examples=80, deadline=None)
    def test_lt_bit_identical(self, instance, seed):
        graph, rumors, protectors = instance
        indexed = graph.to_indexed()
        legacy = legacy_run(
            "lt", indexed, rumors, protectors, RngStream(seed), MAX_HOPS
        )
        outcome = CompetitiveLTModel().run(
            indexed,
            SeedSets(rumors=rumors, protectors=protectors),
            rng=RngStream(seed),
            max_hops=MAX_HOPS,
        )
        assert_bit_identical(outcome, legacy)

    @given(diffusion_instances(), st.integers(0, 200))
    @settings(max_examples=80, deadline=None)
    def test_opoao_bit_identical(self, instance, seed):
        graph, rumors, protectors = instance
        indexed = graph.to_indexed()
        legacy = legacy_run(
            "opoao", indexed, rumors, protectors, RngStream(seed), MAX_HOPS
        )
        outcome = OPOAOModel().run(
            indexed,
            SeedSets(rumors=rumors, protectors=protectors),
            rng=RngStream(seed),
            max_hops=MAX_HOPS,
        )
        assert_bit_identical(outcome, legacy)

    @given(diffusion_instances())
    @settings(max_examples=80, deadline=None)
    def test_doam_bit_identical(self, instance):
        graph, rumors, protectors = instance
        indexed = graph.to_indexed()
        legacy = legacy_run("doam", indexed, rumors, protectors, None, MAX_HOPS)
        outcome = DOAMModel().run(
            indexed,
            SeedSets(rumors=rumors, protectors=protectors),
            max_hops=MAX_HOPS,
        )
        assert_bit_identical(outcome, legacy)


MODELS = {
    "ic": lambda: CompetitiveICModel(probability=0.6),
    "lt": lambda: CompetitiveLTModel(),
    "doam": lambda: DOAMModel(),
    "opoao": lambda: OPOAOModel(),
}


@st.composite
def k3_instances(draw):
    """(graph, CascadeSet with K=3) — disjoint rumor + two campaigns."""
    graph, rumors, protectors = draw(diffusion_instances())
    n = graph.node_count
    used = set(rumors) | set(protectors)
    second = draw(st.sets(st.integers(0, n - 1), max_size=2)) - used
    rule = draw(st.sampled_from(PRIORITY_RULES))
    seeds = CascadeSet([rumors, protectors, sorted(second)], priority=rule)
    return graph, seeds


class TestThreeCascades:
    """The new K=3 surface of the per-run models."""

    @given(k3_instances(), st.sampled_from(sorted(MODELS)), st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_seeds_keep_their_cascade(self, instance, kind, seed):
        graph, seeds = instance
        outcome = MODELS[kind]().run(
            graph.to_indexed(), seeds, rng=RngStream(seed), max_hops=MAX_HOPS
        )
        for cascade, members in enumerate(seeds.cascades):
            for node in members:
                assert outcome.states[node] == cascade + 1

    @given(k3_instances(), st.sampled_from(sorted(MODELS)), st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_trace_matches_final_states(self, instance, kind, seed):
        graph, seeds = instance
        outcome = MODELS[kind]().run(
            graph.to_indexed(), seeds, rng=RngStream(seed), max_hops=MAX_HOPS
        )
        assert outcome.trace.cascade_count == 3
        counts = outcome.cascade_counts()
        for cascade in range(3):
            assert outcome.trace.series[cascade][-1] == counts[cascade]
            # Cumulative series are monotone and match the newly lists.
            running = 0
            for hop, newly in enumerate(outcome.trace.newly[cascade]):
                running += len(newly)
                assert outcome.trace.series[cascade][hop] == running

    def test_priority_rules_disagree_on_contested_node(self):
        # 0 -> 2 <- 1: the rumor (seed 0) and campaign 1 (seed 1) reach
        # node 2 on the same hop; the rule decides who claims it.
        graph = DiGraph()
        graph.add_nodes(range(3))
        graph.add_edge(0, 2)
        graph.add_edge(1, 2)
        indexed = graph.to_indexed()
        won = {}
        for rule in PRIORITY_RULES:
            seeds = CascadeSet([[0], [1], []], priority=rule)
            outcome = DOAMModel().run(indexed, seeds, max_hops=4)
            won[rule] = outcome.states[2]
        assert won["positives-first"] == 2  # campaign 1 (state 2) wins
        assert won["rumor-first"] == 1  # the rumor (state 1) wins

    def test_campaign_index_breaks_ties_between_positives(self):
        graph = DiGraph()
        graph.add_nodes(range(4))
        for tail in range(3):
            graph.add_edge(tail, 3)
        indexed = graph.to_indexed()
        seeds = CascadeSet([[0], [1], [2]], priority="positives-first")
        outcome = DOAMModel().run(indexed, seeds, max_hops=4)
        assert outcome.states[3] == 2  # campaign 1 beats campaign 2


class TestPrioritySemantics:
    def test_positives_first_order(self):
        assert priority_order("positives-first", 2) == (1, 0)
        assert priority_order("positives-first", 4) == (1, 2, 3, 0)

    def test_rumor_first_order(self):
        assert priority_order("rumor-first", 3) == (0, 1, 2)

    def test_unknown_rule_rejected(self):
        with pytest.raises(SeedError):
            priority_order("alphabetical", 2)

    def test_explicit_permutation_accepted(self):
        seeds = CascadeSet([[0], [1], [2]], priority=(2, 0, 1))
        assert seeds.priority == (2, 0, 1)

    def test_non_permutation_rejected(self):
        with pytest.raises(SeedError):
            CascadeSet([[0], [1], [2]], priority=(0, 0, 1))

    def test_overlapping_cascades_rejected(self):
        with pytest.raises(SeedError):
            CascadeSet([[0, 1], [1], [2]])

    def test_empty_rumor_rejected(self):
        with pytest.raises(SeedError):
            CascadeSet([[], [1], [2]])

    def test_single_cascade_rejected(self):
        with pytest.raises(SeedError):
            CascadeSet([[0]])

    def test_seedsets_is_the_k2_view(self):
        seeds = SeedSets(rumors=[3, 1], protectors=[2])
        assert seeds.cascade_count == 2
        assert seeds.rumors == frozenset({1, 3})
        assert seeds.protectors == frozenset({2})
        assert seeds.priority == (1, 0)  # P wins, the paper's rule

    def test_inactive_state_is_zero(self):
        assert INACTIVE == 0
