"""Unit tests for the OPOAO no-repeat ablation model."""


from repro.diffusion.base import PROTECTED, SeedSets
from repro.diffusion.opoao import OPOAOModel
from repro.diffusion.opoao_norepeat import OPOAONoRepeatModel
from repro.graph.digraph import DiGraph
from repro.rng import RngStream


def run(graph, rumors, protectors=(), rng=None, max_hops=200):
    indexed = graph.to_indexed()
    seeds = SeedSets(
        rumors=indexed.indices(rumors), protectors=indexed.indices(protectors)
    )
    outcome = OPOAONoRepeatModel().run(
        indexed, seeds, rng=rng or RngStream(1), max_hops=max_hops
    )
    return indexed, outcome


class TestMechanics:
    def test_star_center_finishes_in_exactly_leaf_count_hops(self):
        # Without repeat selection the center picks a fresh leaf per step:
        # all 7 leaves are infected after exactly 7 hops.
        star = DiGraph.from_edges([(0, i) for i in range(1, 8)])
        _, outcome = run(star, rumors=[0])
        assert outcome.infected_count == 8
        assert outcome.trace.infected.index(8) == 7

    def test_never_slower_than_plain_opoao_on_star(self):
        star = DiGraph.from_edges([(0, i) for i in range(1, 10)])
        indexed = star.to_indexed()
        seeds = SeedSets(rumors=[0])
        for seed in range(5):
            plain = OPOAOModel().run(
                indexed, seeds, rng=RngStream(seed), max_hops=500
            )
            norepeat = OPOAONoRepeatModel().run(
                indexed, seeds, rng=RngStream(seed), max_hops=500
            )
            plain_done = plain.trace.infected.index(plain.infected_count)
            norepeat_done = norepeat.trace.infected.index(norepeat.infected_count)
            assert norepeat.infected_count >= plain.infected_count
            if norepeat.infected_count == plain.infected_count:
                assert norepeat_done <= plain_done

    def test_p_priority(self):
        g = DiGraph.from_edges([("r", "m"), ("p", "m")])
        indexed, outcome = run(g, rumors=["r"], protectors=["p"])
        assert outcome.states[indexed.index("m")] == PROTECTED

    def test_progressive(self, rng):
        g = DiGraph.from_edges([(i, (i * 5 + 2) % 17) for i in range(17)])
        _, outcome = run(g, rumors=[0], rng=rng)
        series = outcome.trace.infected
        assert all(b >= a for a, b in zip(series, series[1:]))

    def test_deterministic_given_stream(self):
        g = DiGraph.from_edges([(0, i) for i in range(1, 6)])
        _, a = run(g, rumors=[0], rng=RngStream(4))
        _, b = run(g, rumors=[0], rng=RngStream(4))
        assert a.states == b.states

    def test_terminates_without_horizon_pressure(self, cycle):
        # Memory guarantees termination: every node exhausts its choices.
        _, outcome = run(cycle, rumors=[0], max_hops=10_000)
        assert outcome.trace.hops <= 2 * cycle.node_count + 2

    def test_chain_identical_to_plain_opoao(self, chain):
        indexed = chain.to_indexed()
        seeds = SeedSets(rumors=[0])
        plain = OPOAOModel().run(indexed, seeds, rng=RngStream(5), max_hops=50)
        norepeat = OPOAONoRepeatModel().run(
            indexed, seeds, rng=RngStream(5), max_hops=50
        )
        # Single out-neighbor everywhere: no repeat selection possible, so
        # the cumulative infection curves coincide.
        assert norepeat.trace.infected == plain.trace.infected
