"""Unit tests for the competitive Linear Threshold extension."""

from repro.diffusion.base import INACTIVE, INFECTED, PROTECTED, SeedSets
from repro.diffusion.lt import CompetitiveLTModel
from repro.graph.digraph import DiGraph
from repro.rng import RngStream


def run(graph, rumors, protectors=(), rng=None, max_hops=50):
    indexed = graph.to_indexed()
    seeds = SeedSets(
        rumors=indexed.indices(rumors), protectors=indexed.indices(protectors)
    )
    outcome = CompetitiveLTModel().run(
        indexed, seeds, rng=rng or RngStream(1), max_hops=max_hops
    )
    return indexed, outcome


class TestLT:
    def test_full_in_weight_always_activates(self, chain):
        # Every chain node has in-degree 1, so one active in-neighbor
        # contributes weight 1.0 >= any threshold in [0, 1).
        _, outcome = run(chain, rumors=[0])
        assert outcome.infected_count == 6

    def test_full_protected_weight_wins(self):
        # m's entire in-weight comes from protector seeds: protected.
        g = DiGraph.from_edges([("p1", "m"), ("p2", "m")])
        g.add_edge("r", "x")  # rumor elsewhere
        indexed, outcome = run(g, rumors=["r"], protectors=["p1", "p2"])
        assert outcome.states[indexed.index("m")] == PROTECTED

    def test_full_rumor_weight_infects(self):
        g = DiGraph.from_edges([("r1", "m"), ("r2", "m")])
        g.add_edge("p", "y")
        indexed, outcome = run(g, rumors=["r1", "r2"], protectors=["p"])
        assert outcome.states[indexed.index("m")] == INFECTED

    def test_simultaneous_crossing_goes_to_protector(self):
        # m has in-degree 2 (weight 1/2 each); whenever theta <= 1/2 both
        # cascades cross together and P must win — m is never infected.
        g = DiGraph.from_edges([("r", "m"), ("p", "m")])
        for seed in range(30):
            indexed, outcome = run(
                g, rumors=["r"], protectors=["p"], rng=RngStream(seed)
            )
            assert outcome.states[indexed.index("m")] != INFECTED

    def test_cascades_do_not_subsidise_each_other(self):
        # m's in-weight is half protector, half rumor. With per-cascade
        # thresholds, m activates only when theta <= 1/2 — combined weight
        # never helps the rumor. Check a theta > 1/2 realisation exists
        # where m stays inactive even though total weight is 1.0.
        g = DiGraph.from_edges([("r", "m"), ("p", "m")])
        stayed_inactive = False
        for seed in range(30):
            indexed, outcome = run(
                g, rumors=["r"], protectors=["p"], rng=RngStream(seed)
            )
            if outcome.states[indexed.index("m")] == INACTIVE:
                stayed_inactive = True
                break
        assert stayed_inactive

    def test_partial_weight_may_not_activate(self):
        # m has 10 in-neighbors, only one active: weight 0.1 rarely crosses
        # a threshold; check some stream leaves m inactive.
        g = DiGraph.from_edges([(f"x{i}", "m") for i in range(10)])
        g.add_edge("r", "x0")  # irrelevant; keeps r in the graph
        inactive_seen = False
        for seed in range(20):
            indexed, outcome = run(g, rumors=["x0"], rng=RngStream(seed))
            if outcome.states[indexed.index("m")] == INACTIVE:
                inactive_seen = True
                break
        assert inactive_seen

    def test_deterministic_given_stream(self):
        g = DiGraph.from_edges([(i, (i + 1) % 6) for i in range(6)])
        _, a = run(g, rumors=[0], protectors=[3], rng=RngStream(4))
        _, b = run(g, rumors=[0], protectors=[3], rng=RngStream(4))
        assert a.states == b.states

    def test_progressive(self, rng):
        g = DiGraph.from_edges(
            [(i, j) for i in range(6) for j in range(6) if (i + j) % 2 == 1]
        )
        _, outcome = run(g, rumors=[0], protectors=[1], rng=rng)
        for earlier, later in zip(outcome.trace.infected, outcome.trace.infected[1:]):
            assert later >= earlier
