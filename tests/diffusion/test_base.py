"""Unit tests for shared diffusion infrastructure (Section III properties)."""

import pytest

from repro.diffusion.base import INFECTED, SeedSets
from repro.diffusion.doam import DOAMModel
from repro.diffusion.opoao import OPOAOModel
from repro.diffusion.trace import HopTrace
from repro.errors import SeedError


class TestSeedSets:
    def test_disjointness_enforced(self):
        with pytest.raises(SeedError, match="disjoint"):
            SeedSets(rumors=[1, 2], protectors=[2, 3])

    def test_empty_rumors_rejected(self):
        with pytest.raises(SeedError, match="empty"):
            SeedSets(rumors=[])

    def test_empty_protectors_allowed(self):
        seeds = SeedSets(rumors=[1])
        assert seeds.protectors == frozenset()

    def test_validate_against_graph(self, diamond):
        indexed = diamond.to_indexed()
        SeedSets(rumors=[0], protectors=[1]).validate_against(indexed)
        with pytest.raises(SeedError):
            SeedSets(rumors=[99]).validate_against(indexed)
        with pytest.raises(SeedError):
            SeedSets(rumors=[-1]).validate_against(indexed)

    def test_repr(self):
        assert "|R|=2" in repr(SeedSets(rumors=[1, 2], protectors=[3]))


class TestRunTemplate:
    def test_seeds_present_at_hop_zero(self, chain):
        indexed = chain.to_indexed()
        outcome = DOAMModel().run(indexed, SeedSets(rumors=[0], protectors=[3]))
        assert outcome.trace.infected[0] == 1
        assert outcome.trace.protected[0] == 1

    def test_stochastic_model_requires_rng(self, chain):
        indexed = chain.to_indexed()
        with pytest.raises(ValueError, match="stochastic"):
            OPOAOModel().run(indexed, SeedSets(rumors=[0]))

    def test_max_hops_validated(self, chain):
        indexed = chain.to_indexed()
        with pytest.raises(Exception):
            DOAMModel().run(indexed, SeedSets(rumors=[0]), max_hops=0)

    def test_outcome_counts(self, chain):
        indexed = chain.to_indexed()
        outcome = DOAMModel().run(indexed, SeedSets(rumors=[0]))
        assert outcome.infected_count == 6
        assert outcome.protected_count == 0
        assert outcome.infected_ids() == list(range(6))
        assert outcome.state_of(0) == INFECTED


class TestHopTrace:
    def test_record_accumulates(self):
        trace = HopTrace()
        trace.record([1, 2], [3])
        trace.record([4], [])
        assert trace.infected == [2, 3]
        assert trace.protected == [1, 1]
        assert trace.hops == 2

    def test_clamped_accessors(self):
        trace = HopTrace()
        trace.record([1], [])
        assert trace.infected_at(0) == 1
        assert trace.infected_at(100) == 1
        assert trace.protected_at(100) == 0

    def test_empty_trace(self):
        trace = HopTrace()
        assert trace.infected_at(5) == 0
        assert trace.padded_infected(3) == [0, 0, 0, 0]

    def test_padded_series_length(self):
        trace = HopTrace()
        trace.record([1], [])
        assert trace.padded_infected(4) == [1, 1, 1, 1, 1]
