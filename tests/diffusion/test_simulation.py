"""Unit tests for the Monte-Carlo simulation harness."""

import pytest

from repro.diffusion.base import SeedSets
from repro.diffusion.doam import DOAMModel
from repro.diffusion.opoao import OPOAOModel
from repro.diffusion.simulation import MonteCarloSimulator
from repro.graph.digraph import DiGraph
from repro.rng import RngStream


@pytest.fixture
def star():
    return DiGraph.from_edges([(0, i) for i in range(1, 8)])


class TestSimulator:
    def test_deterministic_model_runs_once(self, chain):
        simulator = MonteCarloSimulator(DOAMModel(), runs=500)
        aggregate = simulator.simulate(
            chain.to_indexed(), SeedSets(rumors=[0])
        )
        assert aggregate.runs == 1
        assert aggregate.final_infected.mean == 6

    def test_stochastic_model_needs_rng(self, star):
        simulator = MonteCarloSimulator(OPOAOModel(), runs=5)
        with pytest.raises(ValueError):
            simulator.simulate(star.to_indexed(), SeedSets(rumors=[0]))

    def test_replica_count_honoured(self, star):
        simulator = MonteCarloSimulator(OPOAOModel(), runs=17, max_hops=5)
        aggregate = simulator.simulate(
            star.to_indexed(), SeedSets(rumors=[0]), rng=RngStream(1)
        )
        assert aggregate.runs == 17
        assert aggregate.final_infected.count == 17

    def test_reproducible_given_stream(self, star):
        indexed = star.to_indexed()
        simulator = MonteCarloSimulator(OPOAOModel(), runs=10, max_hops=8)
        a = simulator.simulate(indexed, SeedSets(rumors=[0]), rng=RngStream(5))
        b = simulator.simulate(indexed, SeedSets(rumors=[0]), rng=RngStream(5))
        assert a.infected_per_hop == b.infected_per_hop

    def test_on_outcome_callback_invoked(self, star):
        seen = []
        simulator = MonteCarloSimulator(OPOAOModel(), runs=4, max_hops=3)
        simulator.simulate(
            star.to_indexed(),
            SeedSets(rumors=[0]),
            rng=RngStream(2),
            on_outcome=seen.append,
        )
        assert len(seen) == 4

    def test_mean_between_min_max(self, star):
        simulator = MonteCarloSimulator(OPOAOModel(), runs=30, max_hops=4)
        aggregate = simulator.simulate(
            star.to_indexed(), SeedSets(rumors=[0]), rng=RngStream(3)
        )
        stats = aggregate.final_infected
        assert stats.minimum <= stats.mean <= stats.maximum

    def test_series_padded_to_horizon(self, chain):
        simulator = MonteCarloSimulator(DOAMModel(), runs=1, max_hops=20)
        aggregate = simulator.simulate(chain.to_indexed(), SeedSets(rumors=[0]))
        series = aggregate.infected_per_hop
        assert len(series) == 21
        assert series[-1] == 6.0  # held flat after termination


class TestAggregate:
    def test_per_hop_means(self, chain):
        simulator = MonteCarloSimulator(DOAMModel(), runs=1, max_hops=6)
        result = simulator.simulate(chain.to_indexed(), SeedSets(rumors=[0]))
        assert result.infected_per_hop == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 6.0]

    def test_infected_stats_at_clamps(self, chain):
        simulator = MonteCarloSimulator(DOAMModel(), runs=1, max_hops=4)
        aggregate = simulator.simulate(chain.to_indexed(), SeedSets(rumors=[0]))
        assert aggregate.infected_stats_at(999).mean == aggregate.infected_per_hop[-1]

    def test_validation(self):
        with pytest.raises(Exception):
            MonteCarloSimulator(DOAMModel(), runs=0)
