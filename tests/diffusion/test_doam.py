"""Unit tests for the DOAM model (Section III.B)."""


from repro.diffusion.base import INACTIVE, INFECTED, PROTECTED, SeedSets
from repro.diffusion.doam import DOAMModel
from repro.graph.digraph import DiGraph


def run(graph, rumors, protectors=(), max_hops=100):
    indexed = graph.to_indexed()
    seeds = SeedSets(
        rumors=indexed.indices(rumors), protectors=indexed.indices(protectors)
    )
    outcome = DOAMModel().run(indexed, seeds, max_hops=max_hops)
    return indexed, outcome


class TestSpread:
    def test_chain_infects_everything(self, chain):
        _, outcome = run(chain, rumors=[0])
        assert outcome.infected_count == 6
        # One node per hop: cumulative counts 1..6.
        assert outcome.trace.infected[:6] == [1, 2, 3, 4, 5, 6]

    def test_broadcast_one_activate_many(self):
        star = DiGraph.from_edges([(0, i) for i in range(1, 6)])
        _, outcome = run(star, rumors=[0])
        assert outcome.trace.infected == [1, 6]  # all leaves in one hop

    def test_single_chance_no_reinfluence(self):
        # 0 -> 1 -> 2 and 0 -> 2: node 2 is taken at hop 1 via the direct
        # edge; node 1's later influence must not re-activate anything.
        g = DiGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        _, outcome = run(g, rumors=[0])
        assert outcome.trace.infected == [1, 3]

    def test_unreachable_stays_inactive(self):
        g = DiGraph.from_edges([(0, 1)], nodes=[2])
        indexed, outcome = run(g, rumors=[0])
        assert outcome.states[indexed.index(2)] == INACTIVE

    def test_max_hops_truncates(self, chain):
        _, outcome = run(chain, rumors=[0], max_hops=2)
        assert outcome.infected_count == 3


class TestPriorityAndCompetition:
    def test_p_wins_simultaneous_arrival(self):
        # r -> m and p -> m arrive at the same step: P wins (property 2).
        g = DiGraph.from_edges([("r", "m"), ("p", "m")])
        indexed, outcome = run(g, rumors=["r"], protectors=["p"])
        assert outcome.states[indexed.index("m")] == PROTECTED

    def test_earlier_rumor_beats_protector(self):
        # Rumor is 1 hop from m, protector is 2 hops.
        g = DiGraph.from_edges([("r", "m"), ("p", "x"), ("x", "m")])
        indexed, outcome = run(g, rumors=["r"], protectors=["p"])
        assert outcome.states[indexed.index("m")] == INFECTED

    def test_protector_blocks_downstream(self):
        # Path r -> a -> b; protector sits adjacent to a, saving a and b.
        g = DiGraph.from_edges([("r", "a"), ("a", "b"), ("p", "a")])
        indexed, outcome = run(g, rumors=["r"], protectors=["p"])
        assert outcome.states[indexed.index("a")] == PROTECTED
        assert outcome.states[indexed.index("b")] == PROTECTED

    def test_infected_node_blocks_protector_path(self):
        # Protector's only route to t goes through m, which the rumor takes
        # first: t must end infected.
        g = DiGraph.from_edges(
            [("r", "m"), ("m", "t"), ("p", "x"), ("x", "m")]
        )
        indexed, outcome = run(g, rumors=["r"], protectors=["p"])
        assert outcome.states[indexed.index("m")] == INFECTED
        assert outcome.states[indexed.index("t")] == INFECTED


class TestDeterminismAndMonotonicity:
    def test_deterministic(self, cycle):
        _, a = run(cycle, rumors=[0], protectors=[2])
        _, b = run(cycle, rumors=[0], protectors=[2])
        assert a.states == b.states
        assert a.trace.infected == b.trace.infected

    def test_more_protectors_never_hurt(self):
        g = DiGraph.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 4), (5, 2), (6, 4), (1, 6)]
        )
        indexed = g.to_indexed()
        small = DOAMModel().run(
            indexed, SeedSets(rumors=[0], protectors=[5]), max_hops=50
        )
        large = DOAMModel().run(
            indexed, SeedSets(rumors=[0], protectors=[5, 6]), max_hops=50
        )
        protected_small = set(small.protected_ids())
        protected_large = set(large.protected_ids())
        assert protected_small <= protected_large
        assert large.infected_count <= small.infected_count

    def test_progressive_no_state_reversal(self, cycle):
        # Re-run hop by hop with growing horizons; cumulative counts must
        # be non-decreasing prefixes of each other.
        indexed = cycle.to_indexed()
        seeds = SeedSets(rumors=[0], protectors=[3])
        full = DOAMModel().run(indexed, seeds, max_hops=10)
        for horizon in range(1, 10):
            partial = DOAMModel().run(indexed, seeds, max_hops=horizon)
            assert partial.trace.infected == full.trace.infected[: partial.trace.hops]
