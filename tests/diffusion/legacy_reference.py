"""Frozen pre-refactor two-cascade engine (differential-test reference).

This module is a verbatim behavioural copy of the diffusion engine as it
existed *before* the K-cascade refactor: hard-coded rumor/protector
fronts, P-wins tie-breaking, and — critically — the exact RNG
consumption order of every stochastic model. The hypothesis suite in
``test_legacy_differential.py`` runs the refactored engine and this
reference on identical graphs/seeds/streams and requires bit-identical
states, hop series, and newly-activated lists.

Do not "improve" this file: its whole value is that it never changes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.graph.compact import IndexedDiGraph
from repro.rng import RngStream

INACTIVE = 0
INFECTED = 1
PROTECTED = 2


class LegacyTrace:
    """The pre-refactor HopTrace: two cumulative series + newly lists."""

    def __init__(self) -> None:
        self.infected: List[int] = []
        self.protected: List[int] = []
        self.newly_infected: List[List[int]] = []
        self.newly_protected: List[List[int]] = []

    def record(self, new_infected: Sequence[int], new_protected: Sequence[int]) -> None:
        previous_infected = self.infected[-1] if self.infected else 0
        previous_protected = self.protected[-1] if self.protected else 0
        self.infected.append(previous_infected + len(new_infected))
        self.protected.append(previous_protected + len(new_protected))
        self.newly_infected.append(list(new_infected))
        self.newly_protected.append(list(new_protected))


def legacy_run(
    kind: str,
    graph: IndexedDiGraph,
    rumors: Sequence[int],
    protectors: Sequence[int],
    rng: Optional[RngStream],
    max_hops: int,
    probability: Optional[float] = 0.1,
) -> Dict[str, object]:
    """One pre-refactor run; returns final states + the legacy trace."""
    rumor_set = frozenset(rumors)
    protector_set = frozenset(protectors)
    states = [INACTIVE] * graph.node_count
    for node in protector_set:  # P seeded first, exactly as before
        states[node] = PROTECTED
    for node in rumor_set:
        states[node] = INFECTED
    trace = LegacyTrace()
    trace.record(sorted(rumor_set), sorted(protector_set))
    spread = {
        "ic": _ic_spread,
        "lt": _lt_spread,
        "doam": _doam_spread,
        "opoao": _opoao_spread,
    }[kind]
    if kind == "ic":
        spread(graph, states, rumor_set, protector_set, trace, rng, max_hops, probability)
    else:
        spread(graph, states, rumor_set, protector_set, trace, rng, max_hops)
    return {"states": states, "trace": trace}


def _ic_spread(graph, states, rumors, protectors, trace, rng, max_hops, probability):
    out = graph.out
    weights = graph.out_weights

    def edge_probability(node: int, position: int) -> float:
        if probability is not None:
            return probability
        return weights[node][position]

    protected_front: List[int] = sorted(protectors)
    infected_front: List[int] = sorted(rumors)
    for _hop in range(max_hops):
        if not protected_front and not infected_front:
            break
        protected_targets: Set[int] = set()
        for node in protected_front:
            for position, neighbor in enumerate(out[node]):
                if states[neighbor] == INACTIVE and rng.random() < edge_probability(
                    node, position
                ):
                    protected_targets.add(neighbor)
        infected_targets: Set[int] = set()
        for node in infected_front:
            for position, neighbor in enumerate(out[node]):
                if (
                    states[neighbor] == INACTIVE
                    and neighbor not in protected_targets
                    and rng.random() < edge_probability(node, position)
                ):
                    infected_targets.add(neighbor)
        if not protected_targets and not infected_targets:
            break
        new_protected = sorted(protected_targets)
        new_infected = sorted(infected_targets)
        for node in new_protected:
            states[node] = PROTECTED
        for node in new_infected:
            states[node] = INFECTED
        trace.record(new_infected, new_protected)
        protected_front = new_protected
        infected_front = new_infected


def _lt_spread(graph, states, rumors, protectors, trace, rng, max_hops):
    n = graph.node_count
    thresholds = [rng.random() for _ in range(n)]
    protected_weight = [0.0] * n
    infected_weight = [0.0] * n

    def feed(front: List[int], weights: List[float]) -> Set[int]:
        touched: Set[int] = set()
        for node in front:
            for neighbor in graph.out[node]:
                if states[neighbor] != INACTIVE:
                    continue
                weights[neighbor] += 1.0 / max(1, graph.in_degree(neighbor))
                touched.add(neighbor)
        return touched

    protected_front: List[int] = sorted(protectors)
    infected_front: List[int] = sorted(rumors)
    for _hop in range(max_hops):
        if not protected_front and not infected_front:
            break
        touched = feed(protected_front, protected_weight)
        touched |= feed(infected_front, infected_weight)
        new_protected: List[int] = []
        new_infected: List[int] = []
        for node in sorted(touched):
            crosses_protected = protected_weight[node] + 1e-12 >= thresholds[node]
            crosses_infected = infected_weight[node] + 1e-12 >= thresholds[node]
            if crosses_protected:
                new_protected.append(node)
            elif crosses_infected:
                new_infected.append(node)
        if not new_protected and not new_infected:
            break
        for node in new_protected:
            states[node] = PROTECTED
        for node in new_infected:
            states[node] = INFECTED
        trace.record(new_infected, new_protected)
        protected_front = new_protected
        infected_front = new_infected


def _doam_spread(graph, states, rumors, protectors, trace, rng, max_hops):
    out = graph.out
    protected_front: List[int] = sorted(protectors)
    infected_front: List[int] = sorted(rumors)
    for _hop in range(max_hops):
        if not protected_front and not infected_front:
            break
        protected_targets: Set[int] = set()
        for node in protected_front:
            for neighbor in out[node]:
                if states[neighbor] == INACTIVE:
                    protected_targets.add(neighbor)
        infected_targets: Set[int] = set()
        for node in infected_front:
            for neighbor in out[node]:
                if states[neighbor] == INACTIVE and neighbor not in protected_targets:
                    infected_targets.add(neighbor)
        if not protected_targets and not infected_targets:
            break
        new_protected = sorted(protected_targets)
        new_infected = sorted(infected_targets)
        for node in new_protected:
            states[node] = PROTECTED
        for node in new_infected:
            states[node] = INFECTED
        trace.record(new_infected, new_protected)
        protected_front = new_protected
        infected_front = new_infected


def _opoao_spread(graph, states, rumors, protectors, trace, rng, max_hops):
    out = graph.out
    inactive_out: Dict[int, int] = {}
    live: Set[int] = set()

    def enroll(node: int) -> None:
        count = sum(1 for neighbor in out[node] if states[neighbor] == INACTIVE)
        if count > 0:
            inactive_out[node] = count
            live.add(node)

    def on_activated(node: int) -> None:
        for tail in graph.inn[node]:
            remaining = inactive_out.get(tail)
            if remaining is not None:
                if remaining == 1:
                    del inactive_out[tail]
                    live.discard(tail)
                else:
                    inactive_out[tail] = remaining - 1

    for seed in rumors | protectors:
        enroll(seed)

    for _hop in range(max_hops):
        if not live:
            break
        protected_targets: Set[int] = set()
        infected_targets: Set[int] = set()
        for node in sorted(live):
            neighbors = out[node]
            target = neighbors[rng.randrange(len(neighbors))]
            if states[target] != INACTIVE:
                continue
            if states[node] == PROTECTED:
                protected_targets.add(target)
            else:
                infected_targets.add(target)
        infected_targets -= protected_targets

        new_protected = sorted(protected_targets)
        new_infected = sorted(infected_targets)
        for node in new_protected:
            states[node] = PROTECTED
        for node in new_infected:
            states[node] = INFECTED
        for node in new_protected:
            on_activated(node)
        for node in new_infected:
            on_activated(node)
        for node in new_protected:
            enroll(node)
        for node in new_infected:
            enroll(node)
        trace.record(new_infected, new_protected)
