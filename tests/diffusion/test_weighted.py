"""Unit tests for the weighted diffusion variants."""

import pytest

from repro.diffusion.base import INFECTED, SeedSets
from repro.diffusion.ic import CompetitiveICModel
from repro.diffusion.opoao import OPOAOModel
from repro.graph.digraph import DiGraph
from repro.rng import RngStream


class TestIndexedWeights:
    def test_weights_carried_by_snapshot(self):
        g = DiGraph()
        g.add_edge(0, 1, weight=2.5)
        g.add_edge(0, 2, weight=0.5)
        indexed = g.to_indexed()
        zero = indexed.index(0)
        pairs = dict(zip(indexed.out[zero], indexed.out_weights[zero]))
        assert pairs == {indexed.index(1): 2.5, indexed.index(2): 0.5}

    def test_default_weights_are_unit(self):
        from repro.graph.compact import IndexedDiGraph

        indexed = IndexedDiGraph(["a", "b"], [[1], []], [[], [0]])
        assert indexed.out_weights == ((1.0,), ())

    def test_mismatched_weights_rejected(self):
        from repro.graph.compact import IndexedDiGraph

        with pytest.raises(ValueError):
            IndexedDiGraph(["a", "b"], [[1], []], [[], [0]], out_weights=[[1.0, 2.0], []])


class TestWeightedOpoao:
    def test_heavy_edge_dominates_first_pick(self):
        # 0 -> 1 with weight 1000, 0 -> 2 with weight 0.001: the first
        # activation is node 1 in essentially every realisation.
        g = DiGraph()
        g.add_edge(0, 1, weight=1000.0)
        g.add_edge(0, 2, weight=0.001)
        indexed = g.to_indexed()
        model = OPOAOModel(weighted=True)
        first_picks = set()
        for seed in range(20):
            outcome = model.run(
                indexed, SeedSets(rumors=[indexed.index(0)]),
                rng=RngStream(seed), max_hops=1,
            )
            first_picks.update(outcome.trace.newly_infected[1])
        assert first_picks == {indexed.index(1)}

    def test_uniform_weights_match_plain_opoao(self, chain):
        indexed = chain.to_indexed()
        seeds = SeedSets(rumors=[0])
        plain = OPOAOModel().run(indexed, seeds, rng=RngStream(3), max_hops=30)
        weighted = OPOAOModel(weighted=True).run(
            indexed, seeds, rng=RngStream(3), max_hops=30
        )
        # On a chain each node has one neighbor: identical behaviour.
        assert plain.states == weighted.states

    def test_name_reflects_variant(self):
        assert OPOAOModel().name == "OPOAO"
        assert OPOAOModel(weighted=True).name == "OPOAO-W"


class TestWeightedIC:
    def test_weight_one_edges_always_fire(self):
        g = DiGraph()
        g.add_edge(0, 1, weight=1.0)
        indexed = g.to_indexed()
        outcome = CompetitiveICModel(probability=None).run(
            indexed, SeedSets(rumors=[indexed.index(0)]), rng=RngStream(1)
        )
        assert outcome.states[indexed.index(1)] == INFECTED

    def test_near_zero_weight_rarely_fires(self):
        g = DiGraph()
        g.add_edge(0, 1, weight=1e-9)
        indexed = g.to_indexed()
        model = CompetitiveICModel(probability=None)
        fired = sum(
            model.run(
                indexed, SeedSets(rumors=[indexed.index(0)]), rng=RngStream(seed)
            ).states[indexed.index(1)]
            == INFECTED
            for seed in range(50)
        )
        assert fired == 0

    def test_out_of_range_weight_rejected(self):
        g = DiGraph()
        g.add_edge(0, 1, weight=5.0)
        indexed = g.to_indexed()
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            CompetitiveICModel(probability=None).run(
                indexed, SeedSets(rumors=[indexed.index(0)]), rng=RngStream(2)
            )

    def test_fixed_probability_ignores_weights(self):
        g = DiGraph()
        g.add_edge(0, 1, weight=1e-9)
        indexed = g.to_indexed()
        outcome = CompetitiveICModel(probability=1.0).run(
            indexed, SeedSets(rumors=[indexed.index(0)]), rng=RngStream(3)
        )
        assert outcome.states[indexed.index(1)] == INFECTED

    def test_name_reflects_variant(self):
        assert CompetitiveICModel(probability=None).name == "IC-W"
