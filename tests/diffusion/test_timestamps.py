"""Tests for the timestamp machinery — including the exact reconstruction
of the paper's Fig. 1 worked example."""

import pytest

from repro.datasets.toy import figure1_graph
from repro.diffusion.timestamps import (
    protected_by_timestamps,
    record_cascade,
)
from repro.errors import SeedError
from repro.graph.digraph import DiGraph
from repro.rng import RngStream


def scripted_chooser(schedule_per_step):
    """Build a chooser that replays ``{step: {node: target}}``."""

    def chooser(node, neighbors, step):
        return schedule_per_step.get(step, {}).get(node)

    return chooser


class TestFigure1Reconstruction:
    """Replays Fig. 1(a) and checks the preserved timestamps of Fig. 1(b)."""

    def setup_method(self):
        graph, _ = figure1_graph()
        self.indexed = graph.to_indexed()
        self.ids = {label: self.indexed.index(label) for label in "xyuvwz"}

    def run_schedule(self):
        ids = self.ids
        # Step-by-step choices exactly as narrated in Section V.A.1.
        schedule = {
            1: {ids["x"]: ids["u"], ids["y"]: ids["v"]},
            2: {ids["x"]: ids["u"], ids["y"]: ids["v"], ids["u"]: ids["w"], ids["v"]: ids["z"]},
            3: {ids["z"]: ids["u"]},
            4: {ids["u"]: ids["w"]},
        }
        return record_cascade(
            self.indexed,
            seeds=[ids["x"], ids["y"]],
            steps=4,
            chooser=scripted_chooser(schedule),
        )

    def test_edge_uw_preserved_timestamps(self):
        record = self.run_schedule()
        ids = self.ids
        stamps = record.edge_timestamps[(ids["u"], ids["w"])]
        # Fig. 1(b): "only two timestamps 2_x, 4_y are preserved on (u, w)".
        assert stamps == {ids["x"]: 2, ids["y"]: 4}

    def test_edge_xu_keeps_smallest(self):
        record = self.run_schedule()
        ids = self.ids
        stamps = record.edge_timestamps[(ids["x"], ids["u"])]
        assert stamps == {ids["x"]: 1}  # step-2 repeat does not overwrite

    def test_arrivals(self):
        record = self.run_schedule()
        ids = self.ids
        assert record.arrival[ids["u"]] == {ids["x"]: 1, ids["y"]: 3}
        assert record.arrival[ids["w"]] == {ids["x"]: 2, ids["y"]: 4}
        assert record.earliest_arrival(ids["w"]) == 2

    def test_min_in_timestamp_matches_lemma1(self):
        record = self.run_schedule()
        ids = self.ids
        w = ids["w"]
        assert record.min_in_timestamp(w, self.indexed.inn[w]) == 2


class TestRecordCascade:
    def test_requires_rng_or_chooser(self, chain):
        with pytest.raises(ValueError):
            record_cascade(chain.to_indexed(), seeds=[0], steps=3)

    def test_empty_seeds_rejected(self, chain):
        with pytest.raises(SeedError):
            record_cascade(chain.to_indexed(), seeds=[], steps=3, rng=RngStream(1))

    def test_bad_seed_rejected(self, chain):
        with pytest.raises(SeedError):
            record_cascade(chain.to_indexed(), seeds=[99], steps=3, rng=RngStream(1))

    def test_chooser_must_pick_neighbor(self, chain):
        indexed = chain.to_indexed()
        with pytest.raises(ValueError, match="not an out-neighbor"):
            record_cascade(
                indexed, seeds=[0], steps=1, chooser=lambda n, nbrs, s: 5
            )

    def test_random_run_reaches_chain_end(self, chain):
        indexed = chain.to_indexed()
        record = record_cascade(indexed, seeds=[0], steps=10, rng=RngStream(2))
        assert record.reached(5)
        assert record.arrival[5][0] == 5  # deterministic on a chain

    def test_newly_activated_waits_one_step(self):
        # A node activated at step t chooses from step t+1 (Fig. 1: u is
        # chosen at step 1 and makes its first choice at step 2).
        g = DiGraph.from_edges([(0, 1), (1, 2)])
        indexed = g.to_indexed()
        record = record_cascade(indexed, seeds=[0], steps=2, rng=RngStream(1))
        assert record.arrival[1] == {0: 1}
        assert record.arrival[2] == {0: 2}


class TestProtectedByTimestamps:
    def test_lemma2_tie_goes_to_protector(self):
        g = DiGraph.from_edges([("r", "m"), ("p", "m")])
        indexed = g.to_indexed()
        r, p, m = indexed.index("r"), indexed.index("p"), indexed.index("m")
        rumor = record_cascade(indexed, seeds=[r], steps=3, rng=RngStream(1))
        protector = record_cascade(indexed, seeds=[p], steps=3, rng=RngStream(2))
        saved = protected_by_timestamps(rumor, protector, indexed, [m])
        assert saved == {m}  # both arrive at step 1; P wins

    def test_late_protector_does_not_save(self):
        g = DiGraph.from_edges([("r", "m"), ("p", "x"), ("x", "m")])
        indexed = g.to_indexed()
        ids = {lbl: indexed.index(lbl) for lbl in "rpxm"}
        rumor = record_cascade(indexed, seeds=[ids["r"]], steps=5, rng=RngStream(1))
        protector = record_cascade(indexed, seeds=[ids["p"]], steps=5, rng=RngStream(2))
        saved = protected_by_timestamps(rumor, protector, indexed, [ids["m"]])
        assert saved == set()

    def test_unreached_by_rumor_not_counted(self):
        g = DiGraph.from_edges([("p", "m")], nodes=["r"])
        g.add_edge("r", "other")
        indexed = g.to_indexed()
        m = indexed.index("m")
        rumor = record_cascade(
            indexed, seeds=[indexed.index("r")], steps=3, rng=RngStream(1)
        )
        protector = record_cascade(
            indexed, seeds=[indexed.index("p")], steps=3, rng=RngStream(2)
        )
        saved = protected_by_timestamps(rumor, protector, indexed, [m])
        assert saved == set()  # m was never at risk
