"""Unit tests for the DOAM arrival-time fixpoint analysis."""

import math

import pytest

from repro.diffusion.arrival import doam_arrival_times, protection_slack
from repro.diffusion.base import INACTIVE, INFECTED, PROTECTED, SeedSets
from repro.diffusion.doam import DOAMModel
from repro.errors import SeedError
from repro.graph.digraph import DiGraph


class TestArrivalTimes:
    def test_chain_times(self, chain):
        t_p, t_r, status = doam_arrival_times(chain, rumors=[0])
        assert t_r == {i: float(i) for i in range(6)}
        assert all(math.isinf(v) for v in t_p.values())
        assert all(state == INFECTED for state in status.values())

    def test_tie_resolves_to_protector(self):
        g = DiGraph.from_edges([("r", "m"), ("p", "m")])
        t_p, t_r, status = doam_arrival_times(g, rumors=["r"], protectors=["p"])
        assert t_p["m"] == t_r["m"] == 1.0
        assert status["m"] == PROTECTED

    def test_blocked_protector_path(self):
        g = DiGraph.from_edges([("r", "m"), ("m", "b"), ("u", "q"), ("q", "m")])
        _, _, status = doam_arrival_times(g, rumors=["r"], protectors=["u"])
        assert status["m"] == INFECTED
        assert status["b"] == INFECTED

    def test_matches_simulator_on_fig2(self, fig2, fig2_context):
        graph, _, info = fig2
        protectors = ["v1", "R1"]
        _, _, status = doam_arrival_times(
            graph, rumors=info["rumor_seeds"], protectors=protectors
        )
        indexed = fig2_context.indexed
        outcome = DOAMModel().run(
            indexed,
            SeedSets(
                rumors=fig2_context.rumor_seed_ids(),
                protectors=indexed.indices(protectors),
            ),
            max_hops=100,
        )
        for node_id, state in enumerate(outcome.states):
            assert status[indexed.labels[node_id]] == state

    def test_unreached_nodes_inactive(self):
        g = DiGraph.from_edges([("r", "a")], nodes=["island"])
        _, _, status = doam_arrival_times(g, rumors=["r"])
        assert status["island"] == INACTIVE

    def test_validation(self, chain):
        with pytest.raises(SeedError):
            doam_arrival_times(chain, rumors=[])
        with pytest.raises(SeedError):
            doam_arrival_times(chain, rumors=[0], protectors=[0])
        with pytest.raises(SeedError):
            doam_arrival_times(chain, rumors=["ghost"])


class TestProtectionSlack:
    def test_values(self, fig2):
        graph, _, info = fig2
        slack = protection_slack(
            graph,
            rumors=info["rumor_seeds"],
            protectors=["v1", "R1"],
            targets=sorted(info["bridge_ends"]),
        )
        # v1 -> p1 arrives at 1 vs rumor at 2: slack 1. p2: 1 vs 3: slack 2.
        assert slack["p1"] == 1.0
        assert slack["p2"] == 2.0
        assert slack["p3"] == 1.0

    def test_negative_slack_for_fallen_target(self, fig2):
        graph, _, info = fig2
        slack = protection_slack(
            graph,
            rumors=info["rumor_seeds"],
            protectors=["v1"],  # p3 unprotected
            targets=["p3"],
        )
        assert slack["p3"] == -math.inf

    def test_never_at_risk_target(self):
        g = DiGraph.from_edges([("r", "a")], nodes=["island"])
        slack = protection_slack(g, ["r"], [], ["island"])
        assert slack["island"] == math.inf

    def test_unknown_target_rejected(self, fig2):
        graph, _, info = fig2
        with pytest.raises(SeedError):
            protection_slack(graph, info["rumor_seeds"], [], ["ghost"])
