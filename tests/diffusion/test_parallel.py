"""Unit tests for the parallel Monte-Carlo simulator."""

import pytest

from repro.diffusion.base import INFECTED, PROTECTED, SeedSets
from repro.diffusion.doam import DOAMModel
from repro.diffusion.opoao import OPOAOModel
from repro.diffusion.parallel import (
    ParallelMonteCarloSimulator,
    ReplicaRecord,
    record_outcome,
)
from repro.diffusion.simulation import MonteCarloSimulator, SimulationAggregate
from repro.graph.digraph import DiGraph
from repro.obs import MetricsRegistry, use_registry
from repro.rng import RngStream


@pytest.fixture
def star():
    return DiGraph.from_edges([(0, i) for i in range(1, 10)])


class TestEquivalenceWithSerial:
    def test_identical_aggregates(self, star):
        indexed = star.to_indexed()
        seeds = SeedSets(rumors=[0])
        serial = MonteCarloSimulator(OPOAOModel(), runs=12, max_hops=6).simulate(
            indexed, seeds, rng=RngStream(5)
        )
        parallel = ParallelMonteCarloSimulator(
            OPOAOModel(), runs=12, max_hops=6, processes=3
        ).simulate(indexed, seeds, rng=RngStream(5))
        assert parallel.runs == serial.runs == 12
        # Workers ship per-replica records and the parent folds them in
        # replica order, so the aggregate is bit-identical to serial —
        # exact equality, variance and Welford state included.
        assert parallel.infected_per_hop == serial.infected_per_hop
        assert parallel.protected_per_hop == serial.protected_per_hop
        assert parallel.final_infected.mean == serial.final_infected.mean
        assert parallel.final_infected.variance == serial.final_infected.variance
        assert parallel.final_infected.minimum == serial.final_infected.minimum
        assert parallel.final_infected.maximum == serial.final_infected.maximum

    def test_single_process_path(self, star):
        indexed = star.to_indexed()
        seeds = SeedSets(rumors=[0])
        parallel = ParallelMonteCarloSimulator(
            OPOAOModel(), runs=5, max_hops=4, processes=1
        ).simulate(indexed, seeds, rng=RngStream(6))
        serial = MonteCarloSimulator(OPOAOModel(), runs=5, max_hops=4).simulate(
            indexed, seeds, rng=RngStream(6)
        )
        assert parallel.infected_per_hop == serial.infected_per_hop

    def test_deterministic_model_single_run(self, chain):
        indexed = chain.to_indexed()
        aggregate = ParallelMonteCarloSimulator(
            DOAMModel(), runs=99, processes=4
        ).simulate(indexed, SeedSets(rumors=[0]))
        assert aggregate.runs == 1
        assert aggregate.final_infected.mean == 6

    def test_rng_required(self, star):
        simulator = ParallelMonteCarloSimulator(OPOAOModel(), runs=3, processes=2)
        with pytest.raises(ValueError):
            simulator.simulate(star.to_indexed(), SeedSets(rumors=[0]))


class TestSimulateDetailed:
    def test_records_match_serial_outcomes(self, star):
        indexed = star.to_indexed()
        seeds = SeedSets(rumors=[0])
        model = OPOAOModel()
        end_ids = (3, 4, 5)
        expected = []
        for replica in range(9):
            outcome = model.run(indexed, seeds, rng=RngStream(8).replica(replica), max_hops=6)
            expected.append(record_outcome(outcome, 6, end_ids))
        _, records = ParallelMonteCarloSimulator(
            model, runs=9, max_hops=6, processes=3
        ).simulate_detailed(indexed, seeds, rng=RngStream(8), end_ids=end_ids)
        assert records == expected

    def test_deterministic_model_records(self, chain):
        indexed = chain.to_indexed()
        aggregate, records = ParallelMonteCarloSimulator(
            DOAMModel(), runs=50, processes=4
        ).simulate_detailed(indexed, SeedSets(rumors=[0]), end_ids=(5,))
        assert aggregate.runs == 1
        assert len(records) == 1
        assert records[0].end_counts == (1, 0, 0)  # the chain end is infected

    def test_record_outcome_classifies_ends(self, chain):
        indexed = chain.to_indexed()
        outcome = DOAMModel().run(
            indexed, SeedSets(rumors=[0], protectors=[3]), max_hops=31
        )
        record = record_outcome(outcome, 31, (2, 4, 5))
        assert isinstance(record, ReplicaRecord)
        assert outcome.states[2] == INFECTED
        assert outcome.states[4] == PROTECTED
        assert record.end_counts == (1, 2, 0)
        assert len(record.infected_series) == 32
        assert record.final_infected == outcome.infected_count

    def test_sim_worlds_counter_matches_serial(self, star):
        indexed = star.to_indexed()
        seeds = SeedSets(rumors=[0])
        serial_registry = MetricsRegistry()
        with use_registry(serial_registry):
            MonteCarloSimulator(OPOAOModel(), runs=10, max_hops=5).simulate(
                indexed, seeds, rng=RngStream(4)
            )
        parallel_registry = MetricsRegistry()
        with use_registry(parallel_registry):
            ParallelMonteCarloSimulator(
                OPOAOModel(), runs=10, max_hops=5, processes=2
            ).simulate(indexed, seeds, rng=RngStream(4))
        # Drop timers (never deterministic) and exec.* fault-bookkeeping
        # counters (present only under the CI fault-injection leg).
        serial_counters = {
            name: value
            for name, value in serial_registry.counter_values().items()
            if not name.startswith("time.") and not name.startswith("exec.")
        }
        parallel_counters = {
            name: value
            for name, value in parallel_registry.counter_values().items()
            if not name.startswith("time.") and not name.startswith("exec.")
        }
        assert parallel_counters == serial_counters
        assert parallel_counters["sim.worlds"] == 10


class TestEvaluateProtectorsWorkers:
    def test_bit_identical_evaluation(self, star):
        from repro.algorithms.base import SelectionContext
        from repro.lcrb.evaluation import evaluate_protectors

        graph = DiGraph.from_edges(
            [(0, i) for i in range(1, 10)] + [(i, i + 10) for i in range(1, 6)]
        )
        context = SelectionContext(graph, list(range(10)), [0])
        model = OPOAOModel()
        serial = evaluate_protectors(
            context, [1, 2], model, runs=10, max_hops=6, rng=RngStream(3)
        )
        parallel = evaluate_protectors(
            context, [1, 2], model, runs=10, max_hops=6, rng=RngStream(3), workers=2
        )
        assert parallel.final_infected_samples == serial.final_infected_samples
        assert parallel.infected_per_hop == serial.infected_per_hop
        assert parallel.bridge_infected.mean == serial.bridge_infected.mean
        assert parallel.bridge_infected.variance == serial.bridge_infected.variance
        assert parallel.bridge_protected.mean == serial.bridge_protected.mean
        assert parallel.bridge_untouched.mean == serial.bridge_untouched.mean
        assert (
            parallel.protected_bridge_fraction == serial.protected_bridge_fraction
        )


class TestAggregateAddSeries:
    def test_add_series_matches_add(self, star):
        indexed = star.to_indexed()
        seeds = SeedSets(rumors=[0])
        model = OPOAOModel()
        via_add = SimulationAggregate(5)
        via_series = SimulationAggregate(5)
        for replica in range(6):
            outcome = model.run(
                indexed, seeds, rng=RngStream(11).replica(replica), max_hops=5
            )
            via_add.add(outcome)
            record = record_outcome(outcome, 5, ())
            via_series.add_series(
                record.infected_series,
                record.protected_series,
                record.final_infected,
                record.final_protected,
            )
        assert via_series.runs == via_add.runs
        assert via_series.infected_per_hop == via_add.infected_per_hop
        assert via_series.final_infected.variance == via_add.final_infected.variance

    def test_add_series_length_checked(self):
        aggregate = SimulationAggregate(4)
        with pytest.raises(ValueError):
            aggregate.add_series((1, 2), (0, 0), 2, 0)


class TestAggregateMerge:
    def test_merge_equals_combined(self, star):
        indexed = star.to_indexed()
        seeds = SeedSets(rumors=[0])
        model = OPOAOModel()
        rng = RngStream(7)
        left = SimulationAggregate(5)
        right = SimulationAggregate(5)
        both = SimulationAggregate(5)
        for replica in range(8):
            outcome = model.run(indexed, seeds, rng=rng.replica(replica), max_hops=5)
            (left if replica < 4 else right).add(outcome)
            rng_copy = rng.replica(replica)
            both.add(model.run(indexed, seeds, rng=rng_copy, max_hops=5))
        merged = left.merge(right)
        assert merged.runs == both.runs
        assert merged.infected_per_hop == pytest.approx(both.infected_per_hop)
        assert merged.final_infected.variance == pytest.approx(
            both.final_infected.variance
        )

    def test_merge_horizon_mismatch(self):
        with pytest.raises(ValueError):
            SimulationAggregate(3).merge(SimulationAggregate(4))
