"""Unit tests for the parallel Monte-Carlo simulator."""

import pytest

from repro.diffusion.base import SeedSets
from repro.diffusion.doam import DOAMModel
from repro.diffusion.opoao import OPOAOModel
from repro.diffusion.parallel import ParallelMonteCarloSimulator
from repro.diffusion.simulation import MonteCarloSimulator, SimulationAggregate
from repro.graph.digraph import DiGraph
from repro.rng import RngStream


@pytest.fixture
def star():
    return DiGraph.from_edges([(0, i) for i in range(1, 10)])


class TestEquivalenceWithSerial:
    def test_identical_aggregates(self, star):
        indexed = star.to_indexed()
        seeds = SeedSets(rumors=[0])
        serial = MonteCarloSimulator(OPOAOModel(), runs=12, max_hops=6).simulate(
            indexed, seeds, rng=RngStream(5)
        )
        parallel = ParallelMonteCarloSimulator(
            OPOAOModel(), runs=12, max_hops=6, processes=3
        ).simulate(indexed, seeds, rng=RngStream(5))
        assert parallel.runs == serial.runs == 12
        # Outcomes are bit-identical; aggregation merges in a different
        # order, so means agree to float round-off only.
        assert parallel.infected_per_hop == pytest.approx(serial.infected_per_hop)
        assert parallel.final_infected.mean == pytest.approx(
            serial.final_infected.mean
        )
        assert parallel.final_infected.minimum == serial.final_infected.minimum
        assert parallel.final_infected.maximum == serial.final_infected.maximum

    def test_single_process_path(self, star):
        indexed = star.to_indexed()
        seeds = SeedSets(rumors=[0])
        parallel = ParallelMonteCarloSimulator(
            OPOAOModel(), runs=5, max_hops=4, processes=1
        ).simulate(indexed, seeds, rng=RngStream(6))
        serial = MonteCarloSimulator(OPOAOModel(), runs=5, max_hops=4).simulate(
            indexed, seeds, rng=RngStream(6)
        )
        assert parallel.infected_per_hop == serial.infected_per_hop

    def test_deterministic_model_single_run(self, chain):
        indexed = chain.to_indexed()
        aggregate = ParallelMonteCarloSimulator(
            DOAMModel(), runs=99, processes=4
        ).simulate(indexed, SeedSets(rumors=[0]))
        assert aggregate.runs == 1
        assert aggregate.final_infected.mean == 6

    def test_rng_required(self, star):
        simulator = ParallelMonteCarloSimulator(OPOAOModel(), runs=3, processes=2)
        with pytest.raises(ValueError):
            simulator.simulate(star.to_indexed(), SeedSets(rumors=[0]))


class TestAggregateMerge:
    def test_merge_equals_combined(self, star):
        indexed = star.to_indexed()
        seeds = SeedSets(rumors=[0])
        model = OPOAOModel()
        rng = RngStream(7)
        left = SimulationAggregate(5)
        right = SimulationAggregate(5)
        both = SimulationAggregate(5)
        for replica in range(8):
            outcome = model.run(indexed, seeds, rng=rng.replica(replica), max_hops=5)
            (left if replica < 4 else right).add(outcome)
            rng_copy = rng.replica(replica)
            both.add(model.run(indexed, seeds, rng=rng_copy, max_hops=5))
        merged = left.merge(right)
        assert merged.runs == both.runs
        assert merged.infected_per_hop == pytest.approx(both.infected_per_hop)
        assert merged.final_infected.variance == pytest.approx(
            both.final_infected.variance
        )

    def test_merge_horizon_mismatch(self):
        with pytest.raises(ValueError):
            SimulationAggregate(3).merge(SimulationAggregate(4))
