"""Unit tests for LCRB problem objects (Definitions 2-3)."""

import pytest

from repro.errors import SeedError, ValidationError
from repro.lcrb.problem import LCRBDProblem, LCRBPProblem, LCRBProblem


class TestLCRBProblem:
    def test_valid_instance(self, fig2):
        graph, communities, info = fig2
        problem = LCRBProblem(graph, communities, 0, info["rumor_seeds"], alpha=0.5)
        assert problem.bridge_ends == info["bridge_ends"]
        assert problem.protection_target() == 2  # ceil(0.5 * 3)

    def test_seed_outside_community_rejected(self, fig2):
        graph, communities, _ = fig2
        with pytest.raises(SeedError):
            LCRBProblem(graph, communities, 0, ["p1"])

    def test_empty_seeds_rejected(self, fig2):
        graph, communities, _ = fig2
        with pytest.raises(SeedError):
            LCRBProblem(graph, communities, 0, [])

    def test_unknown_community_rejected(self, fig2):
        graph, communities, info = fig2
        with pytest.raises(Exception):
            LCRBProblem(graph, communities, 99, info["rumor_seeds"])

    def test_foreign_communities_rejected(self, fig2, toy):
        graph, _, info = fig2
        _, other_communities, _ = toy
        with pytest.raises(ValidationError):
            LCRBProblem(graph, other_communities, 0, info["rumor_seeds"])

    def test_context_cached(self, fig2):
        graph, communities, info = fig2
        problem = LCRBProblem(graph, communities, 0, info["rumor_seeds"])
        assert problem.context is problem.context

    def test_alpha_validated(self, fig2):
        graph, communities, info = fig2
        with pytest.raises(ValidationError):
            LCRBProblem(graph, communities, 0, info["rumor_seeds"], alpha=1.5)


class TestVariants:
    def test_lcrb_p_requires_open_interval(self, fig2):
        graph, communities, info = fig2
        LCRBPProblem(graph, communities, 0, info["rumor_seeds"], alpha=0.7)
        for bad in (0.0, 1.0):
            with pytest.raises(ValidationError):
                LCRBPProblem(graph, communities, 0, info["rumor_seeds"], alpha=bad)

    def test_lcrb_d_fixes_alpha_one(self, fig2):
        graph, communities, info = fig2
        problem = LCRBDProblem(graph, communities, 0, info["rumor_seeds"])
        assert problem.alpha == 1.0
        assert problem.protection_target() == len(info["bridge_ends"])

    def test_variant_names(self, fig2):
        graph, communities, info = fig2
        assert LCRBPProblem(graph, communities, 0, info["rumor_seeds"], alpha=0.5).variant == "LCRB-P"
        assert LCRBDProblem(graph, communities, 0, info["rumor_seeds"]).variant == "LCRB-D"
