"""Unit tests for rumor-placement strategies."""

import pytest

from repro.community.structure import CommunityStructure
from repro.errors import SeedError, ValidationError
from repro.graph.generators import planted_partition
from repro.lcrb.scenarios import PLACEMENTS, place_rumors
from repro.rng import RngStream


@pytest.fixture(scope="module")
def cover():
    graph, membership = planted_partition(
        [25, 25], 0.3, 0.03, RngStream(61), directed=True
    )
    return CommunityStructure(graph, membership)


class TestPlacements:
    @pytest.mark.parametrize("strategy", sorted(PLACEMENTS))
    def test_all_strategies_return_members(self, cover, strategy):
        seeds = place_rumors(cover, 0, 4, strategy=strategy, rng=RngStream(62))
        assert len(seeds) == 4
        assert len(set(seeds)) == 4
        assert all(cover.community_of(node) == 0 for node in seeds)

    @pytest.mark.parametrize("strategy", sorted(PLACEMENTS))
    def test_deterministic(self, cover, strategy):
        a = place_rumors(cover, 0, 3, strategy=strategy, rng=RngStream(63))
        b = place_rumors(cover, 0, 3, strategy=strategy, rng=RngStream(63))
        assert a == b

    def test_hubs_are_highest_degree(self, cover):
        seeds = place_rumors(cover, 0, 3, strategy="hubs", rng=RngStream(64))
        graph = cover.graph
        cutoff = min(graph.out_degree(node) for node in seeds)
        others = [n for n in cover.members(0) if n not in set(seeds)]
        assert all(graph.out_degree(node) <= cutoff for node in others)

    def test_boundary_members_have_escape_edges(self, cover):
        seeds = place_rumors(cover, 0, 3, strategy="boundary", rng=RngStream(65))
        graph = cover.graph
        boundary_count = sum(
            1
            for node in seeds
            if any(cover.community_of(h) != 0 for h in graph.successors(node))
        )
        assert boundary_count == len(seeds)  # planted graph has a big boundary

    def test_deep_prefers_interior(self, cover):
        graph = cover.graph
        interior = [
            node
            for node in cover.members(0)
            if all(cover.community_of(h) == 0 for h in graph.successors(node))
        ]
        if interior:
            seeds = place_rumors(
                cover, 0, min(2, len(interior)), strategy="deep", rng=RngStream(66)
            )
            assert set(seeds) <= set(interior)

    def test_unknown_strategy_rejected(self, cover):
        with pytest.raises(ValidationError):
            place_rumors(cover, 0, 2, strategy="oracle", rng=RngStream(67))

    def test_missing_rng_rejected(self, cover):
        with pytest.raises(ValidationError):
            place_rumors(cover, 0, 2)

    def test_oversized_count_rejected(self, cover):
        with pytest.raises(SeedError):
            place_rumors(cover, 0, 26, rng=RngStream(68))
