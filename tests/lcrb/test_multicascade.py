"""Tests for the K-cascade scenarios (distributed blocking, impressions).

The Monte-Carlo scenarios are checked against the module's own exact
live-edge oracles on a 7-edge graph (the oracles themselves are pinned to
an independent implementation in ``tests/kernels/
test_multicascade_oracle.py``), and the bookkeeping — per-campaign seed
validation, dedup/waste accounting, the price ratio's edge cases, and
checkpoint resumption — is exercised directly.
"""

import pytest

from repro.algorithms.base import ProtectorSelector, SelectionContext
from repro.diffusion.base import CascadeSet
from repro.diffusion.doam import DOAMModel
from repro.diffusion.ic import CompetitiveICModel
from repro.errors import CheckpointError, SeedError, ValidationError
from repro.graph.digraph import DiGraph
from repro.lcrb.multicascade import (
    CampaignSelection,
    DistributedBlockingResult,
    DistributedBlockingScenario,
    ImpressionScenario,
    dominated_count,
    exact_cascade_expectation,
    exact_dominated_expectation,
    impression_counts,
    resolve_campaign_seeds,
    _enumerate_worlds,
)
from repro.rng import RngStream


def tiny_graph() -> DiGraph:
    """7 edges — small enough for the 2^|E| oracles."""
    graph = DiGraph()
    graph.add_nodes(range(6))
    for tail, head in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (2, 4), (4, 5)]:
        graph.add_edge(tail, head)
    return graph


@pytest.fixture
def tiny_context() -> SelectionContext:
    graph = tiny_graph()
    return SelectionContext(graph, rumor_community=[0, 1], rumor_seeds=[0])


class TestResolveCampaignSeeds:
    def test_valid_labels_resolve(self, tiny_context):
        indexed = tiny_context.indexed
        resolved = resolve_campaign_seeds(indexed, [[2], [4, 5]], rumor_ids=[0])
        assert resolved == [indexed.indices([2]), indexed.indices([4, 5])]

    def test_unknown_labels_named_all_at_once(self, tiny_context):
        with pytest.raises(SeedError) as excinfo:
            resolve_campaign_seeds(
                tiny_context.indexed, [[2], ["ghost", 99, 4]], rumor_ids=[0]
            )
        message = str(excinfo.value)
        assert "campaign 2" in message
        assert "'ghost'" in message and "99" in message

    def test_rumor_overlap_rejected(self, tiny_context):
        with pytest.raises(SeedError, match="campaign 1.*rumor"):
            resolve_campaign_seeds(
                tiny_context.indexed,
                [[0, 2]],
                rumor_ids=tiny_context.rumor_seed_ids(),
            )


class TestImpressionHelpers:
    def test_counts_include_self_and_in_neighbors(self, tiny_context):
        indexed = tiny_context.indexed
        # Node 3 has in-neighbors {1, 2}; give 1 to the rumor, 2 to
        # campaign 1, and node 3 itself to campaign 2.
        states = [0] * indexed.node_count
        states[1] = 1
        states[2] = 2
        states[3] = 3
        counts = impression_counts(indexed, states, [2.0, 1.0, 5.0], node=3)
        assert counts == [2.0, 1.0, 5.0]

    def test_dominated_requires_threshold_and_majority(self, tiny_context):
        indexed = tiny_context.indexed
        # Everything rumor-held: every node with an active in-neighbor or
        # itself active is dominated.
        states = [1] * indexed.node_count
        assert dominated_count(indexed, states, [1.0, 1.0], 1.0) == 6
        # Raise the threshold past any node's impression mass: none.
        assert dominated_count(indexed, states, [1.0, 1.0], 100.0) == 0

    def test_tie_is_not_domination(self):
        graph = DiGraph()
        graph.add_nodes(range(3))
        graph.add_edge(0, 2)
        graph.add_edge(1, 2)
        indexed = graph.to_indexed()
        # Node 2 hears the rumor (from 0) and campaign 1 (from 1) at
        # equal weight — a tie, so the rumor does not dominate it.
        states = [1, 2, 0]
        assert dominated_count(indexed, states, [1.0, 1.0], 1.0) == 1  # node 0


class TestExactOracleGuards:
    def test_enumeration_rejects_large_graphs(self):
        graph = DiGraph()
        graph.add_nodes(range(22))
        for tail in range(21):
            graph.add_edge(tail, tail + 1)
        with pytest.raises(ValidationError, match="intractable"):
            list(_enumerate_worlds(graph.to_indexed(), 0.5))

    def test_world_weights_sum_to_one(self):
        indexed = tiny_graph().to_indexed()
        total = sum(weight for _mask, weight in _enumerate_worlds(indexed, 0.3))
        assert total == pytest.approx(1.0, abs=1e-12)


class TestImpressionScenario:
    def test_monte_carlo_matches_exact_oracle(self, tiny_context):
        indexed = tiny_context.indexed
        scenario = ImpressionScenario(
            CompetitiveICModel(probability=0.5),
            weights=[1.0, 1.0, 1.0],
            threshold=1.0,
            runs=600,
            max_hops=8,
        )
        result = scenario.run(tiny_context, [[2], [5]], RngStream(7))
        seeds = scenario.build_seeds(tiny_context, [[2], [5]])
        exact_dominated = exact_dominated_expectation(
            indexed, seeds, [1.0, 1.0, 1.0], 1.0, probability=0.5, max_hops=8
        )
        exact_cascades = exact_cascade_expectation(
            indexed, seeds, probability=0.5, max_hops=8
        )
        # Dominated counts live in [0, 6]: sd <= 3, 4-sigma half-width.
        bound = 4 * 3 / 600 ** 0.5
        assert abs(result.mean_dominated - exact_dominated) <= bound
        for cascade in range(3):
            assert (
                abs(result.cascade_means[cascade] - exact_cascades[cascade])
                <= bound
            )

    def test_deterministic_model_runs_once(self, tiny_context):
        scenario = ImpressionScenario(
            DOAMModel(), weights=[1.0, 1.0], runs=50, max_hops=8
        )
        result = scenario.run(tiny_context, [[2]], RngStream(7))
        assert result.runs == 1
        assert result.dominated.minimum == result.dominated.maximum

    def test_campaign_count_must_match_weights(self, tiny_context):
        scenario = ImpressionScenario(DOAMModel(), weights=[1.0, 1.0])
        with pytest.raises(ValidationError, match="campaign"):
            scenario.run(tiny_context, [[2], [5]], RngStream(7))

    def test_weights_validated(self):
        with pytest.raises(ValidationError):
            ImpressionScenario(DOAMModel(), weights=[1.0])
        with pytest.raises(ValidationError):
            ImpressionScenario(DOAMModel(), weights=[1.0, -1.0])
        with pytest.raises(ValidationError):
            ImpressionScenario(DOAMModel(), weights=[1.0, 1.0], threshold=0.0)

    def test_to_dict_is_json_ready(self, tiny_context):
        import json

        scenario = ImpressionScenario(
            CompetitiveICModel(probability=0.5), weights=[1.0, 2.0], runs=10
        )
        result = scenario.run(tiny_context, [[2]], RngStream(7))
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["runs"] == 10
        assert payload["weights"] == [1.0, 2.0]
        assert len(payload["cascade_means"]) == 2

    def checkpointed(self, runs, path, **overrides):
        options = dict(
            weights=[1.0, 1.0, 1.0],
            threshold=1.0,
            runs=runs,
            max_hops=8,
            checkpoint=path,
            checkpoint_every=4,
        )
        options.update(overrides)
        return ImpressionScenario(CompetitiveICModel(probability=0.5), **options)

    def test_resume_is_bit_identical(self, tiny_context, tmp_path):
        path = tmp_path / "imp.ckpt"
        campaigns = [[2], [5]]
        full = self.checkpointed(16, None).run(
            tiny_context, campaigns, RngStream(7)
        )
        # "Interrupt" after 8 replicas, then resume out to 16.
        self.checkpointed(8, path).run(tiny_context, campaigns, RngStream(7))
        resumed = self.checkpointed(16, path).run(
            tiny_context, campaigns, RngStream(7)
        )
        assert resumed.mean_dominated == full.mean_dominated
        assert resumed.cascade_means == full.cascade_means
        assert resumed.dominated.maximum == full.dominated.maximum

    def test_changed_configuration_refuses_to_resume(self, tiny_context, tmp_path):
        path = tmp_path / "imp.ckpt"
        campaigns = [[2], [5]]
        self.checkpointed(8, path).run(tiny_context, campaigns, RngStream(7))
        with pytest.raises(CheckpointError):
            self.checkpointed(8, path, threshold=2.0).run(
                tiny_context, campaigns, RngStream(7)
            )
        with pytest.raises(CheckpointError):
            self.checkpointed(8, path, priority="rumor-first").run(
                tiny_context, campaigns, RngStream(7)
            )


class FixedSelector(ProtectorSelector):
    """Deterministic stand-in: returns a fixed label list per campaign."""

    name = "fixed"

    def __init__(self, picks):
        self.picks = list(picks)

    def select(self, context, budget):
        return self.picks[: budget if budget is not None else None]


class TestDistributedBlocking:
    def test_dedup_charges_the_later_campaign(self, tiny_context):
        scenario = DistributedBlockingScenario(
            DOAMModel(),
            campaigns=2,
            budget=2,
            runs=4,
            max_hops=8,
            campaign_seeds=[[2, 4], [4, 5]],
        )
        result = scenario.run(tiny_context, RngStream(7))
        first, second = result.selections
        indexed = tiny_context.indexed
        assert list(first.kept) == indexed.indices([2, 4])
        assert first.wasted == 0
        # Campaign 2 duplicated node 4; only 5 survives for it.
        assert list(second.kept) == indexed.indices([5])
        assert second.wasted == 1
        assert result.wasted_budget == 1

    def test_selector_factory_drives_both_sides(self, tiny_context):
        seen = []

        def factory(campaign, rng):
            seen.append(campaign)
            return FixedSelector([[2], [4]][campaign] if campaign >= 0 else [2, 4])

        scenario = DistributedBlockingScenario(
            DOAMModel(),
            campaigns=2,
            budget=1,
            runs=4,
            max_hops=8,
            selector_factory=factory,
        )
        result = scenario.run(tiny_context, RngStream(7))
        assert seen == [0, 1, -1]  # two campaigns, then the planner
        assert result.wasted_budget == 0
        # The planner fields the same nodes here, so the race is a wash.
        assert result.price_of_noncooperation == pytest.approx(1.0)

    def test_centralized_pool_with_explicit_seeds(self, tiny_context):
        # With explicit seeds the centralized planner fields the deduped
        # union, which cannot do worse than the fragmented campaigns.
        scenario = DistributedBlockingScenario(
            CompetitiveICModel(probability=0.5),
            campaigns=2,
            budget=1,
            runs=64,
            max_hops=8,
            campaign_seeds=[[2], [2]],  # fully duplicated
        )
        result = scenario.run(tiny_context, RngStream(7))
        assert result.wasted_budget == 1
        price = result.price_of_noncooperation
        assert price is None or price >= 1.0 - 1e-9

    def test_campaign_seed_count_validated(self):
        with pytest.raises(ValidationError):
            DistributedBlockingScenario(
                DOAMModel(), campaigns=2, campaign_seeds=[[2]]
            )

    def test_price_edge_cases(self):
        selections = [CampaignSelection(1, (2,), (2,))]

        def result(distributed, centralized):
            return DistributedBlockingResult(
                selections, distributed, centralized, [], [], runs=1,
                priority=(1, 0),
            )

        assert result(3.0, 2.0).price_of_noncooperation == pytest.approx(1.5)
        assert result(0.0, 0.0).price_of_noncooperation == 1.0
        assert result(2.0, 0.0).price_of_noncooperation is None
        assert "inf" in result(2.0, 0.0).to_table()

    def test_to_dict_is_json_ready(self, tiny_context):
        import json

        scenario = DistributedBlockingScenario(
            DOAMModel(),
            campaigns=2,
            budget=1,
            runs=2,
            max_hops=8,
            campaign_seeds=[[2], [4]],
        )
        payload = json.loads(
            json.dumps(scenario.run(tiny_context, RngStream(7)).to_dict())
        )
        assert payload["wasted_budget"] == 0
        assert len(payload["campaigns"]) == 2
        assert payload["priority"] == [1, 2, 0]
