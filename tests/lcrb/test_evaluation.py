"""Unit tests for protector-set evaluation."""

import pytest

from repro.diffusion.doam import DOAMModel
from repro.diffusion.opoao import OPOAOModel
from repro.errors import SeedError
from repro.lcrb.evaluation import evaluate_protectors, resolve_seed_labels
from repro.rng import RngStream


class TestEvaluateProtectors:
    def test_full_cover_protects_everything(self, fig2_context):
        result = evaluate_protectors(
            fig2_context, ["v1", "R1"], DOAMModel(), runs=1
        )
        assert result.protected_bridge_fraction == 1.0
        assert result.bridge_infected.mean == 0.0

    def test_no_protectors_most_ends_fall(self, fig2_context):
        result = evaluate_protectors(fig2_context, [], DOAMModel(), runs=1)
        assert result.bridge_infected.mean == 3.0
        assert result.protected_bridge_fraction == 0.0

    def test_partial_cover(self, fig2_context):
        result = evaluate_protectors(fig2_context, ["v1"], DOAMModel(), runs=1)
        assert result.bridge_protected.mean == 2.0
        assert result.bridge_infected.mean == 1.0
        # Not-infected fraction (Definition 2's protection level): 2 of 3.
        assert result.protected_bridge_fraction == pytest.approx(2 / 3)

    def test_infected_series_monotone(self, fig2_context):
        result = evaluate_protectors(
            fig2_context, ["v1"], OPOAOModel(), runs=20, rng=RngStream(1)
        )
        series = result.infected_per_hop
        assert all(b >= a for a, b in zip(series, series[1:]))

    def test_protectors_reduce_infection_vs_noblocking(self, fig2_context):
        protected = evaluate_protectors(
            fig2_context, ["v1", "R1"], OPOAOModel(), runs=50, rng=RngStream(2)
        )
        unprotected = evaluate_protectors(
            fig2_context, [], OPOAOModel(), runs=50, rng=RngStream(2)
        )
        assert protected.final_infected_mean <= unprotected.final_infected_mean

    def test_bucket_counts_sum_to_total(self, fig2_context):
        result = evaluate_protectors(
            fig2_context, ["v1"], OPOAOModel(), runs=10, rng=RngStream(3)
        )
        total = (
            result.bridge_infected.mean
            + result.bridge_protected.mean
            + result.bridge_untouched.mean
        )
        assert total == pytest.approx(result.bridge_total)

    def test_protector_overlapping_rumor_rejected(self, fig2_context):
        with pytest.raises(Exception):
            evaluate_protectors(fig2_context, ["r1"], DOAMModel(), runs=1)

    def test_final_samples_collected(self, fig2_context):
        result = evaluate_protectors(
            fig2_context, ["v1"], OPOAOModel(), runs=15, rng=RngStream(5)
        )
        assert len(result.final_infected_samples) == 15
        assert sum(result.final_infected_samples) / 15 == pytest.approx(
            result.final_infected_mean
        )

    def test_compare_evaluations_resolves_clear_gap(self, fig2_context):
        from repro.lcrb.evaluation import compare_evaluations

        blocked = evaluate_protectors(
            fig2_context, ["v1", "R1", "a1"], OPOAOModel(), runs=60, rng=RngStream(6)
        )
        unblocked = evaluate_protectors(
            fig2_context, [], OPOAOModel(), runs=60, rng=RngStream(6)
        )
        verdict = compare_evaluations(blocked, unblocked, RngStream(7))
        assert verdict["observed_diff"] < 0
        assert verdict["p_left_better"] > 0.9
        assert verdict["resolved"]

    def test_compare_evaluations_identical_runs_unresolved(self, fig2_context):
        from repro.lcrb.evaluation import compare_evaluations

        a = evaluate_protectors(
            fig2_context, ["v1"], OPOAOModel(), runs=30, rng=RngStream(8)
        )
        b = evaluate_protectors(
            fig2_context, ["v1"], OPOAOModel(), runs=30, rng=RngStream(8)
        )
        verdict = compare_evaluations(a, b, RngStream(9))
        assert verdict["observed_diff"] == 0.0
        assert not verdict["resolved"]

    def test_empty_bridge_instance(self):
        from repro.algorithms.base import SelectionContext
        from repro.graph.digraph import DiGraph

        g = DiGraph.from_edges([("r", "c"), ("c", "r")])
        context = SelectionContext(g, ["r", "c"], ["r"])
        result = evaluate_protectors(context, [], DOAMModel(), runs=1)
        assert result.protected_bridge_fraction == 1.0


class TestSeedLabelValidation:
    """Unknown protector labels: one SeedError naming every offender."""

    def test_unknown_protectors_all_named(self, fig2_context):
        with pytest.raises(SeedError) as excinfo:
            evaluate_protectors(
                fig2_context,
                ["v1", "__ghost_a__", "__ghost_b__"],
                DOAMModel(),
                runs=1,
            )
        message = str(excinfo.value)
        assert "protector" in message
        assert "'__ghost_a__'" in message and "'__ghost_b__'" in message
        assert "2 of 3" in message

    def test_resolve_dedupes_preserving_order(self, fig2_context):
        indexed = fig2_context.indexed
        resolved = resolve_seed_labels(
            indexed, ["v1", "R1", "v1"], "protector"
        )
        assert resolved == indexed.indices(["v1", "R1"])

    def test_known_labels_pass_through(self, fig2_context):
        result = evaluate_protectors(
            fig2_context, ["v1", "v1"], DOAMModel(), runs=1
        )
        assert result.bridge_total == 3
