"""Unit tests for the end-to-end pipeline helpers."""

import pytest

from repro.community.structure import CommunityStructure
from repro.errors import SeedError, ValidationError
from repro.graph.generators import planted_partition
from repro.lcrb.pipeline import build_context, detect_communities, draw_rumor_seeds
from repro.rng import RngStream


@pytest.fixture
def blocks():
    graph, membership = planted_partition(
        [20, 20, 20], 0.4, 0.02, RngStream(1), directed=True
    )
    return graph, membership


class TestDetectCommunities:
    def test_cover_is_valid(self, blocks):
        graph, _ = blocks
        cover = detect_communities(graph, rng=RngStream(2))
        assert set(cover.membership()) == set(graph.nodes())


class TestDrawRumorSeeds:
    def test_draws_from_requested_community(self, blocks):
        graph, membership = blocks
        cover = CommunityStructure(graph, membership)
        seeds = draw_rumor_seeds(cover, 1, 5, RngStream(3))
        assert len(seeds) == 5
        assert all(cover.community_of(s) == 1 for s in seeds)

    def test_distinct(self, blocks):
        graph, membership = blocks
        cover = CommunityStructure(graph, membership)
        seeds = draw_rumor_seeds(cover, 0, 10, RngStream(4))
        assert len(set(seeds)) == 10

    def test_too_many_rejected(self, blocks):
        graph, membership = blocks
        cover = CommunityStructure(graph, membership)
        with pytest.raises(SeedError):
            draw_rumor_seeds(cover, 0, 21, RngStream(5))

    def test_reproducible(self, blocks):
        graph, membership = blocks
        cover = CommunityStructure(graph, membership)
        assert draw_rumor_seeds(cover, 0, 4, RngStream(6)) == draw_rumor_seeds(
            cover, 0, 4, RngStream(6)
        )


class TestBuildContext:
    def test_fully_defaulted(self, blocks):
        graph, _ = blocks
        context, cover, community_id = build_context(graph, rng=RngStream(7))
        assert community_id in cover.community_ids
        assert set(context.rumor_seeds) <= cover.members(community_id)

    def test_explicit_everything(self, blocks):
        graph, membership = blocks
        cover = CommunityStructure(graph, membership)
        context, out_cover, community_id = build_context(
            graph,
            communities=cover,
            rumor_community=2,
            rumor_seeds=[40, 41],
        )
        assert out_cover is cover
        assert community_id == 2
        assert context.rumor_seeds == (40, 41)

    def test_rumor_fraction_controls_seed_count(self, blocks):
        graph, membership = blocks
        cover = CommunityStructure(graph, membership)
        context, _, _ = build_context(
            graph,
            communities=cover,
            rumor_community=0,
            rumor_fraction=0.25,
            rng=RngStream(8),
        )
        assert len(context.rumor_seeds) == 5  # 25% of 20

    def test_foreign_communities_rejected(self, blocks, toy):
        graph, _ = blocks
        _, toy_cover, _ = toy
        with pytest.raises(ValidationError):
            build_context(graph, communities=toy_cover)


class TestMultiCommunityContext:
    def test_zone_is_union_of_seed_communities(self, blocks):
        from repro.lcrb.pipeline import build_multi_community_context

        graph, membership = blocks
        cover = CommunityStructure(graph, membership)
        # Seeds in communities 0 and 2 (nodes 0..19 and 40..59).
        context = build_multi_community_context(graph, cover, [3, 45])
        assert context.rumor_community == cover.members(0) | cover.members(2)

    def test_bridge_ends_outside_every_rumor_community(self, blocks):
        from repro.lcrb.pipeline import build_multi_community_context

        graph, membership = blocks
        cover = CommunityStructure(graph, membership)
        context = build_multi_community_context(graph, cover, [3, 45])
        for end in context.bridge_ends:
            assert cover.community_of(end) == 1  # the only non-rumor block

    def test_single_community_degenerates_to_definition2(self, blocks):
        from repro.algorithms.base import SelectionContext
        from repro.lcrb.pipeline import build_multi_community_context

        graph, membership = blocks
        cover = CommunityStructure(graph, membership)
        multi = build_multi_community_context(graph, cover, [3, 7])
        single = SelectionContext(graph, cover.members(0), [3, 7])
        assert multi.bridge_ends == single.bridge_ends

    def test_scbg_runs_on_multi_context(self, blocks):
        from repro.algorithms.heuristics import prefix_protects_all
        from repro.algorithms.scbg import SCBGSelector
        from repro.lcrb.pipeline import build_multi_community_context

        graph, membership = blocks
        cover = CommunityStructure(graph, membership)
        context = build_multi_community_context(graph, cover, [3, 45])
        cover_set = SCBGSelector().select(context)
        assert prefix_protects_all(context, cover_set)

    def test_empty_seeds_rejected(self, blocks):
        from repro.lcrb.pipeline import build_multi_community_context

        graph, membership = blocks
        cover = CommunityStructure(graph, membership)
        with pytest.raises(SeedError):
            build_multi_community_context(graph, cover, [])
