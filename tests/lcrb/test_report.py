"""Unit tests for instance diagnostics."""

import json

from repro.lcrb.report import build_instance_report, render_instance_report


class TestInstanceReport:
    def test_fig2_numbers(self, fig2_context):
        report = build_instance_report(fig2_context)
        assert report.community_size == 5
        assert report.rumor_seeds == 2
        assert report.bridge_ends == 3
        assert report.boundary_edges == 3  # a1->p1, a2->p2, a3->p3
        # Ring of 5 internal edges out of 8 community out-edges.
        assert report.internal_fraction == 5 / 8
        assert report.arrival_histogram == {2: 2, 3: 1}
        assert len(report.bbst_sizes) == 3

    def test_as_dict_json_safe(self, fig2_context):
        payload = build_instance_report(fig2_context).as_dict()
        json.dumps(payload)
        assert payload["bridge_ends"] == 3

    def test_render_contains_key_facts(self, fig2_context):
        text = render_instance_report(build_instance_report(fig2_context))
        assert "|B|=3" in text
        assert "t_R" in text
        assert "BBST sizes" in text

    def test_cover_assessment_full_cover(self, fig2_context):
        from repro.lcrb.report import render_cover_assessment

        text = render_cover_assessment(fig2_context, ["v1", "R1"])
        assert "0 falling" in text
        assert "slack" in text

    def test_cover_assessment_partial_cover(self, fig2_context):
        from repro.lcrb.report import render_cover_assessment

        text = render_cover_assessment(fig2_context, ["v1"])
        assert "1 falling" in text
        assert "p3" in text

    def test_cover_assessment_no_bridge_ends(self):
        from repro.algorithms.base import SelectionContext
        from repro.graph.digraph import DiGraph
        from repro.lcrb.report import render_cover_assessment

        g = DiGraph.from_edges([("r", "c"), ("c", "r")])
        context = SelectionContext(g, ["r", "c"], ["r"])
        assert "nothing to assess" in render_cover_assessment(context, [])

    def test_no_bridge_ends_instance(self):
        from repro.algorithms.base import SelectionContext
        from repro.graph.digraph import DiGraph

        g = DiGraph.from_edges([("r", "c"), ("c", "r")])
        context = SelectionContext(g, ["r", "c"], ["r"])
        report = build_instance_report(context)
        assert report.bridge_ends == 0
        assert report.bbst_sizes == []
        text = render_instance_report(report)
        assert "|B|=0" in text
