"""Unit tests for the Monte-Carlo greedy selector and σ estimator."""

import pytest

from repro.algorithms.base import SelectionContext
from repro.algorithms.greedy import GreedySelector, SigmaEstimator, candidate_pool
from repro.diffusion.doam import DOAMModel
from repro.errors import SelectionError
from repro.graph.digraph import DiGraph
from repro.rng import RngStream


class TestCandidatePool:
    def test_bbst_pool_contains_known_savers(self, fig2_context):
        pool = candidate_pool(fig2_context, "bbst")
        assert "v1" in pool and "R1" in pool
        assert not set(pool) & set(fig2_context.rumor_seeds)

    def test_all_pool_is_every_eligible_node(self, fig2_context):
        pool = candidate_pool(fig2_context, "all")
        expected = {
            node
            for node in fig2_context.graph.nodes()
            if node not in fig2_context.rumor_seeds
        }
        assert set(pool) == expected

    def test_unknown_pool_rejected(self, fig2_context):
        with pytest.raises(SelectionError):
            candidate_pool(fig2_context, "everything")


class TestSigmaEstimator:
    def make(self, context, runs=20):
        return SigmaEstimator(context, runs=runs, rng=RngStream(11))

    def test_sigma_empty_set_is_zero(self, fig2_context):
        estimator = self.make(fig2_context)
        assert estimator.sigma([]) == 0.0

    def test_sigma_nonnegative_and_bounded(self, fig2_context):
        estimator = self.make(fig2_context)
        value = estimator.sigma(["v1"])
        assert 0.0 <= value <= len(fig2_context.bridge_ends)

    def test_sigma_monotone_on_supersets(self, fig2_context):
        estimator = self.make(fig2_context, runs=40)
        small = estimator.sigma(["v1"])
        large = estimator.sigma(["v1", "R1"])
        assert large >= small

    def test_deterministic_function_of_set(self, fig2_context):
        estimator = self.make(fig2_context)
        assert estimator.sigma(["v1"]) == estimator.sigma(["v1"])

    def test_protector_overlapping_rumor_rejected(self, fig2_context):
        estimator = self.make(fig2_context)
        with pytest.raises(SelectionError):
            estimator.sigma(["r1"])

    def test_protected_fraction_increases_with_protectors(self, fig2_context):
        estimator = self.make(fig2_context, runs=40)
        base = estimator.protected_fraction([])
        protected = estimator.protected_fraction(["v1", "R1"])
        assert protected >= base

    def test_doam_sigma_exact(self, fig2_context):
        # Under deterministic DOAM the estimator needs no averaging: v1
        # saves exactly p1 and p2.
        estimator = SigmaEstimator(
            fig2_context, model=DOAMModel(), runs=1, rng=RngStream(1)
        )
        assert estimator.sigma(["v1"]) == 2.0
        assert estimator.sigma(["v1", "R1"]) == 3.0

    def test_submodularity_spot_check_doam(self, fig2_context):
        # σ(X ∪ {v}) - σ(X) >= σ(Y ∪ {v}) - σ(Y) for X ⊆ Y (DOAM: exact).
        estimator = SigmaEstimator(
            fig2_context, model=DOAMModel(), runs=1, rng=RngStream(1)
        )
        x_gain = estimator.sigma(["v1"]) - estimator.sigma([])
        y_gain = estimator.sigma(["p1", "v1"]) - estimator.sigma(["p1"])
        assert x_gain >= y_gain


class TestGreedySelector:
    def test_budget_mode_returns_exact_count(self, fig2_context):
        selector = GreedySelector(runs=10, rng=RngStream(2))
        picks = selector.select(fig2_context, budget=2)
        assert len(picks) == 2
        assert len(set(picks)) == 2

    def test_budget_zero(self, fig2_context):
        selector = GreedySelector(runs=5, rng=RngStream(2))
        assert selector.select(fig2_context, budget=0) == []

    def test_alpha_mode_reaches_target(self, fig2_context):
        selector = GreedySelector(alpha=0.6, runs=20, rng=RngStream(3))
        picks = selector.select(fig2_context)
        estimator = selector.make_estimator(fig2_context)
        assert estimator.protected_fraction(picks) >= 0.6

    def test_deterministic_given_stream(self, fig2_context):
        a = GreedySelector(runs=10, rng=RngStream(4)).select(fig2_context, budget=2)
        b = GreedySelector(runs=10, rng=RngStream(4)).select(fig2_context, budget=2)
        assert a == b

    def test_doam_greedy_finds_optimal_cover_value(self, fig2_context):
        # With DOAM σ is exact; two greedy picks must save all 3 ends.
        selector = GreedySelector(model=DOAMModel(), runs=1, rng=RngStream(5))
        picks = selector.select(fig2_context, budget=2)
        estimator = selector.make_estimator(fig2_context)
        assert estimator.sigma(picks) == 3.0

    def test_max_candidates_cap(self, fig2_context):
        selector = GreedySelector(runs=5, max_candidates=3, rng=RngStream(6))
        assert len(selector.candidates(fig2_context)) == 3

    def test_empty_bridge_ends_returns_empty(self):
        g = DiGraph.from_edges([("r", "c"), ("c", "r")])
        context = SelectionContext(g, ["r", "c"], ["r"])
        selector = GreedySelector(runs=5, rng=RngStream(7))
        assert selector.select(context, budget=3) == []
