"""Unit tests for the Greedy Viral Stopper comparator."""

import pytest

from repro.algorithms.gvs import GreedyViralStopper, InfectionEstimator
from repro.diffusion.opoao import OPOAOModel
from repro.errors import SelectionError
from repro.rng import RngStream


class TestInfectionEstimator:
    def test_doam_baseline_exact(self, fig2_context):
        estimator = InfectionEstimator(fig2_context, rng=RngStream(1))
        baseline = estimator.expected_infections([])
        # DOAM from {r1, r2} floods the whole 14-node graph except v1
        # (nothing points to it; R1 is reached via p3 -> s1 -> s2 -> R1).
        assert baseline == 13.0

    def test_protectors_reduce_infections(self, fig2_context):
        estimator = InfectionEstimator(fig2_context, rng=RngStream(2))
        assert estimator.expected_infections(["v1", "R1"]) < (
            estimator.expected_infections([])
        )

    def test_deterministic_for_stochastic_model(self, fig2_context):
        estimator = InfectionEstimator(
            fig2_context, model=OPOAOModel(), runs=10, rng=RngStream(3)
        )
        a = estimator.expected_infections(["v1"])
        b = estimator.expected_infections(["v1"])
        assert a == b

    def test_rumor_overlap_rejected(self, fig2_context):
        estimator = InfectionEstimator(fig2_context, rng=RngStream(4))
        with pytest.raises(SelectionError):
            estimator.expected_infections(["r1"])


class TestGreedyViralStopper:
    def test_budget_mode(self, fig2_context):
        selector = GreedyViralStopper(runs=1, rng=RngStream(5))
        picks = selector.select(fig2_context, budget=2)
        assert len(picks) == 2
        assert selector.last_evaluations > 0

    def test_budget_zero(self, fig2_context):
        assert GreedyViralStopper(rng=RngStream(6)).select(fig2_context, budget=0) == []

    def test_beta_mode_reaches_target(self, fig2_context):
        selector = GreedyViralStopper(beta=0.7, runs=1, rng=RngStream(7))
        picks = selector.select(fig2_context)
        estimator = InfectionEstimator(fig2_context, rng=RngStream(7))
        baseline = estimator.expected_infections([])
        assert estimator.expected_infections(picks) <= 0.7 * baseline

    def test_picks_reduce_infections_monotonically(self, fig2_context):
        selector = GreedyViralStopper(runs=1, rng=RngStream(8))
        picks = selector.select(fig2_context, budget=3)
        estimator = InfectionEstimator(fig2_context, rng=RngStream(8))
        values = [
            estimator.expected_infections(picks[:k]) for k in range(len(picks) + 1)
        ]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_objective_differs_from_bridge_end_greedy(self, fig2_context):
        # GVS optimises total infections; its first pick blocks the rumor
        # community flood, which a bridge-end objective has no reason to do.
        selector = GreedyViralStopper(runs=1, rng=RngStream(9))
        (first,) = selector.select(fig2_context, budget=1)
        estimator = InfectionEstimator(fig2_context, rng=RngStream(9))
        gain = estimator.expected_infections([]) - estimator.expected_infections(
            [first]
        )
        assert gain >= 3  # must save more than the 3 bridge ends alone
