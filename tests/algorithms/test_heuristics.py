"""Unit tests for the MaxDegree / Proximity / Random heuristics."""

import pytest

from repro.algorithms.base import SelectionContext
from repro.algorithms.heuristics import (
    MaxDegreeSelector,
    ProximitySelector,
    RandomSelector,
    minimal_covering_prefix,
    prefix_protects_all,
)
from repro.errors import CoverageError, SelectionError, ValidationError
from repro.graph.digraph import DiGraph
from repro.rng import RngStream


class TestMaxDegree:
    def test_ranks_by_out_degree(self, fig2_context):
        picks = MaxDegreeSelector().select(fig2_context, budget=1)
        graph = fig2_context.graph
        best = picks[0]
        best_degree = graph.out_degree(best)
        for node in graph.nodes():
            if fig2_context.eligible(node):
                assert graph.out_degree(node) <= best_degree

    def test_budget_respected(self, fig2_context):
        assert len(MaxDegreeSelector().select(fig2_context, budget=3)) == 3

    def test_rumor_seeds_excluded(self, fig2_context):
        picks = MaxDegreeSelector().select(fig2_context, budget=100)
        assert not set(picks) & set(fig2_context.rumor_seeds)

    def test_direction_variants(self, fig2_context):
        for direction in ("out", "in", "total"):
            picks = MaxDegreeSelector(direction=direction).select(
                fig2_context, budget=2
            )
            assert len(picks) == 2

    def test_bad_direction_rejected(self):
        with pytest.raises(SelectionError):
            MaxDegreeSelector(direction="up")

    def test_negative_budget_rejected(self, fig2_context):
        with pytest.raises(ValidationError):
            MaxDegreeSelector().select(fig2_context, budget=-1)

    def test_full_solution_protects_all(self, fig2_context):
        solution = MaxDegreeSelector().select(fig2_context)
        assert prefix_protects_all(fig2_context, solution)

    def test_full_solution_is_minimal_prefix(self, fig2_context):
        solution = MaxDegreeSelector().select(fig2_context)
        if len(solution) > 1:
            assert not prefix_protects_all(fig2_context, solution[:-1])


class TestProximity:
    def test_budget_draws_from_first_ring_first(self, fig2_context):
        graph = fig2_context.graph
        first_ring = set()
        for seed in fig2_context.rumor_seeds:
            first_ring |= set(graph.successors(seed))
        first_ring -= set(fig2_context.rumor_seeds)
        picks = ProximitySelector(rng=RngStream(1)).select(
            fig2_context, budget=len(first_ring)
        )
        assert set(picks) <= first_ring

    def test_pool_extends_beyond_first_ring(self, fig2_context):
        picks = ProximitySelector(rng=RngStream(1)).select(fig2_context, budget=8)
        assert len(picks) == 8  # first ring has only 2 nodes (a1, a3)

    def test_randomised_but_reproducible(self, fig2_context):
        a = ProximitySelector(rng=RngStream(3)).select(fig2_context, budget=4)
        b = ProximitySelector(rng=RngStream(3)).select(fig2_context, budget=4)
        assert a == b

    def test_full_solution_protects_all(self, fig2_context):
        solution = ProximitySelector(rng=RngStream(2)).select(fig2_context)
        assert prefix_protects_all(fig2_context, solution)


class TestRandom:
    def test_budget_and_eligibility(self, fig2_context):
        picks = RandomSelector(rng=RngStream(4)).select(fig2_context, budget=5)
        assert len(picks) == 5
        assert not set(picks) & set(fig2_context.rumor_seeds)

    def test_full_solution_protects_all(self, fig2_context):
        solution = RandomSelector(rng=RngStream(5)).select(fig2_context)
        assert prefix_protects_all(fig2_context, solution)


class TestKCore:
    def test_budget_and_eligibility(self, fig2_context):
        from repro.algorithms.heuristics import KCoreSelector

        picks = KCoreSelector().select(fig2_context, budget=4)
        assert len(picks) == 4
        assert not set(picks) & set(fig2_context.rumor_seeds)

    def test_full_solution_protects_all(self, fig2_context):
        from repro.algorithms.heuristics import KCoreSelector

        solution = KCoreSelector().select(fig2_context)
        assert prefix_protects_all(fig2_context, solution)

    def test_ranks_by_core_number(self, fig2_context):
        from repro.algorithms.heuristics import KCoreSelector
        from repro.graph.kcore import core_numbers

        picks = KCoreSelector().select(fig2_context, budget=1)
        cores = core_numbers(fig2_context.graph)
        best = cores[picks[0]]
        for node in fig2_context.graph.nodes():
            if fig2_context.eligible(node):
                assert cores[node] <= best

    def test_deterministic(self, fig2_context):
        from repro.algorithms.heuristics import KCoreSelector

        assert KCoreSelector().select(fig2_context, budget=3) == KCoreSelector().select(
            fig2_context, budget=3
        )


class TestCoveringPrefix:
    def test_empty_bridge_ends_need_nothing(self):
        g = DiGraph.from_edges([("r", "c"), ("c", "r")])
        context = SelectionContext(g, ["r", "c"], ["r"])
        assert context.bridge_ends == frozenset()
        assert minimal_covering_prefix(context, ["c"]) == []

    def test_infeasible_candidates_raise(self, fig2_context):
        # q2 alone cannot protect the bridge ends.
        with pytest.raises(CoverageError):
            minimal_covering_prefix(fig2_context, ["q2"])

    def test_prefix_is_minimal(self, fig2_context):
        # Candidates ordered bad-first: the minimal prefix must still end
        # at the earliest feasible cut.
        candidates = ["q2", "v1", "R1", "s1"]
        prefix = minimal_covering_prefix(fig2_context, candidates)
        assert prefix == ["q2", "v1", "R1"]

    def test_monotonicity_assumption_holds_here(self, fig2_context):
        # Feasibility as a function of prefix length is a step function.
        candidates = ["q2", "v1", "R1", "s1"]
        feasible = [
            prefix_protects_all(fig2_context, candidates[:k])
            for k in range(len(candidates) + 1)
        ]
        assert feasible == sorted(feasible)  # False... then True...
