"""Unit tests for PageRank and the PageRank selector."""

import pytest

from repro.algorithms.pagerank import PageRankSelector, pagerank
from repro.graph.digraph import DiGraph


class TestPageRank:
    def test_scores_sum_to_one(self, diamond):
        scores = pagerank(diamond)
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_empty_graph(self):
        assert pagerank(DiGraph()) == {}

    def test_sink_receives_most_mass_in_funnel(self, diamond):
        scores = pagerank(diamond)
        assert scores["t"] == max(scores.values())

    def test_symmetric_cycle_uniform(self, cycle):
        scores = pagerank(cycle)
        values = list(scores.values())
        assert max(values) - min(values) < 1e-9

    def test_dangling_mass_redistributed(self):
        g = DiGraph.from_edges([(0, 1)])  # node 1 dangles
        scores = pagerank(g)
        assert sum(scores.values()) == pytest.approx(1.0)
        assert scores[1] > scores[0]

    def test_damping_zero_is_uniform(self, diamond):
        scores = pagerank(diamond, damping=0.0)
        assert all(v == pytest.approx(0.25) for v in scores.values())

    def test_validation(self, diamond):
        with pytest.raises(Exception):
            pagerank(diamond, damping=2.0)


class TestPageRankSelector:
    def test_budget_and_eligibility(self, fig2_context):
        picks = PageRankSelector().select(fig2_context, budget=3)
        assert len(picks) == 3
        assert not set(picks) & set(fig2_context.rumor_seeds)

    def test_full_solution_protects_all(self, fig2_context):
        from repro.algorithms.heuristics import prefix_protects_all

        solution = PageRankSelector().select(fig2_context)
        assert prefix_protects_all(fig2_context, solution)

    def test_deterministic(self, fig2_context):
        assert PageRankSelector().select(fig2_context, budget=2) == PageRankSelector().select(
            fig2_context, budget=2
        )
