"""Unit tests for the sketch-greedy (RIS) protector selector."""

import pytest

from repro.algorithms.base import SelectionContext
from repro.algorithms.ris_greedy import RISGreedySelector
from repro.algorithms.scbg import SCBGSelector
from repro.diffusion.doam import DOAMModel
from repro.errors import ValidationError
from repro.lcrb import evaluate_protectors
from repro.rng import RngStream


class TestDOAMSelection:
    def test_full_cover_matches_optimal_size(self, fig2_context, fig2):
        _, _, info = fig2
        selector = RISGreedySelector(semantics="doam", alpha=1.0)
        protectors = selector.select(fig2_context, budget=None)
        assert len(protectors) == info["optimal_size"]
        # The chosen set must actually save every bridge end under DOAM.
        report = evaluate_protectors(fig2_context, protectors, DOAMModel())
        assert report.protected_bridge_fraction == 1.0

    def test_budget_is_honored(self, fig2_context):
        selector = RISGreedySelector(semantics="doam")
        assert len(selector.select(fig2_context, budget=1)) == 1
        assert selector.select(fig2_context, budget=0) == []

    def test_budget_one_picks_max_coverage_node(self, fig2_context):
        # a1 and v1 both cover {p1, p2}; the node-id tie-break prefers a1
        # (inserted first), and nothing covers all three ends alone.
        selector = RISGreedySelector(semantics="doam")
        assert selector.select(fig2_context, budget=1) == ["a1"]

    def test_never_selects_rumor_seeds(self, fig2_context, fig2):
        _, _, info = fig2
        selector = RISGreedySelector(semantics="doam", alpha=1.0)
        picked = selector.select(fig2_context, budget=None)
        assert not set(picked) & set(info["rumor_seeds"])

    def test_short_set_when_sketches_exhaust_budget(self, toy_context):
        # One bridge end: a single node covers everything; asking for 5
        # protectors returns the useful prefix only.
        selector = RISGreedySelector(semantics="doam")
        picked = selector.select(toy_context, budget=5)
        assert 1 <= len(picked) <= 2

    def test_saves_as_much_as_scbg_on_toy(self, toy_context):
        ris = RISGreedySelector(semantics="doam", alpha=1.0)
        scbg = SCBGSelector()
        ris_report = evaluate_protectors(
            toy_context, ris.select(toy_context), DOAMModel()
        )
        scbg_report = evaluate_protectors(
            toy_context, scbg.select(toy_context), DOAMModel()
        )
        assert (
            ris_report.protected_bridge_fraction
            >= scbg_report.protected_bridge_fraction
        )

    def test_last_worlds_is_one_for_deterministic(self, fig2_context):
        selector = RISGreedySelector(semantics="doam")
        selector.select(fig2_context, budget=1)
        assert selector.last_worlds == 1


class TestOPOAOSelection:
    def test_deterministic_under_fixed_seed(self, fig2_context):
        def pick():
            return RISGreedySelector(
                semantics="opoao", initial_worlds=32, rng=RngStream(21)
            ).select(fig2_context, budget=2)
        assert pick() == pick()

    def test_budget_mode_returns_requested_size(self, fig2_context):
        selector = RISGreedySelector(
            semantics="opoao", initial_worlds=32, rng=RngStream(21)
        )
        assert len(selector.select(fig2_context, budget=2)) == 2

    def test_adaptive_growth_capped(self, fig2_context):
        selector = RISGreedySelector(
            semantics="opoao",
            epsilon=0.01,  # unreachable at this cap: forces doubling
            initial_worlds=8,
            max_worlds=64,
            rng=RngStream(4),
        )
        selector.select(fig2_context, budget=1)
        assert 8 < selector.last_worlds <= 64


class TestStoreCache:
    def test_store_reused_across_calls(self, fig2_context):
        selector = RISGreedySelector(semantics="doam")
        first = selector.make_store(fig2_context)
        selector.select(fig2_context, budget=1)
        selector.select(fig2_context, budget=2)
        assert selector.make_store(fig2_context) is first

    def test_distinct_contexts_get_distinct_stores(self, fig2, toy):
        graph_a, communities_a, info_a = fig2
        graph_b, communities_b, info_b = toy
        ctx_a = SelectionContext(
            graph_a,
            communities_a.members(info_a["rumor_community"]),
            info_a["rumor_seeds"],
        )
        ctx_b = SelectionContext(
            graph_b,
            communities_b.members(info_b["rumor_community"]),
            info_b["rumor_seeds"],
        )
        selector = RISGreedySelector(semantics="doam")
        assert selector.make_store(ctx_a) is not selector.make_store(ctx_b)


class TestValidation:
    def test_rejects_bad_constructor_args(self):
        with pytest.raises(ValidationError):
            RISGreedySelector(epsilon=0.0)
        with pytest.raises(ValidationError):
            RISGreedySelector(delta=2.0)
        with pytest.raises(ValidationError):
            RISGreedySelector(initial_worlds=0)

    def test_rejects_negative_budget(self, fig2_context):
        with pytest.raises(ValidationError):
            RISGreedySelector(semantics="doam").select(fig2_context, budget=-1)
