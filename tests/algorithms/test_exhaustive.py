"""Unit tests for the exact LCRB-D solver."""

import pytest

from repro.algorithms.exhaustive import (
    exact_approximation_ratio,
    optimal_protector_set,
)
from repro.algorithms.heuristics import prefix_protects_all
from repro.errors import ValidationError


class TestOptimalProtectorSet:
    def test_fig2_optimum_is_two(self, fig2, fig2_context):
        _, _, info = fig2
        optimum = optimal_protector_set(fig2_context)
        assert len(optimum) == info["optimal_size"]
        assert prefix_protects_all(fig2_context, optimum)

    def test_toy_optimum_is_one(self, toy_context):
        optimum = optimal_protector_set(toy_context)
        assert len(optimum) == 1

    def test_no_bridge_ends_empty_optimum(self):
        from repro.algorithms.base import SelectionContext
        from repro.graph.digraph import DiGraph

        g = DiGraph.from_edges([("r", "c"), ("c", "r")])
        context = SelectionContext(g, ["r", "c"], ["r"])
        assert optimal_protector_set(context) == []

    def test_deterministic(self, fig2_context):
        assert optimal_protector_set(fig2_context) == optimal_protector_set(
            fig2_context
        )

    def test_explicit_candidates_respected(self, fig2_context):
        optimum = optimal_protector_set(
            fig2_context, candidates=["v1", "R1", "q1"], max_size=3
        )
        assert set(optimum) <= {"v1", "R1", "q1"}
        assert prefix_protects_all(fig2_context, optimum)

    def test_budget_guard(self, fig2_context, monkeypatch):
        import repro.algorithms.exhaustive as exhaustive

        monkeypatch.setattr(exhaustive, "_MAX_CHECKS", 2)
        with pytest.raises(ValidationError, match="budget"):
            optimal_protector_set(fig2_context, max_size=3)


class TestApproximationRatio:
    def test_ratio_at_least_one(self, fig2_context):
        ratio = exact_approximation_ratio(fig2_context)
        assert ratio >= 1.0

    def test_fig2_scbg_is_optimal(self, fig2_context):
        assert exact_approximation_ratio(fig2_context) == 1.0
