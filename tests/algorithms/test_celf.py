"""Unit tests for the CELF lazy greedy selector."""


from repro.algorithms.celf import CELFGreedySelector
from repro.algorithms.greedy import GreedySelector
from repro.diffusion.doam import DOAMModel
from repro.rng import RngStream


class TestCelfMatchesGreedy:
    def test_same_output_as_exhaustive_greedy_opoao(self, fig2_context):
        greedy = GreedySelector(runs=15, rng=RngStream(8))
        celf = CELFGreedySelector(runs=15, rng=RngStream(8))
        assert greedy.select(fig2_context, budget=3) == celf.select(
            fig2_context, budget=3
        )

    def test_same_output_under_doam(self, fig2_context):
        greedy = GreedySelector(model=DOAMModel(), runs=1, rng=RngStream(9))
        celf = CELFGreedySelector(model=DOAMModel(), runs=1, rng=RngStream(9))
        assert greedy.select(fig2_context, budget=2) == celf.select(
            fig2_context, budget=2
        )

    def test_fewer_evaluations_than_exhaustive(self, fig2_context):
        greedy = GreedySelector(model=DOAMModel(), runs=1, rng=RngStream(10))
        celf = CELFGreedySelector(model=DOAMModel(), runs=1, rng=RngStream(10))
        g_picks = greedy.select(fig2_context, budget=3)
        c_picks = celf.select(fig2_context, budget=3)
        assert g_picks == c_picks
        assert celf.last_evaluations < greedy.last_evaluations


class TestCelfBehaviour:
    def test_budget_zero(self, fig2_context):
        celf = CELFGreedySelector(runs=5, rng=RngStream(11))
        assert celf.select(fig2_context, budget=0) == []

    def test_alpha_mode(self, fig2_context):
        celf = CELFGreedySelector(alpha=0.6, runs=20, rng=RngStream(12))
        picks = celf.select(fig2_context)
        estimator = celf.make_estimator(fig2_context)
        assert estimator.protected_fraction(picks) >= 0.6

    def test_deterministic(self, fig2_context):
        a = CELFGreedySelector(runs=10, rng=RngStream(13)).select(
            fig2_context, budget=2
        )
        b = CELFGreedySelector(runs=10, rng=RngStream(13)).select(
            fig2_context, budget=2
        )
        assert a == b

    def test_no_duplicate_picks(self, fig2_context):
        picks = CELFGreedySelector(runs=10, rng=RngStream(14)).select(
            fig2_context, budget=4
        )
        assert len(picks) == len(set(picks))
