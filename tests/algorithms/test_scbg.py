"""Unit tests for the SCBG algorithm (Algorithm 3)."""

import pytest

from repro.algorithms.heuristics import prefix_protects_all
from repro.algorithms.scbg import SCBGSelector
from repro.errors import SelectionError


class TestScbgOnFig2:
    def test_cover_protects_all_bridge_ends(self, fig2_context):
        cover = SCBGSelector().select(fig2_context)
        assert prefix_protects_all(fig2_context, cover)

    def test_cover_is_minimum_size(self, fig2, fig2_context):
        _, _, info = fig2
        cover = SCBGSelector().select(fig2_context)
        assert len(cover) == info["optimal_size"]

    def test_cover_excludes_rumor_seeds(self, fig2_context):
        cover = SCBGSelector().select(fig2_context)
        assert not set(cover) & set(fig2_context.rumor_seeds)

    def test_budget_truncates(self, fig2_context):
        cover = SCBGSelector().select(fig2_context, budget=1)
        assert len(cover) == 1

    def test_deterministic(self, fig2_context):
        assert SCBGSelector().select(fig2_context) == SCBGSelector().select(
            fig2_context
        )

    def test_exact_coverage_variant(self, fig2_context):
        cover = SCBGSelector(coverage="exact").select(fig2_context)
        assert prefix_protects_all(fig2_context, cover)

    def test_bad_coverage_mode_rejected(self):
        with pytest.raises(SelectionError):
            SCBGSelector(coverage="magic")


class TestScbgOnToy:
    def test_single_bridge_end_single_protector(self, toy_context):
        cover = SCBGSelector().select(toy_context)
        assert len(cover) == 1
        assert prefix_protects_all(toy_context, cover)

    def test_empty_bridge_ends(self):
        from repro.algorithms.base import SelectionContext
        from repro.graph.digraph import DiGraph

        g = DiGraph.from_edges([("r", "c"), ("c", "r")])
        context = SelectionContext(g, ["r", "c"], ["r"])
        assert SCBGSelector().select(context) == []

    def test_coverage_map_exposed(self, toy_context):
        coverage = SCBGSelector().coverage_map(toy_context)
        assert coverage["d"] == frozenset({"b"})
        assert coverage["b"] == frozenset({"b"})
