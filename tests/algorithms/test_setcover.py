"""Unit tests for greedy set cover (Definition 4 / Algorithm 2)."""

import pytest

from repro.algorithms.setcover import cover_deficit, greedy_set_cover
from repro.errors import CoverageError


class TestGreedySetCover:
    def test_empty_universe_needs_nothing(self):
        assert greedy_set_cover([], {"a": frozenset({1})}) == []

    def test_single_covering_set(self):
        cover = greedy_set_cover([1, 2], {"a": frozenset({1, 2})})
        assert cover == ["a"]

    def test_greedy_picks_largest_first(self):
        sets = {
            "small": frozenset({1}),
            "big": frozenset({1, 2, 3}),
            "rest": frozenset({4}),
        }
        cover = greedy_set_cover([1, 2, 3, 4], sets)
        assert cover == ["big", "rest"]

    def test_result_is_feasible(self):
        sets = {
            "a": frozenset({1, 2}),
            "b": frozenset({2, 3}),
            "c": frozenset({3, 4}),
            "d": frozenset({4, 1}),
        }
        universe = [1, 2, 3, 4]
        cover = greedy_set_cover(universe, sets)
        covered = frozenset().union(*(sets[k] for k in cover))
        assert set(universe) <= covered

    def test_infeasible_raises_with_residue(self):
        with pytest.raises(CoverageError) as excinfo:
            greedy_set_cover([1, 2, 3], {"a": frozenset({1})})
        assert excinfo.value.uncovered == frozenset({2, 3})

    def test_tie_breaks_by_insertion_order(self):
        sets = {"first": frozenset({1}), "second": frozenset({1})}
        assert greedy_set_cover([1], sets) == ["first"]

    def test_classic_greedy_suboptimality_bounded(self):
        # The classic H_n example: greedy may pick the big set plus extras,
        # but never more than H_n times optimal.
        sets = {
            "opt1": frozenset({1, 2, 3, 4}),
            "opt2": frozenset({5, 6, 7, 8}),
            "trap": frozenset({4, 5, 6, 7}),
        }
        cover = greedy_set_cover(range(1, 9), sets)
        assert len(cover) <= 3  # optimal is 2; greedy stays within lnN factor

    def test_elements_outside_universe_ignored(self):
        sets = {"a": frozenset({1, 99})}
        assert greedy_set_cover([1], sets) == ["a"]

    def test_irrelevant_sets_never_chosen(self):
        sets = {
            "useless": frozenset({99}),
            "useful": frozenset({1}),
        }
        assert greedy_set_cover([1], sets) == ["useful"]


class TestCoverDeficit:
    def test_empty_when_feasible(self):
        assert cover_deficit([1], {"a": frozenset({1})}) == frozenset()

    def test_reports_missing(self):
        assert cover_deficit([1, 2], {"a": frozenset({1})}) == frozenset({2})
