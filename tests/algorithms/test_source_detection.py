"""Unit tests for rumor-source detection."""

import pytest

from repro.algorithms.source_detection import (
    distance_center,
    estimate_sources,
    jordan_center,
    rumor_centrality,
)
from repro.diffusion.base import INFECTED, SeedSets
from repro.diffusion.doam import DOAMModel
from repro.errors import SelectionError
from repro.graph.digraph import DiGraph
from repro.graph.generators import planted_partition
from repro.rng import RngStream


def star_snapshot():
    """Star with infected center + leaves: the center is the clear source."""
    g = DiGraph()
    for leaf in range(1, 7):
        g.add_symmetric_edge(0, leaf)
    infected = list(range(7))
    return g, infected


def path_snapshot():
    """Infected path 0-1-2-3-4: node 2 is the unique center."""
    g = DiGraph()
    for i in range(4):
        g.add_symmetric_edge(i, i + 1)
    return g, [0, 1, 2, 3, 4]


class TestCenters:
    def test_star_center_found_by_all_methods(self):
        g, infected = star_snapshot()
        assert jordan_center(g, infected)[0][0] == 0
        assert distance_center(g, infected)[0][0] == 0
        assert rumor_centrality(g, infected)[0][0] == 0

    def test_path_center(self):
        g, infected = path_snapshot()
        assert jordan_center(g, infected)[0][0] == 2
        assert distance_center(g, infected)[0][0] == 2
        assert rumor_centrality(g, infected)[0][0] == 2

    def test_scores_cover_all_infected(self):
        g, infected = path_snapshot()
        for method in (jordan_center, distance_center, rumor_centrality):
            ranked = method(g, infected)
            assert {node for node, _ in ranked} == set(infected)

    def test_single_infected_node(self):
        g, _ = star_snapshot()
        assert estimate_sources(g, [3]) == [3]

    def test_disconnected_snapshot_penalised(self):
        g = DiGraph()
        g.add_symmetric_edge(0, 1)
        g.add_symmetric_edge(2, 3)
        g.add_symmetric_edge(1, 2)
        # Infected snapshot missing the connector 1-2 bridge node 1.
        ranked = jordan_center(g, [0, 2, 3])
        # 0 is isolated within the snapshot; it must rank last.
        assert ranked[-1][0] == 0


class TestValidation:
    def test_empty_infected_rejected(self):
        g, _ = star_snapshot()
        with pytest.raises(SelectionError):
            jordan_center(g, [])

    def test_unknown_node_rejected(self):
        g, _ = star_snapshot()
        with pytest.raises(SelectionError):
            jordan_center(g, ["ghost"])

    def test_unknown_method_rejected(self):
        g, infected = star_snapshot()
        with pytest.raises(SelectionError):
            estimate_sources(g, infected, method="oracle")

    def test_bad_k_rejected(self):
        g, infected = star_snapshot()
        with pytest.raises(SelectionError):
            estimate_sources(g, infected, k=0)


class TestEndToEnd:
    def test_recovers_doam_source_neighborhood(self):
        # Spread a DOAM rumor from a hidden source, then locate it from
        # the snapshot: the estimate should be at most 2 hops away.
        graph, _ = planted_partition([30], 0.25, 0.0, RngStream(44), directed=False)
        indexed = graph.to_indexed()
        true_source = 7
        outcome = DOAMModel().run(
            indexed, SeedSets(rumors=[true_source]), max_hops=3
        )
        infected = [
            indexed.labels[i]
            for i, state in enumerate(outcome.states)
            if state == INFECTED
        ]
        for method in ("jordan", "distance", "rumor"):
            (estimate,) = estimate_sources(graph, infected, method=method)
            from repro.graph.traversal import shortest_hop_distance

            hops = shortest_hop_distance(graph, estimate, true_source)
            assert hops is not None and hops <= 2

    def test_k_candidates(self):
        g, infected = path_snapshot()
        top = estimate_sources(g, infected, method="distance", k=3)
        assert len(top) == 3
        assert top[0] == 2
