"""Unit tests for the DegreeDiscount selector."""

import pytest

from repro.algorithms.degree_discount import DegreeDiscountSelector
from repro.algorithms.base import SelectionContext
from repro.algorithms.heuristics import prefix_protects_all
from repro.graph.digraph import DiGraph


class TestDegreeDiscount:
    def test_budget_and_eligibility(self, fig2_context):
        picks = DegreeDiscountSelector().select(fig2_context, budget=3)
        assert len(picks) == 3
        assert not set(picks) & set(fig2_context.rumor_seeds)

    def test_first_pick_is_max_degree(self, fig2_context):
        graph = fig2_context.graph
        (first,) = DegreeDiscountSelector().select(fig2_context, budget=1)
        def sym_degree(node):
            return len(
                (set(graph.successors(node)) | set(graph.predecessors(node)))
                - {node}
            )
        best = sym_degree(first)
        for node in graph.nodes():
            if fig2_context.eligible(node):
                assert sym_degree(node) <= best

    def test_discount_spreads_picks_away_from_each_other(self):
        # A hub with 5 leaves plus a disjoint hub with 4 leaves: after
        # picking hub A, its leaves are discounted, so pick 2 is hub B —
        # not one of A's leaves (which plain MaxDegree order could give
        # under ties).
        g = DiGraph()
        for leaf in range(1, 6):
            g.add_symmetric_edge("hubA", f"a{leaf}")
        for leaf in range(1, 5):
            g.add_symmetric_edge("hubB", f"b{leaf}")
        g.add_edge("r", "a1")
        g.add_edge("r2", "r")  # rumor community: {r, r2}
        context = SelectionContext(g, ["r", "r2"], ["r"])
        picks = DegreeDiscountSelector().select(context, budget=2)
        assert picks[0] == "hubA"
        assert picks[1] == "hubB"

    def test_full_solution_protects_all(self, fig2_context):
        solution = DegreeDiscountSelector().select(fig2_context)
        assert prefix_protects_all(fig2_context, solution)

    def test_probability_variant(self, fig2_context):
        picks = DegreeDiscountSelector(probability=0.1).select(fig2_context, budget=3)
        assert len(picks) == 3

    def test_probability_validated(self):
        with pytest.raises(Exception):
            DegreeDiscountSelector(probability=2.0)

    def test_deterministic(self, fig2_context):
        a = DegreeDiscountSelector().select(fig2_context, budget=4)
        b = DegreeDiscountSelector().select(fig2_context, budget=4)
        assert a == b
