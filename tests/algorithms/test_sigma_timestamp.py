"""Unit tests for the timestamp-graph σ estimator (proof construction)."""

import pytest

from repro.algorithms.greedy import SigmaEstimator
from repro.algorithms.sigma_timestamp import TimestampSigmaEstimator
from repro.errors import SelectionError
from repro.rng import RngStream


class TestTimestampSigma:
    def make(self, context, runs=30):
        return TimestampSigmaEstimator(context, runs=runs, rng=RngStream(21))

    def test_empty_set_zero(self, fig2_context):
        assert self.make(fig2_context).sigma([]) == 0.0

    def test_bounded_by_bridge_count(self, fig2_context):
        estimator = self.make(fig2_context)
        value = estimator.sigma(["v1", "R1"])
        assert 0.0 <= value <= len(fig2_context.bridge_ends)

    def test_deterministic(self, fig2_context):
        estimator = self.make(fig2_context)
        assert estimator.sigma(["v1"]) == estimator.sigma(["v1"])

    def test_monotone(self, fig2_context):
        estimator = self.make(fig2_context, runs=40)
        assert estimator.sigma(["v1", "R1"]) >= estimator.sigma(["v1"])

    def test_rumor_overlap_rejected(self, fig2_context):
        with pytest.raises(SelectionError):
            self.make(fig2_context).sigma(["r1"])

    def test_rumor_records_cached(self, fig2_context):
        estimator = self.make(fig2_context, runs=5)
        assert estimator.rumor_records is estimator.rumor_records

    def test_adjacent_protector_saves_toy_bridge_end(self, toy_context):
        # On the toy, d -> b with t_R(b) = 2: seeding d must save b in
        # essentially every realisation (d picks its only out-neighbor b
        # at step 1, always beating the 2-hop rumor).
        estimator = TimestampSigmaEstimator(
            toy_context, runs=40, rng=RngStream(22)
        )
        value = estimator.sigma(["d"])
        baseline_risk = sum(
            1
            for record in estimator.rumor_records
            if estimator._at_risk(record)
        ) / estimator.runs
        assert value == pytest.approx(baseline_risk, abs=0.05)

    def test_agrees_with_simulation_estimator_in_rank(self, fig2_context):
        # Both estimators must prefer v1 (saves 2 ends) to q2 (saves none).
        proof = TimestampSigmaEstimator(fig2_context, runs=40, rng=RngStream(23))
        sim = SigmaEstimator(fig2_context, runs=40, rng=RngStream(24))
        assert proof.sigma(["v1"]) > proof.sigma(["q2"])
        assert sim.sigma(["v1"]) > sim.sigma(["q2"])

    def test_estimates_correlate_with_simulation(self, fig2_context):
        proof = TimestampSigmaEstimator(fig2_context, runs=60, rng=RngStream(25))
        sim = SigmaEstimator(fig2_context, runs=60, rng=RngStream(26))
        for protectors in (["v1"], ["R1"], ["v1", "R1"]):
            assert proof.sigma(protectors) == pytest.approx(
                sim.sigma(protectors), abs=1.0
            )
