"""Unit tests for SelectionContext and the selector base class."""

import pytest

from repro.algorithms.base import ProtectorSelector, SelectionContext
from repro.errors import SeedError, ValidationError


class TestSelectionContext:
    def test_bridge_ends_computed_when_omitted(self, toy):
        graph, communities, info = toy
        context = SelectionContext(graph, communities.members(0), info["rumor_seeds"])
        assert context.bridge_ends == info["bridge_ends"]

    def test_explicit_bridge_ends_respected(self, toy):
        graph, communities, info = toy
        context = SelectionContext(
            graph, communities.members(0), info["rumor_seeds"], bridge_ends=["e"]
        )
        assert context.bridge_ends == frozenset({"e"})

    def test_empty_seeds_rejected(self, toy):
        graph, communities, _ = toy
        with pytest.raises(SeedError):
            SelectionContext(graph, communities.members(0), [])

    def test_seed_outside_community_rejected(self, toy):
        graph, communities, _ = toy
        with pytest.raises(SeedError):
            SelectionContext(graph, communities.members(0), ["b"])

    def test_indexed_cached(self, toy_context):
        assert toy_context.indexed is toy_context.indexed

    def test_rumor_arrival(self, toy_context):
        arrival = toy_context.rumor_arrival
        assert arrival["r"] == 0
        assert arrival["b"] == 2

    def test_id_helpers(self, toy_context):
        indexed = toy_context.indexed
        assert toy_context.rumor_seed_ids() == [indexed.index("r")]
        assert toy_context.bridge_end_ids() == [indexed.index("b")]

    def test_eligibility(self, toy_context):
        assert toy_context.eligible("d")
        assert toy_context.eligible("c1")  # community members may protect
        assert not toy_context.eligible("r")  # rumor seeds may not
        assert not toy_context.eligible("ghost")

    def test_duplicate_seeds_deduped(self, toy):
        graph, communities, _ = toy
        context = SelectionContext(graph, communities.members(0), ["r", "r"])
        assert context.rumor_seeds == ("r",)

    def test_repr(self, toy_context):
        text = repr(toy_context)
        assert "|B|=1" in text


class TestBudgetValidation:
    def test_check_budget(self):
        assert ProtectorSelector._check_budget(None) is None
        assert ProtectorSelector._check_budget(3) == 3
        for bad in (-1, 1.5, True, "two"):
            with pytest.raises(ValidationError):
                ProtectorSelector._check_budget(bad)
