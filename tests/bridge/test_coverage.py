"""Unit tests for coverage maps (SW_u) and the blocking-aware variant."""


from repro.bridge.bbst import build_all_bbsts
from repro.bridge.coverage import blocking_aware_coverage, coverage_map_from_bbsts
from repro.graph.digraph import DiGraph


def fig2_coverage(fig2):
    graph, communities, info = fig2
    trees = build_all_bbsts(graph, sorted(info["bridge_ends"]), info["rumor_seeds"])
    return coverage_map_from_bbsts(trees, info["rumor_seeds"]), info


class TestCoverageMap:
    def test_every_bridge_end_covers_itself(self, fig2):
        coverage, info = fig2_coverage(fig2)
        for end in info["bridge_ends"]:
            assert end in coverage
            assert end in coverage[end]

    def test_v1_covers_both_c1_ends(self, fig2):
        coverage, _ = fig2_coverage(fig2)
        assert coverage["v1"] == frozenset({"p1", "p2"})

    def test_r1_covers_p3_only(self, fig2):
        coverage, _ = fig2_coverage(fig2)
        assert coverage["R1"] == frozenset({"p3"})

    def test_rumor_seeds_not_candidates(self, fig2):
        coverage, info = fig2_coverage(fig2)
        for seed in info["rumor_seeds"]:
            assert seed not in coverage

    def test_union_covers_all_ends(self, fig2):
        coverage, info = fig2_coverage(fig2)
        union = frozenset().union(*coverage.values())
        assert union == info["bridge_ends"]


class TestBlockingAwareCoverage:
    def test_agrees_on_fig2(self, fig2):
        graph, communities, info = fig2
        bbst_cover, _ = fig2_coverage(fig2)
        exact = blocking_aware_coverage(
            graph,
            info["rumor_seeds"],
            sorted(bbst_cover),
            sorted(info["bridge_ends"]),
        )
        # The BBST criterion is sound (SW_u ⊆ exact saved set); on this
        # instance no candidate earns a rumor-delay bonus either, so the
        # two coverages coincide exactly.
        for candidate, ends in exact.items():
            assert ends == bbst_cover[candidate]

    def test_tie_at_intermediate_saved_by_priority(self):
        # u's front and the rumor reach x simultaneously (step 2); P wins
        # the tie, so u's cascade flows on through x and saves b.
        g = DiGraph.from_edges(
            [
                ("r", "m"),
                ("m", "x"),
                ("x", "b"),  # t_R(b) = 3 via r -> m -> x -> b
                ("u", "q"),
                ("q", "x"),  # u -> q -> x -> b: also distance 3
            ]
        )
        exact = blocking_aware_coverage(g, ["r"], ["u"], ["b"])
        assert exact["u"] == frozenset({"b"})

    def test_true_blocking_case(self):
        # u's only route is through m; rumor owns m strictly earlier.
        g = DiGraph.from_edges(
            [
                ("r", "m"),        # rumor at m: step 1
                ("m", "b"),        # rumor at b: step 2
                ("u", "q"),
                ("q", "m"),        # u at m: step 2 (too late), so b falls
            ]
        )
        exact = blocking_aware_coverage(g, ["r"], ["u", "q"], ["b"])
        assert exact["u"] == frozenset()
        # q reaches m at step 1 — a tie the protector wins — then b at 2,
        # another P-priority tie: q does save b.
        assert exact["q"] == frozenset({"b"})

    def test_rumor_seed_candidates_skipped(self, toy):
        graph, _, info = toy
        exact = blocking_aware_coverage(graph, ["r"], ["r", "d"], ["b"])
        assert "r" not in exact
        assert "d" in exact
