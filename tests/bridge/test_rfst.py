"""Unit tests for RFSTs and bridge-end detection."""

import pytest

from repro.bridge.rfst import build_rfsts, find_bridge_ends
from repro.errors import NodeNotFoundError, SeedError
from repro.graph.digraph import DiGraph


class TestFindBridgeEnds:
    def test_toy_instance(self, toy):
        graph, communities, info = toy
        ends = find_bridge_ends(
            graph, communities.members(0), info["rumor_seeds"]
        )
        assert ends == info["bridge_ends"]

    def test_fig2_instance(self, fig2):
        graph, communities, info = fig2
        ends = find_bridge_ends(graph, communities.members(0), info["rumor_seeds"])
        assert ends == info["bridge_ends"]

    def test_unreachable_boundary_node_excluded(self):
        # b2 has an in-neighbor in the community but the seeds cannot
        # reach it (only c2 points to it, and c2 is unreachable from r).
        g = DiGraph.from_edges([("r", "c1"), ("c1", "b1"), ("c2", "b2")])
        ends = find_bridge_ends(g, ["r", "c1", "c2"], ["r"])
        assert ends == frozenset({"b1"})

    def test_interior_outsider_excluded(self):
        # x is reachable but has no direct in-neighbor in the community.
        g = DiGraph.from_edges([("r", "b"), ("b", "x")])
        ends = find_bridge_ends(g, ["r"], ["r"])
        assert ends == frozenset({"b"})

    def test_seed_outside_community_rejected(self, toy):
        graph, communities, _ = toy
        with pytest.raises(SeedError, match="outside the rumor community"):
            find_bridge_ends(graph, communities.members(0), ["b"])

    def test_empty_seeds_rejected(self, toy):
        graph, communities, _ = toy
        with pytest.raises(SeedError):
            find_bridge_ends(graph, communities.members(0), [])

    def test_unknown_community_node_rejected(self, toy):
        graph, _, info = toy
        with pytest.raises(NodeNotFoundError):
            find_bridge_ends(graph, ["ghost"], info["rumor_seeds"])

    def test_no_escape_routes_gives_empty_set(self):
        g = DiGraph.from_edges([("r", "c"), ("c", "r")], nodes=["z"])
        assert find_bridge_ends(g, ["r", "c"], ["r"]) == frozenset()

    def test_multi_seed_union(self, fig2):
        graph, communities, info = fig2
        # Each seed alone reaches all ends through the ring, so unions match.
        both = find_bridge_ends(graph, communities.members(0), info["rumor_seeds"])
        r1_only = find_bridge_ends(graph, communities.members(0), ["r1"])
        assert r1_only <= both


class TestBuildRfsts:
    def test_one_tree_per_seed(self, fig2):
        graph, communities, info = fig2
        trees = build_rfsts(graph, communities.members(0), info["rumor_seeds"])
        assert [t.root for t in trees] == list(info["rumor_seeds"])

    def test_tree_bridge_ends_union_matches(self, fig2):
        graph, communities, info = fig2
        trees = build_rfsts(graph, communities.members(0), info["rumor_seeds"])
        union = frozenset().union(*(t.bridge_ends for t in trees))
        assert union == info["bridge_ends"]

    def test_path_from_root(self, toy):
        graph, communities, info = toy
        (tree,) = build_rfsts(graph, communities.members(0), info["rumor_seeds"])
        path = tree.path_from_root("b")
        assert path[0] == "r" and path[-1] == "b"
        assert tree.depth_of("b") == len(path) - 1 == 2

    def test_path_for_missing_node_raises(self, toy):
        graph, communities, info = toy
        (tree,) = build_rfsts(graph, communities.members(0), info["rumor_seeds"])
        with pytest.raises(NodeNotFoundError):
            tree.path_from_root("ghost")

    def test_contains(self, toy):
        graph, communities, info = toy
        (tree,) = build_rfsts(graph, communities.members(0), info["rumor_seeds"])
        assert "b" in tree
        assert "ghost" not in tree

    def test_duplicate_seeds_deduped(self, toy):
        graph, communities, info = toy
        trees = build_rfsts(graph, communities.members(0), ["r", "r"])
        assert len(trees) == 1
