"""Unit tests for Bridge-end Backward Search Trees."""

import pytest

from repro.bridge.bbst import build_all_bbsts, build_bbst
from repro.errors import NodeNotFoundError, SeedError
from repro.graph.digraph import DiGraph


class TestBuildBbst:
    def test_toy_tree_contents(self, toy):
        graph, _, info = toy
        tree = build_bbst(graph, "b", rumor_arrival=2)
        # Depth-2 backward tree: b (0); c1, d (1); r, e (2).
        assert tree.distance_to_end == {"b": 0, "c1": 1, "d": 1, "r": 2, "e": 2}

    def test_candidates_exclude_rumor_seeds(self, toy):
        graph, _, info = toy
        tree = build_bbst(graph, "b", rumor_arrival=2)
        assert tree.candidates(info["rumor_seeds"]) == info["protector_candidates"]

    def test_depth_zero_tree_is_just_the_root(self, toy):
        graph, _, _ = toy
        tree = build_bbst(graph, "b", rumor_arrival=0)
        assert tree.distance_to_end == {"b": 0}

    def test_negative_arrival_rejected(self, toy):
        graph, _, _ = toy
        with pytest.raises(SeedError):
            build_bbst(graph, "b", rumor_arrival=-1)

    def test_missing_bridge_end_rejected(self, toy):
        graph, _, _ = toy
        with pytest.raises(NodeNotFoundError):
            build_bbst(graph, "ghost", rumor_arrival=2)

    def test_len_and_contains(self, toy):
        graph, _, _ = toy
        tree = build_bbst(graph, "b", rumor_arrival=1)
        assert len(tree) == 3
        assert "d" in tree and "r" not in tree


class TestBuildAllBbsts:
    def test_one_tree_per_bridge_end(self, fig2):
        graph, communities, info = fig2
        trees = build_all_bbsts(
            graph, sorted(info["bridge_ends"]), info["rumor_seeds"]
        )
        assert {t.bridge_end for t in trees} == set(info["bridge_ends"])

    def test_depths_match_rumor_arrival(self, fig2):
        graph, communities, info = fig2
        trees = {
            t.bridge_end: t
            for t in build_all_bbsts(
                graph, sorted(info["bridge_ends"]), info["rumor_seeds"]
            )
        }
        assert trees["p1"].rumor_arrival == 2  # r1 -> a1 -> p1
        assert trees["p2"].rumor_arrival == 3  # r1 -> a1 -> a2 -> p2
        assert trees["p3"].rumor_arrival == 2  # r2 -> a3 -> p3

    def test_precomputed_arrival_accepted(self, fig2):
        graph, communities, info = fig2
        from repro.graph.traversal import multi_source_distances

        arrival = multi_source_distances(graph, info["rumor_seeds"])
        trees = build_all_bbsts(
            graph, sorted(info["bridge_ends"]), info["rumor_seeds"], arrival
        )
        assert len(trees) == 3

    def test_unreachable_bridge_end_rejected(self):
        g = DiGraph.from_edges([("r", "b")], nodes=["island"])
        with pytest.raises(SeedError, match="not reachable"):
            build_all_bbsts(g, ["island"], ["r"])

    def test_empty_seeds_rejected(self, toy):
        graph, _, _ = toy
        with pytest.raises(SeedError):
            build_all_bbsts(graph, ["b"], [])

    def test_fig2_v1_in_both_c1_trees(self, fig2):
        graph, communities, info = fig2
        trees = {
            t.bridge_end: t
            for t in build_all_bbsts(
                graph, sorted(info["bridge_ends"]), info["rumor_seeds"]
            )
        }
        assert "v1" in trees["p1"] and "v1" in trees["p2"]
        assert "v1" not in trees["p3"]
        assert "R1" in trees["p3"]
