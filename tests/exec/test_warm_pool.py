"""Warm-pool lifecycle tests: executor reuse, republication, auto-tuned
chunks, close/finalize cleanup, and the process-wide shared-pool mode."""

import gc

import pytest

from repro.exec import shm as shm_module
from repro.exec.pool import (
    _SHARED_POOLS,
    MAX_CHUNKS_PER_WORKER,
    SHARED_POOL_ENV,
    ParallelExecutor,
    shutdown_shared_pools,
)
from repro.graph.digraph import DiGraph
from repro.obs import MetricsRegistry, use_registry


# Worker functions must be module-level so the pool can pickle them.
def null_setup(graph, payload):
    return payload


def scale_task(state, chunk):
    return [state * item for item in chunk]


def counting_task(state, chunk):
    from repro.obs.registry import metrics

    registry = metrics()
    if registry.enabled:
        registry.counter("test.items").add(len(chunk))
    return [state + item for item in chunk]


def degree_setup(graph, payload):
    return graph


def degree_task(graph, chunk):
    return [graph.out_degree(node) for node in chunk]


def make_chain(size):
    graph = DiGraph()
    for node in range(size - 1):
        graph.add_edge(node, node + 1)
    return graph.to_indexed()


class TestExecutorReuse:
    def test_reuse_matches_per_call_pools_across_graphs(self, monkeypatch):
        """Two maps on different graphs over ONE executor: bit-identical
        to two per-call executors, one pool, two publications."""
        monkeypatch.delenv(SHARED_POOL_ENV, raising=False)
        first_graph, second_graph = make_chain(6), make_chain(9)
        first_chunks = [[0, 1], [2, 3], [4, 5]]
        second_chunks = [[0, 1, 2], [3, 4, 5], [6, 7, 8]]
        with ParallelExecutor(2) as throwaway:
            fresh_first = throwaway.map_chunks(
                degree_setup, degree_task, None, first_chunks, graph=first_graph
            )
        with ParallelExecutor(2) as throwaway:
            fresh_second = throwaway.map_chunks(
                degree_setup, degree_task, None, second_chunks, graph=second_graph
            )
        registry = MetricsRegistry()
        with use_registry(registry):
            with ParallelExecutor(2) as executor:
                reused_first = executor.map_chunks(
                    degree_setup, degree_task, None, first_chunks,
                    graph=first_graph,
                )
                reused_second = executor.map_chunks(
                    degree_setup, degree_task, None, second_chunks,
                    graph=second_graph,
                )
        assert reused_first == fresh_first
        assert reused_second == fresh_second
        counters = registry.counter_values()
        assert counters["exec.pool.created"] == 1
        # The graph identity changed between maps -> republished once.
        assert counters["exec.publications"] == 2

    def test_same_graph_pins_one_publication(self, monkeypatch):
        monkeypatch.delenv(SHARED_POOL_ENV, raising=False)
        graph = make_chain(8)
        registry = MetricsRegistry()
        with use_registry(registry):
            with ParallelExecutor(2) as executor:
                first = executor.map_chunks(
                    degree_setup, degree_task, None, [[0, 1], [2, 3]],
                    graph=graph,
                )
                second = executor.map_chunks(
                    degree_setup, degree_task, None, [[4, 5], [6, 7]],
                    graph=graph,
                )
        assert first == [[1, 1], [1, 1]]
        assert second == [[1, 1], [1, 0]]
        counters = registry.counter_values()
        assert counters["exec.pool.created"] == 1
        assert counters["exec.publications"] == 1

    def test_in_place_mutation_forces_republication(self, monkeypatch):
        """apply_updates bumps graph.version; the next map must publish
        the mutated adjacency instead of reusing the pinned publication
        (same object identity, different contents)."""
        monkeypatch.delenv(SHARED_POOL_ENV, raising=False)
        graph = make_chain(8)
        registry = MetricsRegistry()
        chunks = [[0, 1], [2, 3]]
        with use_registry(registry):
            with ParallelExecutor(2) as executor:
                before = executor.map_chunks(
                    degree_setup, degree_task, None, chunks, graph=graph
                )
                graph.apply_updates([(0, 2)], [])
                after = executor.map_chunks(
                    degree_setup, degree_task, None, chunks, graph=graph
                )
        assert before == [[1, 1], [1, 1]]
        assert after == [[2, 1], [1, 1]]  # node 0 gained an out-edge
        counters = registry.counter_values()
        assert counters["exec.pool.created"] == 1  # pool stays warm
        assert counters["exec.publications"] == 2  # graph was republished

    def test_close_is_idempotent_and_not_terminal(self):
        executor = ParallelExecutor(2)
        chunks = [[1, 2], [3]]
        before = executor.map_chunks(null_setup, scale_task, 2, chunks)
        executor.close()
        executor.close()  # second close must be a no-op
        # close() returns the executor to its cold state; a later map
        # lazily rebuilds the pool and produces the same results.
        after = executor.map_chunks(null_setup, scale_task, 2, chunks)
        assert after == before == [[2, 4], [6]]
        executor.close()

    def test_dropped_executor_unlinks_shm_segments(self):
        """The weakref.finalize backstop must release the pinned
        publication (and its /dev/shm segments) without close()."""
        if shm_module.np is None:
            pytest.skip("shared memory path requires NumPy")
        from multiprocessing import shared_memory

        graph = make_chain(12)
        executor = ParallelExecutor(2, share="shm")
        executor.map_chunks(
            degree_setup, degree_task, None, [[0, 1], [2, 3]], graph=graph
        )
        names = executor._publication.handle.segment_names
        del executor
        gc.collect()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestChunkAutoTuning:
    def test_map_items_flattens_in_item_order(self):
        items = list(range(25))
        with ParallelExecutor(2) as executor:
            result = executor.map_items(null_setup, scale_task, 3, items)
        assert result == [3 * item for item in items]

    def test_pooled_map_records_per_item_cost(self):
        items = list(range(16))
        with ParallelExecutor(2) as executor:
            executor.map_items(null_setup, scale_task, 3, items)
            assert executor._item_costs[(null_setup, scale_task)] > 0.0

    def test_plan_targets_chunk_seconds_with_bounds(self):
        executor = ParallelExecutor(2)
        items = list(range(40))
        key = (null_setup, scale_task)
        # 0.05s target / 0.01s per item = 5 items per chunk -> 8 chunks.
        executor._item_costs[key] = 0.01
        chunks = executor._plan_chunks(null_setup, scale_task, items, 2)
        assert [item for chunk in chunks for item in chunk] == items
        assert len(chunks) == 8
        # Very cheap items: floored at one chunk per worker.
        executor._item_costs[key] = 1e-9
        assert len(executor._plan_chunks(null_setup, scale_task, items, 2)) == 2
        # Very expensive items: ceilinged at MAX_CHUNKS_PER_WORKER.
        executor._item_costs[key] = 10.0
        chunks = executor._plan_chunks(null_setup, scale_task, items, 2)
        assert len(chunks) == 2 * MAX_CHUNKS_PER_WORKER
        # Serial plans are never split at all.
        assert executor._plan_chunks(null_setup, scale_task, items, 1) == [items]
        executor.close()

    def test_tuned_chunks_keep_results_and_counters_serial_identical(self):
        items = list(range(30))
        expected = [1 + item for item in items]
        registry = MetricsRegistry()
        with use_registry(registry):
            with ParallelExecutor(2) as executor:
                first = executor.map_items(null_setup, counting_task, 1, items)
                # The second map runs under tuned chunk sizes; results
                # and merged counters must not notice.
                second = executor.map_items(null_setup, counting_task, 1, items)
        assert first == expected
        assert second == expected
        assert registry.counter_values()["test.items"] == 2 * len(items)


class TestSharedPoolMode:
    def test_executors_borrow_one_process_wide_pool(self, monkeypatch):
        monkeypatch.setenv(SHARED_POOL_ENV, "1")
        shutdown_shared_pools()
        registry = MetricsRegistry()
        try:
            with use_registry(registry):
                with ParallelExecutor(2) as first:
                    first_result = first.map_chunks(
                        null_setup, scale_task, 2, [[1], [2]]
                    )
                # close() left the borrowed pool in the cache; a second
                # executor reuses it without creating another.
                with ParallelExecutor(2) as second:
                    second_result = second.map_chunks(
                        null_setup, scale_task, 2, [[1], [2]]
                    )
            assert first_result == second_result == [[2], [4]]
            assert registry.counter_values()["exec.pool.created"] == 1
            assert len(_SHARED_POOLS) == 1
        finally:
            shutdown_shared_pools()
        assert _SHARED_POOLS == {}
