"""Checkpoint/resume tests: interrupted runs finish bit-identical.

The contract (``docs/parallel.md``): every checkpointed loop — greedy/
CELF selection rounds, sketch-store doubling, Monte-Carlo replica
batches — is prefix-deterministic, so a run resumed from round ``k``
produces exactly the selections, arrays, and aggregates an uninterrupted
run produces.
"""

import json

import pytest

from repro.algorithms.celf import CELFGreedySelector
from repro.algorithms.greedy import GreedySelector
from repro.algorithms.ris_greedy import RISGreedySelector
from repro.diffusion.base import CascadeSet, SeedSets
from repro.diffusion.opoao import OPOAOModel
from repro.diffusion.parallel import ParallelMonteCarloSimulator
from repro.errors import CheckpointError
from repro.exec.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointStore,
    as_store,
    run_key,
)
from repro.obs import MetricsRegistry, use_registry
from repro.rng import RngStream


class TestRunKey:
    def test_deterministic(self):
        assert run_key(a=1, b="x") == run_key(a=1, b="x")
        assert run_key(b="x", a=1) == run_key(a=1, b="x")  # sorted keys

    def test_sensitive_to_every_part(self):
        base = run_key(model="opoao", seed=3)
        assert run_key(model="opoao", seed=4) != base
        assert run_key(model="doam", seed=3) != base
        assert run_key(model="opoao", seed=3, extra=None) != base

    def test_non_json_values_fingerprint_via_repr(self):
        assert run_key(ids=(1, 2)) == run_key(ids=(1, 2))


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "run.ckpt")
        store.save("greedy", "k1", {"chosen_ids": [4, 7]}, rounds=2)
        entry = store.load("greedy", "k1")
        assert entry == {"key": "k1", "rounds": 2, "state": {"chosen_ids": [4, 7]}}

    def test_missing_file_loads_none(self, tmp_path):
        assert CheckpointStore(tmp_path / "absent.ckpt").load("greedy", "k") is None

    def test_missing_kind_loads_none(self, tmp_path):
        store = CheckpointStore(tmp_path / "run.ckpt")
        store.save("mc", "k", {}, rounds=1)
        assert store.load("greedy", "k") is None

    def test_resume_false_never_loads(self, tmp_path):
        path = tmp_path / "run.ckpt"
        CheckpointStore(path).save("greedy", "k", {"chosen_ids": []}, rounds=0)
        assert CheckpointStore(path, resume=False).load("greedy", "k") is None

    def test_key_mismatch_raises(self, tmp_path):
        path = tmp_path / "run.ckpt"
        CheckpointStore(path).save("greedy", "old-key", {}, rounds=1)
        with pytest.raises(CheckpointError):
            CheckpointStore(path).load("greedy", "new-key")

    def test_foreign_file_raises(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(CheckpointError):
            CheckpointStore(path).load("greedy", "k")
        path.write_text("not json at all {")
        with pytest.raises(CheckpointError):
            CheckpointStore(path).load("greedy", "k")

    def test_kinds_share_one_file(self, tmp_path):
        path = tmp_path / "run.ckpt"
        store = CheckpointStore(path)
        store.save("greedy", "gk", {"chosen_ids": [1]}, rounds=1)
        store.save("mc", "mk", {"records": []}, rounds=0)
        assert store.load("greedy", "gk")["state"] == {"chosen_ids": [1]}
        assert store.load("mc", "mk")["rounds"] == 0
        document = json.loads(path.read_text())
        assert document["schema"] == CHECKPOINT_SCHEMA
        assert set(document["entries"]) == {"greedy", "mc"}

    def test_clear(self, tmp_path):
        path = tmp_path / "run.ckpt"
        store = CheckpointStore(path)
        store.save("greedy", "k", {}, rounds=1)
        store.clear()
        assert not path.exists()
        store.clear()  # idempotent

    def test_as_store(self, tmp_path):
        assert as_store(None) is None
        existing = CheckpointStore(tmp_path / "a.ckpt", resume=False)
        assert as_store(existing) is existing
        from_path = as_store(tmp_path / "b.ckpt")
        assert isinstance(from_path, CheckpointStore)
        assert from_path.resume is True


def make_greedy(tmp_path=None, cls=CELFGreedySelector):
    return cls(
        runs=8,
        max_hops=8,
        rng=RngStream(3, name="ckpt-greedy"),
        backend="python",
        checkpoint=None if tmp_path is None else tmp_path / "run.ckpt",
    )


class TestGreedyResume:
    def test_interrupted_run_resumes_bit_identical(self, fig2_context, tmp_path):
        uninterrupted = make_greedy().select(fig2_context, budget=3)
        # "Interrupt" after round 2: a budgeted run that checkpoints.
        prefix = make_greedy(tmp_path).select(fig2_context, budget=2)
        assert prefix == uninterrupted[:2]
        registry = MetricsRegistry()
        with use_registry(registry):
            resumed = make_greedy(tmp_path).select(fig2_context, budget=3)
        assert resumed == uninterrupted
        assert registry.counter_values()["exec.resumed_rounds"] == 2

    def test_exhaustive_greedy_resumes_too(self, fig2_context, tmp_path):
        uninterrupted = make_greedy(cls=GreedySelector).select(
            fig2_context, budget=3
        )
        make_greedy(tmp_path, cls=GreedySelector).select(fig2_context, budget=2)
        resumed = make_greedy(tmp_path, cls=GreedySelector).select(
            fig2_context, budget=3
        )
        assert resumed == uninterrupted

    def test_longer_checkpoint_truncates_to_budget(self, fig2_context, tmp_path):
        full = make_greedy(tmp_path).select(fig2_context, budget=3)
        truncated = make_greedy(tmp_path).select(fig2_context, budget=2)
        assert truncated == full[:2]

    def test_different_config_is_rejected(self, fig2_context, tmp_path):
        make_greedy(tmp_path).select(fig2_context, budget=2)
        other = CELFGreedySelector(
            runs=8,
            max_hops=8,
            rng=RngStream(99, name="ckpt-greedy"),  # different seed
            backend="python",
            checkpoint=tmp_path / "run.ckpt",
        )
        with pytest.raises(CheckpointError):
            other.select(fig2_context, budget=2)

    def test_no_resume_store_starts_fresh(self, fig2_context, tmp_path):
        make_greedy(tmp_path).select(fig2_context, budget=2)
        fresh_store = CheckpointStore(tmp_path / "run.ckpt", resume=False)
        selector = make_greedy()
        selector.checkpoint = fresh_store
        registry = MetricsRegistry()
        with use_registry(registry):
            result = selector.select(fig2_context, budget=2)
        assert result == make_greedy().select(fig2_context, budget=2)
        assert "exec.resumed_rounds" not in registry.counter_values()


class TestRISResume:
    def make_selector(self, tmp_path=None):
        return RISGreedySelector(
            semantics="opoao",
            initial_worlds=8,
            max_worlds=32,
            rng=RngStream(5, name="ckpt-ris"),
            checkpoint=None if tmp_path is None else tmp_path / "run.ckpt",
        )

    def test_restored_store_is_bit_identical(self, fig2_context, tmp_path):
        first = self.make_selector(tmp_path)
        picks = first.select(fig2_context, budget=2)
        sampled = first.make_store(fig2_context).state_dict()
        assert sampled["worlds"] >= 8

        resumed = self.make_selector(tmp_path)
        registry = MetricsRegistry()
        with use_registry(registry):
            resumed_picks = resumed.select(fig2_context, budget=2)
        assert resumed_picks == picks
        assert resumed.make_store(fig2_context).state_dict() == sampled
        assert registry.counter_values()["exec.resumed_rounds"] == (
            sampled["worlds"]
        )

    def test_matches_uncheckpointed_run(self, fig2_context, tmp_path):
        plain = self.make_selector().select(fig2_context, budget=2)
        checkpointed = self.make_selector(tmp_path).select(fig2_context, budget=2)
        assert checkpointed == plain


class TestMonteCarloResume:
    def simulator(self, runs, tmp_path=None, processes=2):
        return ParallelMonteCarloSimulator(
            OPOAOModel(),
            runs=runs,
            max_hops=5,
            processes=processes,
            checkpoint=None if tmp_path is None else tmp_path / "run.ckpt",
            checkpoint_every=4,
        )

    def test_interrupted_run_resumes_bit_identical(self, chain, tmp_path):
        indexed = chain.to_indexed()
        seeds = SeedSets(rumors=[0])

        def run(simulator):
            return simulator.simulate_detailed(
                indexed, seeds, rng=RngStream(11), end_ids=(4, 5)
            )

        full_aggregate, full_records = run(self.simulator(12))
        # "Interrupt" after 6 replicas, then resume out to 12.
        run(self.simulator(6, tmp_path))
        registry = MetricsRegistry()
        with use_registry(registry):
            resumed_aggregate, resumed_records = run(self.simulator(12, tmp_path))
        assert resumed_records == full_records
        assert resumed_aggregate.infected_per_hop == full_aggregate.infected_per_hop
        assert (
            resumed_aggregate.final_infected.mean
            == full_aggregate.final_infected.mean
        )
        assert registry.counter_values()["exec.resumed_rounds"] == 6

    def test_longer_checkpoint_truncates(self, chain, tmp_path):
        indexed = chain.to_indexed()
        seeds = SeedSets(rumors=[0])
        _, full_records = self.simulator(12, tmp_path).simulate_detailed(
            indexed, seeds, rng=RngStream(11)
        )
        _, short_records = self.simulator(6, tmp_path).simulate_detailed(
            indexed, seeds, rng=RngStream(11)
        )
        assert short_records == full_records[:6]

    def test_different_seeds_rejected(self, chain, tmp_path):
        indexed = chain.to_indexed()
        seeds = SeedSets(rumors=[0])
        self.simulator(6, tmp_path).simulate_detailed(
            indexed, seeds, rng=RngStream(11)
        )
        with pytest.raises(CheckpointError):
            self.simulator(6, tmp_path).simulate_detailed(
                indexed, seeds, rng=RngStream(12)
            )


class TestMonteCarloCascadeKeys:
    """The mc run key covers the cascade structure (regression).

    Before the K-cascade refactor the key fingerprinted a flat rumor/
    protector pair; a checkpoint written under one cascade split or
    priority rule must now refuse to seed a run with another, instead of
    silently resuming foreign replicas.
    """

    def simulator(self, runs, tmp_path):
        return ParallelMonteCarloSimulator(
            OPOAOModel(),
            runs=runs,
            max_hops=5,
            processes=2,
            checkpoint=tmp_path / "run.ckpt",
            checkpoint_every=4,
        )

    def test_priority_rule_changes_the_key(self, chain, tmp_path):
        indexed = chain.to_indexed()
        cascades = [[0], [3], [5]]
        self.simulator(6, tmp_path).simulate_detailed(
            indexed, CascadeSet(cascades), rng=RngStream(11)
        )
        with pytest.raises(CheckpointError):
            self.simulator(6, tmp_path).simulate_detailed(
                indexed,
                CascadeSet(cascades, priority="rumor-first"),
                rng=RngStream(11),
            )

    def test_cascade_split_changes_the_key(self, chain, tmp_path):
        # Same nodes fielded, different campaign structure: K=2 with
        # protectors {3, 5} is not K=3 with campaigns {3} and {5}.
        indexed = chain.to_indexed()
        self.simulator(6, tmp_path).simulate_detailed(
            indexed, SeedSets(rumors=[0], protectors=[3, 5]), rng=RngStream(11)
        )
        with pytest.raises(CheckpointError):
            self.simulator(6, tmp_path).simulate_detailed(
                indexed, CascadeSet([[0], [3], [5]]), rng=RngStream(11)
            )

    def test_stale_pre_refactor_checkpoint_rejected(self, chain, tmp_path):
        # A checkpoint whose mc entry was fingerprinted the old way
        # (flat rumors/protectors, no cascades/priority parts) must raise
        # rather than resume.
        indexed = chain.to_indexed()
        stale_key = run_key(
            kind="mc", model="opoao", seed=11, max_hops=5,
            nodes=indexed.node_count, edges=indexed.edge_count,
            rumors=[0], protectors=[3], ends=[],
        )
        store = CheckpointStore(tmp_path / "run.ckpt")
        store.save("mc", stale_key, {"batches": []}, rounds=0)
        with pytest.raises(CheckpointError):
            self.simulator(6, tmp_path).simulate_detailed(
                indexed,
                SeedSets(rumors=[0], protectors=[3]),
                rng=RngStream(11),
            )

    def test_k3_prefix_resume_is_bit_identical(self, chain, tmp_path):
        indexed = chain.to_indexed()
        seeds = CascadeSet([[0], [3], [5]], priority="rumor-first")

        def run(simulator):
            return simulator.simulate_detailed(
                indexed, seeds, rng=RngStream(11), end_ids=(4, 5)
            )

        full_aggregate, full_records = run(
            ParallelMonteCarloSimulator(
                OPOAOModel(), runs=12, max_hops=5, processes=2
            )
        )
        run(self.simulator(6, tmp_path))
        resumed_aggregate, resumed_records = run(self.simulator(12, tmp_path))
        assert resumed_records == full_records
        assert (
            resumed_aggregate.infected_per_hop
            == full_aggregate.infected_per_hop
        )


class TestCLICheckpointFlags:
    def test_select_checkpoint_and_resume(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "cli.ckpt"
        argv = [
            "select",
            "--dataset", "enron-small",
            "--scale", "0.02",
            "--algorithm", "greedy",
            "--budget", "2",
            "--seed", "13",
            "--checkpoint", str(path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert path.exists()
        document = json.loads(path.read_text())
        assert document["schema"] == CHECKPOINT_SCHEMA
        assert document["entries"]["greedy"]["rounds"] == 2
        # Resuming re-selects the same protectors from the saved rounds.
        assert main(argv + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert resumed == first
