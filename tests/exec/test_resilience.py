"""Fault-injection tests: timeouts, retries, degradation, error context.

The failure-semantics contract of ``docs/parallel.md``: injected worker
kills, hangs, and raises must never change *results* — chunks are
self-describing, so a retried or degraded run stays bit-identical to an
unfaulted serial one — only the ``exec.*`` bookkeeping counters record
that anything went wrong.
"""

import pytest

from repro.errors import ExecError
from repro.exec.pool import ParallelExecutor, split_chunks
from repro.exec.resilience import (
    DEFAULT_HANG_SECONDS,
    FAULTS_ENV,
    ChunkFault,
    FaultInjected,
    FaultPlan,
)
from repro.obs import MetricsRegistry, use_registry


# Worker functions must be module-level so the pool can pickle them.
def null_setup(graph, payload):
    return payload


def scale_task(state, chunk):
    from repro.obs.registry import metrics

    registry = metrics()
    if registry.enabled:
        registry.counter("test.items").add(len(chunk))
    return [state * item for item in chunk]


def failing_task(state, chunk):
    raise ValueError(f"bad chunk {chunk!r}")


def unpicklable_failing_task(state, chunk):
    error = ValueError("holds a lambda")
    error.culprit = lambda: None  # lambdas don't pickle
    raise error


def expected(chunks, factor=3):
    return [[factor * item for item in chunk] for chunk in chunks]


class TestFaultPlanParsing:
    def test_parse_single(self):
        plan = FaultPlan.parse("kill@0")
        fault = plan.lookup(0, attempt=0)
        assert fault is not None
        assert fault.action == "kill"
        assert fault.count == 1
        assert plan.lookup(0, attempt=1) is None  # count exhausted
        assert plan.lookup(1, attempt=0) is None  # other chunks unaffected

    def test_parse_count_and_seconds(self):
        plan = FaultPlan.parse("hang@2x3:0.5")
        fault = plan.lookup(2, attempt=2)
        assert fault is not None
        assert fault.action == "hang"
        assert fault.count == 3
        assert fault.seconds == 0.5
        assert plan.lookup(2, attempt=3) is None

    def test_parse_comma_separated(self):
        plan = FaultPlan.parse("raise@1,kill@3x2")
        assert plan.lookup(1, 0).action == "raise"
        assert plan.lookup(3, 1).action == "kill"
        assert bool(plan)

    def test_hang_defaults_to_long_sleep(self):
        fault = FaultPlan.parse("hang@0").lookup(0, 0)
        assert fault.seconds == DEFAULT_HANG_SECONDS

    @pytest.mark.parametrize(
        "spec",
        ["explode@0", "kill@", "kill@-1", "kill@0x0", "kill@0:1.5x2", "0@kill"],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ExecError):
            FaultPlan.parse(spec)

    def test_empty_spec_is_empty_plan(self):
        plan = FaultPlan.parse("")
        assert not plan
        assert plan.lookup(0, 0) is None

    def test_duplicate_chunk_rejected(self):
        with pytest.raises(ExecError):
            FaultPlan.parse("kill@0,raise@0")

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULTS_ENV, "raise@0")
        plan = FaultPlan.from_env()
        assert plan is not None
        assert plan.lookup(0, 0).action == "raise"

    def test_apply_raise(self):
        plan = FaultPlan([ChunkFault("raise", 4)])
        with pytest.raises(FaultInjected):
            plan.apply(4, 0)
        plan.apply(4, 1)  # exhausted: no-op
        plan.apply(0, 0)  # unaffected chunk: no-op

    def test_bad_fault_fields_rejected(self):
        with pytest.raises(ExecError):
            ChunkFault("explode", 0)
        with pytest.raises(ExecError):
            ChunkFault("kill", -1)
        with pytest.raises(ExecError):
            ChunkFault("kill", 0, count=0)


class TestRetrySemantics:
    def test_transient_raise_is_retried_bit_identical(self):
        chunks = split_chunks(list(range(12)), 2)
        serial = ParallelExecutor(1).map_chunks(null_setup, scale_task, 3, chunks)
        registry = MetricsRegistry()
        with use_registry(registry):
            faulted = ParallelExecutor(
                2, faults=FaultPlan.parse("raise@1")
            ).map_chunks(null_setup, scale_task, 3, chunks)
        assert faulted == serial == expected(chunks)
        counters = registry.counter_values()
        assert counters["exec.chunks.retried"] == 1
        assert "exec.degraded" not in counters

    def test_failed_attempt_snapshot_is_discarded(self):
        # The faulted attempt of chunk 1 dies before running the task, and
        # a failed attempt must ship no snapshot either way — so the
        # merged work counter equals the serial total exactly.
        chunks = split_chunks(list(range(12)), 2)
        registry = MetricsRegistry()
        with use_registry(registry):
            ParallelExecutor(2, faults=FaultPlan.parse("raise@1")).map_chunks(
                null_setup, scale_task, 3, chunks
            )
        assert registry.counter_values()["test.items"] == 12

    def test_ambient_env_plan(self, monkeypatch):
        chunks = split_chunks(list(range(8)), 2)
        serial = ParallelExecutor(1).map_chunks(null_setup, scale_task, 5, chunks)
        monkeypatch.setenv(FAULTS_ENV, "raise@0")
        registry = MetricsRegistry()
        with use_registry(registry):
            faulted = ParallelExecutor(2).map_chunks(
                null_setup, scale_task, 5, chunks
            )
        assert faulted == serial
        assert registry.counter_values()["exec.chunks.retried"] == 1

    def test_explicit_plan_overrides_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "kill@0x99")  # would need a timeout
        chunks = [[1], [2]]
        result = ParallelExecutor(
            2, faults=FaultPlan([])
        ).map_chunks(null_setup, scale_task, 2, chunks)
        assert result == [[2], [4]]


class TestWorkerLoss:
    def test_killed_worker_detected_and_retried(self):
        chunks = [[1, 2], [3, 4]]
        serial = ParallelExecutor(1).map_chunks(null_setup, scale_task, 3, chunks)
        registry = MetricsRegistry()
        with use_registry(registry):
            survived = ParallelExecutor(
                2, timeout=2.0, faults=FaultPlan.parse("kill@0")
            ).map_chunks(null_setup, scale_task, 3, chunks)
        assert survived == serial
        counters = registry.counter_values()
        assert counters["exec.chunks.timeout"] == 1
        assert counters["exec.chunks.retried"] == 1
        assert "exec.degraded" not in counters

    def test_hung_chunk_detected_and_retried(self):
        chunks = [[1, 2], [3, 4]]
        serial = ParallelExecutor(1).map_chunks(null_setup, scale_task, 3, chunks)
        faulted = ParallelExecutor(
            2, timeout=1.0, faults=FaultPlan.parse("hang@1:30")
        ).map_chunks(null_setup, scale_task, 3, chunks)
        assert faulted == serial


class TestDegradation:
    def test_persistent_hang_degrades_inline(self):
        chunks = [[1, 2], [3, 4]]
        serial = ParallelExecutor(1).map_chunks(null_setup, scale_task, 3, chunks)
        registry = MetricsRegistry()
        with use_registry(registry):
            degraded = ParallelExecutor(
                2, timeout=0.75, retries=1, faults=FaultPlan.parse("hang@0x2:30")
            ).map_chunks(null_setup, scale_task, 3, chunks)
        assert degraded == serial
        counters = registry.counter_values()
        assert counters["exec.degraded"] == 1
        assert counters["exec.chunks.retried"] == 1
        assert counters["exec.chunks.timeout"] == 2
        # Degraded chunks run under the caller's registry: work counters
        # still come out serial-identical.
        assert counters["test.items"] == 4

    def test_persistent_kill_degrades_inline(self):
        chunks = [[5], [6]]
        degraded = ParallelExecutor(
            2, timeout=1.0, retries=1, faults=FaultPlan.parse("kill@1x2")
        ).map_chunks(null_setup, scale_task, 2, chunks)
        assert degraded == [[10], [12]]

    def test_degrade_false_raises_on_pool_failure(self):
        with pytest.raises(ExecError) as excinfo:
            ParallelExecutor(
                2,
                timeout=0.75,
                retries=0,
                degrade=False,
                faults=FaultPlan.parse("hang@0:30"),
            ).map_chunks(null_setup, scale_task, 3, [[1, 2], [3, 4]])
        assert "chunk 0" in str(excinfo.value)
        assert "timed out or its worker was lost" in str(excinfo.value)

    def test_faults_never_fire_inline(self):
        # The inline path (one effective worker) must ignore the plan:
        # applying kill@0 there would take down the parent process.
        result = ParallelExecutor(
            1, faults=FaultPlan.parse("kill@0x99")
        ).map_chunks(null_setup, scale_task, 2, [[1], [2]])
        assert result == [[2], [4]]


class TestTaskErrorContext:
    def test_persistent_task_error_raises_not_degrades(self):
        # A chunk that raises deterministically on every attempt would
        # fail inline too — degrading would just re-raise with less
        # context, so the executor surfaces the chunk error directly.
        registry = MetricsRegistry()
        with use_registry(registry):
            with pytest.raises(ExecError) as excinfo:
                # Empty explicit plan: shields the assertion from the CI
                # leg's ambient REPRO_EXEC_FAULTS.
                ParallelExecutor(2, retries=1, faults=FaultPlan([])).map_chunks(
                    null_setup, failing_task, None, [[10, 20], [30, 40]]
                )
        message = str(excinfo.value)
        assert "chunk 0" in message
        assert "[10, 20]" in message  # item preview
        assert "2 attempt(s)" in message
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert "exec.degraded" not in registry.counter_values()

    def test_inline_task_error_names_chunk(self):
        with pytest.raises(ExecError) as excinfo:
            ParallelExecutor(1).map_chunks(
                null_setup, failing_task, None, [[7, 8, 9]]
            )
        message = str(excinfo.value)
        assert "chunk 0" in message
        assert "[7, 8, 9]" in message
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_long_chunk_preview_is_truncated(self):
        with pytest.raises(ExecError) as excinfo:
            ParallelExecutor(1).map_chunks(
                null_setup, failing_task, None, [list(range(50))]
            )
        assert "(50 items)" in str(excinfo.value)

    def test_unpicklable_task_error_still_ships(self):
        with pytest.raises(ExecError) as excinfo:
            ParallelExecutor(2, retries=0, faults=FaultPlan([])).map_chunks(
                null_setup, unpicklable_failing_task, None, [[1], [2]]
            )
        assert "unpicklable task error" in str(excinfo.value)
