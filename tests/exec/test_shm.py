"""Unit tests for graph publication (shared memory + pickle fallback)."""

import pytest

from repro.errors import ExecError
from repro.exec.shm import (
    SHARE_MODES,
    materialize_graph,
    publish_graph,
)
from repro.exec import shm as shm_module
from repro.graph.digraph import DiGraph


@pytest.fixture
def weighted():
    graph = DiGraph()
    graph.add_edge("a", "b", weight=0.25)
    graph.add_edge("a", "c", weight=1.5)
    graph.add_edge("b", "c", weight=3.0)
    return graph.to_indexed()


def assert_same_graph(rebuilt, original):
    assert rebuilt.labels == original.labels
    assert rebuilt.out == original.out
    assert rebuilt.inn == original.inn
    assert rebuilt.out_weights == original.out_weights


class TestPublishGraph:
    def test_none_graph(self):
        publication = publish_graph(None)
        assert publication.handle is None
        assert materialize_graph(None) is None
        publication.close()

    def test_pickle_round_trip(self, weighted):
        with publish_graph(weighted, share="pickle") as publication:
            rebuilt = materialize_graph(publication.handle)
        assert_same_graph(rebuilt, weighted)

    def test_auto_round_trip(self, weighted):
        # Exercises shm when NumPy is importable, pickle otherwise —
        # both legs of the CI matrix take this test.
        with publish_graph(weighted, share="auto") as publication:
            rebuilt = materialize_graph(publication.handle)
        assert_same_graph(rebuilt, weighted)

    def test_shm_round_trip(self, weighted):
        if shm_module.np is None:
            with pytest.raises(ExecError):
                publish_graph(weighted, share="shm")
            return
        with publish_graph(weighted, share="shm") as publication:
            handle = publication.handle
            assert handle.node_count == weighted.node_count
            assert handle.edge_count == weighted.edge_count
            assert len(handle.segment_names) == 3
            rebuilt = materialize_graph(handle)
        assert_same_graph(rebuilt, weighted)

    def test_weights_survive_exactly(self, weighted):
        with publish_graph(weighted) as publication:
            rebuilt = materialize_graph(publication.handle)
        # tuple() normalises both the scalar and the ndarray-backed CSR
        # export to comparable Python floats.
        assert tuple(rebuilt.csr().weights) == tuple(weighted.csr().weights)

    def test_shm_rebuild_is_ndarray_backed(self, weighted):
        # Satellite fix: workers must copy segments out as NumPy arrays,
        # not .tolist() them into O(E) Python objects.
        if shm_module.np is None:
            pytest.skip("shared memory path requires NumPy")
        with publish_graph(weighted, share="shm") as publication:
            rebuilt = materialize_graph(publication.handle)
        csr = rebuilt.csr()
        assert isinstance(csr.indptr, shm_module.np.ndarray)
        assert isinstance(csr.indices, shm_module.np.ndarray)
        assert isinstance(csr.weights, shm_module.np.ndarray)
        # ...while staying value-identical to the eagerly-built graph.
        assert_same_graph(rebuilt, weighted)

    def test_unknown_mode_rejected(self, weighted):
        with pytest.raises(ExecError):
            publish_graph(weighted, share="mmap")
        assert "mmap" not in SHARE_MODES

    def test_bad_handle_rejected(self):
        with pytest.raises(ExecError):
            materialize_graph(object())


class TestGraphPublicationLifetime:
    def test_close_is_idempotent(self, weighted):
        publication = publish_graph(weighted)
        publication.close()
        publication.close()  # second close must be a no-op

    def test_shm_segments_unlinked_after_close(self, weighted):
        if shm_module.np is None:
            pytest.skip("shared memory path requires NumPy")
        from multiprocessing import shared_memory

        publication = publish_graph(weighted, share="shm")
        names = publication.handle.segment_names
        publication.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_dropped_publication_unlinks_segments(self, weighted):
        # Satellite fix: an abandoned publication (crash, sys.exit, a
        # dropped reference) must not leak /dev/shm segments — cleanup
        # rides a weakref.finalize, which garbage collection triggers.
        if shm_module.np is None:
            pytest.skip("shared memory path requires NumPy")
        import gc

        from multiprocessing import shared_memory

        publication = publish_graph(weighted, share="shm")
        names = publication.handle.segment_names
        del publication
        gc.collect()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_materialize_works_while_open(self, weighted):
        # Workers attach while the parent holds the publication open;
        # a second attach (another worker) must also succeed.
        with publish_graph(weighted) as publication:
            first = materialize_graph(publication.handle)
            second = materialize_graph(publication.handle)
        assert_same_graph(first, weighted)
        assert_same_graph(second, weighted)


class TestEmptyGraph:
    def test_single_node_no_edges(self):
        graph = DiGraph()
        graph.add_node("only")
        indexed = graph.to_indexed()
        with publish_graph(indexed) as publication:
            rebuilt = materialize_graph(publication.handle)
        assert rebuilt.labels == ("only",)
        assert rebuilt.edge_count == 0
