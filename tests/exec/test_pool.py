"""Unit tests for the deterministic chunked process-pool executor."""

import pytest

from repro.errors import ExecError
from repro.exec.pool import (
    _WORKER_STATE,
    _init_worker,
    CHUNKS_PER_WORKER,
    ParallelExecutor,
    resolve_workers,
    split_chunks,
)
from repro.obs import MetricsRegistry, use_registry


# Worker functions must be module-level so the pool can pickle them.
def null_setup(graph, payload):
    return payload


def scale_task(state, chunk):
    """Multiply every item by the payload; count items processed."""
    from repro.obs.registry import metrics

    registry = metrics()
    if registry.enabled:
        registry.counter("test.items").add(len(chunk))
    return [state * item for item in chunk]


def graph_degree_setup(graph, payload):
    return graph


def graph_degree_task(graph, chunk):
    return [graph.out_degree(node) for node in chunk]


class TestResolveWorkers:
    def test_none_and_one_are_serial(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1

    def test_zero_and_auto_mean_cpu_count(self):
        import multiprocessing

        assert resolve_workers(0) == multiprocessing.cpu_count()
        assert resolve_workers("auto") == multiprocessing.cpu_count()

    def test_explicit_count(self):
        assert resolve_workers(3) == 3

    def test_capped_by_items(self):
        assert resolve_workers(8, items=3) == 3
        assert resolve_workers(2, items=100) == 2

    def test_zero_items_still_one_worker(self):
        assert resolve_workers(4, items=0) == 1

    def test_negative_rejected(self):
        with pytest.raises(ExecError):
            resolve_workers(-1)


class TestSplitChunks:
    def test_concatenation_reproduces_items(self):
        items = list(range(37))
        chunks = split_chunks(items, 3)
        assert [x for chunk in chunks for x in chunk] == items

    def test_contiguous_and_balanced(self):
        chunks = split_chunks(list(range(10)), 2, per_worker=2)
        assert len(chunks) == 4
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1
        assert chunks[0] == [0, 1, 2]

    def test_never_more_chunks_than_items(self):
        chunks = split_chunks([1, 2, 3], 8)
        assert len(chunks) == 3
        assert all(len(chunk) == 1 for chunk in chunks)

    def test_empty(self):
        assert split_chunks([], 4) == []

    def test_default_chunks_per_worker(self):
        chunks = split_chunks(list(range(100)), 2)
        assert len(chunks) == 2 * CHUNKS_PER_WORKER


class TestMapChunks:
    def test_inline_matches_pool(self):
        chunks = split_chunks(list(range(20)), 2)
        inline = ParallelExecutor(1).map_chunks(null_setup, scale_task, 3, chunks)
        pooled = ParallelExecutor(2).map_chunks(null_setup, scale_task, 3, chunks)
        assert pooled == inline
        assert [x for chunk in pooled for x in chunk] == [3 * i for i in range(20)]

    def test_empty_chunks(self):
        assert ParallelExecutor(2).map_chunks(null_setup, scale_task, 1, []) == []

    def test_graph_ships_to_workers(self, chain):
        indexed = chain.to_indexed()
        chunks = [[0, 1], [2, 3], [4, 5]]
        degrees = ParallelExecutor(2).map_chunks(
            graph_degree_setup, graph_degree_task, None, chunks, graph=indexed
        )
        assert [d for chunk in degrees for d in chunk] == [1, 1, 1, 1, 1, 0]

    def test_pickle_share_mode(self, chain):
        indexed = chain.to_indexed()
        degrees = ParallelExecutor(2, share="pickle").map_chunks(
            graph_degree_setup, graph_degree_task, None, [[0], [5]], graph=indexed
        )
        assert degrees == [[1], [0]]

    def test_snapshot_merge_equals_serial_counters(self):
        chunks = split_chunks(list(range(24)), 2)
        serial = MetricsRegistry()
        with use_registry(serial):
            ParallelExecutor(1).map_chunks(null_setup, scale_task, 2, chunks)
        parallel = MetricsRegistry()
        with use_registry(parallel):
            ParallelExecutor(2).map_chunks(null_setup, scale_task, 2, chunks)
        assert parallel.counter_values()["test.items"] == 24
        assert parallel.counter_values()["test.items"] == (
            serial.counter_values()["test.items"]
        )

    def test_disabled_registry_ships_no_snapshots(self):
        # Outside any use_registry block the null registry is active;
        # workers must then skip snapshot collection entirely.
        chunks = split_chunks(list(range(8)), 2)
        result = ParallelExecutor(2).map_chunks(null_setup, scale_task, 1, chunks)
        assert [x for chunk in result for x in chunk] == list(range(8))


class TestWorkerStateReset:
    def test_init_worker_clears_stale_state(self):
        # Regression: a forked worker inherits module state; a previous
        # pool's leftovers (the old _WORKER dict bug) must never survive
        # into a new pool's initializer.
        _WORKER_STATE["stale"] = "leftover"
        try:
            _init_worker()
            assert _WORKER_STATE == {}
        finally:
            _WORKER_STATE.clear()

    def test_worker_state_cached_by_spec_token(self):
        # Same spec token: state built once. New token: rebuilt.
        from repro.exec.pool import _worker_state_for

        try:
            spec = (101, null_setup, scale_task, 7, False, None, 0, None)
            assert _worker_state_for(spec) == 7
            # A different payload behind the *same* token is never read
            # again — the cache answers.
            stale = (101, null_setup, scale_task, 99, False, None, 0, None)
            assert _worker_state_for(stale) == 7
            fresh = (102, null_setup, scale_task, 99, False, None, 0, None)
            assert _worker_state_for(fresh) == 99
        finally:
            _WORKER_STATE.clear()

    def test_consecutive_pools_do_not_interfere(self):
        chunks = [[1, 2], [3, 4]]
        first = ParallelExecutor(2).map_chunks(null_setup, scale_task, 10, chunks)
        second = ParallelExecutor(2).map_chunks(null_setup, scale_task, 100, chunks)
        assert first == [[10, 20], [30, 40]]
        assert second == [[100, 200], [300, 400]]
