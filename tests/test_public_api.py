"""The public API surface stays importable and complete."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_quickstart_symbols(self):
        # The README's quickstart imports must exist.
        for name in (
            "DiGraph",
            "build_context",
            "SCBGSelector",
            "GreedySelector",
            "CELFGreedySelector",
            "DOAMModel",
            "OPOAOModel",
            "evaluate_protectors",
            "RngStream",
        ):
            assert hasattr(repro, name)

    def test_docstring_mentions_paper(self):
        assert "Rumor Blocking" in repro.__doc__
