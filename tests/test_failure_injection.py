"""Cross-module failure-injection tests.

Each test feeds a deliberately broken input through a *composed* path
(not just the validating function) and checks the failure is loud,
typed, and actionable — never a silent wrong answer.
"""

import pytest

from repro.algorithms.base import SelectionContext
from repro.algorithms.scbg import SCBGSelector
from repro.community.structure import CommunityStructure
from repro.diffusion.base import SeedSets
from repro.diffusion.doam import DOAMModel
from repro.diffusion.opoao import OPOAOModel
from repro.errors import (
    CommunityError,
    CoverageError,
    ReproError,
    SeedError,
    ValidationError,
)
from repro.graph.digraph import DiGraph
from repro.lcrb.problem import LCRBPProblem
from repro.rng import RngStream


class TestSeedFailures:
    def test_rumor_seed_equal_to_protector_everywhere(self, toy):
        graph, communities, info = toy
        indexed = graph.to_indexed()
        node = indexed.index("c1")
        with pytest.raises(SeedError):
            DOAMModel().run(indexed, SeedSets(rumors=[node], protectors=[node]))

    def test_float_seed_id_rejected(self, toy):
        graph, _, _ = toy
        indexed = graph.to_indexed()
        seeds = SeedSets(rumors=[1.0])
        with pytest.raises(SeedError):
            DOAMModel().run(indexed, seeds)

    def test_bool_seed_id_rejected(self, toy):
        graph, _, _ = toy
        indexed = graph.to_indexed()
        seeds = SeedSets(rumors=[True])
        with pytest.raises(SeedError):
            OPOAOModel().run(indexed, seeds, rng=RngStream(1))

    def test_all_failures_are_repro_errors(self, toy):
        graph, communities, _ = toy
        failures = [
            lambda: SelectionContext(graph, communities.members(0), []),
            lambda: SelectionContext(graph, communities.members(0), ["b"]),
            lambda: SeedSets(rumors=[]),
        ]
        for failure in failures:
            with pytest.raises(ReproError):
                failure()


class TestCommunityFailures:
    def test_cover_from_wrong_graph_rejected_by_problem(self, toy, fig2):
        graph, communities, info = toy
        other_graph, _, _ = fig2
        with pytest.raises(ValidationError):
            LCRBPProblem(other_graph, communities, 0, info["rumor_seeds"], alpha=0.5)

    def test_partial_cover_rejected(self, toy):
        graph, _, _ = toy
        with pytest.raises(CommunityError):
            CommunityStructure(graph, {"r": 0})

    def test_overlapping_blocks_rejected(self, toy):
        graph, _, _ = toy
        with pytest.raises(CommunityError):
            CommunityStructure.from_blocks(
                graph, [["r", "c1"], ["c1", "c2", "b", "d", "e"]]
            )


class TestCoverageFailures:
    def test_uncoverable_bridge_end_is_loud(self):
        # A bridge end at rumor distance 1 whose only in-neighbor is the
        # rumor seed itself: only the bridge end can protect itself; if we
        # exclude it from candidacy the cover must fail loudly.
        g = DiGraph.from_edges([("r", "b"), ("b", "x")])
        context = SelectionContext(g, ["r"], ["r"])
        selector = SCBGSelector()
        coverage = selector.coverage_map(context)
        coverage.pop("b")  # sabotage: remove the only covering set
        from repro.algorithms.setcover import greedy_set_cover

        with pytest.raises(CoverageError) as excinfo:
            greedy_set_cover(context.bridge_ends, coverage)
        assert "b" in excinfo.value.uncovered

    def test_impossible_heuristic_pool_is_loud(self, fig2_context):
        from repro.algorithms.heuristics import minimal_covering_prefix

        with pytest.raises(CoverageError):
            minimal_covering_prefix(fig2_context, ["q1", "q2"])


class TestNumericFailures:
    def test_negative_scale_rejected_in_registry(self):
        from repro.datasets.registry import load_dataset
        from repro.errors import ValidationError as VE

        with pytest.raises((VE, ReproError)):
            load_dataset("hep", scale=-0.5)

    def test_alpha_out_of_range_in_greedy(self):
        from repro.algorithms.greedy import GreedySelector

        with pytest.raises(ValidationError):
            GreedySelector(alpha=1.0)

    def test_zero_runs_rejected_everywhere(self):
        from repro.algorithms.greedy import GreedySelector
        from repro.diffusion.simulation import MonteCarloSimulator

        with pytest.raises(ValidationError):
            GreedySelector(runs=0)
        with pytest.raises(ValidationError):
            MonteCarloSimulator(DOAMModel(), runs=0)
