"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest
from hypothesis import settings as hypothesis_settings

from repro.algorithms.base import SelectionContext
from repro.datasets.toy import figure1_graph, figure2_graph, two_community_toy
from repro.graph.digraph import DiGraph
from repro.rng import RngStream

# The whole repository is seed-deterministic; make the property-based
# layer match (same examples every run, no cross-run flakes from narrow
# `assume` filters hitting unlucky generation seeds).
hypothesis_settings.register_profile("repro", derandomize=True)
hypothesis_settings.load_profile("repro")


@pytest.fixture
def rng() -> RngStream:
    """A fixed-seed stream; fork per-test features off it."""
    return RngStream(12345, name="test")


@pytest.fixture
def toy():
    """The minimal two-community toy: (graph, communities, info)."""
    return two_community_toy()


@pytest.fixture
def toy_context(toy) -> SelectionContext:
    graph, communities, info = toy
    return SelectionContext(
        graph, communities.members(info["rumor_community"]), info["rumor_seeds"]
    )


@pytest.fixture
def fig2():
    """The Fig. 2/3-style three-community toy: (graph, communities, info)."""
    return figure2_graph()


@pytest.fixture
def fig2_context(fig2) -> SelectionContext:
    graph, communities, info = fig2
    return SelectionContext(
        graph, communities.members(info["rumor_community"]), info["rumor_seeds"]
    )


@pytest.fixture
def fig1():
    """The Fig. 1 timestamp example: (graph, schedule)."""
    return figure1_graph()


@pytest.fixture
def diamond() -> DiGraph:
    """A 4-node diamond: s -> a, s -> b, a -> t, b -> t."""
    return DiGraph.from_edges([("s", "a"), ("s", "b"), ("a", "t"), ("b", "t")])


@pytest.fixture
def chain() -> DiGraph:
    """A directed 6-chain 0 -> 1 -> ... -> 5."""
    return DiGraph.from_edges([(i, i + 1) for i in range(5)])


@pytest.fixture
def cycle() -> DiGraph:
    """A directed 5-cycle."""
    return DiGraph.from_edges([(i, (i + 1) % 5) for i in range(5)])
