"""Property-based tests for the graph substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.components import (
    strongly_connected_components,
    weakly_connected_components,
)
from repro.graph.digraph import DiGraph
from repro.graph.metrics import degree_histogram
from repro.graph.subgraph import induced_subgraph
from repro.graph.traversal import bfs_distances, multi_source_distances


@st.composite
def small_digraphs(draw):
    """Random digraphs with up to 12 nodes and 30 edges."""
    n = draw(st.integers(min_value=1, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=30,
        )
    )
    graph = DiGraph()
    graph.add_nodes(range(n))
    for tail, head in edges:
        if tail != head:
            graph.add_edge(tail, head)
    return graph


@st.composite
def mutation_sequences(draw):
    """A graph built by a random add/remove sequence."""
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["add_edge", "remove_edge", "add_node", "remove_node"]),
                st.integers(min_value=0, max_value=8),
                st.integers(min_value=0, max_value=8),
            ),
            max_size=40,
        )
    )
    graph = DiGraph()
    for op, u, v in ops:
        if op == "add_edge" and u != v:
            graph.add_edge(u, v)
        elif op == "add_node":
            graph.add_node(u)
        elif op == "remove_edge" and graph.has_edge(u, v):
            graph.remove_edge(u, v)
        elif op == "remove_node" and graph.has_node(u):
            graph.remove_node(u)
    return graph


class TestGraphInvariants:
    @given(small_digraphs())
    @settings(max_examples=60, deadline=None)
    def test_in_out_degree_sums_equal_edge_count(self, graph):
        out_total = sum(graph.out_degree(n) for n in graph.nodes())
        in_total = sum(graph.in_degree(n) for n in graph.nodes())
        assert out_total == in_total == graph.edge_count

    @given(mutation_sequences())
    @settings(max_examples=60, deadline=None)
    def test_mutation_preserves_consistency(self, graph):
        graph.validate()

    @given(small_digraphs())
    @settings(max_examples=40, deadline=None)
    def test_reverse_preserves_degree_profile(self, graph):
        reverse = graph.reverse()
        for node in graph.nodes():
            assert graph.out_degree(node) == reverse.in_degree(node)
            assert graph.in_degree(node) == reverse.out_degree(node)

    @given(small_digraphs())
    @settings(max_examples=40, deadline=None)
    def test_histogram_sums_to_node_count(self, graph):
        assert sum(degree_histogram(graph, "out")) == graph.node_count

    @given(small_digraphs(), st.sets(st.integers(0, 11), max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_induced_subgraph_closed(self, graph, nodes):
        keep = {n for n in nodes if n in graph}
        sub = induced_subgraph(graph, keep)
        assert set(sub.nodes()) == keep
        for tail, head in sub.edges():
            assert graph.has_edge(tail, head)
        sub.validate()


class TestTraversalInvariants:
    @given(small_digraphs())
    @settings(max_examples=40, deadline=None)
    def test_distance_triangle_step(self, graph):
        # Each BFS distance is predecessor's distance + 1.
        distances = bfs_distances(graph, 0)
        for node, distance in distances.items():
            if distance == 0:
                continue
            assert any(
                distances.get(pred) == distance - 1
                for pred in graph.predecessors(node)
            )

    @given(small_digraphs())
    @settings(max_examples=40, deadline=None)
    def test_multi_source_is_min_of_singles(self, graph):
        sources = [n for n in (0, min(graph.node_count - 1, 3)) if n in graph]
        combined = multi_source_distances(graph, sources)
        singles = [bfs_distances(graph, s) for s in sources]
        for node, distance in combined.items():
            assert distance == min(
                d.get(node, float("inf")) for d in singles
            )


class TestComponentInvariants:
    @given(small_digraphs())
    @settings(max_examples=40, deadline=None)
    def test_weak_components_partition_nodes(self, graph):
        components = weakly_connected_components(graph)
        seen = [n for component in components for n in component]
        assert sorted(seen) == sorted(graph.nodes())
        assert len(seen) == len(set(seen))

    @given(small_digraphs())
    @settings(max_examples=40, deadline=None)
    def test_sccs_partition_and_refine_weak(self, graph):
        sccs = strongly_connected_components(graph)
        seen = [n for component in sccs for n in component]
        assert sorted(seen) == sorted(graph.nodes())
        weak = weakly_connected_components(graph)
        for scc in sccs:
            assert any(scc <= component for component in weak)
