"""Statistical agreement of the RR-sketch estimator with Monte-Carlo σ.

Under DOAM both estimators compute the same deterministic quantity, so
they must agree **exactly** on every protector set. Under OPOAO the
sketch samples the submodularity proof's coupled ``(G_R, G_P)``
construction; on protector-community candidates (the pool LCRB-P
actually selects from) it matches the interacting Monte-Carlo estimate
within sampling error — verified here with a tolerance a few times wider
than the combined standard errors at the chosen sample sizes.
"""

from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import SelectionContext
from repro.algorithms.greedy import SigmaEstimator
from repro.datasets.toy import figure2_graph, two_community_toy
from repro.diffusion.doam import DOAMModel
from repro.rng import RngStream
from repro.sketch.estimator import SketchSigmaEstimator

# Sample sizes keep per-test wall clock small; per-world counts lie in
# [0, |B|] with |B| <= 3, so the two standard errors total well under
# 0.1 and the tolerance below leaves several sigmas of slack.
WORLDS = 400
RUNS = 400
TOLERANCE = 0.25

# Eligible protectors outside the rumor community (the paper's protector
# originators live in the R-neighbor communities).
TOY_CANDIDATES = ("b", "d", "e")
FIG2_CANDIDATES = ("p1", "p2", "p3", "v1", "q1", "q2", "R1", "s1", "s2")


@lru_cache(maxsize=None)
def _context(name) -> SelectionContext:
    graph, communities, info = (
        two_community_toy() if name == "toy" else figure2_graph()
    )
    return SelectionContext(
        graph, communities.members(info["rumor_community"]), info["rumor_seeds"]
    )


@st.composite
def candidate_subsets(draw, pool):
    size = draw(st.integers(min_value=0, max_value=min(3, len(pool))))
    indices = draw(
        st.sets(st.integers(0, len(pool) - 1), min_size=size, max_size=size)
    )
    return [pool[i] for i in sorted(indices)]


class TestDOAMExact:
    @given(protectors=candidate_subsets(TOY_CANDIDATES))
    @settings(max_examples=30, deadline=None)
    def test_toy_equality(self, protectors):
        context = _context("toy")
        sketch = SketchSigmaEstimator(context, semantics="doam")
        reference = SigmaEstimator(context, model=DOAMModel(), runs=1)
        assert sketch.sigma(protectors) == reference.sigma(protectors)

    @given(protectors=candidate_subsets(FIG2_CANDIDATES))
    @settings(max_examples=30, deadline=None)
    def test_figure2_equality(self, protectors):
        context = _context("fig2")
        sketch = SketchSigmaEstimator(context, semantics="doam")
        reference = SigmaEstimator(context, model=DOAMModel(), runs=1)
        assert sketch.sigma(protectors) == reference.sigma(protectors)


class TestOPOAOUnbiased:
    @pytest.fixture()
    def toy_estimators(self, toy_context):
        return (
            SketchSigmaEstimator(
                toy_context, semantics="opoao", worlds=WORLDS, rng=RngStream(3)
            ),
            SigmaEstimator(toy_context, runs=RUNS, rng=RngStream(17)),
        )

    @pytest.fixture()
    def fig2_estimators(self, fig2_context):
        return (
            SketchSigmaEstimator(
                fig2_context, semantics="opoao", worlds=WORLDS, rng=RngStream(3)
            ),
            SigmaEstimator(fig2_context, runs=RUNS, rng=RngStream(17)),
        )

    @pytest.mark.parametrize(
        "protectors", [["d"], ["e"], ["b"], ["d", "e"], []]
    )
    def test_toy_agreement(self, toy_estimators, protectors):
        sketch, mc = toy_estimators
        assert sketch.sigma(protectors) == pytest.approx(
            mc.sigma(protectors), abs=TOLERANCE
        )

    @pytest.mark.parametrize(
        "protectors",
        [["v1"], ["R1"], ["s1"], ["s2"], ["v1", "R1"], ["v1", "s1"], ["q1"]],
    )
    def test_figure2_agreement(self, fig2_estimators, protectors):
        sketch, mc = fig2_estimators
        assert sketch.sigma(protectors) == pytest.approx(
            mc.sigma(protectors), abs=TOLERANCE
        )

    def test_protected_fraction_agreement(self, fig2_estimators, fig2_context):
        sketch, _ = fig2_estimators
        from repro.lcrb import evaluate_protectors
        from repro.diffusion.opoao import OPOAOModel

        simulated = evaluate_protectors(
            fig2_context,
            ["v1", "R1"],
            OPOAOModel(),
            runs=RUNS,
            rng=RngStream(23),
        )
        assert sketch.protected_fraction(["v1", "R1"]) == pytest.approx(
            simulated.protected_bridge_fraction, abs=0.1
        )
