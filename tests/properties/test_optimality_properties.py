"""Approximation-guarantee property tests against brute force.

On instances small enough to solve exactly, the approximation bounds the
paper proves must hold numerically:

* greedy set cover within ``H_n`` of the optimum (Theorem 2's engine);
* SCBG's protector count within ``H_{|B|}`` of the smallest protector set
  that protects every bridge end under DOAM;
* the batched kernel backends' DOAM sigma is *exact*, so every available
  backend must report the value the per-run reference model computes.
"""

import itertools

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.algorithms.base import SelectionContext
from repro.algorithms.scbg import SCBGSelector
from repro.algorithms.setcover import cover_deficit, greedy_set_cover
from repro.graph.digraph import DiGraph
from repro.kernels.registry import available_backends


def harmonic(n: int) -> float:
    return sum(1.0 / i for i in range(1, n + 1)) if n > 0 else 1.0


@st.composite
def tiny_cover_instances(draw):
    universe = draw(st.sets(st.integers(0, 7), min_size=1, max_size=7))
    n_sets = draw(st.integers(min_value=1, max_value=6))
    sets = {}
    for index in range(n_sets):
        members = draw(st.sets(st.sampled_from(sorted(universe)), max_size=5))
        sets[f"s{index}"] = frozenset(members)
    return universe, sets


def brute_force_cover_size(universe, sets):
    keys = list(sets)
    for size in range(len(keys) + 1):
        for combo in itertools.combinations(keys, size):
            covered = set()
            for key in combo:
                covered |= sets[key]
            if universe <= covered:
                return size
    return None


class TestSetCoverRatio:
    @given(tiny_cover_instances())
    @settings(max_examples=120, deadline=None)
    def test_greedy_within_harmonic_of_optimum(self, instance):
        universe, sets = instance
        assume(not cover_deficit(universe, sets))
        greedy = greedy_set_cover(universe, sets)
        optimum = brute_force_cover_size(universe, sets)
        assert optimum is not None
        assert len(greedy) <= harmonic(len(universe)) * optimum + 1e-9


@st.composite
def tiny_lcrb_instances(draw):
    """Two-block graphs with <= 8 nodes: block 0 holds the rumor seed."""
    block_a = draw(st.integers(min_value=1, max_value=4))
    block_b = draw(st.integers(min_value=1, max_value=4))
    n = block_a + block_b
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=16,
        )
    )
    graph = DiGraph()
    graph.add_nodes(range(n))
    for tail, head in edges:
        if tail != head:
            graph.add_edge(tail, head)
    seed = draw(st.integers(0, block_a - 1))
    return graph, set(range(block_a)), [seed]


class TestScbgRatio:
    @given(tiny_lcrb_instances())
    @settings(max_examples=80, deadline=None)
    def test_scbg_within_harmonic_of_optimum(self, instance):
        from repro.algorithms.exhaustive import optimal_protector_set

        graph, community, seeds = instance
        context = SelectionContext(graph, community, seeds)
        assume(context.bridge_ends)
        cover = SCBGSelector().select(context)
        candidates = [node for node in graph.nodes() if context.eligible(node)]
        optimum = optimal_protector_set(
            context, candidates=candidates, max_size=len(cover)
        )
        bound = harmonic(len(context.bridge_ends)) * max(len(optimum), 1)
        assert len(cover) <= bound + 1e-9

    @given(tiny_lcrb_instances())
    @settings(
        max_examples=80,
        deadline=None,
        derandomize=True,  # |B| == 1 is a narrow filter; keep the search reproducible
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    def test_scbg_matches_optimum_for_singleton_bridge_sets(self, instance):
        # With |B| = 1, H_1 = 1: greedy set cover must be exactly optimal.
        graph, community, seeds = instance
        context = SelectionContext(graph, community, seeds)
        assume(len(context.bridge_ends) == 1)
        cover = SCBGSelector().select(context)
        assert len(cover) == 1  # a single bridge end always has a 1-cover


class TestKernelSigmaExactUnderDoam:
    """DOAM is deterministic, so every kernel backend's sigma must equal
    the count of bridge ends the per-run reference model says are saved."""

    @staticmethod
    def reference_saved_ends(context, protectors) -> int:
        from repro.diffusion.base import INFECTED, SeedSets
        from repro.diffusion.doam import DOAMModel

        indexed = context.indexed
        end_ids = context.bridge_end_ids()

        def infected_ends(protector_labels):
            seeds = SeedSets(
                rumors=context.rumor_seed_ids(),
                protectors=indexed.indices(protector_labels),
            )
            outcome = DOAMModel().run(indexed, seeds, max_hops=16)
            return {
                end for end in end_ids if outcome.states[end] == INFECTED
            }

        return len(infected_ends([]) - infected_ends(protectors))

    @pytest.mark.parametrize("backend_name", available_backends())
    @given(instance=tiny_lcrb_instances())
    @settings(max_examples=40, deadline=None)
    def test_backend_sigma_matches_reference(self, backend_name, instance):
        from repro.diffusion.doam import DOAMModel
        from repro.kernels.sigma import BatchedSigmaEvaluator

        graph, community, seeds = instance
        context = SelectionContext(graph, community, seeds)
        assume(context.bridge_ends)
        cover = SCBGSelector().select(context)
        assume(cover)
        evaluator = BatchedSigmaEvaluator(
            context, model=DOAMModel(), max_hops=16, backend=backend_name
        )
        assert evaluator.sigma(cover) == self.reference_saved_ends(
            context, cover
        )
