"""Order-independence of the repro.obs snapshot-and-merge protocol.

The parallel layers rely on merge order not mattering: chunk snapshots
are merged home in chunk order, but retries/degradation can legally
reorder which snapshot carries which share of the work. These properties
pin the algebra: counters and timers are commutative sums, gauges are a
commutative max, and histograms keep raw values so every *summary*
statistic (count, mean, exact percentiles) is permutation-invariant.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import MetricsRegistry


@st.composite
def snapshots(draw):
    """A list of worker snapshots over a small shared name pool."""
    names = ["work.a", "work.b", "work.c"]
    count = draw(st.integers(min_value=1, max_value=5))
    made = []
    for _ in range(count):
        registry = MetricsRegistry()
        for name in draw(st.lists(st.sampled_from(names), max_size=4)):
            registry.inc(name, draw(st.integers(min_value=0, max_value=100)))
        for name in draw(st.lists(st.sampled_from(names), max_size=3)):
            # gauges are non-negative levels (residual counts, pool sizes);
            # a fresh gauge starts at 0.0, so max-merge floors at zero
            registry.set_gauge(name, draw(st.integers(min_value=0, max_value=50)))
        for name in draw(st.lists(st.sampled_from(names), max_size=3)):
            for value in draw(
                st.lists(
                    st.floats(
                        min_value=-100,
                        max_value=100,
                        allow_nan=False,
                        allow_infinity=False,
                    ),
                    max_size=5,
                )
            ):
                registry.observe(name, value)
        made.append(registry.snapshot())
    return made


def merged(snaps):
    registry = MetricsRegistry()
    for snap in snaps:
        registry.merge_snapshot(snap)
    return registry


def comparable(registry):
    """Everything a merged registry reports, histograms as summaries."""
    document = registry.to_dict()
    raw_sorted = {
        name: sorted(histogram.values)
        for name, histogram in registry._histograms.items()
    }
    return document["counters"], document["gauges"], document["histograms"], raw_sorted


class TestMergeOrderIndependence:
    @given(snaps=snapshots(), seed=st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_any_permutation_merges_identically(self, snaps, seed):
        shuffled = list(snaps)
        seed.shuffle(shuffled)
        base_counters, base_gauges, base_hists, base_raw = comparable(merged(snaps))
        perm_counters, perm_gauges, perm_hists, perm_raw = comparable(
            merged(shuffled)
        )
        assert perm_counters == base_counters
        assert perm_gauges == base_gauges
        assert perm_raw == base_raw
        # summary statistics (count/min/max/percentiles) are exact and
        # permutation-invariant; the mean is a float sum, so compare it
        # with tolerance rather than bitwise
        assert set(perm_hists) == set(base_hists)
        for name in base_hists:
            base_summary = dict(base_hists[name])
            perm_summary = dict(perm_hists[name])
            base_mean = base_summary.pop("mean")
            perm_mean = perm_summary.pop("mean")
            assert perm_summary == base_summary
            assert math.isclose(perm_mean, base_mean, rel_tol=1e-9, abs_tol=1e-9)

    @given(snaps=snapshots())
    @settings(max_examples=30, deadline=None)
    def test_merge_totals_match_hand_fold(self, snaps):
        registry = merged(snaps)
        for name in ("work.a", "work.b", "work.c"):
            expected = sum(snap["counters"].get(name, 0) for snap in snaps)
            assert registry.counter_value(name) == expected
            gauge_values = [
                snap["gauges"][name] for snap in snaps if name in snap["gauges"]
            ]
            if gauge_values:
                assert registry.gauge(name).value == max(gauge_values)
            observations = [
                value
                for snap in snaps
                for value in snap["histograms"].get(name, [])
            ]
            if observations:
                assert sorted(registry.histogram(name).values) == sorted(observations)
