"""Property-based tests for the diffusion models' Section III invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion.base import INACTIVE, INFECTED, PROTECTED, SeedSets
from repro.diffusion.doam import DOAMModel
from repro.diffusion.ic import CompetitiveICModel
from repro.diffusion.lt import CompetitiveLTModel
from repro.diffusion.opoao import OPOAOModel
from repro.graph.digraph import DiGraph
from repro.graph.traversal import multi_source_distances
from repro.rng import RngStream


@st.composite
def diffusion_instances(draw):
    """(graph, rumor_ids, protector_ids) with disjoint non-empty rumors."""
    n = draw(st.integers(min_value=2, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=36,
        )
    )
    graph = DiGraph()
    graph.add_nodes(range(n))
    for tail, head in edges:
        if tail != head:
            graph.add_edge(tail, head)
    rumors = draw(st.sets(st.integers(0, n - 1), min_size=1, max_size=3))
    protectors = draw(st.sets(st.integers(0, n - 1), max_size=3)) - rumors
    return graph, sorted(rumors), sorted(protectors)


MODELS = [
    lambda: OPOAOModel(),
    lambda: DOAMModel(),
    lambda: CompetitiveICModel(probability=0.6),
    lambda: CompetitiveLTModel(),
]


class TestCommonProperties:
    @given(diffusion_instances(), st.integers(0, 3), st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_seeds_keep_their_status(self, instance, model_index, seed):
        graph, rumors, protectors = instance
        model = MODELS[model_index]()
        outcome = model.run(
            graph.to_indexed(),
            SeedSets(rumors=rumors, protectors=protectors),
            rng=RngStream(seed),
            max_hops=20,
        )
        for node in rumors:
            assert outcome.states[node] == INFECTED
        for node in protectors:
            assert outcome.states[node] == PROTECTED

    @given(diffusion_instances(), st.integers(0, 3), st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_trace_counts_match_final_states(self, instance, model_index, seed):
        graph, rumors, protectors = instance
        model = MODELS[model_index]()
        outcome = model.run(
            graph.to_indexed(),
            SeedSets(rumors=rumors, protectors=protectors),
            rng=RngStream(seed),
            max_hops=20,
        )
        assert outcome.trace.infected[-1] == outcome.infected_count
        assert outcome.trace.protected[-1] == outcome.protected_count

    @given(diffusion_instances(), st.integers(0, 3), st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_progressive_cumulative_counts(self, instance, model_index, seed):
        graph, rumors, protectors = instance
        model = MODELS[model_index]()
        outcome = model.run(
            graph.to_indexed(),
            SeedSets(rumors=rumors, protectors=protectors),
            rng=RngStream(seed),
            max_hops=20,
        )
        for series in (outcome.trace.infected, outcome.trace.protected):
            assert all(b >= a for a, b in zip(series, series[1:]))

    @given(diffusion_instances(), st.integers(0, 3), st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_activation_only_within_reachability(self, instance, model_index, seed):
        graph, rumors, protectors = instance
        model = MODELS[model_index]()
        indexed = graph.to_indexed()
        outcome = model.run(
            indexed,
            SeedSets(rumors=rumors, protectors=protectors),
            rng=RngStream(seed),
            max_hops=20,
        )
        reachable = set(multi_source_distances(graph, rumors + protectors))
        for node in range(indexed.node_count):
            if outcome.states[node] != INACTIVE:
                assert node in reachable


def _doam_oracle(graph, rumors, protectors):
    """Independent DOAM oracle: Bellman-Ford fixpoint on arrival times.

    A node spreads P once protected (t_P <= t_R) and R once infected
    (t_R < t_P); arrivals relax along edges until stable. This formulation
    never simulates fronts, so agreement with the step simulator is a real
    cross-check, not a tautology.
    """
    INF = float("inf")
    t_p = {node: INF for node in graph.nodes()}
    t_r = {node: INF for node in graph.nodes()}
    for node in protectors:
        t_p[node] = 0.0
    for node in rumors:
        t_r[node] = 0.0
    changed = True
    while changed:
        changed = False
        for tail, head in graph.edges():
            if t_p[tail] <= t_r[tail] and t_p[tail] + 1 < t_p[head]:
                t_p[head] = t_p[tail] + 1
                changed = True
            if t_r[tail] < t_p[tail] and t_r[tail] + 1 < t_r[head]:
                t_r[head] = t_r[tail] + 1
                changed = True
    status = {}
    for node in graph.nodes():
        if t_p[node] <= t_r[node] and t_p[node] < INF:
            status[node] = PROTECTED
        elif t_r[node] < t_p[node]:
            status[node] = INFECTED
        else:
            status[node] = INACTIVE
    return status


class TestDoamOracle:
    @given(diffusion_instances())
    @settings(max_examples=100, deadline=None)
    def test_simulator_matches_fixpoint_oracle(self, instance):
        graph, rumors, protectors = instance
        indexed = graph.to_indexed()
        outcome = DOAMModel().run(
            indexed, SeedSets(rumors=rumors, protectors=protectors), max_hops=50
        )
        oracle = _doam_oracle(graph, set(rumors), set(protectors))
        for node_id in range(indexed.node_count):
            label = indexed.labels[node_id]
            assert outcome.states[node_id] == oracle[label], label


class TestOpoaoSpecifics:
    @given(diffusion_instances(), st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_one_activation_per_active_node_per_step(self, instance, seed):
        # Each active node targets at most one neighbor per step, so the
        # newly-activated count per hop is bounded by the previously
        # active count.
        graph, rumors, protectors = instance
        outcome = OPOAOModel().run(
            graph.to_indexed(),
            SeedSets(rumors=rumors, protectors=protectors),
            rng=RngStream(seed),
            max_hops=15,
        )
        trace = outcome.trace
        for hop in range(1, trace.hops):
            active_before = trace.infected[hop - 1] + trace.protected[hop - 1]
            newly = len(trace.newly_infected[hop]) + len(trace.newly_protected[hop])
            assert newly <= active_before


class TestDoamSpecifics:
    @given(diffusion_instances())
    @settings(max_examples=60, deadline=None)
    def test_doam_arrival_bounded_by_bfs_distance(self, instance):
        # No cascade moves faster than one hop per step: a node first
        # activates no earlier than its BFS distance from the seeds.
        graph, rumors, protectors = instance
        indexed = graph.to_indexed()
        outcome = DOAMModel().run(
            indexed, SeedSets(rumors=rumors, protectors=protectors), max_hops=30
        )
        distances = multi_source_distances(graph, rumors + protectors)
        for hop, batch in enumerate(outcome.trace.newly_infected):
            for node in batch:
                assert distances[node] <= hop
        for hop, batch in enumerate(outcome.trace.newly_protected):
            for node in batch:
                assert distances[node] <= hop

    @given(diffusion_instances(), st.integers(0, 11))
    @settings(max_examples=60, deadline=None)
    def test_doam_protector_monotonicity(self, instance, extra):
        graph, rumors, protectors = instance
        if extra in rumors or extra >= graph.node_count:
            return
        indexed = graph.to_indexed()
        base = DOAMModel().run(
            indexed, SeedSets(rumors=rumors, protectors=protectors), max_hops=30
        )
        grown = DOAMModel().run(
            indexed,
            SeedSets(rumors=rumors, protectors=set(protectors) | {extra}),
            max_hops=30,
        )
        assert set(base.protected_ids()) <= set(grown.protected_ids())
        assert grown.infected_count <= base.infected_count
