"""Property-based tests for selection algorithms and set cover."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.algorithms.base import SelectionContext
from repro.algorithms.scbg import SCBGSelector
from repro.algorithms.setcover import cover_deficit, greedy_set_cover
from repro.algorithms.heuristics import prefix_protects_all
from repro.bridge.rfst import find_bridge_ends
from repro.errors import CoverageError
from repro.graph.digraph import DiGraph


@st.composite
def cover_instances(draw):
    """Random (universe, sets) pairs, not necessarily feasible."""
    universe = draw(st.sets(st.integers(0, 15), max_size=10))
    n_sets = draw(st.integers(min_value=0, max_value=8))
    sets = {}
    for index in range(n_sets):
        members = draw(st.sets(st.integers(0, 15), max_size=6))
        sets[f"s{index}"] = frozenset(members)
    return universe, sets


@st.composite
def lcrb_instances(draw):
    """Random two-block community graphs with rumor seeds in block 0."""
    block_a = draw(st.integers(min_value=2, max_value=5))
    block_b = draw(st.integers(min_value=2, max_value=5))
    n = block_a + block_b
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=25,
        )
    )
    graph = DiGraph()
    graph.add_nodes(range(n))
    for tail, head in edges:
        if tail != head:
            graph.add_edge(tail, head)
    community = set(range(block_a))
    seeds = draw(
        st.sets(st.integers(0, block_a - 1), min_size=1, max_size=2)
    )
    return graph, community, sorted(seeds)


class TestSetCoverProperties:
    @given(cover_instances())
    @settings(max_examples=80, deadline=None)
    def test_feasible_instances_get_feasible_covers(self, instance):
        universe, sets = instance
        if cover_deficit(universe, sets):
            try:
                greedy_set_cover(universe, sets)
                assert False, "expected CoverageError"
            except CoverageError as exc:
                assert exc.uncovered == cover_deficit(universe, sets)
            return
        cover = greedy_set_cover(universe, sets)
        covered = set()
        for key in cover:
            covered |= sets[key]
        assert universe <= covered
        assert len(cover) == len(set(cover))

    @given(cover_instances())
    @settings(max_examples=80, deadline=None)
    def test_no_redundant_final_pick(self, instance):
        # Greedy never picks a set contributing zero new elements.
        universe, sets = instance
        assume(not cover_deficit(universe, sets))
        cover = greedy_set_cover(universe, sets)
        covered = set()
        for key in cover:
            fresh = (sets[key] & universe) - covered
            assert fresh or not universe
            covered |= sets[key]


class TestBridgeEndProperties:
    @given(lcrb_instances())
    @settings(max_examples=80, deadline=None)
    def test_bridge_end_definition_holds(self, instance):
        graph, community, seeds = instance
        ends = find_bridge_ends(graph, community, seeds)
        from repro.graph.traversal import multi_source_distances

        reachable = set(multi_source_distances(graph, seeds))
        for end in ends:
            assert end not in community
            assert end in reachable
            assert any(p in community for p in graph.predecessors(end))

    @given(lcrb_instances())
    @settings(max_examples=60, deadline=None)
    def test_scbg_cover_always_protects_all(self, instance):
        graph, community, seeds = instance
        context = SelectionContext(graph, community, seeds)
        cover = SCBGSelector().select(context)
        assert prefix_protects_all(context, cover)

    @given(lcrb_instances())
    @settings(max_examples=60, deadline=None)
    def test_scbg_never_selects_rumor_seeds(self, instance):
        graph, community, seeds = instance
        context = SelectionContext(graph, community, seeds)
        cover = SCBGSelector().select(context)
        assert not set(cover) & set(seeds)

    @given(lcrb_instances())
    @settings(max_examples=60, deadline=None)
    def test_scbg_cover_has_nonnegative_slack(self, instance):
        # The closed-form arrival analysis must agree that every bridge
        # end protected by the SCBG cover has slack >= 0 (P wins ties).
        graph, community, seeds = instance
        context = SelectionContext(graph, community, seeds)
        if not context.bridge_ends:
            return
        from repro.diffusion.arrival import protection_slack

        cover = SCBGSelector().select(context)
        slack = protection_slack(
            graph, seeds, cover, sorted(context.bridge_ends, key=repr)
        )
        for end, value in slack.items():
            assert value >= 0, (end, value)

    @given(lcrb_instances())
    @settings(max_examples=60, deadline=None)
    def test_bbst_coverage_is_sound(self, instance):
        # Every bridge end the BBST criterion credits to a candidate is
        # genuinely saved when that candidate alone is seeded (the
        # triangle-inequality argument in repro.bridge.coverage).
        graph, community, seeds = instance
        context = SelectionContext(graph, community, seeds)
        if not context.bridge_ends:
            return
        from repro.bridge.coverage import blocking_aware_coverage

        selector = SCBGSelector()
        claimed = selector.coverage_map(context)
        exact = blocking_aware_coverage(
            graph, seeds, sorted(claimed, key=repr), sorted(context.bridge_ends, key=repr)
        )
        for candidate, ends in claimed.items():
            assert ends <= exact[candidate]
