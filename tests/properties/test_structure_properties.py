"""Property-based tests for structural helpers added late in the build:
views, k-core, arrival analysis, and community metrics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion.arrival import doam_arrival_times
from repro.diffusion.base import INACTIVE, INFECTED, PROTECTED
from repro.graph.digraph import DiGraph
from repro.graph.kcore import core_numbers


@st.composite
def small_digraphs(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=30,
        )
    )
    graph = DiGraph()
    graph.add_nodes(range(n))
    for tail, head in edges:
        if tail != head:
            graph.add_edge(tail, head)
    return graph


class TestViewInvariants:
    @given(small_digraphs())
    @settings(max_examples=50, deadline=None)
    def test_views_agree_with_direct_queries(self, graph):
        nodes = graph.nodes_view()
        edges = graph.edges_view()
        assert len(nodes) == graph.node_count
        assert len(edges) == graph.edge_count
        assert set(nodes) == set(graph.nodes())
        assert set(edges) == set(graph.edges())
        degrees = graph.degree_view("out")
        assert sum(degrees[n] for n in degrees) == graph.edge_count


class TestKCoreInvariants:
    @given(small_digraphs())
    @settings(max_examples=50, deadline=None)
    def test_core_bounded_by_degree(self, graph):
        cores = core_numbers(graph)
        for node, core in cores.items():
            sym_degree = len(
                (set(graph.successors(node)) | set(graph.predecessors(node)))
                - {node}
            )
            assert 0 <= core <= sym_degree

    @given(small_digraphs())
    @settings(max_examples=50, deadline=None)
    def test_k_core_subgraph_min_degree(self, graph):
        from repro.graph.kcore import k_core_subgraph

        cores = core_numbers(graph)
        if not cores:
            return
        k = max(cores.values())
        sub = k_core_subgraph(graph, k)
        # Inside the k-core every node keeps symmetrised degree >= k.
        for node in sub.nodes():
            sym_degree = len(
                (set(sub.successors(node)) | set(sub.predecessors(node))) - {node}
            )
            assert sym_degree >= k


class TestArrivalInvariants:
    @given(small_digraphs(), st.integers(0, 11), st.integers(0, 11))
    @settings(max_examples=60, deadline=None)
    def test_status_consistent_with_times(self, graph, rumor, protector):
        if rumor >= graph.node_count or protector >= graph.node_count:
            return
        if rumor == protector:
            return
        t_p, t_r, status = doam_arrival_times(
            graph, rumors=[rumor], protectors=[protector]
        )
        for node in graph.nodes():
            if status[node] == PROTECTED:
                assert t_p[node] <= t_r[node]
            elif status[node] == INFECTED:
                assert t_r[node] < t_p[node]
            else:
                assert status[node] == INACTIVE

    @given(small_digraphs(), st.integers(0, 11))
    @settings(max_examples=60, deadline=None)
    def test_rumor_only_times_equal_bfs(self, graph, rumor):
        if rumor >= graph.node_count:
            return
        from repro.graph.traversal import bfs_distances

        _, t_r, _ = doam_arrival_times(graph, rumors=[rumor])
        bfs = bfs_distances(graph, rumor)
        for node, hops in bfs.items():
            assert t_r[node] == float(hops)
