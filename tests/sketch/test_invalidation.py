"""Incremental sketch invalidation: refresh == from-scratch resampling.

Property harness for the dynamic-graph path. The contract under test:

* **Bit-identity** (footprint rule): after any edge-mutation sequence,
  ``store.refresh(touched)`` leaves the store's flat arrays identical
  to a store sampled from scratch on the mutated graph with the same
  base seed — worlds are pure functions of their replica index, and the
  footprint rule resamples exactly the worlds whose inputs changed.
* **Statistical agreement** (different seeds): a refreshed store and an
  independently-seeded from-scratch store estimate the same σ̂ within
  the usual Monte-Carlo tolerance.
* The ``"members"`` rule is approximate but self-consistent.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.graph.compact import IndexedDiGraph
from repro.graph.generators import erdos_renyi
from repro.rng import RngStream
from repro.sketch.rrset import DOAMRRSampler, OPOAORRSampler
from repro.sketch.store import SketchStore

NODES = 40
RUMOR = [0, 1]
ENDS = [10, 11, 12, 13]


def build_graph(seed: int = 7) -> IndexedDiGraph:
    digraph = erdos_renyi(NODES, 0.08, rng=RngStream(seed), directed=True)
    return IndexedDiGraph.from_digraph(digraph)


def opoao_store(graph, worlds: int = 16, seed: int = 42) -> SketchStore:
    sampler = OPOAORRSampler(graph, RUMOR, ENDS, steps=8, rng=RngStream(seed))
    return SketchStore(sampler).ensure_worlds(worlds)


def assert_stores_identical(actual: SketchStore, expected: SketchStore):
    assert actual._members == expected._members
    assert actual._offsets == expected._offsets
    assert actual._roots == expected._roots
    assert actual._world_of == expected._world_of
    assert actual._sets_per_world == expected._sets_per_world
    assert actual._footprints == expected._footprints
    assert actual.nodes() == expected.nodes()
    for node in expected.nodes():
        assert list(actual.sets_containing(node)) == list(
            expected.sets_containing(node)
        )


def apply_mutation_step(graph: IndexedDiGraph, step_rng: RngStream):
    """One random batch: toggle up to 3 random (tail, head) pairs."""
    insertions, deletions = [], []
    claimed = set()
    for _ in range(3):
        tail = step_rng.randrange(graph.node_count)
        head = step_rng.randrange(graph.node_count)
        if tail == head or (tail, head) in claimed:
            continue
        claimed.add((tail, head))
        if head in graph.out[tail]:
            deletions.append((tail, head))
        else:
            insertions.append((tail, head))
    return graph.apply_updates(insertions, deletions)


class TestRefreshBitIdentity:
    @settings(max_examples=12, deadline=None)
    @given(
        graph_seed=st.integers(min_value=0, max_value=7),
        mutation_seed=st.integers(min_value=0, max_value=1000),
        batches=st.integers(min_value=1, max_value=3),
    )
    def test_refresh_equals_from_scratch(
        self, graph_seed, mutation_seed, batches
    ):
        graph = build_graph(graph_seed)
        store = opoao_store(graph)
        rng = RngStream(mutation_seed, name="mutations")
        for batch in range(batches):
            touched = apply_mutation_step(graph, rng.fork("batch", batch))
            store.refresh(touched)
        assert_stores_identical(store, opoao_store(graph))

    def test_untouched_footprints_skip_resampling(self):
        digraph = erdos_renyi(NODES, 0.02, rng=RngStream(3), directed=True)
        graph = IndexedDiGraph.from_digraph(digraph)
        sampler = OPOAORRSampler(graph, RUMOR, ENDS, steps=3, rng=RngStream(42))
        store = SketchStore(sampler).ensure_worlds(4)
        outside = [
            node
            for node in range(NODES)
            if all(node not in fp for fp in store._footprints)
        ]
        assert len(outside) >= 2, "graph too dense for this fixture"
        touched = graph.apply_updates([(outside[0], outside[1])], [])
        assert store.stale_worlds(touched) == []
        assert store.refresh(touched) == (0, 0)
        scratch = SketchStore(
            OPOAORRSampler(graph, RUMOR, ENDS, steps=3, rng=RngStream(42))
        ).ensure_worlds(4)
        assert_stores_identical(store, scratch)

    def test_refresh_counts(self):
        graph = build_graph()
        store = opoao_store(graph)
        tail = next(t for t in range(NODES) if graph.out[t])
        touched = graph.apply_updates([], [(tail, graph.out[tail][0])])
        stale = store.stale_worlds(touched)
        expected_sets = sum(store._sets_per_world[w] for w in stale)
        worlds, sets = store.refresh(touched)
        assert worlds == len(stale)
        assert sets == expected_sets

    def test_growth_after_refresh_stays_pure(self):
        """Doubling a refreshed store == sampling the larger size fresh."""
        graph = build_graph()
        store = opoao_store(graph, worlds=8)
        tail = next(t for t in range(NODES) if graph.out[t])
        touched = graph.apply_updates([], [(tail, graph.out[tail][0])])
        store.refresh(touched)
        store.ensure_worlds(16)
        assert_stores_identical(store, opoao_store(graph, worlds=16))

    def test_doam_refresh_equals_from_scratch(self):
        graph = build_graph(9)
        sampler = DOAMRRSampler(graph, RUMOR, ENDS)
        store = SketchStore(sampler).ensure_worlds(4)
        tail = next(t for t in range(NODES) if graph.out[t])
        touched = graph.apply_updates([], [(tail, graph.out[tail][0])])
        store.refresh(touched)
        scratch = SketchStore(
            DOAMRRSampler(graph, RUMOR, ENDS)
        ).ensure_worlds(4)
        assert_stores_identical(store, scratch)


class TestStatisticalAgreement:
    def test_refreshed_sigma_tracks_independent_seed(self):
        """A refreshed store and a fresh differently-seeded store agree
        statistically on σ̂ (they are independent estimators of the same
        quantity on the mutated graph)."""
        graph = build_graph()
        store = opoao_store(graph, worlds=64, seed=42)
        rng = RngStream(5, name="mutations")
        touched = apply_mutation_step(graph, rng)
        store.refresh(touched)
        other = opoao_store(graph, worlds=64, seed=1042)
        probe = [5, 20]
        mean_a, half_a = store.sigma_interval(probe, delta=0.05)
        mean_b, half_b = other.sigma_interval(probe, delta=0.05)
        assert abs(mean_a - mean_b) <= half_a + half_b + 1e-9


class TestInvalidationRules:
    def test_rejects_unknown_rule(self):
        store = opoao_store(build_graph())
        with pytest.raises(ValidationError):
            store.stale_worlds([0], rule="psychic")

    def test_members_rule_subset_of_footprint_rule(self):
        """Member-based staleness can only miss worlds, never add them:
        every RR member is in the footprint by construction."""
        graph = build_graph()
        store = opoao_store(graph)
        touched = {3, 17, 29}
        members_stale = set(store.stale_worlds(touched, rule="members"))
        footprint_stale = set(store.stale_worlds(touched, rule="footprint"))
        assert members_stale <= footprint_stale

    def test_members_rule_refresh_is_consistent(self):
        """The approximate rule still yields a well-formed store whose
        untouched worlds are bit-identical to before."""
        graph = build_graph()
        store = opoao_store(graph)
        before = {
            world: [
                (store._roots[s], store.members(s))
                for s in range(len(store._roots))
                if store._world_of[s] == world
            ]
            for world in range(store.worlds)
        }
        tail = next(t for t in range(NODES) if graph.out[t])
        touched = graph.apply_updates([], [(tail, graph.out[tail][0])])
        stale = set(store.stale_worlds(touched, rule="members"))
        store.refresh(touched, rule="members")
        assert store.worlds == len(before)
        for world in range(store.worlds):
            if world in stale:
                continue
            after = [
                (store._roots[s], store.members(s))
                for s in range(len(store._roots))
                if store._world_of[s] == world
            ]
            assert after == before[world]


class TestFootprintPersistence:
    def test_state_dict_roundtrips_footprints(self):
        graph = build_graph()
        store = opoao_store(graph)
        state = store.state_dict()
        restored = SketchStore(
            OPOAORRSampler(graph, RUMOR, ENDS, steps=8, rng=RngStream(42))
        ).load_state(state)
        assert restored._footprints == store._footprints

    def test_pre_footprint_checkpoint_is_conservative(self):
        """Old checkpoints (no footprints) restore as always-stale."""
        graph = build_graph()
        store = opoao_store(graph)
        state = store.state_dict()
        state.pop("footprints")
        restored = SketchStore(
            OPOAORRSampler(graph, RUMOR, ENDS, steps=8, rng=RngStream(42))
        ).load_state(state)
        assert restored._footprints == [None] * restored.worlds
        assert restored.stale_worlds([0]) == list(range(restored.worlds))
