"""Unit tests for SketchStore: storage, index, and the stopping rule."""

import math

import pytest

from repro.errors import ValidationError
from repro.rng import RngStream
from repro.sketch.rrset import WorldSample, sampler_for
from repro.sketch.store import SketchStore


class FakeSampler:
    """Scripted sampler: world i yields the i-th entry of a fixed script."""

    name = "fake"
    stochastic = True

    def __init__(self, script):
        self.script = script
        self.calls = []

    def sample_world(self, index):
        self.calls.append(index)
        return WorldSample(index, self.script[index % len(self.script)])


@pytest.fixture
def scripted():
    # World pattern: end 10 saved by {1, 2, 10}; end 11 saved by {2, 11}.
    return FakeSampler(
        [
            [(10, (1, 2, 10)), (11, (2, 11))],
            [(10, (2, 10))],  # end 11 not at risk in odd worlds
        ]
    )


class TestGrowth:
    def test_ensure_is_idempotent(self, scripted):
        store = SketchStore(scripted)
        store.ensure_worlds(4)
        store.ensure_worlds(4)
        store.ensure_worlds(2)
        assert store.worlds == 4
        assert scripted.calls == [0, 1, 2, 3]

    def test_double(self, scripted):
        store = SketchStore(scripted)
        store.double(minimum=4)
        assert store.worlds == 4
        store.double()
        assert store.worlds == 32  # max(minimum=32, 2 * 4)
        store.double()
        assert store.worlds == 64

    def test_deterministic_sampler_clamps_to_one(self, toy_context):
        store = SketchStore(sampler_for("doam", toy_context))
        store.ensure_worlds(50)
        assert store.worlds == 1

    def test_rejects_nonpositive(self, scripted):
        with pytest.raises(ValidationError):
            SketchStore(scripted).ensure_worlds(0)


class TestQueries:
    def test_layout_and_index(self, scripted):
        store = SketchStore(scripted).ensure_worlds(2)
        assert store.set_count == 3
        assert store.at_risk_total == 3
        assert store.members(0) == (1, 2, 10)
        assert store.members(1) == (2, 11)
        assert store.members(2) == (2, 10)
        assert store.root(2) == 10
        assert store.world_of(0) == 0 and store.world_of(2) == 1
        assert list(store.sets_containing(2)) == [0, 1, 2]
        assert list(store.sets_containing(1)) == [0]
        assert list(store.sets_containing(99)) == []
        assert store.nodes() == [1, 2, 10, 11]

    def test_coverage_and_sigma(self, scripted):
        store = SketchStore(scripted).ensure_worlds(2)
        assert store.coverage_count([1]) == 1
        assert store.coverage_count([2]) == 3
        assert store.coverage_count([1, 11]) == 2
        assert store.per_world_covered([2]) == [2, 1]
        # sigma = covered sets / worlds: node 2 saves both ends in world 0
        # and the single at-risk end in world 1.
        assert store.sigma([2]) == pytest.approx(1.5)
        assert store.sigma([]) == 0.0

    def test_sigma_requires_worlds(self, scripted):
        store = SketchStore(scripted)
        with pytest.raises(ValidationError):
            store.sigma([1])
        with pytest.raises(ValidationError):
            store.sigma_interval([1])


class TestStoppingRule:
    def test_interval_matches_hand_computation(self, scripted):
        store = SketchStore(scripted).ensure_worlds(4)
        mean, half = store.sigma_interval([2], delta=0.05)
        samples = [2, 1, 2, 1]
        expected_mean = sum(samples) / 4
        variance = sum((s - expected_mean) ** 2 for s in samples) / 3
        expected_half = math.sqrt(2 * math.log(1 / 0.05)) * math.sqrt(variance / 4)
        assert mean == pytest.approx(expected_mean)
        assert half == pytest.approx(expected_half)

    def test_single_stochastic_world_is_never_precise(self, scripted):
        store = SketchStore(scripted).ensure_worlds(1)
        _, half = store.sigma_interval([2])
        assert half == math.inf
        assert not store.precision_ok([2], epsilon=0.5)

    def test_zero_variance_is_precise(self):
        constant = FakeSampler([[(10, (1, 10))]])
        store = SketchStore(constant).ensure_worlds(8)
        assert store.precision_ok([1], epsilon=0.01)

    def test_deterministic_sampler_always_precise(self, toy_context):
        store = SketchStore(sampler_for("doam", toy_context)).ensure_worlds(1)
        assert store.precision_ok([0], epsilon=0.001)
        mean, half = store.sigma_interval([0])
        assert half == 0.0

    def test_more_worlds_tighten_the_interval(self, fig2_context):
        sampler = sampler_for("opoao", fig2_context, rng=RngStream(7))
        store = SketchStore(sampler)
        target = [fig2_context.indexed.index("v1")]
        store.ensure_worlds(8)
        _, wide = store.sigma_interval(target)
        store.ensure_worlds(256)
        _, tight = store.sigma_interval(target)
        assert tight < wide

    def test_invalid_parameters(self, scripted):
        store = SketchStore(scripted).ensure_worlds(2)
        with pytest.raises(ValidationError):
            store.precision_ok([2], epsilon=0.0)
        with pytest.raises(ValidationError):
            store.sigma_interval([2], delta=1.0)
