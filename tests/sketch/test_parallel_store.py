"""Two-worker vs serial bit-identity for SketchStore world sampling."""

import pytest

from repro.algorithms.ris_greedy import RISGreedySelector
from repro.obs import MetricsRegistry, use_registry
from repro.rng import RngStream
from repro.sketch.rrset import rebuild_sampler, sampler_for
from repro.sketch.store import SketchStore


def make_store(context, workers=None, seed=21):
    sampler = sampler_for(
        "opoao", context, steps=8, rng=RngStream(seed, name="par-worlds")
    )
    return SketchStore(sampler, workers=workers)


def store_arrays(store):
    return (
        list(store._members),
        list(store._offsets),
        list(store._roots),
        list(store._world_of),
        list(store._sets_per_world),
    )


def counters_only(registry):
    # Drop timers (never deterministic) and exec.* fault-bookkeeping
    # counters (present only under the CI fault-injection leg).
    return {
        name: value
        for name, value in registry.counter_values().items()
        if not name.startswith("time.") and not name.startswith("exec.")
    }


class TestStoreBitIdentity:
    def test_two_workers_match_serial(self, fig2_context):
        serial = make_store(fig2_context).ensure_worlds(24)
        parallel = make_store(fig2_context, workers=2).ensure_worlds(24)
        assert parallel.worlds == serial.worlds == 24
        assert store_arrays(parallel) == store_arrays(serial)
        assert parallel.nodes() == serial.nodes()
        for node in serial.nodes():
            assert list(parallel.sets_containing(node)) == list(
                serial.sets_containing(node)
            )

    def test_doubling_rounds_match_up_front(self, fig2_context):
        doubled = make_store(fig2_context, workers=2)
        doubled.ensure_worlds(8)
        doubled.double()
        doubled.double()
        up_front = make_store(fig2_context).ensure_worlds(doubled.worlds)
        assert store_arrays(doubled) == store_arrays(up_front)

    def test_sigma_identical(self, fig2_context):
        serial = make_store(fig2_context).ensure_worlds(16)
        parallel = make_store(fig2_context, workers=2).ensure_worlds(16)
        probe = serial.nodes()[:3]
        assert parallel.sigma(probe) == serial.sigma(probe)
        assert parallel.per_world_covered(probe) == serial.per_world_covered(probe)

    def test_deterministic_sampler_stays_serial(self, fig2_context):
        sampler = sampler_for("doam", fig2_context, steps=8)
        store = SketchStore(sampler, workers=2).ensure_worlds(16)
        assert store.worlds == 1  # one world; the pool is never engaged

    def test_merged_sketch_counters_equal_serial(self, fig2_context):
        serial_registry = MetricsRegistry()
        with use_registry(serial_registry):
            make_store(fig2_context).ensure_worlds(24)
        parallel_registry = MetricsRegistry()
        with use_registry(parallel_registry):
            make_store(fig2_context, workers=2).ensure_worlds(24)
        assert counters_only(parallel_registry) == counters_only(serial_registry)


class TestRebuildSampler:
    def test_payload_round_trip_samples_same_worlds(self, fig2_context):
        original = sampler_for(
            "opoao", fig2_context, steps=8, rng=RngStream(5, name="orig")
        )
        rebuilt = rebuild_sampler(original.graph, original.worker_payload())
        for index in range(6):
            ours = original.sample_world(index)
            theirs = rebuilt.sample_world(index)
            assert ours.rr_sets == theirs.rr_sets

    def test_unknown_semantics_rejected(self, fig2_context):
        from repro.errors import ValidationError

        original = sampler_for("opoao", fig2_context, steps=8, rng=RngStream(5))
        payload = original.worker_payload()
        payload["semantics"] = "mystery"
        with pytest.raises(ValidationError):
            rebuild_sampler(original.graph, payload)


class TestRISGreedyParity:
    def test_selection_identical(self, fig2_context):
        def selector(workers):
            return RISGreedySelector(
                semantics="opoao",
                steps=8,
                initial_worlds=16,
                max_worlds=64,
                rng=RngStream(31, name="ris-par"),
                workers=workers,
            )

        serial = selector(None).select(fig2_context, budget=2)
        parallel = selector(2).select(fig2_context, budget=2)
        assert parallel == serial
