"""Unit tests for SketchSigmaEstimator (the estimator-seam drop-in)."""

import pytest

from repro.algorithms.greedy import SigmaEstimator
from repro.diffusion.doam import DOAMModel
from repro.errors import SelectionError, ValidationError
from repro.rng import RngStream
from repro.sketch.estimator import SketchSigmaEstimator
from repro.sketch.rrset import sampler_for
from repro.sketch.store import SketchStore


class TestSeamCompatibility:
    """Same surface as the Monte-Carlo estimators: sigma / protected_fraction /
    evaluations."""

    def test_counter_and_signatures(self, toy_context):
        estimator = SketchSigmaEstimator(
            toy_context, semantics="doam", worlds=4, rng=RngStream(1)
        )
        assert estimator.evaluations == 0
        estimator.sigma(["d"])
        estimator.protected_fraction(["d"])
        assert estimator.evaluations == 2

    def test_rejects_rumor_overlap(self, toy_context):
        estimator = SketchSigmaEstimator(toy_context, semantics="doam")
        with pytest.raises(SelectionError):
            estimator.sigma(["r", "d"])

    def test_rejects_bad_parameters(self, toy_context):
        with pytest.raises(ValidationError):
            SketchSigmaEstimator(toy_context, worlds=0)
        with pytest.raises(ValidationError):
            SketchSigmaEstimator(toy_context, epsilon=1.5)


class TestDOAMExactness:
    def test_matches_monte_carlo_on_toy(self, toy_context):
        sketch = SketchSigmaEstimator(toy_context, semantics="doam")
        reference = SigmaEstimator(toy_context, model=DOAMModel(), runs=1)
        for protectors in ([], ["d"], ["e"], ["c2"]):
            assert sketch.sigma(protectors) == reference.sigma(protectors)

    def test_matches_monte_carlo_on_figure2(self, fig2_context):
        sketch = SketchSigmaEstimator(fig2_context, semantics="doam")
        reference = SigmaEstimator(fig2_context, model=DOAMModel(), runs=1)
        for protectors in ([], ["v1"], ["R1"], ["v1", "R1"], ["a1", "a3"]):
            assert sketch.sigma(protectors) == reference.sigma(protectors)

    def test_protected_fraction_bounds(self, fig2_context):
        sketch = SketchSigmaEstimator(fig2_context, semantics="doam")
        assert sketch.protected_fraction([]) == 0.0  # all three ends at risk
        assert sketch.protected_fraction(["v1", "R1"]) == 1.0
        assert 0.0 < sketch.protected_fraction(["v1"]) < 1.0


class TestSampling:
    def test_fixed_worlds_without_epsilon(self, fig2_context):
        estimator = SketchSigmaEstimator(
            fig2_context, semantics="opoao", worlds=16, rng=RngStream(5)
        )
        estimator.sigma(["v1"])
        assert estimator.store.worlds == 16

    def test_epsilon_triggers_adaptive_growth(self, fig2_context):
        estimator = SketchSigmaEstimator(
            fig2_context,
            semantics="opoao",
            worlds=4,
            epsilon=0.05,
            delta=0.05,
            max_worlds=512,
            rng=RngStream(5),
        )
        estimator.sigma(["v1"])
        assert estimator.store.worlds > 4
        assert estimator.store.worlds <= 512

    def test_shared_store_reuses_samples(self, fig2_context):
        store = SketchStore(
            sampler_for("opoao", fig2_context, rng=RngStream(9))
        ).ensure_worlds(32)
        estimator = SketchSigmaEstimator(fig2_context, worlds=32, store=store)
        estimator.sigma(["v1"])
        assert estimator.store is store
        assert store.worlds == 32  # no resampling happened

    def test_deterministic_across_instances(self, fig2_context):
        values = [
            SketchSigmaEstimator(
                fig2_context, semantics="opoao", worlds=64, rng=RngStream(11)
            ).sigma(["v1"])
            for _ in range(2)
        ]
        assert values[0] == values[1]

    def test_empty_protector_set(self, fig2_context):
        estimator = SketchSigmaEstimator(
            fig2_context, semantics="opoao", worlds=8, rng=RngStream(2)
        )
        assert estimator.sigma([]) == 0.0
