"""Unit tests for the RR-set samplers (both semantics)."""

import pytest

from repro.errors import SeedError, ValidationError
from repro.graph.digraph import DiGraph
from repro.rng import RngStream
from repro.sketch.rrset import (
    SKETCH_SEMANTICS,
    DOAMRRSampler,
    OPOAORRSampler,
    sampler_for,
)
from repro.sketch.store import SketchStore


def _ids(indexed, labels):
    return indexed.indices(list(labels))


class TestDOAMSampler:
    def test_toy_rr_set_is_bbst_ball(self, toy_context):
        indexed = toy_context.indexed
        sampler = DOAMRRSampler(
            indexed, toy_context.rumor_seed_ids(), toy_context.bridge_end_ids()
        )
        world = sampler.sample_world(0)
        assert len(world.rr_sets) == 1
        root, members = world.rr_sets[0]
        assert indexed.labels[root] == "b"
        # t_R(b) = 2, so RR(b) is the reverse ball of depth 2 around b.
        labels = {indexed.labels[node] for node in members}
        assert labels == {"b", "c1", "d", "r", "e"}

    def test_figure2_coverage_criterion(self, fig2_context):
        indexed = fig2_context.indexed
        sampler = DOAMRRSampler(
            indexed, fig2_context.rumor_seed_ids(), fig2_context.bridge_end_ids()
        )
        world = sampler.sample_world(0)
        by_root = {
            indexed.labels[root]: {indexed.labels[m] for m in members}
            for root, members in world.rr_sets
        }
        # d(u -> p) <= t_R(p) exactly characterises membership (Theorem 2).
        assert by_root["p1"] == {"p1", "a1", "v1", "r1"}
        assert by_root["p2"] == {"p2", "a2", "v1", "a1", "r1"}
        assert by_root["p3"] == {"p3", "a3", "R1", "r2", "s2"}

    def test_every_world_identical(self, toy_context):
        sampler = DOAMRRSampler(
            toy_context.indexed,
            toy_context.rumor_seed_ids(),
            toy_context.bridge_end_ids(),
        )
        assert not sampler.stochastic
        assert sampler.sample_world(0).rr_sets == sampler.sample_world(7).rr_sets

    def test_unreachable_end_produces_no_set(self):
        # 0 -> 1, isolated pair 2 -> 3: the rumor never reaches end 3.
        graph = DiGraph.from_edges([(0, 1), (2, 3)]).to_indexed()
        sampler = DOAMRRSampler(graph, [0], [1, 3])
        world = sampler.sample_world(0)
        assert [root for root, _ in world.rr_sets] == [1]

    def test_max_hops_bounds_rumor_reach(self):
        chain = DiGraph.from_edges([(i, i + 1) for i in range(5)]).to_indexed()
        sampler = DOAMRRSampler(chain, [0], [5], max_hops=3)
        # The rumor stops 3 hops in; end 5 is never at risk.
        assert sampler.sample_world(0).rr_sets == []


class TestOPOAOSampler:
    def test_forced_chain_is_exact(self):
        # Out-degree <= 1 everywhere: all choices are forced, so the
        # sampled world is the unique OPOAO trajectory. The rumor reaches
        # node 5 at step 5 and every upstream node relays in time.
        chain = DiGraph.from_edges([(i, i + 1) for i in range(5)]).to_indexed()
        sampler = OPOAORRSampler(chain, [0], [5], steps=10, rng=RngStream(1))
        world = sampler.sample_world(0)
        assert len(world.rr_sets) == 1
        root, members = world.rr_sets[0]
        assert root == 5
        assert members == (0, 1, 2, 3, 4, 5)

    def test_steps_horizon_cuts_chain(self):
        chain = DiGraph.from_edges([(i, i + 1) for i in range(5)]).to_indexed()
        sampler = OPOAORRSampler(chain, [0], [5], steps=4, rng=RngStream(1))
        # The rumor needs 5 steps to reach node 5; within 4 it never does.
        assert sampler.sample_world(0).rr_sets == []

    def test_end_always_in_own_rr_set(self, toy_context):
        sampler = OPOAORRSampler(
            toy_context.indexed,
            toy_context.rumor_seed_ids(),
            toy_context.bridge_end_ids(),
            rng=RngStream(3),
        )
        for index in range(20):
            for root, members in sampler.sample_world(index).rr_sets:
                # Seeding the end itself always saves it (step 0 <= any
                # rumor arrival; P wins ties).
                assert root in members

    def test_same_index_same_world(self, fig2_context):
        def make():
            return OPOAORRSampler(
                fig2_context.indexed,
                fig2_context.rumor_seed_ids(),
                fig2_context.bridge_end_ids(),
                rng=RngStream(99),
            )
        first, second = make(), make()
        for index in (0, 3, 11):
            assert (
                first.sample_world(index).rr_sets
                == second.sample_world(index).rr_sets
            )

    def test_distinct_indices_vary(self, fig2_context):
        sampler = OPOAORRSampler(
            fig2_context.indexed,
            fig2_context.rumor_seed_ids(),
            fig2_context.bridge_end_ids(),
            rng=RngStream(99),
        )
        worlds = [sampler.sample_world(i).rr_sets for i in range(16)]
        assert any(w != worlds[0] for w in worlds[1:])

    def test_rejects_empty_rumor_seeds(self, toy_context):
        with pytest.raises(SeedError):
            OPOAORRSampler(toy_context.indexed, [], toy_context.bridge_end_ids())

    def test_rejects_bad_ids(self, toy_context):
        with pytest.raises(SeedError):
            OPOAORRSampler(toy_context.indexed, [999], [0])
        with pytest.raises(SeedError):
            DOAMRRSampler(toy_context.indexed, [0], [-1])


class TestDeterminism:
    """Acceptance criterion: same seed => byte-identical sketches."""

    @pytest.mark.parametrize("semantics", SKETCH_SEMANTICS)
    def test_same_seed_stores_identical(self, fig2_context, semantics):
        def build(worlds):
            sampler = sampler_for(semantics, fig2_context, rng=RngStream(42))
            return SketchStore(sampler).ensure_worlds(worlds)

        first, second = build(24), build(24)
        assert first.set_count == second.set_count
        for set_id in range(first.set_count):
            assert first.root(set_id) == second.root(set_id)
            assert first.world_of(set_id) == second.world_of(set_id)
            assert first.members(set_id) == second.members(set_id)

    @pytest.mark.parametrize("semantics", SKETCH_SEMANTICS)
    def test_incremental_growth_matches_direct(self, fig2_context, semantics):
        grown = SketchStore(
            sampler_for(semantics, fig2_context, rng=RngStream(42))
        )
        grown.ensure_worlds(7)
        grown.ensure_worlds(20)
        direct = SketchStore(
            sampler_for(semantics, fig2_context, rng=RngStream(42))
        ).ensure_worlds(20)
        assert grown.set_count == direct.set_count
        assert all(
            grown.members(i) == direct.members(i) for i in range(grown.set_count)
        )


class TestSamplerFactory:
    def test_dispatch(self, toy_context):
        assert isinstance(sampler_for("opoao", toy_context), OPOAORRSampler)
        assert isinstance(sampler_for("doam", toy_context), DOAMRRSampler)

    def test_unknown_semantics(self, toy_context):
        with pytest.raises(ValidationError):
            sampler_for("telepathy", toy_context)
