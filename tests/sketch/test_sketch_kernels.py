"""Differential + oracle suite for the batched sketch kernels.

The contract under test (see :mod:`repro.sketch.kernels`): for every
replica index, the ``numpy`` backend returns the same
:class:`~repro.sketch.rrset.WorldSample` — same ``rr_sets`` (roots and
sorted members) and the same dependency ``footprint`` — as the
per-world python samplers, for both OPOAO and DOAM semantics. Plus an
exact small-graph oracle for the batched DOAM depth-bounded reverse
BFS, the MT19937 word-stream replay units, and registry degradation
(this module runs in the no-NumPy CI job; vectorized cases skip
themselves).
"""

from __future__ import annotations

import random
from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BackendUnavailableError, KernelError
from repro.graph.compact import IndexedDiGraph
from repro.graph.generators import erdos_renyi
from repro.rng import RngStream
from repro.sketch import kernels
from repro.sketch.kernels import (
    _MIN_VECTOR_SEED,
    _ReplayStream,
    NumpySketchKernel,
    PythonSketchKernel,
    available_sketch_backends,
    register_sketch_backend,
    resolve_sketch_backend,
    sample_worlds,
)
from repro.sketch.rrset import DOAMRRSampler, OPOAORRSampler
from repro.sketch.store import SketchStore

try:
    import numpy

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the no-NumPy CI job
    HAVE_NUMPY = False

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")

NODES = 30
RUMOR = [0, 1]
ENDS = [8, 9, 10, 11]


def build_graph(seed: int, p: float = 0.1) -> IndexedDiGraph:
    digraph = erdos_renyi(NODES, p, rng=RngStream(seed), directed=True)
    return IndexedDiGraph.from_digraph(digraph)


def assert_worlds_identical(expected, actual):
    assert len(expected) == len(actual)
    for reference, candidate in zip(expected, actual):
        assert candidate.index == reference.index
        assert candidate.rr_sets == reference.rr_sets
        assert candidate.footprint == reference.footprint


@needs_numpy
class TestOPOAODifferential:
    @settings(max_examples=15, deadline=None)
    @given(
        graph_seed=st.integers(min_value=0, max_value=50),
        rng_seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_bit_identical_per_replica(self, graph_seed, rng_seed):
        graph = build_graph(graph_seed)

        def sampler():
            return OPOAORRSampler(
                graph, RUMOR, ENDS, steps=9, rng=RngStream(rng_seed)
            )

        reference = resolve_sketch_backend("python").sample(sampler(), range(6))
        vectorized = resolve_sketch_backend("numpy").sample(sampler(), range(6))
        assert_worlds_identical(reference, vectorized)

    def test_out_of_order_and_repeated_indices(self):
        graph = build_graph(3)
        sampler = OPOAORRSampler(graph, RUMOR, ENDS, steps=8, rng=RngStream(21))
        shuffled = [5, 0, 3, 3, 1]
        vectorized = resolve_sketch_backend("numpy").sample(sampler, shuffled)
        reference = [sampler.sample_world(index) for index in shuffled]
        assert_worlds_identical(reference, vectorized)

    def test_forced_generic_array_path(self):
        """With list-CSR disabled the generic ndarray cascade must agree."""
        kernel = NumpySketchKernel()
        kernel.list_csr_max_edges = 0
        graph = build_graph(11)
        sampler = OPOAORRSampler(graph, RUMOR, ENDS, steps=9, rng=RngStream(5))
        vectorized = kernel.sample(sampler, range(4))
        reference = [sampler.sample_world(index) for index in range(4)]
        assert_worlds_identical(reference, vectorized)

    def test_horizon_past_frexp_range_defers_to_python(self):
        graph = build_graph(7)
        sampler = OPOAORRSampler(graph, RUMOR, ENDS, steps=60, rng=RngStream(9))
        vectorized = resolve_sketch_backend("numpy").sample(sampler, range(3))
        reference = [sampler.sample_world(index) for index in range(3)]
        assert_worlds_identical(reference, vectorized)


def _bfs_distances(adjacency, sources):
    """Exact hop distances from ``sources`` over an adjacency list."""
    distance = {node: 0 for node in sources}
    queue = deque(sources)
    while queue:
        node = queue.popleft()
        for neighbor in adjacency[node]:
            if neighbor not in distance:
                distance[neighbor] = distance[node] + 1
                queue.append(neighbor)
    return distance


@needs_numpy
class TestDOAMDifferentialAndOracle:
    @settings(max_examples=15, deadline=None)
    @given(graph_seed=st.integers(min_value=0, max_value=50))
    def test_bit_identical(self, graph_seed):
        graph = build_graph(graph_seed)
        reference = resolve_sketch_backend("python").sample(
            DOAMRRSampler(graph, RUMOR, ENDS), [0]
        )
        vectorized = resolve_sketch_backend("numpy").sample(
            DOAMRRSampler(graph, RUMOR, ENDS), [0]
        )
        assert_worlds_identical(reference, vectorized)

    @settings(max_examples=15, deadline=None)
    @given(graph_seed=st.integers(min_value=0, max_value=50))
    def test_exact_reverse_ball_oracle(self, graph_seed):
        """Batched DOAM == the brute-force membership criterion.

        ``u in RR(v)`` iff ``d(u -> v) <= t_R(v)`` (Theorem 2), checked
        against plain BFS distances with no shared code.
        """
        graph = build_graph(graph_seed)
        out = [list(graph.out[node]) for node in range(graph.node_count)]
        inn = [list(graph.inn[node]) for node in range(graph.node_count)]
        arrival = _bfs_distances(out, RUMOR)
        world = resolve_sketch_backend("numpy").sample(
            DOAMRRSampler(graph, RUMOR, ENDS), [0]
        )[0]
        rr_by_root = dict(world.rr_sets)
        assert sorted(rr_by_root) == sorted(
            end for end in ENDS if end in arrival
        )
        for end, members in world.rr_sets:
            reverse = _bfs_distances(inn, [end])
            oracle = tuple(
                sorted(
                    node
                    for node, depth in reverse.items()
                    if depth <= arrival[end]
                )
            )
            assert members == oracle

    def test_cache_priming_preserves_forget_semantics(self):
        graph = build_graph(4)
        sampler = DOAMRRSampler(graph, RUMOR, ENDS)
        resolve_sketch_backend("numpy").sample(sampler, [0])
        assert sampler._cached is not None
        sampler.forget()
        assert sampler._cached is None


class TestReplayStream:
    def test_small_seed_falls_back_to_stdlib(self):
        """Seeds below 2^32 replay through random.Random exactly."""
        seed = 123456789
        assert seed < _MIN_VECTOR_SEED
        stream = _ReplayStream(None, None, seed)
        oracle = random.Random(seed)
        draws = [3, 1, 7, 2, 10, 100, 1, 5]
        assert [stream.randrange(n) for n in draws] == [
            oracle.randrange(n) for n in draws
        ]

    @needs_numpy
    def test_multi_word_seed_replays_cpython_stream(self):
        seed = (987654321 << 40) | 12345  # comfortably past 2^32
        stream = _ReplayStream(numpy, numpy.random.RandomState(), seed)
        oracle = random.Random(seed)
        draws = [5, 2, 9, 1, 33, 1000, 7, 3, 64, 17] * 20
        assert [stream.randrange(n) for n in draws] == [
            oracle.randrange(n) for n in draws
        ]

    @needs_numpy
    def test_block_draws_match_sequential(self):
        seed = 1 << 62
        block = _ReplayStream(
            numpy, numpy.random.RandomState(), seed
        ).randrange_block(7, 40)
        sequential = _ReplayStream(numpy, numpy.random.RandomState(), seed)
        assert block.tolist() == [sequential.randrange(7) for _ in range(40)]


class TestRegistry:
    def test_python_backend_always_available(self):
        assert "python" in available_sketch_backends()
        assert resolve_sketch_backend("python").name == "python"

    def test_auto_degrades_to_fastest_available(self):
        backend = resolve_sketch_backend(None)
        assert backend.name == ("numpy" if HAVE_NUMPY else "python")
        assert resolve_sketch_backend("auto").name == backend.name

    def test_unknown_backend_raises(self):
        with pytest.raises(KernelError):
            resolve_sketch_backend("fortran")

    def test_missing_dependency_maps_to_backend_unavailable(self):
        def broken():
            raise ImportError("no such module")

        register_sketch_backend("broken-dep", broken)
        try:
            with pytest.raises(BackendUnavailableError):
                resolve_sketch_backend("broken-dep")
        finally:
            kernels._FACTORIES.pop("broken-dep", None)
            kernels._INSTANCES.pop("broken-dep", None)

    def test_python_kernel_delegates_to_sampler(self):
        graph = build_graph(2)
        sampler = OPOAORRSampler(graph, RUMOR, ENDS, steps=6, rng=RngStream(8))
        worlds = PythonSketchKernel().sample(sampler, range(3))
        assert_worlds_identical(
            [sampler.sample_world(index) for index in range(3)], worlds
        )

    def test_sample_worlds_entry_point(self):
        graph = build_graph(2)
        sampler = OPOAORRSampler(graph, RUMOR, ENDS, steps=6, rng=RngStream(8))
        worlds = sample_worlds(sampler, range(3), backend="python")
        assert [world.index for world in worlds] == [0, 1, 2]


class TestStoreBackends:
    def store(self, backend):
        graph = build_graph(6)
        sampler = OPOAORRSampler(graph, RUMOR, ENDS, steps=8, rng=RngStream(77))
        return SketchStore(sampler, backend=backend).ensure_worlds(12)

    @needs_numpy
    def test_store_arrays_identical_across_backends(self):
        reference = self.store("python")
        vectorized = self.store("numpy")
        assert reference._members == vectorized._members
        assert reference._offsets == vectorized._offsets
        assert reference._roots == vectorized._roots
        assert reference._world_of == vectorized._world_of
        assert reference._sets_per_world == vectorized._sets_per_world
        assert reference._footprints == vectorized._footprints
        assert reference.nodes() == vectorized.nodes()
        for node in reference.nodes():
            assert list(reference.sets_containing(node)) == list(
                vectorized.sets_containing(node)
            )

    def test_auto_backend_store_matches_python(self):
        """backend=None (auto) must produce the python store's arrays."""
        assert self.store(None)._members == self.store("python")._members

    def test_postings_are_ascending_and_complete(self):
        store = self.store("python")
        seen = 0
        for node in store.nodes():
            postings = list(store.sets_containing(node))
            assert postings == sorted(postings)
            for set_id in postings:
                assert node in store.members(set_id)
            seen += len(postings)
        assert seen == len(store._members)
        assert list(store.sets_containing(10**6)) == []
