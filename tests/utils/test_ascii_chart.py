"""Unit tests for the ASCII line chart."""

import pytest

from repro.utils.ascii_chart import line_chart


class TestLineChart:
    def test_basic_structure(self):
        text = line_chart({"A": [0, 1, 2, 3]}, height=4, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 1 + 4 + 2 + 1  # title + rows + axis + legend
        assert "*=A" in lines[-1]

    def test_multiple_series_distinct_glyphs(self):
        text = line_chart({"A": [0, 1], "B": [1, 0]}, height=3)
        assert "*" in text and "o" in text
        assert "*=A" in text and "o=B" in text

    def test_monotone_series_has_glyph_top_right(self):
        text = line_chart({"A": [0, 1, 2, 3, 4]}, height=5)
        rows = [line for line in text.splitlines() if "|" in line]
        top_row = rows[0].split("|", 1)[1]
        assert top_row.rstrip().endswith("*")

    def test_log_scale_labels_positive(self):
        text = line_chart({"A": [0, 10, 1000]}, height=4, log_scale=True)
        assert "999" in text or "1000" in text.replace(" ", "")

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"A": [1], "B": [1, 2]})
        with pytest.raises(ValueError):
            line_chart({"A": []})
        with pytest.raises(ValueError):
            line_chart({"A": [1, 2]}, height=1)

    def test_constant_series(self):
        text = line_chart({"A": [5, 5, 5]}, height=3)
        assert "*" in text
