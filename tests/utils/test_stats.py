"""Unit tests for statistics helpers."""


import pytest

from repro.utils.stats import RunningStats, confidence_interval, mean, stdev


class TestMeanStdev:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stdev(self):
        assert stdev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(
            2.138, abs=1e-3
        )

    def test_stdev_short(self):
        assert stdev([5.0]) == 0.0


class TestRunningStats:
    def test_matches_batch_computation(self):
        values = [1.5, 2.5, 0.5, 4.0, 3.0]
        rs = RunningStats()
        rs.extend(values)
        assert rs.mean == pytest.approx(mean(values))
        assert rs.stdev == pytest.approx(stdev(values))
        assert rs.minimum == 0.5
        assert rs.maximum == 4.0
        assert rs.count == 5

    def test_empty(self):
        rs = RunningStats()
        assert rs.mean == 0.0
        assert rs.variance == 0.0

    def test_single_value(self):
        rs = RunningStats()
        rs.add(7.0)
        assert rs.mean == 7.0
        assert rs.stdev == 0.0

    def test_merge_equivalent_to_union(self):
        left_values = [1.0, 2.0, 3.0]
        right_values = [10.0, 20.0]
        left, right, union = RunningStats(), RunningStats(), RunningStats()
        left.extend(left_values)
        right.extend(right_values)
        union.extend(left_values + right_values)
        merged = left.merge(right)
        assert merged.count == union.count
        assert merged.mean == pytest.approx(union.mean)
        assert merged.variance == pytest.approx(union.variance)
        assert merged.minimum == union.minimum

    def test_merge_with_empty(self):
        filled = RunningStats()
        filled.extend([1.0, 2.0])
        merged = filled.merge(RunningStats())
        assert merged.mean == 1.5
        merged2 = RunningStats().merge(filled)
        assert merged2.mean == 1.5


class TestConfidenceInterval:
    def test_empty(self):
        assert confidence_interval(RunningStats()) == (0.0, 0.0)

    def test_symmetric_around_mean(self):
        rs = RunningStats()
        rs.extend([1.0, 2.0, 3.0, 4.0, 5.0])
        lo, hi = confidence_interval(rs)
        assert lo < rs.mean < hi
        assert hi - rs.mean == pytest.approx(rs.mean - lo)

    def test_shrinks_with_samples(self):
        small, large = RunningStats(), RunningStats()
        small.extend([1.0, 2.0] * 5)
        large.extend([1.0, 2.0] * 500)
        assert (
            confidence_interval(large)[1] - confidence_interval(large)[0]
            < confidence_interval(small)[1] - confidence_interval(small)[0]
        )
