"""Unit tests for validation helpers."""

import pytest

from repro.errors import ValidationError
from repro.utils.validation import (
    check_fraction,
    check_int,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckInt:
    def test_accepts_int(self):
        assert check_int(5, "x") == 5

    def test_rejects_bool_and_float(self):
        with pytest.raises(ValidationError):
            check_int(True, "x")
        with pytest.raises(ValidationError):
            check_int(1.0, "x")


class TestCheckPositive:
    def test_accepts(self):
        assert check_positive(0.5, "x") == 0.5
        assert check_positive(3, "x") == 3

    def test_rejects(self):
        for bad in (0, -1, "a", True, None):
            with pytest.raises(ValidationError):
                check_positive(bad, "x")

    def test_message_names_parameter(self):
        with pytest.raises(ValidationError, match="alpha"):
            check_positive(-2, "alpha")


class TestCheckNonNegative:
    def test_zero_allowed(self):
        assert check_non_negative(0, "x") == 0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            check_non_negative(-0.1, "x")


class TestCheckProbability:
    def test_bounds_inclusive(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_outside_rejected(self):
        for bad in (-0.01, 1.01):
            with pytest.raises(ValidationError):
                check_probability(bad, "p")

    def test_returns_float(self):
        assert isinstance(check_probability(1, "p"), float)


class TestCheckFraction:
    def test_exclusive_mode(self):
        assert check_fraction(0.5, "alpha", exclusive=True) == 0.5
        for bad in (0.0, 1.0):
            with pytest.raises(ValidationError):
                check_fraction(bad, "alpha", exclusive=True)

    def test_inclusive_mode(self):
        assert check_fraction(1.0, "alpha") == 1.0
