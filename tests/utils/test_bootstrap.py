"""Unit tests for the bootstrap mean-difference helper."""

import pytest

from repro.rng import RngStream
from repro.utils.stats import bootstrap_mean_diff


class TestBootstrapMeanDiff:
    def test_clear_separation_resolved(self):
        left = [1.0] * 30
        right = [10.0] * 30
        observed, (lo, hi), p = bootstrap_mean_diff(left, right, RngStream(1))
        assert observed == -9.0
        assert hi < 0
        assert p == 1.0

    def test_identical_samples_unresolved(self):
        samples = [5.0, 6.0, 7.0] * 10
        observed, (lo, hi), p = bootstrap_mean_diff(samples, samples, RngStream(2))
        assert observed == 0.0
        assert lo <= 0 <= hi

    def test_interval_contains_observed_for_noisy_data(self):
        rng = RngStream(3)
        left = [rng.uniform(0, 10) for _ in range(40)]
        right = [rng.uniform(0, 10) for _ in range(40)]
        observed, (lo, hi), _ = bootstrap_mean_diff(
            left, right, RngStream(4), iterations=500
        )
        assert lo <= observed <= hi

    def test_deterministic_given_stream(self):
        left = [1.0, 2.0, 3.0]
        right = [2.0, 3.0, 4.0]
        a = bootstrap_mean_diff(left, right, RngStream(5), iterations=200)
        b = bootstrap_mean_diff(left, right, RngStream(5), iterations=200)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_diff([], [1.0], RngStream(6))
        with pytest.raises(ValueError):
            bootstrap_mean_diff([1.0], [1.0], RngStream(6), confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_mean_diff([1.0], [1.0], RngStream(6), iterations=5)
