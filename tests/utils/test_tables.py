"""Unit tests for ASCII table rendering."""

import pytest

from repro.utils.tables import format_series, format_table


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            ["name", "count"], [["alpha", 1], ["b", 22]], title="Demo"
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "count" in lines[1]
        assert "-+-" in lines[2]
        assert "alpha" in lines[3]

    def test_floats_one_decimal(self):
        text = format_table(["v"], [[3.14159]])
        assert "3.1" in text
        assert "3.14" not in text

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_no_trailing_whitespace(self):
        text = format_table(["a", "bee"], [["x", "y"]])
        for line in text.splitlines():
            assert line == line.rstrip()


class TestFormatSeries:
    def test_hop_column(self):
        text = format_series({"X": [1.0, 2.0], "Y": [3.0, 4.0]})
        lines = text.splitlines()
        assert lines[0].startswith("hop")
        assert lines[2].startswith("0")
        assert "4.0" in lines[3]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_series({})

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            format_series({"X": [1.0], "Y": [1.0, 2.0]})
