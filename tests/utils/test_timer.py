"""Unit tests for the Timer."""

import time

from repro.utils.timer import Timer


class TestTimer:
    def test_records_elapsed(self):
        timer = Timer("t")
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005
        assert timer.calls == 1

    def test_accumulates(self):
        timer = Timer()
        for _ in range(3):
            with timer:
                pass
        assert timer.calls == 3

    def test_running_flag(self):
        timer = Timer()
        assert not timer.running
        with timer:
            assert timer.running
        assert not timer.running

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0
        assert timer.calls == 0

    def test_repr(self):
        assert "timer" in repr(Timer())
        assert "select" in repr(Timer("select"))
