"""Run the doctests embedded in library docstrings."""

import doctest

import pytest

import repro.rng
import repro.utils.stats
import repro.utils.timer

MODULES = [repro.rng, repro.utils.stats, repro.utils.timer]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
