"""Unit tests for the exception hierarchy."""


from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_node_not_found_is_key_error(self):
        exc = errors.NodeNotFoundError("x")
        assert isinstance(exc, KeyError)
        assert "x" in str(exc)
        assert exc.node == "x"

    def test_edge_not_found_message(self):
        exc = errors.EdgeNotFoundError("a", "b")
        assert "'a'" in str(exc) and "'b'" in str(exc)
        assert exc.tail == "a" and exc.head == "b"

    def test_validation_error_is_value_error(self):
        assert issubclass(errors.ValidationError, ValueError)

    def test_coverage_error_carries_residue(self):
        exc = errors.CoverageError("nope", uncovered={1, 2})
        assert exc.uncovered == frozenset({1, 2})

    def test_coverage_error_default_residue(self):
        assert errors.CoverageError("nope").uncovered == frozenset()

    def test_seed_error_is_diffusion_error(self):
        assert issubclass(errors.SeedError, errors.DiffusionError)
