"""Unit tests for the experiment dataset registry."""

import pytest

from repro.datasets.registry import list_datasets, load_dataset
from repro.errors import DatasetError


class TestRegistry:
    def test_three_settings_registered(self):
        names = {spec.name for spec in list_datasets()}
        assert names == {"hep", "enron-small", "enron-large"}

    def test_paper_statistics_recorded(self):
        specs = {spec.name: spec for spec in list_datasets()}
        assert specs["hep"].paper_nodes == 15233
        assert specs["enron-large"].paper_community == 2631
        assert specs["enron-small"].paper_bridge_ends == 135

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            load_dataset("facebook")

    def test_bad_communities_mode_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("hep", communities="oracle")


class TestLoadDataset:
    def test_louvain_load(self):
        dataset = load_dataset("hep", scale=0.03, seed=1)
        assert dataset.graph.node_count == round(15233 * 0.03)
        assert dataset.rumor_community in dataset.communities.community_ids
        assert len(dataset.rumor_community_nodes) >= 5

    def test_planted_load(self):
        dataset = load_dataset("hep", scale=0.03, seed=1, communities="planted")
        assert dataset.rumor_community in dataset.communities.community_ids

    def test_community_size_tracks_paper_fraction(self):
        dataset = load_dataset("enron-large", scale=0.05, seed=2, communities="planted")
        n = dataset.graph.node_count
        target = dataset.spec.community_fraction * n
        size = dataset.communities.size(dataset.rumor_community)
        gaps = [
            abs(dataset.communities.size(c) - target)
            for c in dataset.communities.community_ids
            if dataset.communities.size(c) >= 5
        ]
        assert abs(size - target) == min(gaps)

    def test_reproducible(self):
        a = load_dataset("enron-small", scale=0.03, seed=3)
        b = load_dataset("enron-small", scale=0.03, seed=3)
        assert a.rumor_community == b.rumor_community
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())
