"""Unit tests for the hand-built paper toy graphs."""

from repro.algorithms.scbg import SCBGSelector
from repro.algorithms.heuristics import prefix_protects_all
from repro.datasets.toy import figure1_graph, figure2_graph, two_community_toy


class TestFigure1:
    def test_topology(self):
        graph, schedule = figure1_graph()
        assert graph.node_count == 6
        assert graph.has_edge("x", "u") and graph.has_edge("u", "w")
        assert graph.has_edge("z", "u")  # the route carrying 4_y to (u, w)

    def test_schedule_choices_are_edges(self):
        graph, schedule = figure1_graph()
        for chooser, target in schedule:
            assert graph.has_edge(chooser, target)


class TestFigure2:
    def test_communities_disjoint_and_total(self):
        graph, communities, _ = figure2_graph()
        assert communities.community_count == 3
        assert sum(communities.sizes().values()) == graph.node_count

    def test_bridge_end_properties(self):
        graph, communities, info = figure2_graph()
        rumor_nodes = communities.members(0)
        for end in info["bridge_ends"]:
            assert end not in rumor_nodes
            assert any(p in rumor_nodes for p in graph.predecessors(end))

    def test_optimal_protectors_protect_everything(self):
        graph, communities, info = figure2_graph()
        from repro.algorithms.base import SelectionContext

        context = SelectionContext(graph, communities.members(0), info["rumor_seeds"])
        assert prefix_protects_all(context, sorted(info["optimal_protectors"]))

    def test_scbg_matches_optimal_size(self):
        graph, communities, info = figure2_graph()
        from repro.algorithms.base import SelectionContext

        context = SelectionContext(graph, communities.members(0), info["rumor_seeds"])
        cover = SCBGSelector().select(context)
        assert len(cover) == info["optimal_size"]

    def test_neighbor_communities(self):
        _, communities, _ = figure2_graph()
        assert communities.neighbor_communities(0) == {1, 2}


class TestTwoCommunityToy:
    def test_structure(self):
        graph, communities, info = two_community_toy()
        assert communities.community_count == 2
        assert info["bridge_ends"] == frozenset({"b"})

    def test_internal_density(self):
        graph, communities, _ = two_community_toy()
        assert communities.internal_edge_fraction(0) > 0.5
