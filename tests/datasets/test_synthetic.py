"""Unit tests for the synthetic dataset replicas."""

import pytest

from repro.datasets.synthetic import enron_like, hep_like
from repro.errors import DatasetError
from repro.graph.metrics import average_degree
from repro.rng import RngStream


class TestEnronLike:
    def test_node_count_scales(self):
        network = enron_like(scale=0.02, rng=RngStream(1))
        assert network.graph.node_count == round(36692 * 0.02)

    def test_average_degree_near_target(self):
        network = enron_like(scale=0.05, rng=RngStream(2))
        degree = average_degree(network.graph)
        assert 8.0 <= degree <= 10.5  # target 10.0, duplicates may shave some

    def test_directed_not_fully_symmetric(self):
        network = enron_like(scale=0.02, rng=RngStream(3))
        asymmetric = sum(
            1
            for tail, head in network.graph.edges()
            if not network.graph.has_edge(head, tail)
        )
        assert asymmetric > 0

    def test_membership_covers_graph(self):
        network = enron_like(scale=0.02, rng=RngStream(4))
        assert set(network.membership) == set(network.graph.nodes())

    def test_communities_dense_inside(self):
        network = enron_like(scale=0.05, rng=RngStream(5))
        intra = sum(
            1
            for tail, head in network.graph.edges()
            if network.membership[tail] == network.membership[head]
        )
        assert intra / network.graph.edge_count > 0.75

    def test_reproducible(self):
        a = enron_like(scale=0.02, rng=RngStream(6))
        b = enron_like(scale=0.02, rng=RngStream(6))
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())

    def test_too_small_scale_rejected(self):
        with pytest.raises(DatasetError):
            enron_like(scale=0.0005)

    def test_communities_object(self):
        network = enron_like(scale=0.02, rng=RngStream(7))
        cover = network.communities()
        assert cover.community_count == len(set(network.membership.values()))


class TestHepLike:
    def test_symmetrised(self):
        network = hep_like(scale=0.02, rng=RngStream(8))
        for tail, head in network.graph.edges():
            assert network.graph.has_edge(head, tail)

    def test_lower_degree_than_enron(self):
        hep = hep_like(scale=0.05, rng=RngStream(9))
        enron = enron_like(scale=0.05, rng=RngStream(9))
        assert average_degree(hep.graph) < average_degree(enron.graph)

    def test_average_degree_near_target(self):
        network = hep_like(scale=0.05, rng=RngStream(10))
        degree = average_degree(network.graph)
        assert 6.0 <= degree <= 8.5  # target 7.73
