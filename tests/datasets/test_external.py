"""Unit tests for the external (SNAP-style) dataset loader."""

import pytest

from repro.datasets.external import load_external
from repro.errors import DatasetError
from repro.graph.generators import planted_partition
from repro.graph.io import write_communities, write_edge_list
from repro.rng import RngStream


@pytest.fixture
def snap_file(tmp_path):
    graph, membership = planted_partition(
        [15, 15, 15], 0.4, 0.02, RngStream(3), directed=True
    )
    edge_path = tmp_path / "net.txt"
    write_edge_list(graph, edge_path)
    community_path = tmp_path / "net.communities"
    write_communities(membership, community_path)
    return edge_path, community_path, graph, membership


class TestLoadExternal:
    def test_louvain_detection_path(self, snap_file):
        edge_path, _, graph, _ = snap_file
        dataset = load_external(edge_path, seed=5)
        assert dataset.graph.node_count == graph.node_count
        assert dataset.rumor_community in dataset.communities.community_ids
        assert len(dataset.rumor_community_nodes) >= 5

    def test_sidecar_communities_used(self, snap_file):
        edge_path, community_path, _, membership = snap_file
        dataset = load_external(edge_path, communities_path=community_path)
        assert dataset.communities.membership() == membership

    def test_community_size_targeting(self, snap_file):
        edge_path, community_path, _, _ = snap_file
        dataset = load_external(
            edge_path, communities_path=community_path, community_size=15
        )
        assert dataset.communities.size(dataset.rumor_community) == 15

    def test_symmetrize(self, snap_file):
        edge_path, _, _, _ = snap_file
        dataset = load_external(edge_path, symmetrize=True)
        for tail, head in dataset.graph.edges():
            assert dataset.graph.has_edge(head, tail)

    def test_name_defaults_to_stem(self, snap_file):
        edge_path, _, _, _ = snap_file
        assert load_external(edge_path).name == "net"

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            load_external(tmp_path / "nope.txt")

    def test_edgeless_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(DatasetError, match="no edges"):
            load_external(path)

    def test_full_pipeline_on_loaded_data(self, snap_file):
        edge_path, community_path, _, _ = snap_file
        dataset = load_external(edge_path, communities_path=community_path)
        from repro.algorithms.base import SelectionContext
        from repro.algorithms.scbg import SCBGSelector
        from repro.algorithms.heuristics import prefix_protects_all
        from repro.lcrb.pipeline import draw_rumor_seeds

        seeds = draw_rumor_seeds(
            dataset.communities, dataset.rumor_community, 2, RngStream(6)
        )
        context = SelectionContext(
            dataset.graph, dataset.rumor_community_nodes, seeds
        )
        cover = SCBGSelector().select(context)
        assert prefix_protects_all(context, cover)
