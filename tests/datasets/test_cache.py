"""Unit tests for the dataset cache."""

import json

import pytest

from repro.datasets.cache import cache_key, cached_load_dataset
from repro.errors import DatasetError


class TestCacheKey:
    def test_stable(self):
        assert cache_key("hep", 0.1, 13, "louvain") == cache_key(
            "hep", 0.1, 13, "louvain"
        )

    def test_parameter_sensitivity(self):
        base = cache_key("hep", 0.1, 13, "louvain")
        assert cache_key("hep", 0.2, 13, "louvain") != base
        assert cache_key("hep", 0.1, 14, "louvain") != base
        assert cache_key("hep", 0.1, 13, "planted") != base
        assert cache_key("enron-small", 0.1, 13, "louvain") != base


class TestCachedLoad:
    def test_round_trip_identical(self, tmp_path):
        fresh = cached_load_dataset("hep", tmp_path, scale=0.02, seed=3)
        cached = cached_load_dataset("hep", tmp_path, scale=0.02, seed=3)
        assert cached.graph.node_count == fresh.graph.node_count
        assert sorted(cached.graph.edges()) == sorted(fresh.graph.edges())
        assert cached.rumor_community == fresh.rumor_community
        assert cached.communities.membership() == fresh.communities.membership()
        assert cached.spec.name == "hep"

    def test_cache_files_created(self, tmp_path):
        cached_load_dataset("hep", tmp_path, scale=0.02, seed=3)
        bucket = tmp_path / cache_key("hep", 0.02, 3, "louvain")
        assert (bucket / "graph.json").exists()
        assert (bucket / "membership.txt").exists()
        assert (bucket / "meta.json").exists()

    def test_second_load_does_not_regenerate(self, tmp_path, monkeypatch):
        cached_load_dataset("hep", tmp_path, scale=0.02, seed=3)
        import repro.datasets.cache as cache_module

        def boom(*args, **kwargs):
            raise AssertionError("regenerated despite cache hit")

        monkeypatch.setattr(cache_module, "load_dataset", boom)
        cached = cached_load_dataset("hep", tmp_path, scale=0.02, seed=3)
        assert cached.graph.node_count > 0

    def test_corrupt_meta_is_loud(self, tmp_path):
        cached_load_dataset("hep", tmp_path, scale=0.02, seed=3)
        bucket = tmp_path / cache_key("hep", 0.02, 3, "louvain")
        (bucket / "meta.json").write_text("{not json")
        with pytest.raises(DatasetError, match="corrupt"):
            cached_load_dataset("hep", tmp_path, scale=0.02, seed=3)

    def test_mismatched_meta_is_loud(self, tmp_path):
        cached_load_dataset("hep", tmp_path, scale=0.02, seed=3)
        bucket = tmp_path / cache_key("hep", 0.02, 3, "louvain")
        meta = json.loads((bucket / "meta.json").read_text())
        meta["seed"] = 999
        (bucket / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(DatasetError, match="does not match"):
            cached_load_dataset("hep", tmp_path, scale=0.02, seed=3)

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            cached_load_dataset("facebook", tmp_path)
