"""Backend registry: resolution, graceful degradation, spec mapping."""

import pytest

from repro.diffusion.doam import DOAMModel
from repro.diffusion.ic import CompetitiveICModel
from repro.diffusion.lt import CompetitiveLTModel
from repro.diffusion.opoao import OPOAOModel
from repro.errors import BackendUnavailableError, KernelError, UnsupportedModelError
from repro.kernels.python_backend import PythonKernelBackend
from repro.kernels.registry import (
    available_backends,
    register_backend,
    resolve_backend,
)
from repro.kernels.spec import KernelSpec, spec_for_model
from repro.kernels.worlds import WorldBatch


def numpy_importable() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


class TestResolveBackend:
    def test_python_always_resolves(self):
        backend = resolve_backend("python")
        assert isinstance(backend, PythonKernelBackend)
        assert backend.name == "python"

    def test_instances_are_cached(self):
        assert resolve_backend("python") is resolve_backend("python")

    def test_unknown_name_raises_kernel_error(self):
        with pytest.raises(KernelError, match="unknown kernel backend"):
            resolve_backend("fortran")

    def test_auto_resolves_to_fastest_available(self):
        backend = resolve_backend("auto")
        expected = "numpy" if numpy_importable() else "python"
        assert backend.name == expected

    def test_none_means_auto(self):
        assert resolve_backend(None) is resolve_backend("auto")

    def test_available_backends_lists_python(self):
        names = available_backends()
        assert "python" in names
        assert ("numpy" in names) == numpy_importable()

    def test_missing_dependency_reported_with_install_hint(self, monkeypatch):
        from repro.kernels import registry as registry_module

        def broken():
            raise ImportError("no such module")

        monkeypatch.setitem(registry_module._FACTORIES, "broken", broken)
        monkeypatch.delitem(
            registry_module._INSTANCES, "broken", raising=False
        )
        with pytest.raises(BackendUnavailableError, match="perf"):
            resolve_backend("broken")
        assert "broken" not in available_backends()

    def test_register_backend_replaces_and_resolves(self, monkeypatch):
        from repro.kernels import registry as registry_module

        monkeypatch.setattr(
            registry_module, "_FACTORIES", dict(registry_module._FACTORIES)
        )
        monkeypatch.setattr(
            registry_module, "_INSTANCES", dict(registry_module._INSTANCES)
        )
        register_backend("custom", PythonKernelBackend)
        assert isinstance(resolve_backend("custom"), PythonKernelBackend)


class TestSpecForModel:
    def test_doam(self):
        spec = spec_for_model(DOAMModel())
        assert spec == KernelSpec("doam")
        assert not spec.stochastic

    def test_ic_carries_probability(self):
        spec = spec_for_model(CompetitiveICModel(probability=0.25))
        assert spec.kind == "ic"
        assert spec.probability == 0.25
        assert spec.stochastic

    def test_lt(self):
        assert spec_for_model(CompetitiveLTModel()) == KernelSpec("lt")

    def test_opoao(self):
        assert spec_for_model(OPOAOModel()) == KernelSpec("opoao")

    def test_weighted_opoao_unsupported(self):
        with pytest.raises(UnsupportedModelError):
            spec_for_model(OPOAOModel(weighted=True))

    def test_unknown_kind_rejected(self):
        with pytest.raises(UnsupportedModelError):
            KernelSpec("sir")


class TestWorldBatchContract:
    def test_kind_mismatch_fails_loudly(self):
        batch = WorldBatch("ic", 2, 4, {"live": [[], []]})
        with pytest.raises(KernelError, match="cannot run"):
            batch.check_run("lt", 4)

    def test_horizon_overrun_fails_loudly(self):
        batch = WorldBatch("opoao", 1, 4, {"picks": [[[0.0]] * 4]})
        with pytest.raises(KernelError, match="hops"):
            batch.check_run("opoao", 5)
