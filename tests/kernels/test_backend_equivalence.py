"""Differential tests: NumPy kernels vs the pure-Python reference.

Two layers of agreement, matching the backend contract:

* **bit-identical** — both backends consuming the *same*
  :class:`~repro.kernels.worlds.WorldBatch` (the shared sampler) must
  return byte-for-byte equal final states and per-hop series, for every
  model kind;
* **statistical** — each backend estimating sigma with its own *native*
  sampler must agree within confidence-interval bounds.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.diffusion.base import SeedSets  # noqa: E402
from repro.diffusion.doam import DOAMModel  # noqa: E402
from repro.diffusion.ic import CompetitiveICModel  # noqa: E402
from repro.diffusion.lt import CompetitiveLTModel  # noqa: E402
from repro.diffusion.opoao import OPOAOModel  # noqa: E402
from repro.graph.digraph import DiGraph  # noqa: E402
from repro.kernels.numpy_backend import NumpyKernelBackend  # noqa: E402
from repro.kernels.python_backend import PythonKernelBackend  # noqa: E402
from repro.kernels.sigma import BatchedSigmaEvaluator  # noqa: E402
from repro.kernels.spec import KernelSpec  # noqa: E402
from repro.kernels.worlds import sample_shared_worlds  # noqa: E402
from repro.rng import RngStream  # noqa: E402

SPECS = [
    KernelSpec("ic", probability=0.4),
    KernelSpec("ic"),  # weighted IC: edge weights are probabilities
    KernelSpec("lt"),
    KernelSpec("opoao"),
    KernelSpec("doam"),
]

MODELS = [
    CompetitiveICModel(probability=0.4),
    CompetitiveLTModel(),
    OPOAOModel(),
    DOAMModel(),
]


def random_graph(nodes: int, edges: int, seed: int, weighted: bool = False):
    """A seeded random digraph (labels == ids, insertion order fixed)."""
    rng = RngStream(seed, name="equiv-graph")
    graph = DiGraph()
    graph.add_nodes(range(nodes))
    seen = set()
    while len(seen) < edges:
        tail = rng.randrange(nodes)
        head = rng.randrange(nodes)
        if tail == head or (tail, head) in seen:
            continue
        seen.add((tail, head))
        weight = rng.random() if weighted else 1.0
        graph.add_edge(tail, head, weight=max(weight, 0.05))
    return graph


@pytest.fixture(scope="module")
def backends():
    return PythonKernelBackend(), NumpyKernelBackend()


@pytest.fixture(scope="module")
def instance():
    """A mid-size weighted digraph with rumor and protector seeds."""
    graph = random_graph(40, 160, seed=7, weighted=True).to_indexed()
    seeds = SeedSets(rumors=[0, 3, 11], protectors=[5, 8])
    return graph, seeds


class TestBitIdenticalOnSharedWorlds:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: repr(s))
    def test_states_and_series_identical(self, backends, instance, spec):
        python_backend, numpy_backend = backends
        graph, seeds = instance
        worlds = sample_shared_worlds(graph.csr(), spec, 10, 16, seed=99)
        reference = python_backend.run_worlds(graph, spec, worlds, seeds, 16)
        vectorized = numpy_backend.run_worlds(graph, spec, worlds, seeds, 16)
        assert vectorized.hops == reference.hops
        assert vectorized.batch == reference.batch
        for world in range(reference.batch):
            assert vectorized.states_row(world) == reference.states_row(world)
            for hop in range(reference.hops + 1):
                assert vectorized.infected_at(world, hop) == reference.infected_at(
                    world, hop
                )
                assert vectorized.protected_at(
                    world, hop
                ) == reference.protected_at(world, hop)

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: repr(s))
    def test_no_protector_baseline_identical(self, backends, instance, spec):
        python_backend, numpy_backend = backends
        graph, _ = instance
        seeds = SeedSets(rumors=[0, 3, 11])
        worlds = sample_shared_worlds(graph.csr(), spec, 6, 16, seed=4242)
        reference = python_backend.run_worlds(graph, spec, worlds, seeds, 16)
        vectorized = numpy_backend.run_worlds(graph, spec, worlds, seeds, 16)
        for world in range(reference.batch):
            assert vectorized.states_row(world) == reference.states_row(world)

    def test_replay_is_idempotent(self, backends, instance):
        """Replaying one batch twice (the sigma pattern) must not mutate it."""
        _, numpy_backend = backends
        graph, seeds = instance
        spec = KernelSpec("ic", probability=0.4)
        worlds = sample_shared_worlds(graph.csr(), spec, 8, 16, seed=5)
        first = numpy_backend.run_worlds(graph, spec, worlds, seeds, 16)
        second = numpy_backend.run_worlds(graph, spec, worlds, seeds, 16)
        for world in range(first.batch):
            assert first.states_row(world) == second.states_row(world)


class TestSharedWorldSigmaSets:
    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    def test_blocked_and_protected_sets_identical(self, fig2_context, model):
        """Per-world infected bridge-end *sets* match exactly on shared worlds."""
        evaluators = [
            BatchedSigmaEvaluator(
                fig2_context,
                model=model,
                runs=24,
                max_hops=16,
                rng=RngStream(77, name="sigma"),
                backend=name,
                world_source="shared",
            )
            for name in ("python", "numpy")
        ]
        protectors = sorted(fig2_context.bridge_ends)[:2]
        py, vec = evaluators
        assert py.baseline == vec.baseline
        assert py.infected_end_sets(
            py._protector_ids(protectors)
        ) == vec.infected_end_sets(vec._protector_ids(protectors))
        assert py.sigma(protectors) == vec.sigma(protectors)
        assert py.protected_fraction(protectors) == vec.protected_fraction(
            protectors
        )


class TestNativeSamplingStatistics:
    """Native samplers differ (RngStream vs PCG64); estimates must not."""

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    def test_sigma_agrees_within_ci(self, fig2_context, model):
        runs = 600
        estimates = {}
        for name in ("python", "numpy"):
            evaluator = BatchedSigmaEvaluator(
                fig2_context,
                model=model,
                runs=runs,
                max_hops=16,
                rng=RngStream(3, name="sigma"),
                backend=name,
                world_source="native",
            )
            protectors = sorted(fig2_context.bridge_ends)[:2]
            estimates[name] = (
                evaluator.sigma(protectors),
                evaluator.protected_fraction(protectors),
            )
        end_count = len(fig2_context.bridge_ends)
        if not model.stochastic:
            assert estimates["python"] == estimates["numpy"]
            return
        # sigma is a mean of per-world counts in [0, |B|]: half-width
        # bounded by ~4 * |B| / (2 sqrt(runs)) for each estimator.
        bound = 4.0 * end_count / (2.0 * runs**0.5)
        assert abs(estimates["python"][0] - estimates["numpy"][0]) <= 2 * bound
        fraction_bound = 4.0 / (2.0 * runs**0.5)
        assert (
            abs(estimates["python"][1] - estimates["numpy"][1])
            <= 2 * fraction_bound
        )
