"""Exact-oracle tests: full world enumeration on tiny graphs.

On graphs with ≤ 8 edges the whole randomness space is enumerable:

* **IC** with uniform probability ``p = 0.5`` — all ``2^|E|`` live-edge
  worlds are equiprobable, so feeding the *complete* enumeration as one
  :class:`~repro.kernels.worlds.WorldBatch` makes the batch mean the
  *exact* expectation;
* **LT** — a node's behaviour depends only on which ``1/d_in`` bucket
  its threshold falls in, so the product of bucket choices (each with
  probability ``1/d_in``) enumerates the distribution exactly;
* **OPOAO** — a node's pick depends only on ``floor(r * d_out)``, so the
  product of pick indices per (hop, node) enumerates the distribution;
* **DOAM** — deterministic, a single world.

The oracle itself is an independent micro-implementation in this file
(dict-based, no shared code with either backend), so a bug in the
reference backend cannot hide behind an identical bug here. Every
available backend must match the oracle world-for-world — and therefore
converge to the exact sigma.
"""

import itertools

import pytest

from repro.diffusion.base import INACTIVE, INFECTED, PROTECTED, SeedSets
from repro.graph.digraph import DiGraph
from repro.kernels.registry import available_backends, resolve_backend
from repro.kernels.spec import KernelSpec
from repro.kernels.worlds import WorldBatch

BACKENDS = available_backends()

MAX_HOPS = 8


def tiny_graph() -> "DiGraph":
    """7 edges: a rumor/protector race with a contested middle."""
    graph = DiGraph()
    graph.add_nodes(range(6))
    for tail, head in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (2, 4), (4, 5)]:
        graph.add_edge(tail, head)
    return graph


SEED_CONFIGS = [
    SeedSets(rumors=[0], protectors=[2]),
    SeedSets(rumors=[0]),
]


# -- independent per-world oracle (dict-based, BFS race) -----------------------


def oracle_race(graph, seeds, live_edges, max_hops):
    """P-priority BFS race over an explicit set of live ``(tail, head)``."""
    adjacency = {node: [] for node in graph.nodes()}
    for tail, head in live_edges:
        adjacency[tail].append(head)
    state = {node: INACTIVE for node in graph.nodes()}
    for node in seeds.protectors:
        state[node] = PROTECTED
    for node in seeds.rumors:
        state[node] = INFECTED
    front_p, front_i = set(seeds.protectors), set(seeds.rumors)
    for _hop in range(max_hops):
        targets_p = {
            head
            for tail in front_p
            for head in adjacency[tail]
            if state[head] == INACTIVE
        }
        targets_i = {
            head
            for tail in front_i
            for head in adjacency[tail]
            if state[head] == INACTIVE
        } - targets_p
        if not targets_p and not targets_i:
            break
        for node in targets_p:
            state[node] = PROTECTED
        for node in targets_i:
            state[node] = INFECTED
        front_p, front_i = targets_p, targets_i
    return state


def oracle_lt(graph, seeds, thresholds, max_hops):
    """Competitive LT on fixed thresholds, independent implementation."""
    in_deg = {node: 0 for node in graph.nodes()}
    adjacency = {node: [] for node in graph.nodes()}
    for tail, head in graph.edges():
        adjacency[tail].append(head)
        in_deg[head] += 1
    state = {node: INACTIVE for node in graph.nodes()}
    for node in seeds.protectors:
        state[node] = PROTECTED
    for node in seeds.rumors:
        state[node] = INFECTED
    weight = {
        kind: {node: 0.0 for node in graph.nodes()}
        for kind in (PROTECTED, INFECTED)
    }
    front = {PROTECTED: set(seeds.protectors), INFECTED: set(seeds.rumors)}
    for _hop in range(max_hops):
        if not front[PROTECTED] and not front[INFECTED]:
            break
        touched = set()
        for kind in (PROTECTED, INFECTED):
            for tail in front[kind]:
                for head in adjacency[tail]:
                    if state[head] == INACTIVE:
                        weight[kind][head] += 1.0 / max(1, in_deg[head])
                        touched.add(head)
        new = {PROTECTED: set(), INFECTED: set()}
        for node in touched:
            if weight[PROTECTED][node] + 1e-12 >= thresholds[node]:
                new[PROTECTED].add(node)
            elif weight[INFECTED][node] + 1e-12 >= thresholds[node]:
                new[INFECTED].add(node)
        if not new[PROTECTED] and not new[INFECTED]:
            break
        for kind in (PROTECTED, INFECTED):
            for node in new[kind]:
                state[node] = kind
        front = new
    return state


def oracle_opoao(graph, seeds, picks, max_hops):
    """OPOAO on a fixed pick table, independent implementation."""
    adjacency = {node: [] for node in graph.nodes()}
    for tail, head in graph.edges():
        adjacency[tail].append(head)
    state = {node: INACTIVE for node in graph.nodes()}
    for node in seeds.protectors:
        state[node] = PROTECTED
    for node in seeds.rumors:
        state[node] = INFECTED
    active = sorted(seeds.rumors | seeds.protectors)
    for hop in range(max_hops):
        if not any(
            state[head] == INACTIVE
            for tail in active
            for head in adjacency[tail]
        ):
            break
        targets = {PROTECTED: set(), INFECTED: set()}
        for node in active:
            neighbors = adjacency[node]
            if not neighbors:
                continue
            chosen = neighbors[
                min(int(picks[hop][node] * len(neighbors)), len(neighbors) - 1)
            ]
            if state[chosen] == INACTIVE:
                targets[state[node] if state[node] == PROTECTED else INFECTED].add(
                    chosen
                )
        targets[INFECTED] -= targets[PROTECTED]
        for kind in (PROTECTED, INFECTED):
            for node in targets[kind]:
                state[node] = kind
        active.extend(sorted(targets[PROTECTED] | targets[INFECTED]))
    return state


# -- world enumerations --------------------------------------------------------


def enumerate_ic_worlds(graph):
    """All 2^|E| live-edge masks in CSR edge order, plus live edge lists."""
    indexed = graph.to_indexed()
    csr = indexed.csr()
    edges = [
        (tail, int(csr.indices[position]))
        for tail in range(csr.node_count)
        for position in range(csr.indptr[tail], csr.indptr[tail + 1])
    ]
    masks, live_lists = [], []
    for bits in itertools.product([False, True], repeat=len(edges)):
        masks.append(list(bits))
        live_lists.append(
            [edge for edge, bit in zip(edges, bits) if bit]
        )
    return indexed, masks, live_lists


def enumerate_lt_worlds(graph):
    """Threshold-bucket product: representative (k - 0.5)/d per bucket."""
    indexed = graph.to_indexed()
    in_deg = {node: 0 for node in graph.nodes()}
    for _tail, head in graph.edges():
        in_deg[head] += 1
    nodes = sorted(graph.nodes())
    buckets = [max(1, in_deg[node]) for node in nodes]
    worlds = []
    for combo in itertools.product(*(range(b) for b in buckets)):
        worlds.append(
            {
                node: (k + 0.5) / buckets[i]
                for i, (node, k) in enumerate(zip(nodes, combo))
            }
        )
    return indexed, worlds


def enumerate_opoao_worlds(graph, hops):
    """Pick-index product: representative (idx + 0.5)/d per (hop, node)."""
    indexed = graph.to_indexed()
    out_deg = {node: 0 for node in graph.nodes()}
    for tail, _head in graph.edges():
        out_deg[tail] += 1
    nodes = sorted(graph.nodes())
    slots = [
        (hop, node, out_deg[node])
        for hop in range(hops)
        for node in nodes
        if out_deg[node] > 0
    ]
    worlds = []
    for combo in itertools.product(*(range(d) for _, _, d in slots)):
        table = [[0.5 for _ in nodes] for _ in range(hops)]
        for (hop, node, degree), index in zip(slots, combo):
            table[hop][node] = (index + 0.5) / degree
        worlds.append(table)
    return indexed, worlds


def mean_infected(states_list):
    return sum(
        sum(1 for value in states.values() if value == INFECTED)
        for states in states_list
    ) / len(states_list)


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("seeds", SEED_CONFIGS, ids=["with-P", "no-P"])
class TestExactOracle:
    def test_ic_full_enumeration(self, backend_name, seeds):
        graph = tiny_graph()
        indexed, masks, live_lists = enumerate_ic_worlds(graph)
        oracle_states = [
            oracle_race(graph, seeds, live, MAX_HOPS) for live in live_lists
        ]
        worlds = WorldBatch("ic", len(masks), MAX_HOPS, {"live": masks})
        backend = resolve_backend(backend_name)
        outcome = backend.run_worlds(
            indexed, KernelSpec("ic", probability=0.5), worlds, seeds, MAX_HOPS
        )
        for world, states in enumerate(oracle_states):
            assert outcome.states_row(world) == [
                states[node] for node in range(indexed.node_count)
            ]
        exact_sigma = mean_infected(oracle_states)
        batch_sigma = sum(
            outcome.final_infected(world) for world in range(outcome.batch)
        ) / outcome.batch
        assert batch_sigma == pytest.approx(exact_sigma, abs=1e-12)

    def test_lt_bucket_enumeration(self, backend_name, seeds):
        graph = tiny_graph()
        indexed, threshold_worlds = enumerate_lt_worlds(graph)
        oracle_states = [
            oracle_lt(graph, seeds, thresholds, MAX_HOPS)
            for thresholds in threshold_worlds
        ]
        payload = [
            [world[node] for node in range(indexed.node_count)]
            for world in threshold_worlds
        ]
        worlds = WorldBatch(
            "lt", len(payload), MAX_HOPS, {"thresholds": payload}
        )
        backend = resolve_backend(backend_name)
        outcome = backend.run_worlds(
            indexed, KernelSpec("lt"), worlds, seeds, MAX_HOPS
        )
        for world, states in enumerate(oracle_states):
            assert outcome.states_row(world) == [
                states[node] for node in range(indexed.node_count)
            ]

    def test_opoao_pick_enumeration(self, backend_name, seeds):
        graph = tiny_graph()
        hops = 3
        indexed, pick_worlds = enumerate_opoao_worlds(graph, hops)
        oracle_states = [
            oracle_opoao(graph, seeds, picks, hops) for picks in pick_worlds
        ]
        worlds = WorldBatch(
            "opoao", len(pick_worlds), hops, {"picks": pick_worlds}
        )
        backend = resolve_backend(backend_name)
        outcome = backend.run_worlds(
            indexed, KernelSpec("opoao"), worlds, seeds, hops
        )
        for world, states in enumerate(oracle_states):
            assert outcome.states_row(world) == [
                states[node] for node in range(indexed.node_count)
            ]

    def test_doam_single_world(self, backend_name, seeds):
        graph = tiny_graph()
        indexed = graph.to_indexed()
        states = oracle_race(graph, seeds, list(graph.edges()), MAX_HOPS)
        worlds = WorldBatch("doam", 1, MAX_HOPS, {})
        backend = resolve_backend(backend_name)
        outcome = backend.run_worlds(
            indexed, KernelSpec("doam"), worlds, seeds, MAX_HOPS
        )
        assert outcome.states_row(0) == [
            states[node] for node in range(indexed.node_count)
        ]


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_sampled_ic_converges_to_exact_sigma(backend_name):
    """Native sampling converges to the enumerated expectation (CI bound)."""
    graph = tiny_graph()
    seeds = SEED_CONFIGS[0]
    _, _, live_lists = enumerate_ic_worlds(graph)
    exact = mean_infected(
        [oracle_race(graph, seeds, live, MAX_HOPS) for live in live_lists]
    )
    indexed = graph.to_indexed()
    backend = resolve_backend(backend_name)
    spec = KernelSpec("ic", probability=0.5)
    runs = 4000
    worlds = backend.sample_worlds(indexed, spec, runs, MAX_HOPS, seed=11)
    outcome = backend.run_worlds(indexed, spec, worlds, seeds, MAX_HOPS)
    estimate = (
        sum(outcome.final_infected(world) for world in range(runs)) / runs
    )
    # infected counts live in [1, 6]: sd <= 2.5, 4-sigma half-width.
    assert abs(estimate - exact) <= 4 * 2.5 / runs**0.5
