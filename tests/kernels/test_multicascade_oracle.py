"""Exact K=3 oracle tests: full live-edge enumeration, both priority rules.

The two-cascade exact-oracle suite (``test_exact_oracle.py``) pins the
kernels to an independent P-wins BFS race. This file repeats the exercise
for **three competing cascades** under both named priority rules:

* every backend must match an independent dict-based K-cascade race on
  each of the ``2^|E|`` live-edge worlds (IC, ``p = 0.5`` so the batch
  mean is the exact expectation);
* the scenario-layer oracle helpers in :mod:`repro.lcrb.multicascade`
  (``exact_race`` / ``exact_cascade_expectation``) must agree with the
  same independent race — they are themselves the ground truth for the
  scenario tests, so they get their own cross-check here;
* DOAM (deterministic, one world) and sampled LT/OPOAO worlds must agree
  across backends for K=3, which closes the backend-equivalence gap the
  K=2 suite cannot see.
"""

import itertools

import pytest

from repro.diffusion.base import INACTIVE, PRIORITY_RULES, CascadeSet
from repro.graph.digraph import DiGraph
from repro.kernels.registry import available_backends, resolve_backend
from repro.kernels.spec import KernelSpec
from repro.kernels.worlds import WorldBatch, sample_shared_worlds
from repro.lcrb.multicascade import exact_cascade_expectation, exact_race

BACKENDS = available_backends()

MAX_HOPS = 8


def tiny_graph() -> "DiGraph":
    """7 edges: three seeds race for a contested middle (2^7 worlds)."""
    graph = DiGraph()
    graph.add_nodes(range(6))
    for tail, head in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (2, 4), (4, 5)]:
        graph.add_edge(tail, head)
    return graph


def seed_configs(rule):
    return [
        CascadeSet([[0], [2], [1]], priority=rule),
        CascadeSet([[0], [4], []], priority=rule),  # one empty campaign
    ]


def oracle_race_k(graph, seeds, live_edges, max_hops):
    """Priority-ordered BFS race over explicit live ``(tail, head)`` pairs.

    Independent of both the kernels and ``repro.lcrb.multicascade`` —
    dict-based, labels not CSR positions — so a shared bug cannot hide.
    """
    adjacency = {node: [] for node in graph.nodes()}
    for tail, head in live_edges:
        adjacency[tail].append(head)
    state = {node: INACTIVE for node in graph.nodes()}
    fronts = []
    for cascade, members in enumerate(seeds.cascades):
        for node in members:
            state[node] = cascade + 1
        fronts.append(set(members))
    for _hop in range(max_hops):
        targets = [set() for _ in fronts]
        claimed = set()
        for cascade in seeds.priority:
            targets[cascade] = {
                head
                for tail in fronts[cascade]
                for head in adjacency[tail]
                if state[head] == INACTIVE and head not in claimed
            }
            claimed |= targets[cascade]
        if not claimed:
            break
        for cascade, chosen in enumerate(targets):
            for node in chosen:
                state[node] = cascade + 1
        fronts = targets
    return state


def enumerate_ic_worlds(graph):
    """All 2^|E| live-edge masks in CSR edge order, plus live edge lists."""
    indexed = graph.to_indexed()
    csr = indexed.csr()
    edges = [
        (tail, int(csr.indices[position]))
        for tail in range(csr.node_count)
        for position in range(csr.indptr[tail], csr.indptr[tail + 1])
    ]
    masks, live_lists = [], []
    for bits in itertools.product([False, True], repeat=len(edges)):
        masks.append(list(bits))
        live_lists.append([edge for edge, bit in zip(edges, bits) if bit])
    return indexed, masks, live_lists


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("rule", PRIORITY_RULES)
class TestThreeCascadeOracle:
    def test_ic_full_enumeration(self, backend_name, rule):
        graph = tiny_graph()
        indexed, masks, live_lists = enumerate_ic_worlds(graph)
        for seeds in seed_configs(rule):
            oracle_states = [
                oracle_race_k(graph, seeds, live, MAX_HOPS)
                for live in live_lists
            ]
            worlds = WorldBatch("ic", len(masks), MAX_HOPS, {"live": masks})
            backend = resolve_backend(backend_name)
            outcome = backend.run_worlds(
                indexed, KernelSpec("ic", probability=0.5), worlds, seeds,
                MAX_HOPS,
            )
            for world, states in enumerate(oracle_states):
                assert outcome.states_row(world) == [
                    states[node] for node in range(indexed.node_count)
                ]
            # p = 0.5 makes every world equiprobable: the batch means are
            # the exact per-cascade expectations.
            exact = exact_cascade_expectation(
                indexed, seeds, probability=0.5, max_hops=MAX_HOPS
            )
            for cascade in range(seeds.cascade_count):
                wanted = cascade + 1
                batch_mean = sum(
                    sum(
                        1
                        for value in outcome.states_row(world)
                        if value == wanted
                    )
                    for world in range(outcome.batch)
                ) / outcome.batch
                assert batch_mean == pytest.approx(exact[cascade], abs=1e-12)

    def test_doam_single_world(self, backend_name, rule):
        graph = tiny_graph()
        indexed = graph.to_indexed()
        for seeds in seed_configs(rule):
            states = oracle_race_k(graph, seeds, list(graph.edges()), MAX_HOPS)
            worlds = WorldBatch("doam", 1, MAX_HOPS, {})
            backend = resolve_backend(backend_name)
            outcome = backend.run_worlds(
                indexed, KernelSpec("doam"), worlds, seeds, MAX_HOPS
            )
            assert outcome.states_row(0) == [
                states[node] for node in range(indexed.node_count)
            ]


@pytest.mark.parametrize("rule", PRIORITY_RULES)
class TestScenarioOracleAgrees:
    """``repro.lcrb.multicascade.exact_race`` vs the independent race."""

    def test_exact_race_matches_per_world(self, rule):
        graph = tiny_graph()
        indexed, masks, live_lists = enumerate_ic_worlds(graph)
        for seeds in seed_configs(rule):
            for mask, live in zip(masks, live_lists):
                expected = oracle_race_k(graph, seeds, live, MAX_HOPS)
                assert exact_race(indexed, seeds, mask, MAX_HOPS) == [
                    expected[node] for node in range(indexed.node_count)
                ]


@pytest.mark.skipif(
    len(BACKENDS) < 2, reason="needs two backends to compare"
)
@pytest.mark.parametrize("rule", PRIORITY_RULES)
@pytest.mark.parametrize(
    "spec",
    [KernelSpec("ic", probability=0.4), KernelSpec("lt"), KernelSpec("opoao")],
    ids=lambda spec: spec.kind,
)
def test_backends_agree_on_sampled_k3_worlds(rule, spec):
    """Python and numpy kernels race K=3 identically on shared worlds."""
    indexed = tiny_graph().to_indexed()
    seeds = CascadeSet([[0], [2], [1]], priority=rule)
    worlds = sample_shared_worlds(indexed.csr(), spec, 64, MAX_HOPS, seed=17)
    baseline = resolve_backend(BACKENDS[0]).run_worlds(
        indexed, spec, worlds, seeds, MAX_HOPS
    )
    for name in BACKENDS[1:]:
        outcome = resolve_backend(name).run_worlds(
            indexed, spec, worlds, seeds, MAX_HOPS
        )
        for world in range(outcome.batch):
            assert outcome.states_row(world) == baseline.states_row(world)
