"""Two-worker vs serial bit-identity for batched σ̂ and the greedy selectors.

The execution layer's contract (docs/parallel.md): a configured worker
pool changes wall-clock time only. Values, selection order, and merged
work counters must be byte-for-byte what the serial path produces.
"""

import pytest

from repro.algorithms.celf import CELFGreedySelector
from repro.algorithms.greedy import GreedySelector, candidate_pool
from repro.diffusion.doam import DOAMModel
from repro.diffusion.opoao import OPOAOModel
from repro.kernels.sigma import BatchedSigmaEvaluator
from repro.obs import MetricsRegistry, use_registry
from repro.rng import RngStream


def make_evaluator(context, workers=None, runs=12, seed=77):
    return BatchedSigmaEvaluator(
        context,
        model=OPOAOModel(),
        runs=runs,
        max_hops=8,
        rng=RngStream(seed, name="parallel-sigma"),
        backend="python",
        workers=workers,
    )


def counters_only(registry):
    """Counter totals, dropping timers and exec-infrastructure counters.

    Wall-clock timers are never deterministic, and ``exec.*`` counters
    record retry/timeout/degradation *events* (present only when the CI
    fault-injection leg runs with ``REPRO_EXEC_FAULTS`` set) — the
    determinism contract covers work counters, not fault bookkeeping.
    """
    return {
        name: value
        for name, value in registry.counter_values().items()
        if not name.startswith("time.") and not name.startswith("exec.")
    }


class TestSigmaManyBitIdentity:
    def test_two_workers_match_serial_loop(self, fig2_context):
        serial = make_evaluator(fig2_context)
        parallel = make_evaluator(fig2_context, workers=2)
        candidates = candidate_pool(fig2_context)
        sets = [[node] for node in candidates]
        expected = [serial.sigma(single) for single in sets]
        assert parallel.sigma_many(sets) == expected
        assert parallel.evaluations == serial.evaluations == len(sets)

    def test_sigma_many_serial_path_matches_loop(self, fig2_context):
        batched = make_evaluator(fig2_context)
        looped = make_evaluator(fig2_context)
        sets = [[node] for node in candidate_pool(fig2_context)]
        assert batched.sigma_many(sets) == [looped.sigma(s) for s in sets]

    def test_multi_node_sets(self, fig2_context):
        pool = candidate_pool(fig2_context)
        sets = [pool[:2], pool[1:3], pool[:1]]
        serial = make_evaluator(fig2_context).sigma_many(sets)
        parallel = make_evaluator(fig2_context, workers=2).sigma_many(sets)
        assert parallel == serial

    def test_deterministic_model(self, fig2_context):
        sets = [[node] for node in candidate_pool(fig2_context)]
        serial = BatchedSigmaEvaluator(
            fig2_context, model=DOAMModel(), backend="python"
        ).sigma_many(sets)
        parallel = BatchedSigmaEvaluator(
            fig2_context, model=DOAMModel(), backend="python", workers=2
        ).sigma_many(sets)
        assert parallel == serial

    def test_empty_input(self, fig2_context):
        assert make_evaluator(fig2_context, workers=2).sigma_many([]) == []

    def test_pickle_share_mode_matches(self, fig2_context):
        sets = [[node] for node in candidate_pool(fig2_context)]
        auto = make_evaluator(fig2_context, workers=2).sigma_many(sets)
        pickled = BatchedSigmaEvaluator(
            fig2_context,
            model=OPOAOModel(),
            runs=12,
            max_hops=8,
            rng=RngStream(77, name="parallel-sigma"),
            backend="python",
            workers=2,
            share="pickle",
        ).sigma_many(sets)
        assert pickled == auto


class TestCounterParity:
    def test_merged_counters_equal_serial(self, fig2_context):
        sets = [[node] for node in candidate_pool(fig2_context)]
        serial_registry = MetricsRegistry()
        with use_registry(serial_registry):
            evaluator = make_evaluator(fig2_context)
            serial_values = [evaluator.sigma(single) for single in sets]
        parallel_registry = MetricsRegistry()
        with use_registry(parallel_registry):
            parallel_values = make_evaluator(fig2_context, workers=2).sigma_many(
                sets
            )
        assert parallel_values == serial_values
        assert counters_only(parallel_registry) == counters_only(serial_registry)


class TestSelectorParity:
    def test_greedy_selection_identical(self, fig2_context):
        def selector(workers):
            return GreedySelector(
                runs=10,
                max_hops=8,
                rng=RngStream(3, name="greedy-par"),
                backend="python",
                workers=workers,
            )

        serial = selector(None).select(fig2_context, budget=2)
        parallel = selector(2).select(fig2_context, budget=2)
        assert parallel == serial
        assert len(parallel) == 2

    def test_celf_selection_identical(self, fig2_context):
        def selector(workers):
            return CELFGreedySelector(
                runs=10,
                max_hops=8,
                rng=RngStream(3, name="celf-par"),
                backend="python",
                workers=workers,
            )

        serial = selector(None).select(fig2_context, budget=2)
        parallel = selector(2).select(fig2_context, budget=2)
        assert parallel == serial

    def test_celf_matches_exhaustive_greedy_with_workers(self, fig2_context):
        greedy = GreedySelector(
            runs=10,
            max_hops=8,
            rng=RngStream(3, name="match"),
            backend="python",
            workers=2,
        ).select(fig2_context, budget=2)
        celf = CELFGreedySelector(
            runs=10,
            max_hops=8,
            rng=RngStream(3, name="match"),
            backend="python",
            workers=2,
        ).select(fig2_context, budget=2)
        assert celf == greedy


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


@pytest.mark.skipif(not _numpy_available(), reason="NumPy backend absent")
class TestNumpyBackendParity:
    def test_two_workers_match_serial(self, fig2_context):
        sets = [[node] for node in candidate_pool(fig2_context)]

        def evaluator(workers):
            return BatchedSigmaEvaluator(
                fig2_context,
                model=OPOAOModel(),
                runs=12,
                max_hops=8,
                rng=RngStream(9, name="np-par"),
                backend="numpy",
                workers=workers,
            )

        assert evaluator(2).sigma_many(sets) == evaluator(None).sigma_many(sets)
