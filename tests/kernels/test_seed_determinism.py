"""Seed-determinism regression: same ``(seed, backend)`` across processes.

Each case launches the same selection + evaluation pipeline in two fresh
interpreter processes and asserts the *entire* observable result —
selector output, sigma estimates, and the deterministic metrics counters
— is byte-identical. Catches any accidental dependence on hash
randomization, dict iteration order, uncached global state, or
non-seeded RNG in either backend.
"""

import json
import subprocess
import sys

import pytest

from repro.kernels.registry import available_backends

BACKENDS = available_backends()

SCRIPT = r"""
import json
import sys

backend = sys.argv[1]
seed = int(sys.argv[2])

from repro.algorithms.base import SelectionContext
from repro.algorithms.celf import CELFGreedySelector
from repro.datasets.toy import figure2_graph
from repro.diffusion.opoao import OPOAOModel
from repro.kernels.sigma import BatchedSigmaEvaluator
from repro.obs.registry import MetricsRegistry, metrics, set_registry
from repro.rng import RngStream

set_registry(MetricsRegistry())

graph, communities, info = figure2_graph()
context = SelectionContext(
    graph, communities.members(info["rumor_community"]), info["rumor_seeds"]
)
rng = RngStream(seed, name="determinism")

selector = CELFGreedySelector(
    model=OPOAOModel(),
    runs=12,
    max_hops=12,
    rng=rng.fork("greedy"),
    backend=backend,
)
selection = selector.select(context, budget=2)

evaluator = BatchedSigmaEvaluator(
    context,
    model=OPOAOModel(),
    runs=32,
    max_hops=12,
    rng=rng.fork("sigma"),
    backend=backend,
)
sigma = evaluator.sigma(selection)
fraction = evaluator.protected_fraction(selection)

print(
    json.dumps(
        {
            "selection": [str(node) for node in selection],
            "sigma": sigma,
            "fraction": fraction,
            "counters": metrics().counter_values(),
        },
        sort_keys=True,
    )
)
"""


def run_pipeline(backend: str, seed: int) -> str:
    result = subprocess.run(
        [sys.executable, "-c", SCRIPT, backend, str(seed)],
        capture_output=True,
        text=True,
        check=True,
    )
    return result.stdout.strip()


@pytest.mark.parametrize("backend", BACKENDS)
def test_two_processes_agree_exactly(backend):
    first = run_pipeline(backend, seed=2024)
    second = run_pipeline(backend, seed=2024)
    assert first == second
    payload = json.loads(first)
    assert payload["selection"]
    assert payload["counters"].get("selector.sigma_evaluations", 0) > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_different_seeds_may_differ_but_stay_valid(backend):
    baseline = json.loads(run_pipeline(backend, seed=2024))
    other = json.loads(run_pipeline(backend, seed=4048))
    assert 0.0 <= other["fraction"] <= 1.0
    assert len(other["selection"]) == len(baseline["selection"])


def test_backends_pick_identical_sets_on_shared_worlds(tmp_path):
    """Cross-backend: shared worlds force the same greedy trajectory."""
    if "numpy" not in BACKENDS:
        pytest.skip("numpy backend unavailable")
    outputs = {}
    script = SCRIPT.replace('backend=backend,', 'backend=backend, world_source="shared",')
    for backend in ("python", "numpy"):
        result = subprocess.run(
            [sys.executable, "-c", script, backend, "2024"],
            capture_output=True,
            text=True,
            check=True,
        )
        outputs[backend] = json.loads(result.stdout.strip())
    assert outputs["python"]["selection"] == outputs["numpy"]["selection"]
    assert outputs["python"]["sigma"] == outputs["numpy"]["sigma"]
    assert outputs["python"]["fraction"] == outputs["numpy"]["fraction"]
