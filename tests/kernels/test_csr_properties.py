"""Hypothesis properties of the CSR export on :class:`IndexedDiGraph`.

The CSR snapshot is the kernels' only view of the graph, so its contract
is load-bearing: a lossless round trip ``IndexedDiGraph <-> (indptr,
indices, weights)``, strict validation on ingest (self-loops, duplicate
edges, weight parallelism), and correct handling of isolated nodes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.compact import CSRArrays, IndexedDiGraph
from repro.graph.digraph import DiGraph


@st.composite
def random_digraphs(draw):
    """Digraphs with <= 8 nodes, random weighted edges, isolated nodes kept."""
    n = draw(st.integers(min_value=0, max_value=8))
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    chosen = draw(st.lists(st.sampled_from(pairs), max_size=12, unique=True)) if pairs else []
    graph = DiGraph()
    graph.add_nodes(range(n))
    for tail, head in chosen:
        weight = draw(
            st.floats(min_value=0.1, max_value=4.0, allow_nan=False)
        )
        graph.add_edge(tail, head, weight=weight)
    return graph


class TestCsrRoundTrip:
    @given(random_digraphs())
    @settings(max_examples=100, deadline=None)
    def test_round_trip_reproduces_graph_exactly(self, graph):
        indexed = graph.to_indexed()
        csr = indexed.csr()
        rebuilt = IndexedDiGraph.from_csr(
            indexed.labels, csr.indptr, csr.indices, csr.weights
        )
        assert rebuilt.labels == indexed.labels
        assert rebuilt.out == indexed.out
        assert rebuilt.out_weights == indexed.out_weights
        # in-adjacency is derived, but membership must match (order may
        # differ: from_csr appends in row-scan order).
        assert [sorted(row) for row in rebuilt.inn] == [
            sorted(row) for row in indexed.inn
        ]
        again = rebuilt.csr()
        assert again.indptr == csr.indptr
        assert again.indices == csr.indices
        assert again.weights == csr.weights

    @given(random_digraphs())
    @settings(max_examples=100, deadline=None)
    def test_indptr_invariants(self, graph):
        csr = graph.to_indexed().csr()
        assert len(csr.indptr) == csr.node_count + 1
        assert csr.node_count == graph.node_count
        assert csr.edge_count == graph.edge_count
        if csr.node_count:
            assert csr.indptr[0] == 0
            assert csr.indptr[-1] == csr.edge_count
        assert all(
            csr.indptr[i] <= csr.indptr[i + 1] for i in range(csr.node_count)
        )

    @given(random_digraphs())
    @settings(max_examples=100, deadline=None)
    def test_weights_parallel_indices_and_match_source_edges(self, graph):
        indexed = graph.to_indexed()
        csr = indexed.csr()
        assert len(csr.weights) == len(csr.indices)
        expected = {
            (indexed.index(tail), indexed.index(head)): weight
            for tail, head, weight in graph.weighted_edges()
        }
        seen = {}
        for u in range(csr.node_count):
            for position in range(csr.indptr[u], csr.indptr[u + 1]):
                seen[(u, csr.indices[position])] = csr.weights[position]
        assert seen == expected

    @given(random_digraphs())
    @settings(max_examples=100, deadline=None)
    def test_out_degrees_sum_to_edge_count(self, graph):
        csr = graph.to_indexed().csr()
        assert sum(csr.out_degrees()) == csr.edge_count
        assert sum(csr.in_degrees()) == csr.edge_count


class TestIsolatedNodes:
    def test_all_isolated(self):
        graph = DiGraph()
        graph.add_nodes(range(5))
        csr = graph.to_indexed().csr()
        assert csr.node_count == 5
        assert csr.edge_count == 0
        assert csr.indptr == (0, 0, 0, 0, 0, 0)

    def test_isolated_node_has_empty_row(self):
        graph = DiGraph()
        graph.add_nodes([0, 1, 2])
        graph.add_edge(0, 2)
        csr = graph.to_indexed().csr()
        assert csr.row(0) == (2,)
        assert csr.row(1) == ()
        assert csr.row(2) == ()


class TestFromCsrValidation:
    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            IndexedDiGraph.from_csr(["a", "b"], [0, 1, 2], [0, 0])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphError, match="duplicate"):
            IndexedDiGraph.from_csr(["a", "b"], [0, 2, 2], [1, 1])

    def test_out_of_range_index_rejected(self):
        with pytest.raises(GraphError, match="out of range"):
            IndexedDiGraph.from_csr(["a", "b"], [0, 1, 1], [5])

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(GraphError, match="parallel"):
            IndexedDiGraph.from_csr(
                ["a", "b"], [0, 1, 1], [1], weights=[0.5, 0.5]
            )

    def test_non_positive_weight_rejected(self):
        with pytest.raises(GraphError, match="> 0"):
            IndexedDiGraph.from_csr(["a", "b"], [0, 1, 1], [1], weights=[0.0])

    def test_decreasing_indptr_rejected(self):
        with pytest.raises(GraphError):
            IndexedDiGraph.from_csr(["a", "b", "c"], [0, 2, 1, 2], [1, 2, 0])

    def test_csr_arrays_weight_parallelism_enforced(self):
        with pytest.raises(GraphError, match="parallel"):
            CSRArrays([0, 1], [0], [])
