"""Unit tests for logging configuration."""

import io
import logging

from repro.logging_utils import configure_logging, get_logger


class TestGetLogger:
    def test_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("algorithms").name == "repro.algorithms"
        assert get_logger("repro.graph").name == "repro.graph"


class TestConfigureLogging:
    def test_levels(self):
        assert configure_logging(0).level == logging.WARNING
        assert configure_logging(1).level == logging.INFO
        assert configure_logging(2).level == logging.DEBUG
        assert configure_logging(9).level == logging.DEBUG

    def test_idempotent_handler_install(self):
        logger = configure_logging(1)
        first = len(logger.handlers)
        configure_logging(1)
        assert len(logger.handlers) == first

    def test_output_goes_to_stream(self):
        stream = io.StringIO()
        logger = configure_logging(1, stream=stream)
        logger.info("hello-world-marker")
        assert "hello-world-marker" in stream.getvalue()

    def test_warning_suppresses_info(self):
        stream = io.StringIO()
        logger = configure_logging(0, stream=stream)
        logger.info("should-not-appear")
        assert "should-not-appear" not in stream.getvalue()
