"""Integration: the experiment harness under the extension models."""

import pytest

from repro.experiments.config import FigureConfig
from repro.experiments.harness import GREEDY, NOBLOCKING, run_figure


@pytest.mark.parametrize("model_key", ["ic", "lt"])
def test_figure_harness_under_extension_models(model_key):
    config = FigureConfig(
        name=f"mini-{model_key}",
        dataset="hep",
        model=model_key,
        rumor_fraction=0.1,
        hops=8,
        runs=6,
        draws=1,
        scale=0.02,
        greedy_runs=3,
        greedy_max_candidates=20,
        seed=29,
    )
    result = run_figure(config)
    assert GREEDY in result.series and NOBLOCKING in result.series
    assert len(result.series[GREEDY]) == config.hops + 1
    assert result.final_infected(GREEDY) <= result.final_infected(NOBLOCKING)
    for series in result.series.values():
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))
