"""End-to-end integration tests on planted-partition networks.

These exercise the complete paper pipeline — generation, detection,
bridge-end discovery, selection, simulation — and assert the paper's
qualitative claims on instances with known ground truth.
"""

import pytest

from repro.algorithms.base import SelectionContext
from repro.algorithms.celf import CELFGreedySelector
from repro.algorithms.heuristics import (
    MaxDegreeSelector,
    ProximitySelector,
    RandomSelector,
    prefix_protects_all,
)
from repro.algorithms.scbg import SCBGSelector
from repro.community.louvain import louvain
from repro.community.metrics import normalized_mutual_information
from repro.community.structure import CommunityStructure
from repro.diffusion.doam import DOAMModel
from repro.diffusion.opoao import OPOAOModel
from repro.graph.generators import planted_partition
from repro.lcrb.evaluation import evaluate_protectors
from repro.lcrb.pipeline import build_context, draw_rumor_seeds
from repro.rng import RngStream


@pytest.fixture(scope="module")
def planted():
    graph, truth = planted_partition(
        [40, 40, 40], 0.25, 0.01, RngStream(17), directed=True
    )
    return graph, truth


@pytest.fixture(scope="module")
def instance(planted):
    graph, truth = planted
    cover = CommunityStructure(graph, truth)
    seeds = draw_rumor_seeds(cover, 0, 4, RngStream(18))
    context = SelectionContext(graph, cover.members(0), seeds)
    return context


class TestDetectionToSelection:
    def test_louvain_matches_planted(self, planted):
        graph, truth = planted
        detected = louvain(graph, rng=RngStream(19)).membership
        assert normalized_mutual_information(detected, truth) > 0.85

    def test_full_default_pipeline_runs(self, planted):
        graph, _ = planted
        context, cover, community_id = build_context(graph, rng=RngStream(20))
        assert context.bridge_ends is not None
        protectors = SCBGSelector().select(context)
        assert prefix_protects_all(context, protectors)


class TestScbgClaims:
    def test_scbg_protects_all_bridge_ends(self, instance):
        cover = SCBGSelector().select(instance)
        result = evaluate_protectors(instance, cover, DOAMModel(), runs=1)
        assert result.protected_bridge_fraction == 1.0

    def test_scbg_cheaper_than_heuristics(self, instance):
        scbg_size = len(SCBGSelector().select(instance))
        proximity_size = len(
            ProximitySelector(rng=RngStream(21)).select(instance)
        )
        maxdeg_size = len(MaxDegreeSelector().select(instance))
        assert scbg_size <= proximity_size
        assert scbg_size <= maxdeg_size

    def test_scbg_scales_slowly_with_rumor_size(self, planted):
        # Table I's headline: |P| grows much slower than |R| for SCBG.
        graph, truth = planted
        cover = CommunityStructure(graph, truth)
        sizes = []
        for count in (2, 8):
            seeds = draw_rumor_seeds(cover, 0, count, RngStream(22))
            context = SelectionContext(graph, cover.members(0), seeds)
            sizes.append(len(SCBGSelector().select(context)))
        growth = sizes[1] - sizes[0]
        assert growth <= 6 * 4  # far below the rumor-seed growth x community scale


class TestOpoaoClaims:
    def test_any_blocking_beats_noblocking(self, instance):
        budget = len(instance.rumor_seeds)
        protectors = CELFGreedySelector(
            runs=6, max_candidates=40, rng=RngStream(23)
        ).select(instance, budget=budget)
        blocked = evaluate_protectors(
            instance, protectors, OPOAOModel(), runs=40, rng=RngStream(24)
        )
        unblocked = evaluate_protectors(
            instance, [], OPOAOModel(), runs=40, rng=RngStream(24)
        )
        assert blocked.final_infected_mean < unblocked.final_infected_mean

    def test_greedy_protects_bridge_ends_better_than_random(self, instance):
        budget = max(2, len(instance.rumor_seeds))
        greedy = CELFGreedySelector(
            runs=6, max_candidates=40, rng=RngStream(25)
        ).select(instance, budget=budget)
        random_picks = RandomSelector(rng=RngStream(26)).select(
            instance, budget=budget
        )
        greedy_eval = evaluate_protectors(
            instance, greedy, OPOAOModel(), runs=60, rng=RngStream(27)
        )
        random_eval = evaluate_protectors(
            instance, random_picks, OPOAOModel(), runs=60, rng=RngStream(27)
        )
        assert (
            greedy_eval.protected_bridge_fraction
            >= random_eval.protected_bridge_fraction
        )
