"""Unit tests for the benchmark-regression gate (benchmarks/check_regression.py)."""

import json

import pytest

from benchmarks.check_regression import (
    DEFAULT_TOLERANCE,
    check,
    compare_documents,
    main,
    summary_table,
    update,
)


def _document(counters, name="perf_demo", fast=True, scale=0.05):
    return {
        "schema": "repro.bench/v1",
        "name": name,
        "fast": fast,
        "scale": scale,
        "wall_clock_seconds": 0.1,
        "counters": counters,
    }


class TestCompareDocuments:
    def test_identical_passes(self):
        doc = _document({"sim.edge_visits": 1000})
        failures, notes = compare_documents(doc, doc)
        assert failures == [] and notes == []

    def test_growth_within_tolerance_passes(self):
        base = _document({"sim.edge_visits": 1000})
        current = _document({"sim.edge_visits": 1099})
        failures, _ = compare_documents(base, current)
        assert failures == []

    def test_growth_beyond_ten_percent_fails(self):
        base = _document({"sim.edge_visits": 1000})
        current = _document({"sim.edge_visits": 1101})
        failures, _ = compare_documents(base, current)
        assert len(failures) == 1
        assert "sim.edge_visits" in failures[0]
        assert "regressed" in failures[0]

    def test_growth_from_zero_fails(self):
        failures, _ = compare_documents(
            _document({"new.work": 0}), _document({"new.work": 1})
        )
        assert len(failures) == 1

    def test_missing_counter_fails(self):
        failures, _ = compare_documents(
            _document({"sim.rounds": 5}), _document({})
        )
        assert failures and "missing" in failures[0]

    def test_shrunk_counter_is_informational(self):
        failures, notes = compare_documents(
            _document({"sim.rounds": 100}), _document({"sim.rounds": 50})
        )
        assert failures == []
        assert notes and "improved" in notes[0]

    def test_new_counter_is_informational(self):
        failures, notes = compare_documents(
            _document({}), _document({"sketch.rrsets_sampled": 3})
        )
        assert failures == []
        assert notes and "no baseline" in notes[0]

    def test_config_mismatch_fails_before_counters(self):
        base = _document({"sim.rounds": 10}, scale=0.05)
        current = _document({"sim.rounds": 10**6}, scale=0.02)
        failures, _ = compare_documents(base, current)
        assert len(failures) == 1
        assert "config mismatch" in failures[0]

    def test_custom_tolerance(self):
        base = _document({"sim.rounds": 100})
        current = _document({"sim.rounds": 140})
        assert compare_documents(base, current, tolerance=0.5)[0] == []
        assert compare_documents(base, current, tolerance=0.1)[0] != []

    def test_default_tolerance_is_ten_percent(self):
        assert DEFAULT_TOLERANCE == pytest.approx(0.10)


class TestCheckAndUpdate:
    def _write(self, directory, counters, name="perf_demo"):
        directory.mkdir(exist_ok=True)
        path = directory / f"BENCH_{name}.json"
        path.write_text(json.dumps(_document(counters, name=name)))
        return path

    def test_check_passes_and_fails(self, tmp_path):
        baselines, results = tmp_path / "baselines", tmp_path / "results"
        self._write(baselines, {"sim.edge_visits": 1000})
        self._write(results, {"sim.edge_visits": 1000})
        assert check(baselines, results, 0.10) == 0
        self._write(results, {"sim.edge_visits": 2000})
        assert check(baselines, results, 0.10) == 1

    def test_check_fails_on_missing_result(self, tmp_path):
        baselines, results = tmp_path / "baselines", tmp_path / "results"
        self._write(baselines, {"sim.rounds": 5})
        results.mkdir()
        assert check(baselines, results, 0.10) == 1

    def test_check_errors_without_baselines(self, tmp_path):
        (tmp_path / "baselines").mkdir()
        (tmp_path / "results").mkdir()
        assert check(tmp_path / "baselines", tmp_path / "results", 0.10) == 2

    def test_update_then_check_roundtrip(self, tmp_path):
        baselines, results = tmp_path / "baselines", tmp_path / "results"
        self._write(results, {"sim.edge_visits": 777})
        assert update(baselines, results) == 0
        assert check(baselines, results, 0.10) == 0

    def test_result_without_baseline_warns_not_fails(self, tmp_path, capsys):
        baselines, results = tmp_path / "baselines", tmp_path / "results"
        self._write(baselines, {"sim.edge_visits": 1000})
        self._write(results, {"sim.edge_visits": 1000})
        self._write(results, {"gossip.events": 50}, name="fresh_bench")
        assert check(baselines, results, 0.10) == 0
        out = capsys.readouterr().out
        assert "warn: no baseline for BENCH_fresh_bench.json" in out
        assert "--update" in out

    def test_baseline_less_result_does_not_mask_failures(self, tmp_path):
        baselines, results = tmp_path / "baselines", tmp_path / "results"
        self._write(baselines, {"sim.edge_visits": 1000})
        self._write(results, {"sim.edge_visits": 5000})
        self._write(results, {"gossip.events": 50}, name="fresh_bench")
        assert check(baselines, results, 0.10) == 1

    def test_failure_summary_lists_all_documents(self, tmp_path, capsys):
        baselines, results = tmp_path / "baselines", tmp_path / "results"
        self._write(baselines, {"sim.edge_visits": 100, "sim.rounds": 10})
        self._write(results, {"sim.edge_visits": 500, "sim.rounds": 90})
        self._write(baselines, {"gossip.events": 10}, name="gossip_demo")
        self._write(results, {"gossip.events": 99}, name="gossip_demo")
        self._write(baselines, {"sketch.rrsets": 7}, name="missing_demo")
        assert check(baselines, results, 0.10) == 1
        out = capsys.readouterr().out
        summary = out[out.index("REGRESSION SUMMARY"):]
        # Every regressing counter of every document in ONE report,
        # including the baseline whose result never got emitted.
        assert "4 failure(s) across 3 document(s)" in summary
        for token in (
            "sim.edge_visits", "sim.rounds", "gossip.events",
            "BENCH_perf_demo.json", "BENCH_gossip_demo.json",
            "BENCH_missing_demo.json", "no result emitted",
        ):
            assert token in summary, token

    def test_passing_run_prints_no_summary(self, tmp_path, capsys):
        baselines, results = tmp_path / "baselines", tmp_path / "results"
        self._write(baselines, {"sim.rounds": 10})
        self._write(results, {"sim.rounds": 10})
        assert check(baselines, results, 0.10) == 0
        assert "REGRESSION SUMMARY" not in capsys.readouterr().out

    def test_summary_table_alignment(self):
        table = summary_table(
            [
                ("BENCH_a.json", "counter 'x' regressed: 1 -> 2"),
                ("BENCH_longer_name.json", "counter 'y' regressed: 3 -> 9"),
            ]
        )
        lines = table.splitlines()
        assert lines[0].startswith("REGRESSION SUMMARY: 2 failure(s)")
        # Failure column starts at the same offset on every row.
        offsets = {line.index("counter") for line in lines[3:]}
        assert len(offsets) == 1

    def test_main_cli_flags(self, tmp_path):
        baselines, results = tmp_path / "baselines", tmp_path / "results"
        self._write(results, {"sim.rounds": 9})
        argv = ["--baselines", str(baselines), "--results", str(results)]
        assert main(argv + ["--update"]) == 0
        assert main(argv) == 0
        self._write(results, {"sim.rounds": 90})
        assert main(argv) == 1
        assert main(argv + ["--tolerance", "20.0"]) == 0
