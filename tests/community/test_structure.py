"""Unit tests for CommunityStructure (paper Definition 1)."""

import pytest

from repro.community.structure import CommunityStructure
from repro.errors import CommunityError, NodeNotFoundError
from repro.graph.digraph import DiGraph


@pytest.fixture
def graph():
    return DiGraph.from_edges(
        [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4), (4, 5), (5, 4)]
    )


@pytest.fixture
def cover(graph):
    return CommunityStructure(graph, {0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 2})


class TestValidation:
    def test_missing_node_rejected(self, graph):
        with pytest.raises(CommunityError, match="lack a community"):
            CommunityStructure(graph, {0: 0})

    def test_extra_node_rejected(self, graph):
        membership = {n: 0 for n in graph.nodes()}
        membership["ghost"] = 1
        with pytest.raises(CommunityError, match="not in graph"):
            CommunityStructure(graph, membership)

    def test_non_int_id_rejected(self, graph):
        membership = {n: 0 for n in graph.nodes()}
        membership[0] = "zero"
        with pytest.raises(CommunityError, match="must be int"):
            CommunityStructure(graph, membership)

    def test_bool_id_rejected(self, graph):
        membership = {n: 0 for n in graph.nodes()}
        membership[0] = True
        with pytest.raises(CommunityError):
            CommunityStructure(graph, membership)

    def test_from_blocks_overlap_rejected(self, graph):
        with pytest.raises(CommunityError, match="two communities"):
            CommunityStructure.from_blocks(graph, [[0, 1], [1, 2, 3, 4, 5]])


class TestQueries:
    def test_community_of(self, cover):
        assert cover.community_of(0) == 0
        assert cover.community_of(5) == 2

    def test_community_of_missing_raises(self, cover):
        with pytest.raises(NodeNotFoundError):
            cover.community_of("ghost")

    def test_members_and_size(self, cover):
        assert cover.members(1) == frozenset({2, 3})
        assert cover.size(1) == 2
        assert cover.sizes() == {0: 2, 1: 2, 2: 2}

    def test_unknown_community_raises(self, cover):
        with pytest.raises(CommunityError):
            cover.members(99)

    def test_same_community(self, cover):
        assert cover.same_community(0, 1)
        assert not cover.same_community(1, 2)

    def test_membership_copy_is_independent(self, cover):
        membership = cover.membership()
        membership[0] = 99
        assert cover.community_of(0) == 0

    def test_iter_blocks_ordered(self, cover):
        ids = [cid for cid, _ in cover.iter_blocks()]
        assert ids == [0, 1, 2]

    def test_largest_communities(self, graph):
        cover = CommunityStructure(graph, {0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 2})
        assert cover.largest_communities(2) == [0, 1]


class TestLcrbQueries:
    def test_neighbor_communities(self, cover):
        # Community 0 sends 1 -> 2 into community 1 only.
        assert cover.neighbor_communities(0) == {1}
        assert cover.neighbor_communities(1) == {2}
        assert cover.neighbor_communities(2) == set()

    def test_outgoing_boundary(self, cover):
        assert cover.outgoing_boundary(0) == [(1, 2)]

    def test_internal_edge_fraction(self, cover):
        # Community 0 has edges 0->1, 1->0 internal and 1->2 external.
        assert cover.internal_edge_fraction(0) == pytest.approx(2 / 3)

    def test_internal_edge_fraction_edgeless(self):
        g = DiGraph()
        g.add_nodes([1, 2])
        cover = CommunityStructure(g, {1: 0, 2: 1})
        assert cover.internal_edge_fraction(0) == 0.0
