"""Unit tests for the from-scratch Louvain implementation."""

import pytest

from repro.community.louvain import louvain
from repro.community.metrics import normalized_mutual_information
from repro.community.modularity import modularity
from repro.graph.digraph import DiGraph
from repro.graph.generators import planted_partition
from repro.rng import RngStream


def two_cliques_bridged() -> DiGraph:
    g = DiGraph()
    for base in (0, 5):
        for i in range(base, base + 5):
            for j in range(i + 1, base + 5):
                g.add_symmetric_edge(i, j)
    g.add_symmetric_edge(0, 5)
    return g


class TestLouvainBasics:
    def test_empty_graph(self):
        result = louvain(DiGraph())
        assert result.membership == {}

    def test_single_node(self):
        g = DiGraph()
        g.add_node("only")
        result = louvain(g)
        assert result.membership == {"only": 0}

    def test_partition_is_valid_cover(self):
        g = two_cliques_bridged()
        result = louvain(g)
        assert set(result.membership) == set(g.nodes())
        ids = set(result.membership.values())
        assert ids == set(range(len(ids)))  # dense 0-based

    def test_two_cliques_found(self):
        g = two_cliques_bridged()
        result = louvain(g)
        left = {result.membership[i] for i in range(5)}
        right = {result.membership[i] for i in range(5, 10)}
        assert len(left) == 1 and len(right) == 1
        assert left != right

    def test_deterministic_given_stream(self):
        g = two_cliques_bridged()
        a = louvain(g, rng=RngStream(9))
        b = louvain(g, rng=RngStream(9))
        assert a.membership == b.membership

    def test_levels_history_recorded(self):
        g = two_cliques_bridged()
        result = louvain(g, rng=RngStream(10))
        assert result.passes >= 1
        # Each recorded level is a full cover of the node set.
        for level in result.levels:
            assert set(level) == set(g.nodes())
        assert "communities=" in repr(result)

    def test_levels_modularity_non_decreasing(self):
        from repro.community.modularity import modularity

        graph, _ = planted_partition([15, 15, 15], 0.4, 0.02, RngStream(11))
        result = louvain(graph, rng=RngStream(12))
        qualities = [modularity(graph, level) for level in result.levels]
        qualities.append(modularity(graph, result.membership))
        for earlier, later in zip(qualities, qualities[1:]):
            assert later >= earlier - 1e-9


class TestLouvainQuality:
    def test_recovers_planted_partition(self):
        graph, truth = planted_partition(
            [25, 25, 25], 0.4, 0.01, RngStream(4), directed=True
        )
        result = louvain(graph, rng=RngStream(5))
        nmi = normalized_mutual_information(result.membership, truth)
        assert nmi > 0.9

    def test_modularity_beats_singletons_and_whole(self):
        graph, _ = planted_partition([20, 20], 0.5, 0.02, RngStream(6))
        result = louvain(graph, rng=RngStream(7))
        q_found = modularity(graph, result.membership)
        q_single = modularity(graph, {n: 0 for n in graph.nodes()})
        q_atoms = modularity(graph, {n: i for i, n in enumerate(graph.nodes())})
        assert q_found > q_single
        assert q_found > q_atoms

    def test_resolution_validation(self):
        g = two_cliques_bridged()
        with pytest.raises(Exception):
            louvain(g, resolution=0.0)

    def test_disconnected_components_in_distinct_communities(self):
        g = DiGraph.from_edges([(0, 1), (1, 0), (2, 3), (3, 2)])
        result = louvain(g)
        assert result.membership[0] == result.membership[1]
        assert result.membership[2] == result.membership[3]
        assert result.membership[0] != result.membership[2]
