"""Unit tests for modularity computation."""

import pytest

from repro.community.modularity import modularity, modularity_from_weights
from repro.errors import CommunityError
from repro.graph.digraph import DiGraph


def two_cliques(bridge: bool = True) -> DiGraph:
    """Two 4-cliques (symmetric edges), optionally bridged."""
    g = DiGraph()
    for base in (0, 4):
        for i in range(base, base + 4):
            for j in range(i + 1, base + 4):
                g.add_symmetric_edge(i, j)
    if bridge:
        g.add_symmetric_edge(0, 4)
    return g


class TestModularity:
    def test_good_partition_positive(self):
        g = two_cliques()
        membership = {i: 0 if i < 4 else 1 for i in range(8)}
        assert modularity(g, membership) > 0.3

    def test_all_one_community_is_zero(self):
        g = two_cliques()
        membership = {i: 0 for i in range(8)}
        assert modularity(g, membership) == pytest.approx(0.0, abs=1e-12)

    def test_good_beats_bad_partition(self):
        g = two_cliques()
        good = {i: 0 if i < 4 else 1 for i in range(8)}
        bad = {i: i % 2 for i in range(8)}
        assert modularity(g, good) > modularity(g, bad)

    def test_empty_graph_zero(self):
        assert modularity(DiGraph(), {}) == 0.0

    def test_edgeless_graph_zero(self):
        g = DiGraph()
        g.add_nodes([1, 2])
        assert modularity(g, {1: 0, 2: 1}) == 0.0

    def test_missing_membership_raises(self):
        g = DiGraph.from_edges([(1, 2)])
        with pytest.raises(CommunityError):
            modularity(g, {1: 0})

    def test_bounded_above_by_one(self):
        g = two_cliques(bridge=False)
        membership = {i: 0 if i < 4 else 1 for i in range(8)}
        assert modularity(g, membership) <= 1.0

    def test_known_value_two_disconnected_cliques(self):
        # Two equal disconnected cliques split correctly: Q = 1/2.
        g = two_cliques(bridge=False)
        membership = {i: 0 if i < 4 else 1 for i in range(8)}
        assert modularity(g, membership) == pytest.approx(0.5)


class TestFromWeights:
    def test_self_loop_handling(self):
        adjacency = {0: {0: 1.0, 1: 1.0}, 1: {0: 1.0}}
        # One self loop at 0 plus symmetric edge 0-1; single community => 0.
        assert modularity_from_weights(adjacency, {0: 0, 1: 0}) == pytest.approx(0.0)

    def test_weight_scaling_invariance(self):
        g = two_cliques()
        membership = {i: 0 if i < 4 else 1 for i in range(8)}
        base = modularity(g, membership)
        scaled_adj = {
            node: {nbr: 7.0 * w for nbr, w in nbrs.items()}
            for node, nbrs in g.to_undirected_weights().items()
        }
        assert modularity_from_weights(scaled_adj, membership) == pytest.approx(base)
