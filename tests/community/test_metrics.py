"""Unit tests for partition-quality metrics."""

import pytest

from repro.community.metrics import (
    conductance,
    normalized_mutual_information,
    partition_counts,
    purity,
)
from repro.graph.digraph import DiGraph


class TestNmi:
    def test_identical_partitions(self):
        p = {0: 0, 1: 0, 2: 1, 3: 1}
        assert normalized_mutual_information(p, p) == pytest.approx(1.0)

    def test_relabeled_partitions_still_one(self):
        left = {0: 0, 1: 0, 2: 1, 3: 1}
        right = {0: 7, 1: 7, 2: 3, 3: 3}
        assert normalized_mutual_information(left, right) == pytest.approx(1.0)

    def test_independent_partitions_low(self):
        left = {i: i % 2 for i in range(8)}
        right = {i: i // 4 for i in range(8)}
        assert normalized_mutual_information(left, right) == pytest.approx(0.0, abs=1e-9)

    def test_different_node_sets_rejected(self):
        with pytest.raises(ValueError):
            normalized_mutual_information({0: 0}, {1: 0})

    def test_both_trivial_partitions(self):
        left = {0: 0, 1: 0}
        right = {0: 5, 1: 5}
        assert normalized_mutual_information(left, right) == 1.0

    def test_one_trivial_one_split(self):
        left = {0: 0, 1: 0}
        right = {0: 0, 1: 1}
        assert normalized_mutual_information(left, right) == 0.0


class TestPurity:
    def test_perfect(self):
        found = {0: 0, 1: 0, 2: 1}
        truth = {0: 9, 1: 9, 2: 4}
        assert purity(found, truth) == 1.0

    def test_half(self):
        found = {0: 0, 1: 0}
        truth = {0: 0, 1: 1}
        assert purity(found, truth) == 0.5


class TestConductance:
    def test_isolated_block_zero(self):
        g = DiGraph.from_edges([(0, 1), (1, 0), (2, 3), (3, 2)])
        assert conductance(g, [0, 1]) == 0.0

    def test_cut_block_positive(self):
        g = DiGraph.from_edges([(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)])
        value = conductance(g, [0, 1])
        assert 0 < value <= 1.0

    def test_dense_community_lower_than_random_split(self):
        g = DiGraph()
        for base in (0, 4):
            for i in range(base, base + 4):
                for j in range(i + 1, base + 4):
                    g.add_symmetric_edge(i, j)
        g.add_symmetric_edge(0, 4)
        community = conductance(g, [0, 1, 2, 3])
        random_split = conductance(g, [0, 1, 4, 5])
        assert community < random_split


class TestPartitionCounts:
    def test_counts(self):
        assert partition_counts({0: 0, 1: 0, 2: 1}) == {0: 2, 1: 1}


class TestMixingParameter:
    def test_values(self):
        from repro.community.metrics import mixing_parameter

        g = DiGraph.from_edges([(0, 1), (1, 0), (0, 2), (2, 3), (3, 2)])
        membership = {0: 0, 1: 0, 2: 1, 3: 1}
        # One crossing edge (0 -> 2) of five.
        assert mixing_parameter(g, membership) == 0.2

    def test_no_structure(self):
        from repro.community.metrics import mixing_parameter

        g = DiGraph.from_edges([(0, 1), (1, 2)])
        membership = {0: 0, 1: 1, 2: 2}
        assert mixing_parameter(g, membership) == 1.0

    def test_empty_graph(self):
        from repro.community.metrics import mixing_parameter

        assert mixing_parameter(DiGraph(), {}) == 0.0
