"""Unit tests for the Girvan-Newman detector."""

from repro.community.girvan_newman import girvan_newman
from repro.community.louvain import louvain
from repro.community.metrics import normalized_mutual_information
from repro.graph.digraph import DiGraph
from repro.rng import RngStream


def two_cliques_bridged():
    g = DiGraph()
    for base in (0, 4):
        for i in range(base, base + 4):
            for j in range(i + 1, base + 4):
                g.add_symmetric_edge(i, j)
    g.add_symmetric_edge(0, 4)
    return g


class TestGirvanNewman:
    def test_empty_graph(self):
        assert girvan_newman(DiGraph()) == {}

    def test_two_cliques_split(self):
        g = two_cliques_bridged()
        membership = girvan_newman(g)
        left = {membership[i] for i in range(4)}
        right = {membership[i] for i in range(4, 8)}
        assert len(left) == 1 and len(right) == 1
        assert left != right

    def test_dense_ids(self):
        g = two_cliques_bridged()
        membership = girvan_newman(g)
        ids = set(membership.values())
        assert ids == set(range(len(ids)))

    def test_max_communities_stops_early(self):
        g = two_cliques_bridged()
        membership = girvan_newman(g, max_communities=2)
        assert len(set(membership.values())) >= 2

    def test_agrees_with_louvain_on_clean_structure(self):
        g = two_cliques_bridged()
        gn = girvan_newman(g)
        lv = louvain(g, rng=RngStream(3)).membership
        assert normalized_mutual_information(gn, lv) == 1.0

    def test_disconnected_components_separate(self):
        g = DiGraph.from_edges([(0, 1), (1, 0), (2, 3), (3, 2)])
        membership = girvan_newman(g)
        assert membership[0] == membership[1]
        assert membership[2] == membership[3]
        assert membership[0] != membership[2]
