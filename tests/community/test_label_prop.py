"""Unit tests for label propagation."""

from repro.community.label_prop import label_propagation
from repro.community.metrics import normalized_mutual_information
from repro.graph.digraph import DiGraph
from repro.graph.generators import planted_partition
from repro.rng import RngStream


class TestLabelPropagation:
    def test_empty_graph(self):
        assert label_propagation(DiGraph()) == {}

    def test_isolated_nodes_keep_own_labels(self):
        g = DiGraph()
        g.add_nodes([1, 2, 3])
        membership = label_propagation(g)
        assert len(set(membership.values())) == 3

    def test_clique_converges_to_one_label(self):
        g = DiGraph()
        for i in range(5):
            for j in range(i + 1, 5):
                g.add_symmetric_edge(i, j)
        membership = label_propagation(g, rng=RngStream(1))
        assert len(set(membership.values())) == 1

    def test_dense_ids(self):
        g = DiGraph.from_edges([(0, 1), (1, 0), (2, 3), (3, 2)])
        membership = label_propagation(g, rng=RngStream(2))
        ids = set(membership.values())
        assert ids == set(range(len(ids)))

    def test_recovers_well_separated_blocks(self):
        graph, truth = planted_partition(
            [20, 20], 0.6, 0.005, RngStream(3), directed=False
        )
        membership = label_propagation(graph, rng=RngStream(4))
        nmi = normalized_mutual_information(membership, truth)
        assert nmi > 0.8

    def test_deterministic_given_stream(self):
        graph, _ = planted_partition([15, 15], 0.5, 0.02, RngStream(5))
        a = label_propagation(graph, rng=RngStream(6))
        b = label_propagation(graph, rng=RngStream(6))
        assert a == b
