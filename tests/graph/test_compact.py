"""Unit tests for the IndexedDiGraph snapshot."""

import pytest

from repro.errors import NodeNotFoundError
from repro.graph.compact import IndexedDiGraph
from repro.graph.digraph import DiGraph


class TestFromDigraph:
    def test_snapshot_preserves_structure(self, diamond):
        indexed = diamond.to_indexed()
        assert indexed.node_count == 4
        assert indexed.edge_count == 4
        s = indexed.index("s")
        t = indexed.index("t")
        assert len(indexed.out[s]) == 2
        assert len(indexed.inn[t]) == 2
        assert indexed.out_degree(s) == 2
        assert indexed.in_degree(t) == 2

    def test_labels_follow_insertion_order(self):
        g = DiGraph()
        for node in ("c", "a", "b"):
            g.add_node(node)
        indexed = g.to_indexed()
        assert indexed.labels == ("c", "a", "b")

    def test_repeated_snapshots_identical(self, diamond):
        first = diamond.to_indexed()
        second = diamond.to_indexed()
        assert first.labels == second.labels
        assert first.out == second.out
        assert first.inn == second.inn

    def test_round_trip_edges(self, chain):
        indexed = chain.to_indexed()
        rebuilt = {
            (indexed.labels[u], indexed.labels[v])
            for u in range(indexed.node_count)
            for v in indexed.out[u]
        }
        assert rebuilt == set(chain.edges())


class TestAccessors:
    def test_index_of_missing_label_raises(self, diamond):
        indexed = diamond.to_indexed()
        with pytest.raises(NodeNotFoundError):
            indexed.index("ghost")

    def test_indices_and_label_set(self, diamond):
        indexed = diamond.to_indexed()
        ids = indexed.indices(["a", "b"])
        assert indexed.label_set(ids) == {"a", "b"}

    def test_len(self, diamond):
        assert len(diamond.to_indexed()) == 4


class TestValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            IndexedDiGraph(labels=["a"], out=[[], []], inn=[[]])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            IndexedDiGraph(labels=["a", "a"], out=[[], []], inn=[[], []])

    def test_immutability_via_tuples(self, diamond):
        indexed = diamond.to_indexed()
        assert isinstance(indexed.out, tuple)
        assert all(isinstance(row, tuple) for row in indexed.out)


class TestCSRMemoization:
    def test_csr_returns_cached_instance(self, diamond):
        # The CSR export feeds every kernel call and every graph
        # publication; rebuilding it per call would dominate small runs.
        indexed = diamond.to_indexed()
        assert indexed.csr() is indexed.csr()

    def test_cached_csr_matches_adjacency(self, chain):
        indexed = chain.to_indexed()
        csr = indexed.csr()
        for node in range(indexed.node_count):
            assert csr.row(node) == indexed.out[node]

    def test_from_csr_round_trip_uses_fresh_cache(self, diamond):
        indexed = diamond.to_indexed()
        csr = indexed.csr()
        rebuilt = IndexedDiGraph.from_csr(
            indexed.labels, csr.indptr, csr.indices, csr.weights
        )
        assert rebuilt.csr() is not csr
        assert rebuilt.csr().indptr == csr.indptr
        assert rebuilt.csr().indices == csr.indices
        assert rebuilt.csr().weights == csr.weights
