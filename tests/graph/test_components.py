"""Unit tests for connected-component algorithms."""

from repro.graph.components import (
    is_weakly_connected,
    largest_weak_component,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.graph.digraph import DiGraph


class TestWeakComponents:
    def test_single_component(self, diamond):
        components = weakly_connected_components(diamond)
        assert len(components) == 1
        assert components[0] == {"s", "a", "b", "t"}

    def test_direction_ignored(self):
        g = DiGraph.from_edges([(0, 1), (2, 1)])  # 2 -> 1 <- 0
        assert len(weakly_connected_components(g)) == 1

    def test_two_components_sorted_by_size(self):
        g = DiGraph.from_edges([(0, 1), (1, 2), (10, 11)])
        components = weakly_connected_components(g)
        assert [len(c) for c in components] == [3, 2]

    def test_isolated_nodes_are_singletons(self):
        g = DiGraph()
        g.add_nodes([1, 2, 3])
        assert len(weakly_connected_components(g)) == 3

    def test_largest_component_empty_graph(self):
        assert largest_weak_component(DiGraph()) == set()

    def test_is_weakly_connected(self, chain):
        assert is_weakly_connected(chain)
        chain.add_node("lonely")
        assert not is_weakly_connected(chain)


class TestStrongComponents:
    def test_cycle_is_one_scc(self, cycle):
        components = strongly_connected_components(cycle)
        assert len(components) == 1
        assert components[0] == set(range(5))

    def test_chain_is_all_singletons(self, chain):
        components = strongly_connected_components(chain)
        assert len(components) == 6
        assert all(len(c) == 1 for c in components)

    def test_mixed_graph(self):
        # SCC {0,1,2} feeding a tail 3 -> 4.
        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
        components = strongly_connected_components(g)
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 1, 3]
        assert {0, 1, 2} in components

    def test_two_sccs_connected_one_way(self):
        g = DiGraph.from_edges([(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)])
        components = strongly_connected_components(g)
        assert {0, 1} in components
        assert {2, 3} in components

    def test_self_loop_single_scc(self):
        g = DiGraph.from_edges([(0, 0), (0, 1)])
        components = strongly_connected_components(g)
        assert {0} in components and {1} in components

    def test_deep_chain_no_recursion_error(self):
        n = 5000
        g = DiGraph.from_edges([(i, i + 1) for i in range(n)])
        components = strongly_connected_components(g)
        assert len(components) == n + 1
