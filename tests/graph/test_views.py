"""Unit tests for live graph views."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.views import DegreeView


class TestNodeView:
    def test_set_semantics(self, diamond):
        view = diamond.nodes_view()
        assert "s" in view
        assert "ghost" not in view
        assert len(view) == 4
        assert set(view) == {"s", "a", "b", "t"}

    def test_set_operations_return_frozensets(self, diamond):
        view = diamond.nodes_view()
        overlap = view & {"s", "x"}
        assert overlap == frozenset({"s"})
        union = view | {"x"}
        assert "x" in union and "t" in union
        assert isinstance(overlap, frozenset)

    def test_live_after_mutation(self, diamond):
        view = diamond.nodes_view()
        diamond.add_node("new")
        assert "new" in view
        assert len(view) == 5

    def test_unhashable_membership_is_false(self, diamond):
        assert ["s"] not in diamond.nodes_view()


class TestEdgeView:
    def test_set_semantics(self, diamond):
        view = diamond.edges_view()
        assert ("s", "a") in view
        assert ("a", "s") not in view
        assert ("s",) not in view
        assert "sa" not in view
        assert len(view) == 4

    def test_difference_between_graphs(self, diamond):
        mutated = diamond.copy()
        mutated.add_edge("t", "s")
        fresh = mutated.edges_view() - diamond.edges_view()
        assert fresh == frozenset({("t", "s")})

    def test_with_weights(self):
        g = DiGraph()
        g.add_edge(1, 2, weight=2.0)
        assert list(g.edges_view().with_weights()) == [(1, 2, 2.0)]

    def test_live(self, diamond):
        view = diamond.edges_view()
        diamond.add_edge("t", "s")
        assert ("t", "s") in view


class TestDegreeView:
    def test_mapping_semantics(self, diamond):
        view = diamond.degree_view("out")
        assert view["s"] == 2
        assert len(view) == 4
        assert dict(view.items())["t"] == 0

    def test_directions(self, diamond):
        assert diamond.degree_view("in")["t"] == 2
        assert diamond.degree_view("total")["a"] == 2

    def test_bad_direction(self, diamond):
        with pytest.raises(ValueError):
            DegreeView(diamond, "sideways")

    def test_sorting_by_degree(self, diamond):
        ranked = sorted(diamond.degree_view("out").items(), key=lambda kv: -kv[1])
        assert ranked[0][0] == "s"
