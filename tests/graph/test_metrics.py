"""Unit tests for graph metrics."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.metrics import (
    average_clustering,
    average_degree,
    degree_histogram,
    density,
    local_clustering,
    reciprocity,
    summarize,
)


class TestDegreeStats:
    def test_average_degree(self, diamond):
        assert average_degree(diamond) == 1.0  # 4 edges / 4 nodes

    def test_average_degree_empty(self):
        assert average_degree(DiGraph()) == 0.0

    def test_density(self, diamond):
        assert density(diamond) == pytest.approx(4 / (4 * 3))

    def test_density_tiny(self):
        g = DiGraph()
        g.add_node(1)
        assert density(g) == 0.0

    def test_degree_histogram_out(self, diamond):
        histogram = degree_histogram(diamond, "out")
        # s has out 2; a, b have out 1; t has out 0.
        assert histogram == [1, 2, 1]

    def test_degree_histogram_in(self, diamond):
        assert degree_histogram(diamond, "in") == [1, 2, 1]

    def test_degree_histogram_total(self, diamond):
        assert degree_histogram(diamond, "total") == [0, 0, 4]

    def test_degree_histogram_bad_direction(self, diamond):
        with pytest.raises(ValueError):
            degree_histogram(diamond, "sideways")

    def test_degree_histogram_empty(self):
        assert degree_histogram(DiGraph()) == []


class TestReciprocity:
    def test_fully_reciprocal(self):
        g = DiGraph()
        g.add_symmetric_edge(1, 2)
        assert reciprocity(g) == 1.0

    def test_no_reciprocity(self, chain):
        assert reciprocity(chain) == 0.0

    def test_empty(self):
        assert reciprocity(DiGraph()) == 0.0


class TestClustering:
    def test_triangle_clusters_fully(self):
        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        assert local_clustering(g, 0) == 1.0
        assert average_clustering(g) == 1.0

    def test_star_has_zero_clustering(self):
        g = DiGraph.from_edges([(0, i) for i in range(1, 5)])
        assert local_clustering(g, 0) == 0.0

    def test_degree_below_two_is_zero(self, chain):
        assert local_clustering(chain, 0) == 0.0

    def test_average_clustering_empty(self):
        assert average_clustering(DiGraph()) == 0.0


class TestSummary:
    def test_summarize_fields(self, diamond):
        summary = summarize(diamond)
        assert summary.nodes == 4
        assert summary.edges == 4
        assert summary.average_degree == 1.0
        assert 0 < summary.density < 1
        assert summary.reciprocity == 0.0

    def test_as_dict_and_str(self, diamond):
        summary = summarize(diamond)
        payload = summary.as_dict()
        assert payload["nodes"] == 4
        assert "|N|=4" in str(summary)
