"""Unit tests for induced subgraphs and boundary extraction."""

import pytest

from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.subgraph import (
    boundary_in_edges,
    boundary_out_edges,
    edge_cut,
    induced_subgraph,
)


@pytest.fixture
def split_graph():
    """Two halves {0,1,2} and {3,4} with cross edges 2->3 and 4->0."""
    return DiGraph.from_edges(
        [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (4, 0)]
    )


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self, split_graph):
        sub = induced_subgraph(split_graph, [0, 1, 2])
        assert sub.node_count == 3
        assert sorted(sub.edges()) == [(0, 1), (1, 2), (2, 0)]

    def test_isolated_member_kept(self, split_graph):
        sub = induced_subgraph(split_graph, [0, 3])
        assert sub.node_count == 2
        assert sub.edge_count == 0

    def test_missing_node_raises(self, split_graph):
        with pytest.raises(NodeNotFoundError):
            induced_subgraph(split_graph, [0, 99])

    def test_weights_preserved(self):
        g = DiGraph()
        g.add_edge(1, 2, weight=3.0)
        sub = induced_subgraph(g, [1, 2])
        assert sub.edge_weight(1, 2) == 3.0


class TestBoundaries:
    def test_out_edges(self, split_graph):
        assert boundary_out_edges(split_graph, [0, 1, 2]) == [(2, 3)]

    def test_in_edges(self, split_graph):
        assert boundary_in_edges(split_graph, [0, 1, 2]) == [(4, 0)]

    def test_whole_graph_has_no_boundary(self, split_graph):
        assert boundary_out_edges(split_graph, list(split_graph.nodes())) == []

    def test_missing_node_raises(self, split_graph):
        with pytest.raises(NodeNotFoundError):
            boundary_out_edges(split_graph, [99])


class TestEdgeCut:
    def test_counts_both_directions(self, split_graph):
        forward, backward = edge_cut(split_graph, [0, 1, 2], [3, 4])
        assert forward == 1  # 2 -> 3
        assert backward == 1  # 4 -> 0

    def test_overlap_rejected(self, split_graph):
        with pytest.raises(ValueError):
            edge_cut(split_graph, [0, 1], [1, 2])
