"""Unit tests for Brandes betweenness centrality."""

import pytest

from repro.graph.betweenness import edge_betweenness, node_betweenness
from repro.graph.digraph import DiGraph


@pytest.fixture
def barbell():
    """Two triangles joined by a bridge edge in both directions."""
    g = DiGraph()
    for base in (0, 3):
        nodes = [base, base + 1, base + 2]
        for i in nodes:
            for j in nodes:
                if i != j:
                    g.add_edge(i, j)
    g.add_symmetric_edge(2, 3)
    return g


class TestNodeBetweenness:
    def test_path_center_highest(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)])
        scores = node_betweenness(g, normalized=False)
        assert scores[1] == 1.0  # the single path 0->2 passes through 1
        assert scores[0] == scores[2] == 0.0

    def test_bridge_nodes_dominate_barbell(self, barbell):
        scores = node_betweenness(barbell, normalized=False)
        bridge = {2, 3}
        for node in barbell.nodes():
            if node not in bridge:
                assert scores[node] < scores[2]
                assert scores[node] < scores[3]

    def test_normalization(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)])
        raw = node_betweenness(g, normalized=False)
        normed = node_betweenness(g, normalized=True)
        n = 3
        assert normed[1] == pytest.approx(raw[1] / ((n - 1) * (n - 2)))

    def test_complete_graph_zero(self):
        g = DiGraph.from_edges([(i, j) for i in range(4) for j in range(4) if i != j])
        scores = node_betweenness(g, normalized=False)
        assert all(value == 0.0 for value in scores.values())


class TestEdgeBetweenness:
    def test_chain_edge_counts(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)])
        scores = edge_betweenness(g, normalized=False)
        # (0,1) lies on paths 0->1 and 0->2; (1,2) on 1->2 and 0->2.
        assert scores[(0, 1)] == 2.0
        assert scores[(1, 2)] == 2.0

    def test_bridge_edge_dominates_barbell(self, barbell):
        scores = edge_betweenness(barbell, normalized=False)
        top_edge = max(scores, key=scores.get)
        assert top_edge in {(2, 3), (3, 2)}

    def test_all_edges_scored(self, barbell):
        scores = edge_betweenness(barbell)
        assert set(scores) == set(barbell.edges())
