"""Unit tests for graph persistence."""

import io

import pytest

from repro.errors import DatasetError
from repro.graph.digraph import DiGraph
from repro.graph.io import (
    read_communities,
    read_edge_list,
    read_json,
    write_communities,
    write_edge_list,
    write_json,
)


class TestEdgeList:
    def test_round_trip_via_path(self, tmp_path, diamond):
        path = tmp_path / "g.edges"
        write_edge_list(diamond, path)
        loaded = read_edge_list(path, node_type=str)
        assert sorted(loaded.edges()) == sorted(diamond.edges())

    def test_round_trip_via_handle(self, chain):
        buffer = io.StringIO()
        write_edge_list(chain, buffer)
        buffer.seek(0)
        loaded = read_edge_list(buffer)
        assert sorted(loaded.edges()) == sorted(chain.edges())

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n1 2\n# mid\n2 3\n"
        loaded = read_edge_list(io.StringIO(text))
        assert loaded.edge_count == 2

    def test_bad_line_raises_with_line_number(self):
        with pytest.raises(DatasetError, match="line 2"):
            read_edge_list(io.StringIO("1 2\n1 2 3\n"))

    def test_bad_token_raises(self):
        with pytest.raises(DatasetError):
            read_edge_list(io.StringIO("a b\n"))  # default node_type=int

    def test_isolated_nodes_lost_in_edge_list(self, tmp_path):
        # Documented format limitation: edge lists carry edges only.
        g = DiGraph.from_edges([(1, 2)], nodes=[9])
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert not loaded.has_node(9)


class TestJson:
    def test_round_trip_preserves_everything(self, tmp_path):
        g = DiGraph(name="demo")
        g.add_edge(1, 2, weight=2.5)
        g.add_node(9)  # isolated
        path = tmp_path / "g.json"
        write_json(g, path)
        loaded = read_json(path)
        assert loaded.name == "demo"
        assert loaded.has_node(9)
        assert loaded.edge_weight(1, 2) == 2.5

    def test_invalid_json_raises(self):
        with pytest.raises(DatasetError):
            read_json(io.StringIO("not json"))

    def test_missing_key_raises(self):
        with pytest.raises(DatasetError, match="missing key"):
            read_json(io.StringIO('{"name": "x", "nodes": []}'))

    def test_bad_edge_entry_raises(self):
        doc = '{"name": "x", "nodes": [1, 2], "edges": [[1, 2]]}'
        with pytest.raises(DatasetError, match="bad edge"):
            read_json(io.StringIO(doc))

    def test_non_scalar_node_rejected(self):
        doc = '{"name": "x", "nodes": [[1, 2]], "edges": []}'
        with pytest.raises(DatasetError, match="non-scalar"):
            read_json(io.StringIO(doc))


class TestCommunities:
    def test_round_trip(self, tmp_path):
        membership = {1: 0, 2: 0, 3: 1}
        path = tmp_path / "m.communities"
        write_communities(membership, path)
        assert read_communities(path) == membership

    def test_node_type_conversion(self):
        buffer = io.StringIO("# c\nalice 0\nbob 1\n")
        loaded = read_communities(buffer, node_type=str)
        assert loaded == {"alice": 0, "bob": 1}

    def test_malformed_line_raises(self):
        with pytest.raises(DatasetError, match="line 1"):
            read_communities(io.StringIO("1 2 3\n"))
