"""Unit tests for weighted shortest paths."""

import pytest

from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.paths import dijkstra, shortest_weighted_path, weighted_eccentricity


@pytest.fixture
def weighted():
    g = DiGraph()
    g.add_edge("s", "a", weight=1.0)
    g.add_edge("s", "b", weight=4.0)
    g.add_edge("a", "b", weight=1.0)
    g.add_edge("b", "t", weight=1.0)
    g.add_edge("a", "t", weight=5.0)
    return g


class TestDijkstra:
    def test_distances(self, weighted):
        distances, parents = dijkstra(weighted, ["s"])
        assert distances == {"s": 0.0, "a": 1.0, "b": 2.0, "t": 3.0}
        assert parents["b"] == "a"  # cheaper via a than direct

    def test_multi_source(self, weighted):
        distances, _ = dijkstra(weighted, ["s", "b"])
        assert distances["t"] == 1.0

    def test_reverse(self, weighted):
        distances, _ = dijkstra(weighted, ["t"], reverse=True)
        assert distances["s"] == 3.0

    def test_cutoff(self, weighted):
        distances, _ = dijkstra(weighted, ["s"], cutoff=1.5)
        assert "t" not in distances
        assert distances["a"] == 1.0

    def test_unreachable_absent(self):
        g = DiGraph.from_edges([("a", "b")], nodes=["z"])
        distances, _ = dijkstra(g, ["a"])
        assert "z" not in distances

    def test_missing_source_raises(self, weighted):
        with pytest.raises(NodeNotFoundError):
            dijkstra(weighted, ["ghost"])

    def test_empty_sources_rejected(self, weighted):
        with pytest.raises(ValueError):
            dijkstra(weighted, [])

    def test_matches_bfs_on_unit_weights(self, diamond):
        from repro.graph.traversal import bfs_distances

        distances, _ = dijkstra(diamond, ["s"])
        assert distances == {k: float(v) for k, v in bfs_distances(diamond, "s").items()}


class TestPathReconstruction:
    def test_path(self, weighted):
        assert shortest_weighted_path(weighted, "s", "t") == ["s", "a", "b", "t"]

    def test_trivial_path(self, weighted):
        assert shortest_weighted_path(weighted, "s", "s") == ["s"]

    def test_unreachable_none(self):
        g = DiGraph.from_edges([("a", "b")], nodes=["z"])
        assert shortest_weighted_path(g, "a", "z") is None

    def test_missing_target_raises(self, weighted):
        with pytest.raises(NodeNotFoundError):
            shortest_weighted_path(weighted, "s", "ghost")


class TestEccentricity:
    def test_value(self, weighted):
        assert weighted_eccentricity(weighted, "s") == 3.0

    def test_isolated(self):
        g = DiGraph()
        g.add_node("x")
        assert weighted_eccentricity(g, "x") == 0.0
