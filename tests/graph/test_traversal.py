"""Unit tests for BFS traversal primitives."""

import pytest

from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.traversal import (
    bfs_distances,
    bfs_layers,
    bfs_tree,
    descendants_within,
    multi_source_distances,
    reachable_set,
    reverse_distances,
    shortest_hop_distance,
)


class TestBfsLayers:
    def test_chain_layers(self, chain):
        layers = list(bfs_layers(chain, [0]))
        assert layers == [[0], [1], [2], [3], [4], [5]]

    def test_diamond_layers(self, diamond):
        layers = list(bfs_layers(diamond, ["s"]))
        assert layers[0] == ["s"]
        assert sorted(layers[1]) == ["a", "b"]
        assert layers[2] == ["t"]

    def test_multi_source_dedup(self, chain):
        layers = list(bfs_layers(chain, [0, 0, 1]))
        assert sorted(layers[0]) == [0, 1]

    def test_max_depth(self, chain):
        layers = list(bfs_layers(chain, [0], max_depth=2))
        assert len(layers) == 3  # depths 0, 1, 2

    def test_reverse_direction(self, chain):
        layers = list(bfs_layers(chain, [5], reverse=True))
        assert layers == [[5], [4], [3], [2], [1], [0]]

    def test_missing_source_raises(self, chain):
        with pytest.raises(NodeNotFoundError):
            list(bfs_layers(chain, ["ghost"]))

    def test_unreachable_nodes_not_visited(self):
        g = DiGraph.from_edges([(0, 1)], nodes=[2])
        layers = list(bfs_layers(g, [0]))
        visited = {node for layer in layers for node in layer}
        assert 2 not in visited


class TestDistances:
    def test_single_source(self, chain):
        distances = bfs_distances(chain, 0)
        assert distances == {i: i for i in range(6)}

    def test_multi_source_takes_minimum(self, chain):
        distances = multi_source_distances(chain, [0, 3])
        assert distances[4] == 1
        assert distances[2] == 2

    def test_unreachable_omitted(self):
        g = DiGraph.from_edges([(0, 1)], nodes=[2])
        assert 2 not in bfs_distances(g, 0)

    def test_reverse_distances_are_path_lengths_to_target(self, diamond):
        distances = reverse_distances(diamond, "t")
        assert distances == {"t": 0, "a": 1, "b": 1, "s": 2}

    def test_max_depth_cuts_off(self, chain):
        distances = bfs_distances(chain, 0, max_depth=3)
        assert max(distances.values()) == 3
        assert 4 not in distances


class TestBfsTree:
    def test_parents_form_tree(self, diamond):
        parents = bfs_tree(diamond, "s")
        assert parents["s"] is None
        assert parents["a"] == "s" and parents["b"] == "s"
        assert parents["t"] in ("a", "b")

    def test_tree_respects_max_depth(self, chain):
        parents = bfs_tree(chain, 0, max_depth=2)
        assert set(parents) == {0, 1, 2}

    def test_reverse_tree(self, chain):
        parents = bfs_tree(chain, 5, reverse=True)
        assert parents[4] == 5
        assert set(parents) == set(range(6))

    def test_missing_source_raises(self, chain):
        with pytest.raises(NodeNotFoundError):
            bfs_tree(chain, "ghost")


class TestReachability:
    def test_reachable_set_includes_sources(self, chain):
        assert reachable_set(chain, [3]) == {3, 4, 5}

    def test_shortest_hop_distance(self, diamond):
        assert shortest_hop_distance(diamond, "s", "t") == 2
        assert shortest_hop_distance(diamond, "t", "s") is None
        assert shortest_hop_distance(diamond, "s", "s") == 0

    def test_shortest_hop_missing_target_raises(self, diamond):
        with pytest.raises(NodeNotFoundError):
            shortest_hop_distance(diamond, "s", "ghost")

    def test_descendants_within(self, chain):
        assert descendants_within(chain, 0, 2) == {1, 2}
        assert descendants_within(chain, 5, 3) == set()

    def test_cycle_terminates(self, cycle):
        distances = bfs_distances(cycle, 0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}
