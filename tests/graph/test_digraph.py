"""Unit tests for the core DiGraph container."""

import pytest

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_empty_graph(self):
        g = DiGraph()
        assert g.node_count == 0
        assert g.edge_count == 0
        assert list(g.nodes()) == []
        assert list(g.edges()) == []

    def test_from_edges(self):
        g = DiGraph.from_edges([(1, 2), (2, 3)])
        assert g.node_count == 3
        assert g.edge_count == 2
        assert g.has_edge(1, 2) and g.has_edge(2, 3)
        assert not g.has_edge(2, 1)

    def test_from_edges_with_isolated_nodes(self):
        g = DiGraph.from_edges([(1, 2)], nodes=[7, 8])
        assert g.node_count == 4
        assert g.has_node(7) and g.has_node(8)
        assert g.out_degree(7) == 0

    def test_from_adjacency(self):
        g = DiGraph.from_adjacency({"a": ["b", "c"], "b": [], "d": ["a"]})
        assert g.node_count == 4
        assert sorted(g.successors("a")) == ["b", "c"]
        assert g.in_degree("a") == 1

    def test_name_round_trips(self):
        g = DiGraph(name="net")
        assert g.name == "net"
        assert "net" in repr(g)


class TestMutation:
    def test_add_node_idempotent(self):
        g = DiGraph()
        g.add_node(1)
        g.add_node(1)
        assert g.node_count == 1

    def test_add_edge_creates_endpoints(self):
        g = DiGraph()
        g.add_edge("x", "y")
        assert g.has_node("x") and g.has_node("y")

    def test_readding_edge_keeps_count_updates_weight(self):
        g = DiGraph()
        g.add_edge(1, 2, weight=1.0)
        g.add_edge(1, 2, weight=5.0)
        assert g.edge_count == 1
        assert g.edge_weight(1, 2) == 5.0

    def test_non_positive_weight_rejected(self):
        g = DiGraph()
        with pytest.raises(GraphError):
            g.add_edge(1, 2, weight=0.0)
        with pytest.raises(GraphError):
            g.add_edge(1, 2, weight=-1.0)

    def test_symmetric_edge(self):
        g = DiGraph()
        g.add_symmetric_edge("u", "v")
        assert g.has_edge("u", "v") and g.has_edge("v", "u")
        assert g.edge_count == 2

    def test_remove_edge(self):
        g = DiGraph.from_edges([(1, 2), (2, 1)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.has_edge(2, 1)
        assert g.edge_count == 1

    def test_remove_missing_edge_raises(self):
        g = DiGraph.from_edges([(1, 2)])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(2, 1)

    def test_remove_node_removes_incident_edges(self):
        g = DiGraph.from_edges([(1, 2), (2, 3), (3, 1), (2, 2)])
        g.remove_node(2)
        assert not g.has_node(2)
        assert g.edge_count == 1  # only 3 -> 1 remains
        g.validate()

    def test_remove_missing_node_raises(self):
        g = DiGraph()
        with pytest.raises(NodeNotFoundError):
            g.remove_node("ghost")

    def test_self_loop(self):
        g = DiGraph()
        g.add_edge(1, 1)
        assert g.has_edge(1, 1)
        assert g.out_degree(1) == 1
        assert g.in_degree(1) == 1
        g.validate()


class TestAccessors:
    def test_successors_predecessors(self, diamond):
        assert sorted(diamond.successors("s")) == ["a", "b"]
        assert sorted(diamond.predecessors("t")) == ["a", "b"]
        assert list(diamond.predecessors("s")) == []

    def test_degrees(self, diamond):
        assert diamond.out_degree("s") == 2
        assert diamond.in_degree("s") == 0
        assert diamond.degree("a") == 2

    def test_missing_node_queries_raise(self):
        g = DiGraph()
        for call in (
            lambda: list(g.successors("x")),
            lambda: list(g.predecessors("x")),
            lambda: g.out_degree("x"),
            lambda: g.in_degree("x"),
            lambda: g.edge_weight("x", "y"),
        ):
            with pytest.raises(NodeNotFoundError):
                call()

    def test_edge_weight_missing_edge(self):
        g = DiGraph.from_edges([(1, 2)])
        with pytest.raises(EdgeNotFoundError):
            g.edge_weight(2, 1)

    def test_contains_len_iter(self):
        g = DiGraph.from_edges([(1, 2)])
        assert 1 in g and 3 not in g
        assert len(g) == 2
        assert sorted(g) == [1, 2]

    def test_weighted_edges(self):
        g = DiGraph()
        g.add_edge(1, 2, weight=2.5)
        assert list(g.weighted_edges()) == [(1, 2, 2.5)]
        assert g.total_weight() == 2.5

    def test_in_out_weight(self):
        g = DiGraph()
        g.add_edge(1, 2, weight=2.0)
        g.add_edge(1, 3, weight=3.0)
        g.add_edge(3, 2, weight=4.0)
        assert g.out_weight(1) == 5.0
        assert g.in_weight(2) == 6.0


class TestCopyReverse:
    def test_copy_is_independent(self, diamond):
        clone = diamond.copy()
        clone.add_edge("t", "s")
        assert not diamond.has_edge("t", "s")
        assert diamond.edge_count == 4
        assert clone.edge_count == 5

    def test_reverse_flips_edges(self, chain):
        rev = chain.reverse()
        assert rev.has_edge(1, 0)
        assert not rev.has_edge(0, 1)
        assert rev.edge_count == chain.edge_count
        rev.validate()

    def test_double_reverse_identity(self, diamond):
        twice = diamond.reverse().reverse()
        assert sorted(twice.edges()) == sorted(diamond.edges())


class TestUndirectedWeights:
    def test_symmetrisation_sums_mutual_edges(self):
        g = DiGraph()
        g.add_edge("a", "b", weight=1.0)
        g.add_edge("b", "a", weight=2.0)
        sym = g.to_undirected_weights()
        assert sym["a"]["b"] == 3.0
        assert sym["b"]["a"] == 3.0

    def test_one_directional_edge_kept(self):
        g = DiGraph.from_edges([("a", "b")])
        sym = g.to_undirected_weights()
        assert sym["a"]["b"] == 1.0
        assert sym["b"]["a"] == 1.0

    def test_self_loop_counted_once(self):
        g = DiGraph()
        g.add_edge("a", "a", weight=4.0)
        sym = g.to_undirected_weights()
        assert sym["a"]["a"] == 4.0


class TestValidate:
    def test_validate_passes_on_consistent_graph(self, diamond):
        diamond.validate()  # must not raise

    def test_validate_detects_corruption(self):
        g = DiGraph.from_edges([(1, 2)])
        g._edge_count = 99  # simulate corruption
        with pytest.raises(GraphError):
            g.validate()
