"""Unit tests for random-graph generators."""

import pytest

from repro.errors import ValidationError
from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    planted_partition,
    powerlaw_community_digraph,
    powerlaw_sizes,
    watts_strogatz,
)
from repro.rng import RngStream


class TestErdosRenyi:
    def test_p_zero_no_edges(self, rng):
        g = erdos_renyi(20, 0.0, rng)
        assert g.node_count == 20
        assert g.edge_count == 0

    def test_p_one_complete(self, rng):
        g = erdos_renyi(6, 1.0, rng)
        assert g.edge_count == 6 * 5

    def test_undirected_symmetric(self, rng):
        g = erdos_renyi(15, 0.5, rng, directed=False)
        for tail, head in g.edges():
            assert g.has_edge(head, tail)

    def test_deterministic_given_stream(self):
        a = erdos_renyi(30, 0.2, RngStream(5))
        b = erdos_renyi(30, 0.2, RngStream(5))
        assert sorted(a.edges()) == sorted(b.edges())

    def test_invalid_params(self, rng):
        with pytest.raises(ValidationError):
            erdos_renyi(0, 0.5, rng)
        with pytest.raises(ValidationError):
            erdos_renyi(10, 1.5, rng)


class TestBarabasiAlbert:
    def test_node_and_min_edge_counts(self, rng):
        g = barabasi_albert(50, 3, rng)
        assert g.node_count == 50
        # Each of the 50 - 4 late nodes adds m=3 symmetric edges.
        assert g.edge_count >= 2 * 3 * (50 - 4)

    def test_symmetric(self, rng):
        g = barabasi_albert(30, 2, rng)
        for tail, head in g.edges():
            assert g.has_edge(head, tail)

    def test_heavy_tail_exists(self, rng):
        g = barabasi_albert(300, 2, rng)
        max_degree = max(g.out_degree(n) for n in g.nodes())
        assert max_degree >= 15  # hubs emerge

    def test_m_ge_n_rejected(self, rng):
        with pytest.raises(ValidationError):
            barabasi_albert(5, 5, rng)


class TestWattsStrogatz:
    def test_no_rewiring_is_lattice(self, rng):
        g = watts_strogatz(12, 4, 0.0, rng)
        for u in range(12):
            assert g.has_edge(u, (u + 1) % 12)
            assert g.has_edge(u, (u + 2) % 12)

    def test_rewired_graph_same_node_count(self, rng):
        g = watts_strogatz(20, 4, 0.5, rng)
        assert g.node_count == 20
        g.validate()

    def test_odd_k_rejected(self, rng):
        with pytest.raises(ValidationError):
            watts_strogatz(10, 3, 0.1, rng)


class TestPlantedPartition:
    def test_membership_matches_sizes(self, rng):
        _, membership = planted_partition([4, 6], 0.9, 0.05, rng)
        counts = {}
        for cid in membership.values():
            counts[cid] = counts.get(cid, 0) + 1
        assert counts == {0: 4, 1: 6}

    def test_extremes_give_disconnected_cliques(self, rng):
        g, membership = planted_partition([5, 5], 1.0, 0.0, rng)
        for tail, head in g.edges():
            assert membership[tail] == membership[head]
        # Each block is a complete directed subgraph.
        assert g.edge_count == 2 * 5 * 4

    def test_intra_denser_than_inter(self, rng):
        g, membership = planted_partition([30, 30], 0.3, 0.02, rng)
        intra = sum(1 for t, h in g.edges() if membership[t] == membership[h])
        inter = g.edge_count - intra
        assert intra > inter

    def test_bad_sizes_rejected(self, rng):
        with pytest.raises(ValidationError):
            planted_partition([], 0.5, 0.1, rng)
        with pytest.raises(ValidationError):
            planted_partition([3, 0], 0.5, 0.1, rng)


class TestPowerlawSizes:
    def test_sum_exact(self, rng):
        sizes = powerlaw_sizes(1000, 12, rng)
        assert sum(sizes) == 1000
        assert len(sizes) == 12

    def test_minimum_respected(self, rng):
        sizes = powerlaw_sizes(500, 20, rng, minimum=5)
        assert min(sizes) >= 5

    def test_infeasible_rejected(self, rng):
        with pytest.raises(ValidationError):
            powerlaw_sizes(10, 20, rng, minimum=3)

    def test_heterogeneous(self, rng):
        sizes = powerlaw_sizes(2000, 15, rng)
        assert max(sizes) > 2 * min(sizes)


class TestForestFire:
    def test_node_count_and_connectivity(self, rng):
        from repro.graph.components import is_weakly_connected
        from repro.graph.generators import forest_fire

        g = forest_fire(60, 0.35, 0.2, rng)
        assert g.node_count == 60
        assert is_weakly_connected(g)  # every arrival links to an ambassador

    def test_densification_with_higher_p(self):
        from repro.graph.generators import forest_fire

        sparse = forest_fire(80, 0.1, 0.1, RngStream(1))
        dense = forest_fire(80, 0.45, 0.3, RngStream(1))
        assert dense.edge_count > sparse.edge_count

    def test_deterministic(self):
        from repro.graph.generators import forest_fire

        a = forest_fire(40, 0.3, 0.2, RngStream(2))
        b = forest_fire(40, 0.3, 0.2, RngStream(2))
        assert sorted(a.edges()) == sorted(b.edges())

    def test_forward_prob_one_rejected(self, rng):
        from repro.graph.generators import forest_fire

        with pytest.raises(ValidationError):
            forest_fire(10, 1.0, 0.2, rng)

    def test_single_node(self, rng):
        from repro.graph.generators import forest_fire

        g = forest_fire(1, 0.3, 0.2, rng)
        assert g.node_count == 1
        assert g.edge_count == 0


class TestPowerlawCommunityDigraph:
    def test_basic_statistics(self, rng):
        g, membership = powerlaw_community_digraph(
            400, avg_degree=8.0, mixing=0.1, rng=rng
        )
        assert g.node_count == 400
        assert set(membership) == set(range(400))
        # Duplicate-resampling may fall slightly short of the edge budget.
        assert g.edge_count > 0.8 * 400 * 8

    def test_mixing_fraction_roughly_honoured(self, rng):
        g, membership = powerlaw_community_digraph(
            500, avg_degree=8.0, mixing=0.1, rng=rng
        )
        inter = sum(1 for t, h in g.edges() if membership[t] != membership[h])
        fraction = inter / g.edge_count
        assert 0.04 <= fraction <= 0.2

    def test_symmetric_mode(self, rng):
        g, _ = powerlaw_community_digraph(
            200, avg_degree=6.0, mixing=0.1, rng=rng, symmetric=True
        )
        for tail, head in g.edges():
            assert g.has_edge(head, tail)

    def test_deterministic_given_stream(self):
        a, ma = powerlaw_community_digraph(150, 6.0, 0.1, RngStream(3))
        b, mb = powerlaw_community_digraph(150, 6.0, 0.1, RngStream(3))
        assert sorted(a.edges()) == sorted(b.edges())
        assert ma == mb

    def test_explicit_community_count(self, rng):
        _, membership = powerlaw_community_digraph(
            300, 6.0, 0.1, rng, n_communities=7
        )
        assert len(set(membership.values())) == 7
