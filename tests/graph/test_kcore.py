"""Unit tests for k-core decomposition."""

from repro.graph.digraph import DiGraph
from repro.graph.kcore import core_numbers, k_core_subgraph


def clique(size: int, offset: int = 0) -> DiGraph:
    g = DiGraph()
    for i in range(offset, offset + size):
        for j in range(i + 1, offset + size):
            g.add_symmetric_edge(i, j)
    return g


class TestCoreNumbers:
    def test_empty_graph(self):
        assert core_numbers(DiGraph()) == {}

    def test_isolated_nodes_core_zero(self):
        g = DiGraph()
        g.add_nodes([1, 2])
        assert core_numbers(g) == {1: 0, 2: 0}

    def test_clique_core(self):
        g = clique(5)
        cores = core_numbers(g)
        assert all(value == 4 for value in cores.values())

    def test_chain_core_one(self, chain):
        cores = core_numbers(chain)
        assert all(value == 1 for value in cores.values())

    def test_clique_with_pendant(self):
        g = clique(4)
        g.add_symmetric_edge(0, "pendant")
        cores = core_numbers(g)
        assert cores["pendant"] == 1
        assert cores[0] == 3
        assert cores[1] == 3

    def test_direction_ignored(self):
        # A directed triangle has symmetrised degree 2 everywhere.
        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        cores = core_numbers(g)
        assert all(value == 2 for value in cores.values())

    def test_self_loop_ignored(self):
        g = DiGraph()
        g.add_edge(0, 0)
        g.add_symmetric_edge(0, 1)
        cores = core_numbers(g)
        assert cores[0] == 1

    def test_two_cliques_different_cores(self):
        g = clique(5)
        small = clique(3, offset=10)
        for tail, head, weight in small.weighted_edges():
            g.add_edge(tail, head, weight)
        g.add_symmetric_edge(0, 10)
        cores = core_numbers(g)
        assert cores[1] == 4
        assert cores[11] == 2


class TestKCoreSubgraph:
    def test_extracts_dense_part(self):
        g = clique(4)
        g.add_symmetric_edge(0, "pendant")
        sub = k_core_subgraph(g, 3)
        assert set(sub.nodes()) == {0, 1, 2, 3}

    def test_k_zero_keeps_everything(self, chain):
        assert k_core_subgraph(chain, 0).node_count == chain.node_count
