"""Dynamic-graph edge updates: the incremental CSR overlay.

The differential harness here is the PR's contract for
:meth:`IndexedDiGraph.apply_updates`: after every mutation batch the
incrementally-maintained graph must hold the *same adjacency* as a full
from-scratch rebuild of the mutated edge set. Out rows (and weights)
match exactly — they drive the CSR export the kernels consume — while
in rows match as multisets (incremental maintenance appends at row
ends; a from-scratch rebuild discovers in-edges in tail order).
"""

from __future__ import annotations

import pytest

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graph.compact import IndexedDiGraph
from repro.graph.generators import erdos_renyi
from repro.rng import RngStream


def build_graph(seed: int = 7, nodes: int = 30, p: float = 0.12):
    digraph = erdos_renyi(nodes, p, rng=RngStream(seed), directed=True)
    return IndexedDiGraph.from_digraph(digraph)


def edge_set(graph: IndexedDiGraph):
    return {
        (tail, head, graph.out_weights[tail][position])
        for tail in range(graph.node_count)
        for position, head in enumerate(graph.out[tail])
    }


def rebuild_from_edges(graph: IndexedDiGraph) -> IndexedDiGraph:
    """From-scratch construction of the same (mutated) edge set."""
    n = graph.node_count
    out = [list(row) for row in graph.out]
    weights = [list(row) for row in graph.out_weights]
    inn = [[] for _ in range(n)]
    for tail in range(n):
        for head in out[tail]:
            inn[head].append(tail)
    return IndexedDiGraph(graph.labels, out, inn, weights)


def assert_adjacency_equal(actual: IndexedDiGraph, expected: IndexedDiGraph):
    assert actual.out == expected.out
    assert actual.out_weights == expected.out_weights
    # In rows are order-insensitive (see module docstring).
    assert [sorted(row) for row in actual.inn] == [
        sorted(row) for row in expected.inn
    ]
    assert actual.edge_count == expected.edge_count


class TestApplyUpdates:
    def test_insert_new_edge(self):
        graph = build_graph()
        tail = next(
            t for t in range(graph.node_count) if len(graph.out[t]) < 5
        )
        head = next(
            h
            for h in range(graph.node_count)
            if h != tail and h not in graph.out[tail]
        )
        before = graph.edge_count
        touched = graph.apply_updates([(tail, head, 0.5)], [])
        assert touched == {tail, head}
        assert graph.edge_count == before + 1
        assert graph.out[tail][-1] == head  # append-at-end ordering
        position = graph.out[tail].index(head)
        assert graph.out_weights[tail][position] == 0.5
        assert tail in graph.inn[head]
        assert graph.version == 1

    def test_delete_edge(self):
        graph = build_graph()
        tail = next(t for t in range(graph.node_count) if graph.out[t])
        head = graph.out[tail][0]
        before = graph.edge_count
        touched = graph.apply_updates([], [(tail, head)])
        assert touched == {tail, head}
        assert graph.edge_count == before - 1
        assert head not in graph.out[tail]
        assert tail not in graph.inn[head]

    def test_weight_overwrite_in_place(self):
        graph = build_graph()
        tail = next(t for t in range(graph.node_count) if graph.out[t])
        head = graph.out[tail][0]
        row_before = graph.out[tail]
        graph.apply_updates([(tail, head, 9.0)], [])
        assert graph.out[tail] == row_before  # position unchanged
        assert graph.out_weights[tail][0] == 9.0

    def test_empty_batch_is_noop(self):
        graph = build_graph()
        out_before, version_before = graph.out, graph.version
        assert graph.apply_updates([], []) == frozenset()
        assert graph.out is out_before
        assert graph.version == version_before

    def test_version_bumps_per_batch(self):
        graph = build_graph()
        tail = next(t for t in range(graph.node_count) if graph.out[t])
        head = graph.out[tail][0]
        graph.apply_updates([], [(tail, head)])
        graph.apply_updates([(tail, head)], [])
        assert graph.version == 2

    def test_rejects_self_loop(self):
        graph = build_graph()
        with pytest.raises(GraphError):
            graph.apply_updates([(3, 3)], [])

    def test_rejects_unknown_node(self):
        graph = build_graph()
        with pytest.raises(NodeNotFoundError):
            graph.apply_updates([(0, graph.node_count)], [])

    def test_rejects_missing_deletion(self):
        graph = build_graph()
        tail = next(
            t for t in range(graph.node_count) if len(graph.out[t]) < 5
        )
        head = next(
            h
            for h in range(graph.node_count)
            if h != tail and h not in graph.out[tail]
        )
        with pytest.raises(EdgeNotFoundError):
            graph.apply_updates([], [(tail, head)])

    def test_rejects_insert_and_delete_of_same_edge(self):
        graph = build_graph()
        tail = next(t for t in range(graph.node_count) if graph.out[t])
        head = graph.out[tail][0]
        with pytest.raises(GraphError):
            graph.apply_updates([(tail, head)], [(tail, head)])

    def test_rejects_nonpositive_weight(self):
        graph = build_graph()
        with pytest.raises(GraphError):
            graph.apply_updates([(0, 1, 0.0)], [])

    def test_atomic_on_validation_failure(self):
        graph = build_graph()
        tail = next(t for t in range(graph.node_count) if graph.out[t])
        head = graph.out[tail][0]
        snapshot = edge_set(graph)
        with pytest.raises(NodeNotFoundError):
            # Second entry is invalid; the first must not stick.
            graph.apply_updates([], [(tail, head), (0, graph.node_count)])
        assert edge_set(graph) == snapshot
        assert graph.version == 0


class TestDifferentialVsRebuild:
    """Random mutation sequences: incremental == from-scratch rebuild."""

    def test_random_batches_match_rebuild(self):
        rng = RngStream(99, name="overlay-diff")
        graph = build_graph(seed=11, nodes=40, p=0.10)
        for batch_index in range(12):
            batch_rng = rng.fork("batch", batch_index)
            insertions, deletions = [], []
            claimed = set()
            for _ in range(3):
                tail = batch_rng.randrange(graph.node_count)
                head = batch_rng.randrange(graph.node_count)
                if tail == head or (tail, head) in claimed:
                    continue
                claimed.add((tail, head))
                if head in graph.out[tail]:
                    deletions.append((tail, head))
                else:
                    insertions.append(
                        (tail, head, 0.1 + batch_rng.random())
                    )
            graph.apply_updates(insertions, deletions)
            assert_adjacency_equal(graph, rebuild_from_edges(graph))

    def test_kernel_sigma_identical_after_mutation(self):
        """CSR parity after mutation — the export the kernels consume."""
        graph = build_graph(seed=21, nodes=30, p=0.15)
        tail = next(t for t in range(graph.node_count) if graph.out[t])
        head = graph.out[tail][0]
        graph.apply_updates(
            [(tail, (head + 1) % graph.node_count)]
            if (head + 1) % graph.node_count != tail
            and (head + 1) % graph.node_count not in graph.out[tail]
            else [],
            [(tail, head)],
        )
        rebuilt = rebuild_from_edges(graph)
        csr_incremental = graph.csr()
        csr_rebuilt = rebuilt.csr()
        assert tuple(csr_incremental.indptr) == tuple(csr_rebuilt.indptr)
        assert tuple(csr_incremental.indices) == tuple(csr_rebuilt.indices)
        assert tuple(csr_incremental.weights) == tuple(csr_rebuilt.weights)


class TestCsrMemoInvalidation:
    """Regression: the memoized CSR export must never go stale."""

    def test_csr_refreshes_after_mutation(self):
        graph = build_graph()
        stale = graph.csr()  # prime the memo
        tail = next(t for t in range(graph.node_count) if graph.out[t])
        head = graph.out[tail][0]
        graph.apply_updates([], [(tail, head)])
        fresh = graph.csr()
        assert fresh is not stale
        assert tuple(fresh.indptr)[-1] == graph.edge_count
        rebuilt = IndexedDiGraph.from_csr(
            graph.labels,
            tuple(fresh.indptr),
            tuple(fresh.indices),
            tuple(fresh.weights),
        )
        assert rebuilt.out == graph.out

    def test_csr_memo_reused_between_mutations(self):
        graph = build_graph()
        first = graph.csr()
        assert graph.csr() is first
