"""Instrumentation behavior: serial/parallel equality and null-default no-ops."""

import pytest

from repro.diffusion.base import SeedSets
from repro.diffusion.doam import DOAMModel
from repro.diffusion.opoao import OPOAOModel
from repro.diffusion.parallel import ParallelMonteCarloSimulator
from repro.diffusion.simulation import MonteCarloSimulator
from repro.graph.digraph import DiGraph
from repro.obs import NULL_REGISTRY, MetricsRegistry, metrics, use_registry
from repro.rng import RngStream


@pytest.fixture
def star():
    return DiGraph.from_edges([(0, i) for i in range(1, 12)])


class TestSerialParallelEquality:
    def test_identical_work_counters(self, star):
        """One registry per worker + snapshot merge == one serial registry."""
        indexed = star.to_indexed()
        seeds = SeedSets(rumors=[0])
        serial_registry = MetricsRegistry()
        with use_registry(serial_registry):
            MonteCarloSimulator(OPOAOModel(), runs=12, max_hops=6).simulate(
                indexed, seeds, rng=RngStream(5)
            )
        parallel_registry = MetricsRegistry()
        with use_registry(parallel_registry):
            ParallelMonteCarloSimulator(
                OPOAOModel(), runs=12, max_hops=6, processes=3
            ).simulate(indexed, seeds, rng=RngStream(5))
        # exec.* is pool bookkeeping (pool created, graph published) that a
        # serial run by definition never emits; the work counters must match.
        parallel_work = {
            name: value
            for name, value in parallel_registry.counter_values().items()
            if not name.startswith("exec.")
        }
        assert parallel_work == serial_registry.counter_values()
        assert serial_registry.counter_value("sim.worlds") == 12
        assert serial_registry.counter_value("sim.runs") == 12

    def test_single_process_inline_path_counts_too(self, star):
        indexed = star.to_indexed()
        registry = MetricsRegistry()
        with use_registry(registry):
            ParallelMonteCarloSimulator(
                OPOAOModel(), runs=5, max_hops=4, processes=1
            ).simulate(indexed, SeedSets(rumors=[0]), rng=RngStream(6))
        assert registry.counter_value("sim.worlds") == 5
        assert registry.counter_value("sim.node_visits") > 0

    def test_disabled_parent_ships_no_snapshots(self, star):
        indexed = star.to_indexed()
        assert metrics() is NULL_REGISTRY
        aggregate = ParallelMonteCarloSimulator(
            OPOAOModel(), runs=6, max_hops=4, processes=2
        ).simulate(indexed, SeedSets(rumors=[0]), rng=RngStream(9))
        assert aggregate.runs == 6
        assert NULL_REGISTRY.to_dict()["counters"] == {}


class TestNullDefaultNoOp:
    def test_simulation_outcome_unaffected_by_registry(self, star):
        """Instrumentation must never change simulation results."""
        indexed = star.to_indexed()
        seeds = SeedSets(rumors=[0])
        simulator = MonteCarloSimulator(OPOAOModel(), runs=8, max_hops=5)
        bare = simulator.simulate(indexed, seeds, rng=RngStream(3))
        with use_registry(MetricsRegistry()):
            instrumented = simulator.simulate(indexed, seeds, rng=RngStream(3))
        assert bare.infected_per_hop == instrumented.infected_per_hop
        assert bare.final_infected.mean == instrumented.final_infected.mean

    def test_doam_counters_flow_when_enabled(self, star):
        indexed = star.to_indexed()
        registry = MetricsRegistry()
        with use_registry(registry):
            DOAMModel().run(indexed, SeedSets(rumors=[0]), max_hops=8)
        counters = registry.counter_values()
        assert counters["sim.runs"] == 1
        assert counters["sim.node_visits"] > 0
        assert counters["sim.edge_visits"] > 0

    def test_null_registry_untouched_by_default_run(self, star):
        indexed = star.to_indexed()
        assert metrics() is NULL_REGISTRY
        DOAMModel().run(indexed, SeedSets(rumors=[0]), max_hops=8)
        document = NULL_REGISTRY.to_dict()
        assert document["counters"] == {}
        assert document["timers"] == {}
