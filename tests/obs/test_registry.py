"""Unit tests for the observability layer's registry primitives."""

import json
import pickle

import pytest

from repro.obs import (
    NULL_REGISTRY,
    SCHEMA_VERSION,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    metrics,
    set_registry,
    use_registry,
)


class TestCounter:
    def test_add_and_value(self):
        registry = MetricsRegistry()
        registry.inc("work", 3)
        registry.inc("work")
        assert registry.counter_value("work") == 4

    def test_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("work").add(-1)

    def test_untouched_counter_reads_zero(self):
        assert MetricsRegistry().counter_value("never") == 0

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")


class TestGauge:
    def test_set_overwrites(self):
        registry = MetricsRegistry()
        registry.set_gauge("level", 5)
        registry.set_gauge("level", 2)
        assert registry.gauge("level").value == 2.0

    def test_merge_takes_max(self):
        registry = MetricsRegistry()
        registry.set_gauge("level", 7)
        registry.gauge("level").merge(3)
        assert registry.gauge("level").value == 7.0
        registry.gauge("level").merge(11)
        assert registry.gauge("level").value == 11.0


class TestHistogramPercentiles:
    def test_nearest_rank_exact(self):
        histogram = Histogram("sizes")
        for value in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]:
            histogram.observe(value)
        assert histogram.percentile(0) == 1
        assert histogram.percentile(50) == 5
        assert histogram.percentile(90) == 9
        assert histogram.percentile(100) == 10

    def test_single_value(self):
        histogram = Histogram("one")
        histogram.observe(42)
        for q in (0, 50, 99, 100):
            assert histogram.percentile(q) == 42

    def test_empty_is_zero(self):
        assert Histogram("empty").percentile(50) == 0.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            Histogram("bad").percentile(101)

    def test_summary_dict(self):
        histogram = Histogram("sizes")
        for value in (2, 4, 6):
            histogram.observe(value)
        summary = histogram.to_dict()
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(4.0)
        assert summary["min"] == 2 and summary["max"] == 6

    def test_partition_invariance(self):
        """Merged histograms report the same quantiles as undivided ones."""
        values = [float(v) for v in range(100, 0, -1)]
        whole = Histogram("whole")
        left, right = Histogram("left"), Histogram("right")
        for index, value in enumerate(values):
            whole.observe(value)
            (left if index % 2 else right).observe(value)
        left.merge(right.values)
        for q in (1, 25, 50, 90, 99):
            assert left.percentile(q) == whole.percentile(q)


class TestMergeSemantics:
    def _worker(self, counter, gauge, observations):
        registry = MetricsRegistry()
        registry.inc("work", counter)
        registry.set_gauge("size", gauge)
        for value in observations:
            registry.observe("dist", value)
        with registry.timer("stage"):
            pass
        return registry

    def test_counters_add_gauges_max_histograms_concat(self):
        parent = MetricsRegistry()
        parent.merge(self._worker(3, 10, [1.0, 2.0]))
        parent.merge(self._worker(4, 7, [3.0]))
        assert parent.counter_value("work") == 7
        assert parent.gauge("size").value == 10.0
        assert parent.histogram("dist").values == [1.0, 2.0, 3.0]
        assert parent.timer("stage").calls == 2

    def test_merge_snapshot_is_picklable_roundtrip(self):
        snapshot = self._worker(5, 2, [9.0]).snapshot()
        restored = pickle.loads(pickle.dumps(snapshot))
        parent = MetricsRegistry()
        parent.merge_snapshot(restored)
        assert parent.counter_value("work") == 5
        assert parent.histogram("dist").values == [9.0]

    def test_merge_order_independent_for_counters(self):
        a, b = self._worker(2, 1, []), self._worker(9, 4, [])
        forward, backward = MetricsRegistry(), MetricsRegistry()
        forward.merge(a)
        forward.merge(b)
        backward.merge(b)
        backward.merge(a)
        assert forward.counter_values() == backward.counter_values()
        assert forward.gauge("size").value == backward.gauge("size").value


class TestNullRegistry:
    def test_default_active_registry_is_null(self):
        assert metrics() is NULL_REGISTRY
        assert not metrics().enabled

    def test_null_operations_accumulate_nothing(self):
        null = NullMetricsRegistry()
        null.inc("work", 100)
        null.counter("work").add(5)
        null.observe("dist", 1.5)
        null.set_gauge("size", 9)
        with null.timer("stage"):
            pass
        null.merge_snapshot({"counters": {"work": 3}})
        document = null.to_dict()
        assert document["counters"] == {}
        assert document["gauges"] == {}
        assert document["histograms"] == {}
        assert document["timers"] == {}

    def test_shared_null_metrics_are_cheap_singletons(self):
        null = NullMetricsRegistry()
        assert null.counter("a") is null.counter("b")
        assert null.timer("a") is null.timer("b")


class TestActiveRegistryPlumbing:
    def test_use_registry_scopes_and_restores(self):
        registry = MetricsRegistry()
        assert metrics() is NULL_REGISTRY
        with use_registry(registry) as active:
            assert active is registry
            assert metrics() is registry
            metrics().inc("inside")
        assert metrics() is NULL_REGISTRY
        assert registry.counter_value("inside") == 1

    def test_use_registry_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_registry(MetricsRegistry()):
                raise RuntimeError("boom")
        assert metrics() is NULL_REGISTRY

    def test_set_registry_none_means_null(self):
        previous = set_registry(None)
        assert previous is NULL_REGISTRY
        assert metrics() is NULL_REGISTRY


class TestSerialization:
    def test_write_json_schema(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("work", 2)
        registry.observe("dist", 3.5)
        with registry.timer("stage"):
            pass
        path = tmp_path / "metrics.json"
        registry.write_json(str(path), extra={"command": "select"})
        document = json.loads(path.read_text())
        assert document["schema"] == SCHEMA_VERSION
        assert document["command"] == "select"
        assert document["counters"] == {"work": 2}
        assert document["histograms"]["dist"]["count"] == 1
        assert document["timers"]["stage"]["calls"] == 1

    def test_extra_does_not_override_schema_keys(self, tmp_path):
        registry = MetricsRegistry()
        path = tmp_path / "metrics.json"
        registry.write_json(str(path), extra={"schema": "bogus"})
        assert json.loads(path.read_text())["schema"] == SCHEMA_VERSION

    def test_clear(self):
        registry = MetricsRegistry()
        registry.inc("work")
        registry.clear()
        assert registry.counter_values() == {}
