"""The warm-state query service behind ``repro serve``.

One :class:`RumorBlockingService` owns:

* the **graph** — an :class:`~repro.graph.compact.IndexedDiGraph`
  mutated in place by :meth:`RumorBlockingService.apply_updates`;
* one **instance** per distinct rumor seed set — its bridge ends ``B``
  and a :class:`~repro.sketch.store.SketchStore` that persists across
  queries, so repeated questions about the same outbreak reuse every
  sampled world;
* one optional shared :class:`~repro.exec.pool.ParallelExecutor`, so
  every instance's doubling and refresh rounds fan out over the same
  warm pool (the executor re-publishes the graph automatically when its
  version changes).

Update handling is **lazy**: ``apply_updates`` only records the touched
endpoints per instance; the next query on an instance first re-derives
``B`` against the current adjacency — if ``B`` changed the instance is
rebuilt from the same derived RNG (bit-identical to a cold service on
the mutated graph), otherwise only the footprint-stale worlds are
resampled. Either way, answers equal what a fresh service computed on
the current graph with the same seed.

Determinism: the per-instance RNG derives from the service seed and the
sorted seed ids alone, the store's worlds are pure functions of their
index, and the greedy pass is RNG-free — so answers are a pure function
of (graph state, seed set, budget/alpha, worlds sampled). The asyncio
wrappers serialise under one FIFO lock, making N concurrent queries
bit-identical to the same N issued serially in submission order.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.bridge.rfst import find_bridge_end_ids
from repro.diffusion.base import DEFAULT_MAX_HOPS
from repro.errors import NodeNotFoundError, SeedError, ValidationError
from repro.graph.compact import IndexedDiGraph
from repro.obs.registry import metrics
from repro.rng import RngStream
from repro.sketch.coverage import max_coverage
from repro.sketch.rrset import SKETCH_SEMANTICS, DOAMRRSampler, OPOAORRSampler
from repro.sketch.store import SketchStore
from repro.utils.validation import check_fraction, check_positive

__all__ = ["RumorBlockingService"]


class _Instance:
    """Warm per-seed-set state: bridge ends, sketch store, pending updates."""

    __slots__ = ("seed_ids", "end_ids", "store", "pending")

    def __init__(
        self, seed_ids: Tuple[int, ...], end_ids: List[int], store: SketchStore
    ) -> None:
        self.seed_ids = seed_ids
        self.end_ids = end_ids
        self.store = store
        #: endpoints of edge updates not yet reconciled into the store.
        self.pending: set = set()


class RumorBlockingService:
    """Long-running rumor-blocking query service over one dynamic graph.

    Args:
        graph: the indexed graph; the service mutates it in place.
        community_ids: node ids of the rumor community ``C_r`` (queries
            must seed inside it; Definition 2).
        semantics: ``"opoao"`` (stochastic, the default — queries carry
            meaningful (ε, δ) targets) or ``"doam"`` (deterministic).
        steps: diffusion horizon per world (paper: 31).
        seed: master seed; per-instance streams derive from it and the
            sorted seed ids, so answers are independent of query order.
        initial_worlds: sketch sample size before the first greedy pass.
        max_worlds: hard cap on adaptive doubling.
        invalidation: world-staleness rule for updates — ``"footprint"``
            (exact; refreshed state is bit-identical to from-scratch) or
            ``"members"`` (cheaper, approximate).
        workers: worker request for parallel world sampling (``None``/
            ``1`` serial, ``0`` one per CPU), forwarded to every store.
        executor: a shared :class:`~repro.exec.pool.ParallelExecutor`
            all stores submit to; ``None`` lets each store own one.
        backend: sketch-kernel backend for RR-set sampling (``"numpy"``,
            ``"python"``, or ``None``/``"auto"``), forwarded to every
            store; cold and warm paths are bit-identical either way.
    """

    def __init__(
        self,
        graph: IndexedDiGraph,
        community_ids: Iterable[int],
        semantics: str = "opoao",
        steps: int = DEFAULT_MAX_HOPS,
        seed: int = 13,
        initial_worlds: int = 64,
        max_worlds: int = 4096,
        invalidation: str = "footprint",
        workers: Optional[int] = None,
        executor=None,
        backend: Optional[str] = None,
    ) -> None:
        if semantics not in SKETCH_SEMANTICS:
            raise ValidationError(
                f"semantics must be one of {SKETCH_SEMANTICS}, got {semantics!r}"
            )
        if invalidation not in SketchStore.INVALIDATION_RULES:
            raise ValidationError(
                f"invalidation must be one of {SketchStore.INVALIDATION_RULES}, "
                f"got {invalidation!r}"
            )
        self.graph = graph
        self.community: FrozenSet[int] = frozenset(
            self._check_node(node) for node in community_ids
        )
        if not self.community:
            raise ValidationError("community_ids must not be empty")
        self.semantics = semantics
        self.steps = int(check_positive(steps, "steps"))
        self.initial_worlds = int(check_positive(initial_worlds, "initial_worlds"))
        self.max_worlds = int(check_positive(max_worlds, "max_worlds"))
        self.invalidation = invalidation
        self.workers = workers
        self.backend = backend
        self._executor = executor
        self._rng = RngStream(seed, name="serve")
        self._instances: Dict[Tuple[int, ...], _Instance] = {}
        self._lock = asyncio.Lock()

    # -- validation --------------------------------------------------------------

    def _check_node(self, node: int) -> int:
        if isinstance(node, bool) or not isinstance(node, int):
            raise NodeNotFoundError(node)
        if not 0 <= node < self.graph.node_count:
            raise NodeNotFoundError(node)
        return node

    def _seed_key(self, rumor_seeds: Iterable[int]) -> Tuple[int, ...]:
        seeds = tuple(sorted(dict.fromkeys(rumor_seeds)))
        if not seeds:
            raise SeedError("rumor seed set must not be empty")
        for node in seeds:
            self._check_node(node)
            if node not in self.community:
                raise SeedError(
                    f"rumor seed {node!r} is outside the rumor community "
                    "(Definition 2 requires S_R ⊆ V(C_k))"
                )
        return seeds

    # -- instance management -----------------------------------------------------

    def _build_sampler(self, seed_ids: Tuple[int, ...], end_ids: List[int]):
        rng = self._rng.fork("instance", *seed_ids)
        if self.semantics == "opoao":
            return OPOAORRSampler(
                self.graph, list(seed_ids), end_ids, steps=self.steps, rng=rng
            )
        return DOAMRRSampler(
            self.graph, list(seed_ids), end_ids, max_hops=self.steps, rng=rng
        )

    def _build_instance(self, seed_ids: Tuple[int, ...]) -> _Instance:
        end_ids = sorted(
            find_bridge_end_ids(self.graph, self.community, seed_ids)
        )
        store = SketchStore(
            self._build_sampler(seed_ids, end_ids),
            workers=self.workers,
            executor=self._executor,
            backend=self.backend,
        )
        return _Instance(seed_ids, end_ids, store)

    def _reconcile(self, instance: _Instance) -> int:
        """Fold pending edge updates into one instance's warm state.

        Returns the number of RR sets invalidated. When the update
        changed the bridge-end set the whole store is rebuilt (same
        derived RNG, so the result matches a cold service on the current
        graph); otherwise only footprint-stale worlds resample.
        """
        if not instance.pending:
            return 0
        end_ids = sorted(
            find_bridge_end_ids(self.graph, self.community, instance.seed_ids)
        )
        if end_ids != instance.end_ids:
            invalidated = instance.store.set_count
            target = instance.store.worlds
            rebuilt = self._build_instance(instance.seed_ids)
            if target:
                rebuilt.store.ensure_worlds(target)
            instance.end_ids = rebuilt.end_ids
            instance.store = rebuilt.store
        else:
            _, invalidated = instance.store.refresh(
                instance.pending, self.invalidation
            )
        instance.pending.clear()
        registry = metrics()
        if registry.enabled and invalidated:
            registry.counter("serve.rrsets.invalidated").add(invalidated)
        return invalidated

    # -- the query path ----------------------------------------------------------

    def query(
        self,
        rumor_seeds: Iterable[int],
        budget: Optional[int] = None,
        alpha: float = 0.8,
        epsilon: float = 0.1,
        delta: float = 0.05,
    ) -> Dict[str, object]:
        """Answer one rumor-blocking question against the current graph.

        Args:
            rumor_seeds: rumor originators (ids inside the community).
            budget: protector count; ``None`` covers to ``alpha``.
            alpha: protection target for the budget-free mode.
            epsilon: relative-precision target of the stopping rule.
            delta: confidence parameter of the stopping rule.

        Returns:
            A JSON-ready dict: ``blockers`` (ids), ``blocker_labels``,
            ``sigma`` (σ̂ of the picked set), ``worlds``,
            ``bridge_ends``, ``rrsets_sampled`` / ``rrsets_invalidated``
            (this query's sampling work), ``cold`` (True when the
            instance was built by this query), and ``graph_version``.
        """
        check_fraction(alpha, "alpha")
        check_fraction(epsilon, "epsilon", exclusive=True)
        check_fraction(delta, "delta", exclusive=True)
        if budget is not None and (
            isinstance(budget, bool) or not isinstance(budget, int) or budget < 0
        ):
            raise ValidationError(
                f"budget must be a non-negative int, got {budget!r}"
            )
        seed_ids = self._seed_key(rumor_seeds)
        registry = metrics()
        started = time.perf_counter()
        with registry.timer("serve.query"):
            instance = self._instances.get(seed_ids)
            cold = instance is None
            invalidated = 0
            if cold:
                instance = self._build_instance(seed_ids)
                self._instances[seed_ids] = instance
            else:
                invalidated = self._reconcile(instance)
            store = instance.store
            sampled_before = store.set_count
            picked: List[int] = []
            if instance.end_ids and (budget is None or budget > 0):
                store.ensure_worlds(self.initial_worlds)
                while True:
                    picked = max_coverage(
                        store,
                        budget=budget,
                        excluded=seed_ids,
                        alpha=alpha,
                        end_count=len(instance.end_ids),
                    )
                    if not store.sampler.stochastic:
                        break
                    if store.precision_ok(picked, epsilon, delta):
                        break
                    if store.worlds >= self.max_worlds:
                        break
                    store.ensure_worlds(min(self.max_worlds, 2 * store.worlds))
            sampled = (store.set_count - sampled_before) + invalidated
            sigma = store.sigma(picked) if store.worlds else 0.0
        if registry.enabled:
            registry.counter("serve.queries").add(1)
            if cold:
                registry.counter("serve.queries.cold").add(1)
            registry.counter("serve.rrsets.sampled").add(sampled)
            registry.histogram("serve.query_ms").observe(
                (time.perf_counter() - started) * 1000.0
            )
        return {
            "blockers": list(picked),
            "blocker_labels": [self.graph.labels[node] for node in picked],
            "sigma": sigma,
            "worlds": store.worlds,
            "bridge_ends": len(instance.end_ids),
            "rrsets_sampled": sampled,
            "rrsets_invalidated": invalidated,
            "cold": cold,
            "graph_version": self.graph.version,
        }

    # -- the update path ---------------------------------------------------------

    def apply_updates(
        self,
        insertions: Iterable[Sequence] = (),
        deletions: Iterable[Sequence] = (),
    ) -> List[int]:
        """Apply an edge-update batch; warm state reconciles lazily.

        Returns the sorted touched endpoint ids. Every warm instance
        records them and pays the (footprint-bounded) resampling cost on
        its *next* query — an update burst costs one reconcile, not one
        per batch.
        """
        insertions = list(insertions)
        deletions = list(deletions)
        touched = self.graph.apply_updates(insertions, deletions)
        for instance in self._instances.values():
            instance.pending |= touched
        registry = metrics()
        if registry.enabled:
            registry.counter("serve.updates").add(1)
            registry.counter("serve.edges.inserted").add(len(insertions))
            registry.counter("serve.edges.deleted").add(len(deletions))
        return sorted(touched)

    # -- inspection --------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """JSON-ready snapshot of the warm state."""
        return {
            "graph": {
                "nodes": self.graph.node_count,
                "edges": self.graph.edge_count,
                "version": self.graph.version,
            },
            "community_size": len(self.community),
            "semantics": self.semantics,
            "invalidation": self.invalidation,
            "instances": [
                {
                    "seeds": list(instance.seed_ids),
                    "bridge_ends": len(instance.end_ids),
                    "worlds": instance.store.worlds,
                    "rrsets": instance.store.set_count,
                    "pending_touched": len(instance.pending),
                }
                for instance in self._instances.values()
            ],
        }

    # -- asyncio wrappers --------------------------------------------------------
    #
    # One FIFO lock serialises every state-touching operation, so N
    # concurrent queries produce bit-identical answers to the same N
    # issued serially in submission order (asyncio.Lock wakes waiters
    # in acquisition order).

    async def query_async(
        self,
        rumor_seeds: Iterable[int],
        budget: Optional[int] = None,
        alpha: float = 0.8,
        epsilon: float = 0.1,
        delta: float = 0.05,
    ) -> Dict[str, object]:
        """:meth:`query` under the service lock."""
        async with self._lock:
            return self.query(
                rumor_seeds,
                budget=budget,
                alpha=alpha,
                epsilon=epsilon,
                delta=delta,
            )

    async def apply_updates_async(
        self,
        insertions: Iterable[Sequence] = (),
        deletions: Iterable[Sequence] = (),
    ) -> List[int]:
        """:meth:`apply_updates` under the service lock."""
        async with self._lock:
            return self.apply_updates(insertions, deletions)

    async def stats_async(self) -> Dict[str, object]:
        """:meth:`stats` under the service lock."""
        async with self._lock:
            return self.stats()

    def __repr__(self) -> str:
        return (
            f"RumorBlockingService(|V|={self.graph.node_count}, "
            f"|C_r|={len(self.community)}, semantics={self.semantics!r}, "
            f"instances={len(self._instances)}, "
            f"graph_version={self.graph.version})"
        )
