"""Deterministic query/update load generator for the serve layer.

Replays a seeded mix of rumor-blocking queries and edge-update batches
against an in-process :class:`~repro.serve.service.RumorBlockingService`
and reports throughput (qps), latency percentiles, and — the number the
regression gate watches — the **warm/cold sampling ratio**: how many RR
sets the first (cold) query on a seed set sampled versus the mean over
the warm queries that followed. A warm index answers repeat questions
by reusing its worlds, so the ratio should be large (the benchmark gate
asserts ≥ 10x on enron-small).

Everything except wall-clock is deterministic for a fixed seed: seed
sets, update batches, world sampling, and therefore the per-query
``rrsets_sampled`` / ``rrsets_invalidated`` counts. Latencies vary by
machine; the sampling counts do not, which is what makes
``BENCH_serve.json`` diffable in CI.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.rng import RngStream
from repro.serve.service import RumorBlockingService
from repro.utils.validation import check_positive

__all__ = ["run_loadgen"]


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in percent)."""
    if not values:
        raise ValueError("percentile of an empty sequence is undefined")
    ordered = sorted(values)
    if q <= 0.0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[min(rank, len(ordered)) - 1]


def _draw_update_batch(
    service: RumorBlockingService, rng: RngStream, size: int
) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]:
    """A random edge batch: ``size`` insertions and ``size`` deletions.

    Insertions pick uniform non-edges (no self-loops); deletions pick an
    out-edge of a uniform node that has one. Draws consult the *current*
    adjacency, so batches never conflict with each other or themselves.
    """
    graph = service.graph
    node_count = graph.node_count
    insertions: List[Tuple[int, int]] = []
    deletions: List[Tuple[int, int]] = []
    batch_new = set()
    for _ in range(size):
        for _attempt in range(64):
            tail = rng.randrange(node_count)
            head = rng.randrange(node_count)
            if tail == head:
                continue
            if head in graph.out[tail] or (tail, head) in batch_new:
                continue
            insertions.append((tail, head))
            batch_new.add((tail, head))
            break
    batch_deleted = set()
    for _ in range(size):
        for _attempt in range(64):
            tail = rng.randrange(node_count)
            row = graph.out[tail]
            if not row:
                continue
            head = row[rng.randrange(len(row))]
            if (tail, head) in batch_new or (tail, head) in batch_deleted:
                continue
            deletions.append((tail, head))
            batch_deleted.add((tail, head))
            break
    return insertions, deletions


def run_loadgen(
    service: RumorBlockingService,
    queries: int = 40,
    update_every: int = 5,
    update_size: int = 1,
    seed_sets: int = 2,
    seeds_per_query: int = 2,
    budget: Optional[int] = 4,
    alpha: float = 0.8,
    epsilon: float = 0.3,
    delta: float = 0.1,
    seed: int = 7,
) -> Dict[str, object]:
    """Drive a deterministic query/update mix and summarise the run.

    Args:
        service: the (fresh) service under test.
        queries: total queries to issue.
        update_every: apply one update batch before every N-th query
            (0 disables updates — a pure warm-read workload).
        update_size: insertions and deletions per batch.
        seed_sets: distinct rumor seed sets cycled round-robin.
        seeds_per_query: rumor originators per seed set.
        budget: protector budget per query (``None`` = cover to alpha).
        alpha: protection target for the budget-free mode.
        epsilon: stopping-rule precision per query.
        delta: stopping-rule confidence per query.
        seed: loadgen seed (seed sets + update batches derive from it).

    Returns:
        A JSON-ready report: ``qps``, ``latency_ms`` percentiles,
        ``cold_rrsets_mean`` / ``warm_rrsets_mean`` /
        ``cold_to_warm_ratio``, ``rrsets_invalidated_total``, and the
        raw per-query ``rrsets_sampled`` trace.
    """
    check_positive(queries, "queries")
    check_positive(seed_sets, "seed_sets")
    check_positive(seeds_per_query, "seeds_per_query")
    rng = RngStream(seed, name="loadgen")
    community = sorted(service.community)
    if seeds_per_query > len(community):
        seeds_per_query = len(community)
    pools = [
        sorted(rng.fork("seeds", index).sample(community, seeds_per_query))
        for index in range(seed_sets)
    ]
    update_rng = rng.fork("updates")

    latencies_ms: List[float] = []
    warm_latencies_ms: List[float] = []
    sampled_trace: List[int] = []
    cold_sampled: List[int] = []
    warm_sampled: List[int] = []
    invalidated_total = 0
    updates_applied = 0
    started = perf_counter()
    for index in range(queries):
        if update_every and index and index % update_every == 0:
            insertions, deletions = _draw_update_batch(
                service, update_rng, update_size
            )
            if insertions or deletions:
                service.apply_updates(insertions, deletions)
                updates_applied += 1
        seeds = pools[index % seed_sets]
        begin = perf_counter()
        result = service.query(
            seeds, budget=budget, alpha=alpha, epsilon=epsilon, delta=delta
        )
        elapsed_ms = (perf_counter() - begin) * 1000.0
        latencies_ms.append(elapsed_ms)
        sampled = int(result["rrsets_sampled"])
        sampled_trace.append(sampled)
        if result["cold"]:
            cold_sampled.append(sampled)
        else:
            warm_sampled.append(sampled)
            warm_latencies_ms.append(elapsed_ms)
        invalidated_total += int(result["rrsets_invalidated"])
    elapsed = perf_counter() - started

    cold_mean = (
        sum(cold_sampled) / len(cold_sampled) if cold_sampled else 0.0
    )
    warm_mean = (
        sum(warm_sampled) / len(warm_sampled) if warm_sampled else 0.0
    )
    # A warm query that resampled nothing costs 0 sets; floor the
    # denominator at one set per query so the ratio stays finite.
    ratio = cold_mean / max(warm_mean, 1.0)
    return {
        "queries": queries,
        "updates": updates_applied,
        "seconds": elapsed,
        "qps": queries / max(elapsed, 1e-9),
        "latency_ms": {
            "mean": sum(latencies_ms) / len(latencies_ms),
            "p50": _percentile(latencies_ms, 50),
            "p90": _percentile(latencies_ms, 90),
            "p99": _percentile(latencies_ms, 99),
            "warm_p50": (
                _percentile(warm_latencies_ms, 50)
                if warm_latencies_ms
                else _percentile(latencies_ms, 50)
            ),
        },
        "cold_queries": len(cold_sampled),
        "warm_queries": len(warm_sampled),
        "cold_rrsets_mean": cold_mean,
        "warm_rrsets_mean": warm_mean,
        "cold_to_warm_ratio": ratio,
        "rrsets_sampled_total": sum(sampled_trace),
        "rrsets_invalidated_total": invalidated_total,
        "rrsets_sampled_trace": sampled_trace,
        "graph_version": service.graph.version,
    }
