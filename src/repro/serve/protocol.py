"""Newline-JSON request protocol for :class:`RumorBlockingService`.

One request per line, one response per line. Requests are JSON objects
with an ``op`` and an optional ``id`` (echoed back verbatim so clients
can pipeline):

``{"op": "query", "id": 1, "seeds": [3, 7], "budget": 4,
   "eps": 0.1, "delta": 0.05, "alpha": 0.8}``
    Answer a rumor-blocking question; ``budget`` omitted/null selects
    to the ``alpha`` protection target instead.

``{"op": "update", "id": 2, "insert": [[0, 5], [2, 9, 0.7]],
   "delete": [[1, 4]]}``
    Apply an edge-update batch; responds with the touched node ids and
    the new graph version.

``{"op": "stats", "id": 3}``
    Snapshot of the warm state.

``{"op": "shutdown", "id": 4}``
    Acknowledge and stop serving (the connection handler returns).

Responses carry ``{"id": ..., "ok": true, ...payload}`` on success and
``{"id": ..., "ok": false, "error": "..."}`` on failure; a failed
request never kills the server. The same handler serves stdio
(``repro serve``) and unix-socket transports; every state-touching op
goes through the service's async wrappers, so concurrent connections
serialise on the service lock in arrival order.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Dict

from repro.serve.service import RumorBlockingService

__all__ = [
    "process_request",
    "handle_connection",
    "serve_stdio",
    "serve_unix_socket",
]


async def process_request(
    service: RumorBlockingService, request: Dict[str, object]
) -> Dict[str, object]:
    """Dispatch one decoded request; never raises on bad input."""
    if not isinstance(request, dict):
        return {"id": None, "ok": False, "error": "request must be a JSON object"}
    request_id = request.get("id")
    op = request.get("op")
    try:
        if op == "query":
            result = await service.query_async(
                request["seeds"],
                budget=request.get("budget"),
                alpha=request.get("alpha", 0.8),
                epsilon=request.get("eps", 0.1),
                delta=request.get("delta", 0.05),
            )
            return {"id": request_id, "ok": True, **result}
        if op == "update":
            touched = await service.apply_updates_async(
                request.get("insert", ()), request.get("delete", ())
            )
            return {
                "id": request_id,
                "ok": True,
                "touched": touched,
                "graph_version": service.graph.version,
            }
        if op == "stats":
            return {"id": request_id, "ok": True, **(await service.stats_async())}
        if op == "shutdown":
            return {"id": request_id, "ok": True, "shutdown": True}
        return {"id": request_id, "ok": False, "error": f"unknown op {op!r}"}
    except Exception as exc:  # noqa: BLE001 - protocol boundary
        return {
            "id": request_id,
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
        }


async def handle_connection(
    service: RumorBlockingService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> bool:
    """Serve one newline-JSON stream until EOF or a shutdown op.

    Returns True when the client requested shutdown (the caller then
    stops the whole server, not just this connection).
    """
    while True:
        line = await reader.readline()
        if not line:
            return False
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            response: Dict[str, object] = {
                "id": None,
                "ok": False,
                "error": f"invalid JSON: {exc}",
            }
        else:
            response = await process_request(service, request)
        writer.write((json.dumps(response, sort_keys=True) + "\n").encode("utf-8"))
        await writer.drain()
        if response.get("shutdown"):
            return True


async def serve_stdio(service: RumorBlockingService) -> None:
    """Serve newline-JSON requests on stdin/stdout until EOF or shutdown."""
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader()
    await loop.connect_read_pipe(
        lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
    )
    transport, protocol = await loop.connect_write_pipe(
        asyncio.streams.FlowControlMixin, sys.stdout
    )
    writer = asyncio.StreamWriter(transport, protocol, reader, loop)
    await handle_connection(service, reader, writer)


async def serve_unix_socket(
    service: RumorBlockingService, path: str
) -> None:
    """Serve on a unix socket; a shutdown op from any client stops it.

    Connections are handled concurrently; the service lock serialises
    their state-touching requests in arrival order.
    """
    done = asyncio.Event()

    async def _handler(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            if await handle_connection(service, reader, writer):
                done.set()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    server = await asyncio.start_unix_server(_handler, path=path)
    async with server:
        await done.wait()
