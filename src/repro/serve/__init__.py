"""Low-latency rumor-blocking query service over a dynamic graph.

Batch selection (:mod:`repro.algorithms`) answers one LCRB instance per
process; this package keeps the expensive state **warm** between
questions instead. A :class:`RumorBlockingService` holds one
:class:`~repro.graph.compact.IndexedDiGraph`, one
:class:`~repro.sketch.store.SketchStore` per rumor seed set, and one
persistent :class:`~repro.exec.pool.ParallelExecutor`, and answers

``query(rumor_seeds, budget, epsilon, delta)``

by *incrementally extending* the RR-set index — doubling only when the
(ε, δ) stopping rule demands it — rather than resampling from scratch.
Edge updates (:meth:`RumorBlockingService.apply_updates`) mutate the
graph in place and invalidate only the worlds whose dependency
footprint the mutation touched (:meth:`~repro.sketch.store.SketchStore.\
refresh`), so a warm query after an update resamples a fraction of the
index.

Layers:

* :mod:`repro.serve.service` — :class:`RumorBlockingService`: the state
  holder, with a synchronous core and asyncio wrappers serialised by
  one FIFO lock (concurrent queries are bit-identical to serial ones).
* :mod:`repro.serve.protocol` — newline-JSON request handling over
  stdin/stdout (``repro serve``) or a unix socket.
* :mod:`repro.serve.loadgen` — a deterministic query/update mix that
  reports qps, latency percentiles, and warm/cold sampling ratios (the
  ``BENCH_serve.json`` producer).

See ``docs/serving.md`` for the request schema and operational notes.
"""

from repro.serve.loadgen import run_loadgen
from repro.serve.protocol import (
    handle_connection,
    process_request,
    serve_stdio,
    serve_unix_socket,
)
from repro.serve.service import RumorBlockingService

__all__ = [
    "RumorBlockingService",
    "process_request",
    "handle_connection",
    "serve_stdio",
    "serve_unix_socket",
    "run_loadgen",
]
