"""Seeded, forkable random-number streams.

Monte-Carlo experiments in this library need three properties from their
randomness:

1. **Reproducibility** — a run with ``seed=7`` gives identical output on
   every machine, every time.
2. **Independence** — parallel simulation replicas must not share a stream,
   or their samples are correlated.
3. **Coupling** — the paper's ``PB(A)`` estimator (Section V.A.1) compares a
   no-protector world against a protected world *on the same random
   realisation*; we therefore need to replay a stream exactly.

:class:`RngStream` wraps :class:`random.Random` and adds deterministic
``fork`` / ``replica`` derivation so a single experiment seed fans out into
arbitrarily many independent, individually reproducible streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Optional, Sequence, TypeVar

__all__ = ["RngStream", "derive_seed", "DEFAULT_SEED"]

T = TypeVar("T")

#: Seed used when the caller does not supply one. Fixed (rather than entropy
#: from the OS) so that "I forgot to pass a seed" still reproduces.
DEFAULT_SEED = 0x5EED


def derive_seed(base_seed: int, *path: object) -> int:
    """Derive a child seed from ``base_seed`` and a label path.

    The derivation hashes the base seed together with the path components,
    so ``derive_seed(s, "replica", 3)`` is stable across runs and
    statistically unrelated to ``derive_seed(s, "replica", 4)``.

    Args:
        base_seed: parent seed.
        *path: any printable components naming the child stream.

    Returns:
        A 63-bit non-negative integer seed.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("ascii"))
    for part in path:
        digest.update(b"/")
        digest.update(repr(part).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


class RngStream:
    """A named, seeded random stream with deterministic forking.

    Thin wrapper over :class:`random.Random` exposing only the operations
    the library uses, plus :meth:`fork` (derive an independent child stream)
    and :meth:`replica` (derive the stream for Monte-Carlo replica ``i``).

    Example:
        >>> root = RngStream(42)
        >>> a = root.fork("greedy")
        >>> b = root.fork("greedy")     # same label -> identical stream
        >>> a.randrange(10**9) == b.randrange(10**9)
        True
    """

    __slots__ = ("seed", "name", "_rng")

    def __init__(self, seed: Optional[int] = None, name: str = "root") -> None:
        self.seed = DEFAULT_SEED if seed is None else int(seed)
        self.name = name
        self._rng = random.Random(self.seed)

    # -- derivation ---------------------------------------------------------

    def fork(self, *path: object) -> "RngStream":
        """Return an independent child stream named by ``path``.

        Forking depends only on this stream's *seed* and the path, never on
        how much randomness has already been consumed, so forks commute with
        draws.
        """
        child_seed = derive_seed(self.seed, *path)
        label = "/".join([self.name, *map(str, path)])
        return RngStream(child_seed, name=label)

    def replica(self, index: int) -> "RngStream":
        """Return the stream for Monte-Carlo replica ``index``."""
        return self.fork("replica", int(index))

    def replicas(self, count: int) -> Iterator["RngStream"]:
        """Yield ``count`` independent replica streams."""
        for index in range(count):
            yield self.replica(index)

    def restart(self) -> None:
        """Rewind this stream to its initial state (exact replay)."""
        self._rng = random.Random(self.seed)

    # -- draws --------------------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def randrange(self, stop: int) -> int:
        """Uniform integer in [0, stop)."""
        return self._rng.randrange(stop)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._rng.choice(seq)

    def sample(self, population: Sequence[T], k: int) -> list:
        """Sample ``k`` distinct items from ``population``."""
        return self._rng.sample(population, k)

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._rng.shuffle(items)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """Exponential variate with the given rate."""
        return self._rng.expovariate(rate)

    def paretovariate(self, alpha: float) -> float:
        """Pareto variate with shape ``alpha``."""
        return self._rng.paretovariate(alpha)

    def __repr__(self) -> str:
        return f"RngStream(seed={self.seed}, name={self.name!r})"
