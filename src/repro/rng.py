"""Seeded, forkable random-number streams.

Monte-Carlo experiments in this library need three properties from their
randomness:

1. **Reproducibility** — a run with ``seed=7`` gives identical output on
   every machine, every time.
2. **Independence** — parallel simulation replicas must not share a stream,
   or their samples are correlated.
3. **Coupling** — the paper's ``PB(A)`` estimator (Section V.A.1) compares a
   no-protector world against a protected world *on the same random
   realisation*; we therefore need to replay a stream exactly.

:class:`RngStream` wraps :class:`random.Random` and adds deterministic
``fork`` / ``replica`` derivation so a single experiment seed fans out into
arbitrarily many independent, individually reproducible streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple, TypeVar

__all__ = ["EventOrder", "RngStream", "derive_seed", "DEFAULT_SEED"]

T = TypeVar("T")

#: Seed used when the caller does not supply one. Fixed (rather than entropy
#: from the OS) so that "I forgot to pass a seed" still reproduces.
DEFAULT_SEED = 0x5EED


def derive_seed(base_seed: int, *path: object) -> int:
    """Derive a child seed from ``base_seed`` and a label path.

    The derivation hashes the base seed together with the path components,
    so ``derive_seed(s, "replica", 3)`` is stable across runs and
    statistically unrelated to ``derive_seed(s, "replica", 4)``.

    Args:
        base_seed: parent seed.
        *path: any printable components naming the child stream.

    Returns:
        A 63-bit non-negative integer seed.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("ascii"))
    for part in path:
        digest.update(b"/")
        digest.update(repr(part).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


class RngStream:
    """A named, seeded random stream with deterministic forking.

    Thin wrapper over :class:`random.Random` exposing only the operations
    the library uses, plus :meth:`fork` (derive an independent child stream)
    and :meth:`replica` (derive the stream for Monte-Carlo replica ``i``).

    Example:
        >>> root = RngStream(42)
        >>> a = root.fork("greedy")
        >>> b = root.fork("greedy")     # same label -> identical stream
        >>> a.randrange(10**9) == b.randrange(10**9)
        True
    """

    __slots__ = ("seed", "name", "_rng")

    def __init__(self, seed: Optional[int] = None, name: str = "root") -> None:
        self.seed = DEFAULT_SEED if seed is None else int(seed)
        self.name = name
        self._rng = random.Random(self.seed)

    # -- derivation ---------------------------------------------------------

    def fork(self, *path: object) -> "RngStream":
        """Return an independent child stream named by ``path``.

        Forking depends only on this stream's *seed* and the path, never on
        how much randomness has already been consumed, so forks commute with
        draws.
        """
        child_seed = derive_seed(self.seed, *path)
        label = "/".join([self.name, *map(str, path)])
        return RngStream(child_seed, name=label)

    def replica(self, index: int) -> "RngStream":
        """Return the stream for Monte-Carlo replica ``index``."""
        return self.fork("replica", int(index))

    def replicas(self, count: int) -> Iterator["RngStream"]:
        """Yield ``count`` independent replica streams."""
        for index in range(count):
            yield self.replica(index)

    def restart(self) -> None:
        """Rewind this stream to its initial state (exact replay)."""
        self._rng = random.Random(self.seed)

    def event_order(self, *path: object) -> "EventOrder":
        """An :class:`EventOrder` whose jitter draws come from a fork.

        The fork path defaults to ``("event-order",)`` so repeated calls
        with the same path produce identical key sequences.
        """
        return EventOrder(self.fork(*(path or ("event-order",))))

    # -- checkpointable state ------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot of the stream, mid-consumption.

        Unlike :meth:`restart`, which rewinds to the seed, restoring this
        snapshot via :meth:`from_state` resumes the stream *exactly where
        it left off* — the property event-queue checkpointing needs.
        """
        version, internal, gauss_next = self._rng.getstate()
        return {
            "seed": self.seed,
            "name": self.name,
            "version": version,
            "internal": list(internal),
            "gauss_next": gauss_next,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "RngStream":
        """Rebuild a stream from a :meth:`state_dict` snapshot."""
        stream = cls(state["seed"], name=state["name"])
        stream._rng.setstate(
            (state["version"], tuple(state["internal"]), state["gauss_next"])
        )
        return stream

    # -- draws --------------------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def randrange(self, stop: int) -> int:
        """Uniform integer in [0, stop)."""
        return self._rng.randrange(stop)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._rng.choice(seq)

    def sample(self, population: Sequence[T], k: int) -> list:
        """Sample ``k`` distinct items from ``population``."""
        return self._rng.sample(population, k)

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._rng.shuffle(items)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """Exponential variate with the given rate."""
        return self._rng.expovariate(rate)

    def paretovariate(self, alpha: float) -> float:
        """Pareto variate with shape ``alpha``."""
        return self._rng.paretovariate(alpha)

    def __repr__(self) -> str:
        return f"RngStream(seed={self.seed}, name={self.name!r})"


class EventOrder:
    """Deterministic total order for discrete-event queues.

    Produces ``(time, priority, jitter, seq)`` keys: ``time`` orders
    events chronologically, ``priority`` breaks simultaneity by kind
    (lower first — e.g. protector messages before rumor messages so P
    wins ties, matching the diffusion models), ``jitter`` optionally
    shuffles equal-priority simultaneous events by a seeded draw (so
    per-round processing order carries no node-insertion bias, yet stays
    reproducible), and ``seq`` — a monotone insertion counter — makes
    the order total even when everything else ties.

    Construct with an :class:`RngStream` to enable jitter, or with
    ``None`` for pure insertion-order tie-breaking (what the
    deterministic DOAM arrival worklist uses).
    """

    __slots__ = ("_rng", "_seq")

    def __init__(self, rng: Optional[RngStream] = None) -> None:
        self._rng = rng
        self._seq = 0

    def key(
        self, time: float, priority: int = 0, jitter: bool = False
    ) -> Tuple[float, int, int, int]:
        """The next ordering key for an event at ``time``.

        ``jitter=True`` (requires a stream) draws the third component
        randomly; otherwise it is 0, leaving ``seq`` (insertion order)
        as the final tie-breaker.
        """
        draw = 0
        if jitter and self._rng is not None:
            draw = self._rng.randrange(1 << 30)
        seq = self._seq
        self._seq += 1
        return (float(time), int(priority), draw, seq)

    @property
    def seq(self) -> int:
        """Keys issued so far (the next key's insertion counter)."""
        return self._seq

    # -- checkpointable state ------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot (jitter stream included, if any)."""
        return {
            "seq": self._seq,
            "rng": None if self._rng is None else self._rng.state_dict(),
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "EventOrder":
        """Rebuild an order from a :meth:`state_dict` snapshot."""
        rng = None if state["rng"] is None else RngStream.from_state(state["rng"])
        order = cls(rng)
        order._seq = int(state["seq"])
        return order

    def __repr__(self) -> str:
        return f"EventOrder(seq={self._seq}, jitter={self._rng is not None})"
