"""Bridge ends and the search trees that find and cover them.

The LCRB problem protects *bridge ends*: nodes outside the rumor community
with at least one direct in-neighbor inside it that are reachable from the
rumor originators (Section I / IV). Both algorithms share stage one —
finding bridge ends with Rumor Forward Search Trees — and SCBG adds stage
two — Bridge-end Backward Search Trees bounding who can protect each
bridge end in time.

* :mod:`repro.bridge.rfst` — RFSTs and :func:`find_bridge_ends`.
* :mod:`repro.bridge.bbst` — BBSTs (depth-bounded backward BFS).
* :mod:`repro.bridge.coverage` — the ``SW_u`` coverage map (Algorithm 3
  line 5) and the exact blocking-aware variant used for ablation.
"""

from repro.bridge.bbst import BridgeEndBackwardTree, build_bbst, build_all_bbsts
from repro.bridge.coverage import (
    blocking_aware_coverage,
    coverage_map_from_bbsts,
)
from repro.bridge.rfst import (
    RumorForwardTree,
    build_rfsts,
    find_bridge_end_ids,
    find_bridge_ends,
)

__all__ = [
    "RumorForwardTree",
    "build_rfsts",
    "find_bridge_ends",
    "find_bridge_end_ids",
    "BridgeEndBackwardTree",
    "build_bbst",
    "build_all_bbsts",
    "coverage_map_from_bbsts",
    "blocking_aware_coverage",
]
