"""Bridge-end Backward Search Trees (BBST) — Algorithm 3, line 4.

For each bridge end ``v``, the BBST is a backward BFS from ``v`` whose
depth is the rumor's arrival time at ``v``:

    "construct Bridge end Backward Search Tree (BBST) by BFS method to
     find and record all the in-neighbors w ∈ N^i(v) of v, where i is
     determined by the value of the shortest paths between v and any node
     w ∈ S_R. Assume N^0(v) = v."

Under DOAM both cascades advance one hop per step, so a protector seeded
at ``w`` reaches ``v`` at ``dist(w → v)`` while the rumor reaches it at
``t_R(v) = min_{r ∈ S_R} dist(r → v)``; since P wins ties, every non-rumor
node of the depth-``t_R(v)`` backward tree can protect ``v`` (Fig. 3(b):
"all nodes in this tree except r1, r2 can protect p2").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional

from repro.errors import NodeNotFoundError, SeedError
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import bfs_distances, multi_source_distances

__all__ = ["BridgeEndBackwardTree", "build_bbst", "build_all_bbsts"]


class BridgeEndBackwardTree:
    """Backward search tree of one bridge end.

    Attributes:
        bridge_end: the root ``v``.
        rumor_arrival: ``t_R(v)``, the search depth.
        distance_to_end: ``u -> dist(u → v)`` for every tree node (the root
            has distance 0); keys are the paper's ``Q_v`` *including* the
            rumor seeds the search ran into (callers exclude ``S_R`` when
            building candidate sets, mirroring ``Q_i \\ S_R``).
    """

    __slots__ = ("bridge_end", "rumor_arrival", "distance_to_end")

    def __init__(
        self,
        bridge_end: Node,
        rumor_arrival: int,
        distance_to_end: Dict[Node, int],
    ) -> None:
        self.bridge_end = bridge_end
        self.rumor_arrival = rumor_arrival
        self.distance_to_end = distance_to_end

    def candidates(self, rumor_seeds: Iterable[Node]) -> FrozenSet[Node]:
        """Tree nodes that can protect the bridge end (``Q_v \\ S_R``)."""
        excluded = set(rumor_seeds)
        return frozenset(
            node for node in self.distance_to_end if node not in excluded
        )

    def __contains__(self, node: Node) -> bool:
        return node in self.distance_to_end

    def __len__(self) -> int:
        return len(self.distance_to_end)

    def __repr__(self) -> str:
        return (
            f"BridgeEndBackwardTree(bridge_end={self.bridge_end!r}, "
            f"depth={self.rumor_arrival}, size={len(self.distance_to_end)})"
        )


def build_bbst(
    graph: DiGraph,
    bridge_end: Node,
    rumor_arrival: int,
) -> BridgeEndBackwardTree:
    """Backward BFS from ``bridge_end`` to depth ``rumor_arrival``.

    Args:
        graph: the social network.
        bridge_end: the tree root ``v``.
        rumor_arrival: ``t_R(v)`` — must be >= 1 for a meaningful tree (a
            bridge end at distance 0 would itself be a rumor seed).
    """
    if bridge_end not in graph:
        raise NodeNotFoundError(bridge_end)
    if rumor_arrival < 0:
        raise SeedError(f"rumor arrival must be >= 0, got {rumor_arrival}")
    distances = bfs_distances(graph, bridge_end, reverse=True, max_depth=rumor_arrival)
    return BridgeEndBackwardTree(bridge_end, rumor_arrival, distances)


def build_all_bbsts(
    graph: DiGraph,
    bridge_ends: Iterable[Node],
    rumor_seeds: Iterable[Node],
    rumor_arrival: Optional[Mapping[Node, int]] = None,
) -> List[BridgeEndBackwardTree]:
    """Build the BBST of every bridge end (Algorithm 3's ``Q_1..Q_|B|``).

    Args:
        graph: the social network.
        bridge_ends: the set ``B`` from
            :func:`repro.bridge.rfst.find_bridge_ends`.
        rumor_seeds: ``S_R`` (used to compute arrival times).
        rumor_arrival: optional precomputed ``t_R``; recomputed via one
            multi-source BFS when omitted.

    Raises:
        SeedError: if some bridge end is unreachable from the rumor seeds
            (then it has no arrival time and is not a bridge end at all).
    """
    ends = list(dict.fromkeys(bridge_ends))
    seeds = list(dict.fromkeys(rumor_seeds))
    if not seeds:
        raise SeedError("rumor seed set must not be empty")
    if rumor_arrival is None:
        rumor_arrival = multi_source_distances(graph, seeds)
    trees: List[BridgeEndBackwardTree] = []
    for end in ends:
        if end not in rumor_arrival:
            raise SeedError(
                f"bridge end {end!r} is not reachable from the rumor seeds"
            )
        trees.append(build_bbst(graph, end, rumor_arrival[end]))
    return trees
