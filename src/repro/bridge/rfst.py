"""Rumor Forward Search Trees (RFST) and bridge-end detection.

Algorithm 1/3, line 3: "For each r in S_R, construct the Rumor Forward
Search Tree (RFST) by the BFS method to find all bridge ends in G".

A bridge end (Section I/IV) is a node that

* lies **outside** the rumor community,
* has at least one **direct in-neighbor inside** the rumor community, and
* is **reachable from the rumor originators**.

Given the second condition, a bridge end's own community necessarily
receives an edge from the rumor community, i.e. it is an R-neighbor
community — so detection only needs the rumor community's node set, not
the full cover.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.errors import NodeNotFoundError, SeedError
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import bfs_tree, multi_source_distances

__all__ = [
    "RumorForwardTree",
    "build_rfsts",
    "find_bridge_ends",
    "find_bridge_end_ids",
]


class RumorForwardTree:
    """The BFS tree grown forward from one rumor originator.

    Attributes:
        root: the rumor originator.
        parents: node -> BFS parent (root maps to ``None``); the keys are
            the tree's vertex set.
        bridge_ends: the bridge ends discovered in this tree (Fig. 3(a)
            marks them as the leaves at the community boundary).
    """

    __slots__ = ("root", "parents", "bridge_ends")

    def __init__(
        self,
        root: Node,
        parents: Dict[Node, Optional[Node]],
        bridge_ends: FrozenSet[Node],
    ) -> None:
        self.root = root
        self.parents = parents
        self.bridge_ends = bridge_ends

    def path_from_root(self, node: Node) -> List[Node]:
        """The tree path root -> ... -> ``node`` (node must be in the tree)."""
        if node not in self.parents:
            raise NodeNotFoundError(node)
        path: List[Node] = []
        current: Optional[Node] = node
        while current is not None:
            path.append(current)
            current = self.parents[current]
        path.reverse()
        return path

    def depth_of(self, node: Node) -> int:
        """Hop depth of ``node`` in this tree."""
        return len(self.path_from_root(node)) - 1

    def __contains__(self, node: Node) -> bool:
        return node in self.parents

    def __repr__(self) -> str:
        return (
            f"RumorForwardTree(root={self.root!r}, size={len(self.parents)}, "
            f"bridge_ends={len(self.bridge_ends)})"
        )


def _check_inputs(
    graph: DiGraph, rumor_community: Iterable[Node], rumor_seeds: Iterable[Node]
) -> tuple:
    community: Set[Node] = set()
    for node in rumor_community:
        if node not in graph:
            raise NodeNotFoundError(node)
        community.add(node)
    seeds = list(dict.fromkeys(rumor_seeds))  # dedupe, keep order
    if not seeds:
        raise SeedError("rumor seed set must not be empty")
    for seed in seeds:
        if seed not in graph:
            raise NodeNotFoundError(seed)
        if seed not in community:
            raise SeedError(
                f"rumor seed {seed!r} is outside the rumor community "
                "(Definition 2 requires S_R ⊆ V(C_k))"
            )
    return community, seeds


def build_rfsts(
    graph: DiGraph,
    rumor_community: Iterable[Node],
    rumor_seeds: Iterable[Node],
) -> List[RumorForwardTree]:
    """Build one RFST per rumor originator (Algorithm 3 line 3).

    Each tree is a full forward BFS from its seed; its bridge ends are the
    reached nodes outside the community with an in-neighbor inside it.

    Args:
        graph: the social network.
        rumor_community: node set of the rumor community ``C_r``.
        rumor_seeds: the originators ``S_R`` (must lie inside ``C_r``).
    """
    community, seeds = _check_inputs(graph, rumor_community, rumor_seeds)
    trees: List[RumorForwardTree] = []
    for seed in seeds:
        parents = bfs_tree(graph, seed)
        ends = frozenset(
            node
            for node in parents
            if node not in community
            and any(tail in community for tail in graph.predecessors(node))
        )
        trees.append(RumorForwardTree(seed, parents, ends))
    return trees


def find_bridge_ends(
    graph: DiGraph,
    rumor_community: Iterable[Node],
    rumor_seeds: Iterable[Node],
) -> FrozenSet[Node]:
    """The bridge end set ``B`` (union over all RFSTs).

    Implemented directly with one multi-source BFS (equivalent to, and
    cheaper than, unioning per-seed RFSTs — the per-tree structure is only
    needed when inspecting paths, for which use :func:`build_rfsts`).
    """
    community, seeds = _check_inputs(graph, rumor_community, rumor_seeds)
    reachable = multi_source_distances(graph, seeds)
    return frozenset(
        node
        for node in reachable
        if node not in community
        and any(tail in community for tail in graph.predecessors(node))
    )


def find_bridge_end_ids(
    graph,
    community_ids: Iterable[int],
    seed_ids: Iterable[int],
) -> FrozenSet[int]:
    """The bridge end set ``B`` in **id space**, on an indexed snapshot.

    Same semantics as :func:`find_bridge_ends`, but runs directly on an
    :class:`~repro.graph.compact.IndexedDiGraph` — the serve layer's
    path, where ``B`` must be recomputed against the *current* adjacency
    after in-place edge updates without round-tripping through labels.
    """
    community: Set[int] = set()
    for node in community_ids:
        _check_node_id(graph, node)
        community.add(node)
    seeds = list(dict.fromkeys(seed_ids))
    if not seeds:
        raise SeedError("rumor seed set must not be empty")
    for seed in seeds:
        _check_node_id(graph, seed)
        if seed not in community:
            raise SeedError(
                f"rumor seed {seed!r} is outside the rumor community "
                "(Definition 2 requires S_R ⊆ V(C_k))"
            )
    out, inn = graph.out, graph.inn
    reached: Set[int] = set(seeds)
    frontier: List[int] = list(seeds)
    while frontier:
        next_frontier: List[int] = []
        for node in frontier:
            for head in out[node]:
                if head not in reached:
                    reached.add(head)
                    next_frontier.append(head)
        frontier = next_frontier
    return frozenset(
        node
        for node in reached
        if node not in community
        and any(tail in community for tail in inn[node])
    )


def _check_node_id(graph, node: int) -> None:
    if isinstance(node, bool) or not isinstance(node, int):
        raise NodeNotFoundError(node)
    if not 0 <= node < graph.node_count:
        raise NodeNotFoundError(node)
