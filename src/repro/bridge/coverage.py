"""Coverage maps: which bridge ends can each candidate protector save?

Algorithm 3, line 5, inverts the BBST memberships: for every node ``u``
appearing in some ``Q_i``, connect ``u`` to the roots of all the BBSTs
containing it — a "1-hop tree" whose leaves ``SW_u`` are exactly the
bridge ends ``u`` can protect. :func:`coverage_map_from_bbsts` builds that
``u -> SW_u`` mapping directly.

The BBST criterion (``dist(u → v) <= t_R(v)``) is **sound** under DOAM
with protector priority: at position ``i`` of a shortest ``u → v`` path,
the rumor's base arrival is at least ``i`` (otherwise the triangle
inequality would put the rumor at ``v`` earlier than ``t_R(v)``), so the
protector front wins every intermediate node by tie-priority and is never
blocked. It can, however, *undercount*: a candidate that blocks the
rumor's own paths may delay the rumor enough to save additional bridge
ends the criterion does not credit. :func:`blocking_aware_coverage`
computes the exact saved set by running the real DOAM dynamics per
candidate — quadratic, but exact — and the ablation benchmark quantifies
the (small) gap on community-structured graphs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set

from repro.bridge.bbst import BridgeEndBackwardTree
from repro.diffusion.base import PROTECTED, SeedSets
from repro.diffusion.doam import DOAMModel
from repro.graph.digraph import DiGraph, Node

__all__ = ["coverage_map_from_bbsts", "blocking_aware_coverage"]


def coverage_map_from_bbsts(
    bbsts: Iterable[BridgeEndBackwardTree],
    rumor_seeds: Iterable[Node],
) -> Dict[Node, FrozenSet[Node]]:
    """Build the ``SW_u`` coverage map from BBSTs (Algorithm 3 line 5).

    Args:
        bbsts: one tree per bridge end.
        rumor_seeds: excluded from candidacy (``Q_i \\ S_R``).

    Returns:
        Mapping ``candidate u -> frozenset of bridge ends u covers``. Every
        bridge end covers at least itself (``N^0(v) = v``), so the map is
        never missing a bridge end's own entry.
    """
    excluded = set(rumor_seeds)
    draft: Dict[Node, Set[Node]] = {}
    for tree in bbsts:
        for node in tree.distance_to_end:
            if node in excluded:
                continue
            draft.setdefault(node, set()).add(tree.bridge_end)
    return {node: frozenset(ends) for node, ends in draft.items()}


def blocking_aware_coverage(
    graph: DiGraph,
    rumor_seeds: Iterable[Node],
    candidates: Iterable[Node],
    bridge_ends: Iterable[Node],
    max_hops: int = 10_000,
) -> Dict[Node, FrozenSet[Node]]:
    """Exact per-candidate coverage under real DOAM dynamics.

    For each candidate ``u``, runs DOAM with ``S_P = {u}`` and records
    which bridge ends finish *protected*. This accounts for upstream
    blocking that the BBST criterion ignores, at the cost of one full
    deterministic diffusion per candidate.

    Args:
        graph: the social network.
        rumor_seeds: ``S_R``.
        candidates: candidate protector seeds to evaluate.
        bridge_ends: the universe ``B``.
        max_hops: safety horizon for each DOAM run (diffusion terminates
            on its own well before this on finite graphs).

    Returns:
        Mapping ``candidate -> frozenset of bridge ends actually saved``.
    """
    indexed = graph.to_indexed()
    seed_ids = frozenset(indexed.index(node) for node in dict.fromkeys(rumor_seeds))
    end_ids = [indexed.index(node) for node in dict.fromkeys(bridge_ends)]
    model = DOAMModel()
    coverage: Dict[Node, FrozenSet[Node]] = {}
    for candidate in dict.fromkeys(candidates):
        candidate_id = indexed.index(candidate)
        if candidate_id in seed_ids:
            continue  # a rumor originator cannot also be a protector
        outcome = model.run(
            indexed,
            SeedSets(rumors=seed_ids, protectors=[candidate_id]),
            max_hops=max_hops,
        )
        saved = frozenset(
            indexed.labels[end_id]
            for end_id in end_ids
            if outcome.states[end_id] == PROTECTED
        )
        coverage[candidate] = saved
    return coverage
