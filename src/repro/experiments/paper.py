"""The paper's exact experiment roster, keyed by table/figure id.

Every entry regenerates one table or figure of Section VI. ``scale``,
``runs`` and ``draws`` are sized so the full roster completes on a laptop;
pass overrides through :func:`paper_experiment` (the benchmarks use the
defaults; the CLI exposes ``--scale`` etc.).
"""

from __future__ import annotations

from typing import Dict, Union

from repro.errors import ExperimentError
from repro.experiments.config import FigureConfig, TableConfig

__all__ = ["PAPER_EXPERIMENTS", "paper_experiment"]

ExperimentConfig = Union[FigureConfig, TableConfig]

PAPER_EXPERIMENTS: Dict[str, ExperimentConfig] = {
    # -- OPOAO infected-per-hop figures (Section VI.B.2, 31 hops) ----------
    "fig4": FigureConfig(
        name="fig4",
        dataset="hep",
        model="opoao",
        rumor_fraction=0.05,
        hops=31,
        runs=60,
        draws=2,
        title="Infected nodes under OPOAO, Hep collaboration network (Fig. 4)",
    ),
    "fig5": FigureConfig(
        name="fig5",
        dataset="enron-small",
        model="opoao",
        rumor_fraction=0.10,
        hops=31,
        runs=60,
        draws=2,
        title="Infected nodes under OPOAO, Enron network, small community (Fig. 5)",
    ),
    "fig6": FigureConfig(
        name="fig6",
        dataset="enron-large",
        model="opoao",
        rumor_fraction=0.05,
        hops=31,
        runs=60,
        draws=2,
        title="Infected nodes under OPOAO, Enron network, large community (Fig. 6)",
    ),
    # -- DOAM infected-per-step figures (Section VI.B.2) -------------------
    "fig7": FigureConfig(
        name="fig7",
        dataset="hep",
        model="doam",
        rumor_fraction=0.05,
        hops=12,
        runs=1,  # DOAM is deterministic given seeds; average over draws
        draws=10,
        title="Infected nodes under DOAM, Hep collaboration network (Fig. 7)",
    ),
    "fig8": FigureConfig(
        name="fig8",
        dataset="enron-small",
        model="doam",
        rumor_fraction=0.10,
        hops=12,
        runs=1,
        draws=10,
        title="Infected nodes under DOAM, Enron network, small community (Fig. 8)",
    ),
    "fig9": FigureConfig(
        name="fig9",
        dataset="enron-large",
        model="doam",
        rumor_fraction=0.05,
        hops=12,
        runs=1,
        draws=10,
        title="Infected nodes under DOAM, Enron network, large community (Fig. 9)",
    ),
    # -- Table I (Section VI.B.2) ------------------------------------------
    "table1": TableConfig(name="table1", draws=10),
}


def paper_experiment(key: str) -> ExperimentConfig:
    """Look up a table/figure config by id (``fig4`` ... ``fig9``, ``table1``)."""
    try:
        return PAPER_EXPERIMENTS[key]
    except KeyError:
        known = ", ".join(sorted(PAPER_EXPERIMENTS))
        raise ExperimentError(f"unknown experiment {key!r}; known: {known}") from None
