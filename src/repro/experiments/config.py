"""Declarative experiment configurations.

Two experiment families cover the paper's whole evaluation section:

* :class:`FigureConfig` — infected-nodes-per-hop comparisons (Fig. 4-6
  under OPOAO, Fig. 7-9 under DOAM).
* :class:`TableConfig` — protector-count comparisons under DOAM
  (Table I), sweeping the rumor-originator fraction.

Configs are plain frozen dataclasses so they serialise cleanly into the
experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ExperimentError

__all__ = ["FigureConfig", "TableConfig"]

_VALID_MODELS = ("opoao", "doam", "ic", "lt")


@dataclass(frozen=True)
class FigureConfig:
    """One infected-per-hop figure experiment.

    Attributes:
        name: experiment id (e.g. ``"fig4"``).
        dataset: registry dataset name.
        model: diffusion model key (``"opoao"`` / ``"doam"`` / ``"ic"`` /
            ``"lt"``).
        rumor_fraction: ``|R| / |C|``.
        hops: horizon (the paper runs OPOAO for 31 hops).
        runs: Monte-Carlo replicas per evaluation (per seed draw).
        draws: independent rumor-seed draws to average over (important for
            DOAM, which is deterministic given seeds).
        scale: dataset replica scale.
        seed: master seed.
        greedy_runs: σ̂ replicas inside the greedy selector.
        greedy_max_candidates: candidate-pool cap for greedy (tractability
            knob; see :class:`repro.algorithms.greedy.GreedySelector`).
        backend: optional kernel backend (``"python"``/``"numpy"``/
            ``"auto"``) used for greedy σ̂ estimation and Monte-Carlo
            evaluation; ``None`` keeps the per-replica reference path.
        title: human-readable description.
    """

    name: str
    dataset: str
    model: str
    rumor_fraction: float = 0.05
    hops: int = 31
    runs: int = 100
    draws: int = 1
    scale: float = 0.1
    seed: int = 13
    greedy_runs: int = 8
    greedy_max_candidates: int = 200
    backend: Optional[str] = None
    title: str = ""

    def __post_init__(self) -> None:
        if self.model not in _VALID_MODELS:
            raise ExperimentError(
                f"model must be one of {_VALID_MODELS}, got {self.model!r}"
            )
        if not 0.0 < self.rumor_fraction <= 1.0:
            raise ExperimentError(
                f"rumor_fraction must be in (0, 1], got {self.rumor_fraction}"
            )
        for attr in ("hops", "runs", "draws", "greedy_runs", "greedy_max_candidates"):
            if getattr(self, attr) <= 0:
                raise ExperimentError(f"{attr} must be > 0")

    def scaled(self, **overrides) -> "FigureConfig":
        """Copy with overridden fields (benchmarks downscale this way)."""
        from dataclasses import replace

        return replace(self, **overrides)


@dataclass(frozen=True)
class TableConfig:
    """The Table I experiment: protector counts under DOAM.

    Attributes:
        name: experiment id (``"table1"``).
        rows: mapping dataset name -> tuple of rumor fractions, matching
            the paper's row layout (Hep: 1/5/10 %; Enron small: 5/10/20 %;
            Enron large: 1/5/10 %).
        draws: random rumor-seed draws averaged per cell (the paper's
            decimals are averages).
        scale: dataset replica scale.
        seed: master seed.
    """

    name: str = "table1"
    rows: Dict[str, Tuple[float, ...]] = field(
        default_factory=lambda: {
            "hep": (0.01, 0.05, 0.10),
            "enron-small": (0.05, 0.10, 0.20),
            "enron-large": (0.01, 0.05, 0.10),
        }
    )
    draws: int = 10
    scale: float = 0.1
    seed: int = 13

    def __post_init__(self) -> None:
        if self.draws <= 0:
            raise ExperimentError("draws must be > 0")
        for dataset, fractions in self.rows.items():
            for fraction in fractions:
                if not 0.0 < fraction <= 1.0:
                    raise ExperimentError(
                        f"rumor fraction {fraction} for {dataset!r} not in (0, 1]"
                    )

    def scaled(self, **overrides) -> "TableConfig":
        """Copy with overridden fields."""
        from dataclasses import replace

        return replace(self, **overrides)
