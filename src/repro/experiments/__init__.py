"""Experiment harness regenerating the paper's tables and figures.

* :mod:`repro.experiments.config` — declarative configs for each
  experiment family.
* :mod:`repro.experiments.harness` — the runners: infected-per-hop figure
  experiments (Fig. 4-9) and the protector-count table (Table I).
* :mod:`repro.experiments.paper` — the exact configurations of every
  table/figure in the paper, keyed ``fig4`` ... ``fig9``, ``table1``.
* :mod:`repro.experiments.report` — plain-text and JSON rendering.
"""

from repro.experiments.config import FigureConfig, TableConfig
from repro.experiments.harness import (
    FigureResult,
    TableResult,
    run_figure,
    run_table,
)
from repro.experiments.paper import PAPER_EXPERIMENTS, paper_experiment

__all__ = [
    "FigureConfig",
    "TableConfig",
    "FigureResult",
    "TableResult",
    "run_figure",
    "run_table",
    "PAPER_EXPERIMENTS",
    "paper_experiment",
]
