"""Rendering experiment results as text and JSON.

The benchmarks print exactly the rows/series the paper reports (Table I's
layout; Fig. 4-9's per-hop series), plus the replica-vs-paper header so a
reader can compare regimes at a glance.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Union

from repro.experiments.harness import (
    FigureResult,
    MAXDEGREE,
    PROXIMITY,
    SCBG,
    TableResult,
)
from repro.utils.tables import format_series, format_table

__all__ = [
    "render_figure",
    "render_table",
    "figure_to_dict",
    "table_to_dict",
    "save_json",
]


def render_figure(result: FigureResult) -> str:
    """Plain-text rendering of a figure experiment (series + header)."""
    config = result.config
    header = (
        f"{config.title or config.name}\n"
        f"replica: |N|={result.nodes} |E|={result.edges} "
        f"|C|={result.community_size} |B|={result.bridge_ends:.1f} "
        f"|R|={result.rumor_seeds} model={config.model} "
        f"runs={config.runs} draws={config.draws}\n"
        f"protectors: "
        + " ".join(
            f"{name}={count:.1f}"
            for name, count in sorted(result.protectors_used.items())
        )
    )
    body = format_series(result.series, x_label="hop")
    return f"{header}\n{body}"


def render_table(result: TableResult) -> str:
    """Plain-text rendering in the paper's Table I layout."""
    headers = ["Dataset/|N|/|C|", "|R|", SCBG, PROXIMITY, MAXDEGREE]
    rows = []
    for row in result.rows:
        label = f"{row['dataset']}/{row['nodes']}/{row['community']}"
        fraction = f"{float(row['fraction']) * 100:.0f}%"
        rows.append(
            [label, fraction, row[SCBG], row[PROXIMITY], row[MAXDEGREE]]
        )
    title = (
        "COMPARISON RESULTS FOR THE DOAM MODEL "
        f"(draws={result.config.draws}, scale={result.config.scale})"
    )
    return format_table(headers, rows, title=title)


def figure_to_dict(result: FigureResult) -> dict:
    """JSON-serialisable form of a figure result."""
    config = result.config
    return {
        "kind": "figure",
        "name": config.name,
        "title": config.title,
        "dataset": config.dataset,
        "model": config.model,
        "scale": config.scale,
        "hops": config.hops,
        "runs": config.runs,
        "draws": config.draws,
        "nodes": result.nodes,
        "edges": result.edges,
        "community_size": result.community_size,
        "bridge_ends": result.bridge_ends,
        "rumor_seeds": result.rumor_seeds,
        "protectors_used": dict(result.protectors_used),
        "series": {name: list(values) for name, values in result.series.items()},
    }


def table_to_dict(result: TableResult) -> dict:
    """JSON-serialisable form of a table result."""
    return {
        "kind": "table",
        "name": result.config.name,
        "scale": result.config.scale,
        "draws": result.config.draws,
        "rows": [dict(row) for row in result.rows],
    }


def save_json(document: dict, target: Union[str, Path, IO[str]]) -> None:
    """Write a result document as pretty-printed JSON."""
    if hasattr(target, "write"):
        json.dump(document, target, indent=2, sort_keys=True)  # type: ignore[arg-type]
        return
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
