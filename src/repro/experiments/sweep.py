"""Parameter sweeps over the synthetic-network generator.

The paper's whole strategy rests on community structure: "edges crossing
between communities are of usually few, thus a node from a community often
has little chance to spread out rumor to a node in a different community"
(Section IV). :func:`mixing_sweep` quantifies that premise on the
generator's ``mixing`` knob — as the fraction of cross-community edges
grows, bridge-end counts and protector costs should grow with it, and the
community-confinement strategy should lose its advantage.

:func:`run_sweep` is the generic engine: one row per parameter value, each
averaging a metric callback over independent seed draws.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence

from repro.algorithms.base import SelectionContext
from repro.algorithms.heuristics import ProximitySelector
from repro.algorithms.scbg import SCBGSelector
from repro.community.structure import CommunityStructure
from repro.errors import ExperimentError
from repro.graph.generators import powerlaw_community_digraph
from repro.lcrb.pipeline import draw_rumor_seeds
from repro.rng import RngStream
from repro.utils.stats import RunningStats

__all__ = ["run_sweep", "mixing_sweep"]

#: metric(value, draw_rng) -> {metric_name: number}
MetricFn = Callable[[object, RngStream], Dict[str, float]]


def run_sweep(
    values: Sequence[object],
    metric: MetricFn,
    draws: int = 3,
    seed: int = 13,
) -> List[Dict[str, object]]:
    """Evaluate ``metric`` at each parameter value, averaged over draws.

    Args:
        values: the parameter grid.
        metric: callback producing named numbers for one (value, rng) draw.
        draws: independent draws per value.
        seed: master seed.

    Returns:
        One row dict per value: ``{"value": v, <metric>: mean, ...}``.
    """
    if draws <= 0:
        raise ExperimentError("draws must be > 0")
    if not values:
        raise ExperimentError("values must not be empty")
    rng = RngStream(seed, name="sweep")
    rows: List[Dict[str, object]] = []
    for value in values:
        stats: Dict[str, RunningStats] = {}
        for draw in range(draws):
            sample = metric(value, rng.fork(repr(value), draw))
            for name, number in sample.items():
                stats.setdefault(name, RunningStats()).add(float(number))
        row: Dict[str, object] = {"value": value}
        for name, accumulator in stats.items():
            row[name] = accumulator.mean
        rows.append(row)
    return rows


def _mixing_metric(
    nodes: int,
    avg_degree: float,
    rumor_fraction: float,
) -> MetricFn:
    def metric(mixing: object, rng: RngStream) -> Dict[str, float]:
        graph, membership = powerlaw_community_digraph(
            n=nodes,
            avg_degree=avg_degree,
            mixing=float(mixing),  # type: ignore[arg-type]
            rng=rng.fork("net"),
        )
        cover = CommunityStructure(graph, membership)
        rumor_community = cover.largest_communities(1)[0]
        size = cover.size(rumor_community)
        count = max(1, round(rumor_fraction * size))
        seeds = draw_rumor_seeds(cover, rumor_community, count, rng.fork("seeds"))
        context = SelectionContext(graph, cover.members(rumor_community), seeds)
        scbg = SCBGSelector().select(context)
        proximity = ProximitySelector(rng=rng.fork("prox")).select(context)
        return {
            "bridge_ends": len(context.bridge_ends),
            "scbg_protectors": len(scbg),
            "proximity_protectors": len(proximity),
            "boundary_edges": len(cover.outgoing_boundary(rumor_community)),
        }

    return metric


def mixing_sweep(
    mixings: Iterable[float] = (0.02, 0.05, 0.10, 0.20, 0.35),
    nodes: int = 1500,
    avg_degree: float = 8.0,
    rumor_fraction: float = 0.05,
    draws: int = 3,
    seed: int = 13,
) -> List[Dict[str, object]]:
    """Sweep the cross-community mixing fraction (Section IV's premise).

    Returns one row per mixing value with mean bridge-end count, boundary
    edge count, and SCBG / Proximity protector costs.
    """
    return run_sweep(
        list(mixings),
        _mixing_metric(nodes, avg_degree, rumor_fraction),
        draws=draws,
        seed=seed,
    )
