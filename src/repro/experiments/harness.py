"""Experiment runners.

:func:`run_figure` regenerates one infected-per-hop comparison (the
paper's Fig. 4-9): load the dataset replica, draw rumor originators,
select protectors with every algorithm under comparison, Monte-Carlo
simulate, and average the per-hop infected series.

:func:`run_table` regenerates Table I: for each (dataset, |R| fraction)
cell, average each algorithm's protector-count "solution" over several
random rumor-seed draws.

Experiment-protocol details lifted from Section VI.B:

* OPOAO figures fix ``|P| = |R|`` for every algorithm and include a
  NoBlocking line.
* DOAM figures predetermine ``|P|`` from SCBG's own solution size; the
  heuristics compute their full solutions and then ``|P|`` protectors are
  drawn at random from them.
* Table I's cells are averages over repeated random rumor-originator
  draws.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.algorithms.base import SelectionContext
from repro.algorithms.celf import CELFGreedySelector
from repro.algorithms.heuristics import MaxDegreeSelector, ProximitySelector
from repro.algorithms.scbg import SCBGSelector
from repro.datasets.registry import LoadedDataset, load_dataset
from repro.diffusion.base import DiffusionModel
from repro.diffusion.doam import DOAMModel
from repro.diffusion.ic import CompetitiveICModel
from repro.diffusion.lt import CompetitiveLTModel
from repro.diffusion.opoao import OPOAOModel
from repro.errors import ExperimentError
from repro.experiments.config import FigureConfig, TableConfig
from repro.graph.digraph import Node
from repro.lcrb.evaluation import evaluate_protectors
from repro.lcrb.pipeline import draw_rumor_seeds
from repro.logging_utils import get_logger
from repro.obs.registry import metrics
from repro.rng import RngStream
from repro.utils.stats import RunningStats

__all__ = ["FigureResult", "TableResult", "run_figure", "run_table"]

logger = get_logger("experiments.harness")

#: Algorithm display names, in the paper's plotting order.
GREEDY, SCBG, PROXIMITY, MAXDEGREE, NOBLOCKING = (
    "Greedy",
    "SCBG",
    "Proximity",
    "MaxDegree",
    "NoBlocking",
)


def make_model(key: str) -> DiffusionModel:
    """Instantiate a diffusion model from its config key."""
    if key == "opoao":
        return OPOAOModel()
    if key == "doam":
        return DOAMModel()
    if key == "ic":
        return CompetitiveICModel()
    if key == "lt":
        return CompetitiveLTModel()
    raise ExperimentError(f"unknown model key {key!r}")


class FigureResult:
    """Averaged per-hop infected series for one figure experiment.

    Attributes:
        config: the originating :class:`FigureConfig`.
        series: algorithm name -> mean cumulative infected per hop.
        protectors_used: algorithm name -> mean ``|P|`` actually seeded.
        bridge_ends: mean ``|B|`` over draws.
        rumor_seeds: ``|R|`` used.
        community_size: ``|C|`` of the chosen rumor community.
        nodes / edges: replica size.
    """

    __slots__ = (
        "config",
        "series",
        "protectors_used",
        "bridge_ends",
        "rumor_seeds",
        "community_size",
        "nodes",
        "edges",
    )

    def __init__(self, config: FigureConfig) -> None:
        self.config = config
        self.series: Dict[str, List[float]] = {}
        self.protectors_used: Dict[str, float] = {}
        self.bridge_ends = 0.0
        self.rumor_seeds = 0
        self.community_size = 0
        self.nodes = 0
        self.edges = 0

    def final_infected(self, algorithm: str) -> float:
        """Mean infected count at the last hop for one algorithm."""
        return self.series[algorithm][-1]

    def __repr__(self) -> str:
        finals = {name: round(values[-1], 1) for name, values in self.series.items()}
        return f"FigureResult({self.config.name}, final_infected={finals})"


def _rumor_count(fraction: float, community_size: int) -> int:
    """``|R|`` = ceil(fraction * |C|), clamped into [1, |C| - 1]."""
    count = max(1, math.ceil(fraction * community_size))
    return min(count, max(1, community_size - 1))


def _draw_context(
    dataset: LoadedDataset, rumor_count: int, rng: RngStream, attempts: int = 8
) -> SelectionContext:
    """Draw rumor seeds until the instance has at least one bridge end.

    A draw can land on originators that cannot reach the community
    boundary; such an instance is vacuous (nothing to protect), so we
    re-draw a bounded number of times and accept the final draw either
    way.
    """
    context: Optional[SelectionContext] = None
    for attempt in range(attempts):
        seeds = draw_rumor_seeds(
            dataset.communities,
            dataset.rumor_community,
            rumor_count,
            rng.fork("attempt", attempt),
        )
        context = SelectionContext(
            dataset.graph, dataset.rumor_community_nodes, seeds
        )
        if context.bridge_ends:
            return context
    assert context is not None
    logger.warning(
        "no bridge ends after %d draws on %s; proceeding with empty B",
        attempts,
        dataset.spec.name,
    )
    return context


def _sampled(solution: Sequence[Node], size: int, rng: RngStream) -> List[Node]:
    """Random ``size``-subset of a heuristic's full solution (Section VI.B.2)."""
    if size >= len(solution):
        return list(solution)
    return rng.sample(list(solution), size)


def run_figure(config: FigureConfig) -> FigureResult:
    """Run one infected-per-hop figure experiment (Fig. 4-9)."""
    registry = metrics()
    with registry.timer("stage.load"):
        dataset = load_dataset(config.dataset, scale=config.scale, seed=config.seed)
    rng = RngStream(config.seed, name=config.name)
    result = FigureResult(config)
    result.nodes = dataset.graph.node_count
    result.edges = dataset.graph.edge_count
    result.community_size = dataset.communities.size(dataset.rumor_community)
    rumor_count = _rumor_count(config.rumor_fraction, result.community_size)
    result.rumor_seeds = rumor_count

    model = make_model(config.model)
    hop_sums: Dict[str, List[float]] = {}
    protector_stats: Dict[str, RunningStats] = {}
    bridge_stats = RunningStats()

    for draw in range(config.draws):
        draw_rng = rng.fork("draw", draw)
        context = _draw_context(dataset, rumor_count, draw_rng.fork("seeds"))
        bridge_stats.add(len(context.bridge_ends))
        with registry.timer("stage.select"):
            assignments = _protector_assignments(config, context, draw_rng)
        for algorithm, protectors in assignments.items():
            with registry.timer("stage.evaluate"):
                evaluation = evaluate_protectors(
                    context,
                    protectors,
                    model,
                    runs=config.runs,
                    max_hops=config.hops,
                    rng=draw_rng.fork("eval", algorithm),
                    backend=config.backend,
                )
            series = evaluation.infected_per_hop
            bucket = hop_sums.setdefault(algorithm, [0.0] * (config.hops + 1))
            for hop, value in enumerate(series):
                bucket[hop] += value
            protector_stats.setdefault(algorithm, RunningStats()).add(len(protectors))
        logger.info("%s: draw %d/%d done", config.name, draw + 1, config.draws)

    result.bridge_ends = bridge_stats.mean
    for algorithm, sums in hop_sums.items():
        result.series[algorithm] = [value / config.draws for value in sums]
        result.protectors_used[algorithm] = protector_stats[algorithm].mean
    return result


def _protector_assignments(
    config: FigureConfig, context: SelectionContext, rng: RngStream
) -> Dict[str, List[Node]]:
    """Choose each algorithm's protector set for one draw.

    OPOAO (and the IC/LT extensions): budget ``|P| = |R|`` for everyone.
    DOAM: ``|P|`` = SCBG's solution size; heuristics down-sampled from
    their own full solutions.
    """
    assignments: Dict[str, List[Node]] = {}
    if config.model == "doam":
        scbg = SCBGSelector().select(context)
        budget = len(scbg)
        assignments[SCBG] = scbg
        proximity_full = ProximitySelector(rng=rng.fork("proximity")).select(context)
        maxdeg_full = MaxDegreeSelector().select(context)
        assignments[PROXIMITY] = _sampled(proximity_full, budget, rng.fork("ps"))
        assignments[MAXDEGREE] = _sampled(maxdeg_full, budget, rng.fork("ms"))
    else:
        budget = len(context.rumor_seeds)
        greedy = CELFGreedySelector(
            model=make_model(config.model),
            runs=config.greedy_runs,
            max_hops=config.hops,
            max_candidates=config.greedy_max_candidates,
            rng=rng.fork("greedy"),
            backend=config.backend,
        )
        assignments[GREEDY] = greedy.select(context, budget=budget)
        assignments[PROXIMITY] = ProximitySelector(rng=rng.fork("proximity")).select(
            context, budget=budget
        )
        assignments[MAXDEGREE] = MaxDegreeSelector().select(context, budget=budget)
    assignments[NOBLOCKING] = []
    return assignments


class TableResult:
    """Averaged protector counts per (dataset, |R| fraction) cell.

    Attributes:
        config: the originating :class:`TableConfig`.
        rows: list of row dicts with keys ``dataset``, ``nodes``,
            ``community``, ``fraction``, ``rumor_seeds``, and one mean
            protector count per algorithm (``SCBG``, ``Proximity``,
            ``MaxDegree``).
    """

    __slots__ = ("config", "rows")

    def __init__(self, config: TableConfig) -> None:
        self.config = config
        self.rows: List[Dict[str, object]] = []

    def cell(self, dataset: str, fraction: float, algorithm: str) -> float:
        """Look up one cell's mean protector count."""
        for row in self.rows:
            if row["dataset"] == dataset and row["fraction"] == fraction:
                return float(row[algorithm])  # type: ignore[arg-type]
        raise KeyError(f"no row for ({dataset!r}, {fraction!r})")

    def __repr__(self) -> str:
        return f"TableResult({self.config.name}, rows={len(self.rows)})"


def run_table(config: TableConfig) -> TableResult:
    """Run the Table I experiment (protector counts under DOAM)."""
    result = TableResult(config)
    registry = metrics()
    rng = RngStream(config.seed, name=config.name)
    for dataset_name, fractions in config.rows.items():
        with registry.timer("stage.load"):
            dataset = load_dataset(dataset_name, scale=config.scale, seed=config.seed)
        community_size = dataset.communities.size(dataset.rumor_community)
        for fraction in fractions:
            rumor_count = _rumor_count(fraction, community_size)
            cells = {
                SCBG: RunningStats(),
                PROXIMITY: RunningStats(),
                MAXDEGREE: RunningStats(),
            }
            for draw in range(config.draws):
                draw_rng = rng.fork(dataset_name, fraction, draw)
                context = _draw_context(dataset, rumor_count, draw_rng.fork("seeds"))
                with registry.timer("stage.select"):
                    cells[SCBG].add(len(SCBGSelector().select(context)))
                    cells[PROXIMITY].add(
                        len(
                            ProximitySelector(rng=draw_rng.fork("proximity")).select(
                                context
                            )
                        )
                    )
                    cells[MAXDEGREE].add(len(MaxDegreeSelector().select(context)))
            result.rows.append(
                {
                    "dataset": dataset_name,
                    "nodes": dataset.graph.node_count,
                    "community": community_size,
                    "fraction": fraction,
                    "rumor_seeds": rumor_count,
                    SCBG: cells[SCBG].mean,
                    PROXIMITY: cells[PROXIMITY].mean,
                    MAXDEGREE: cells[MAXDEGREE].mean,
                }
            )
            logger.info(
                "table cell %s @ %.0f%%: SCBG=%.1f Prox=%.1f MaxDeg=%.1f",
                dataset_name,
                fraction * 100,
                cells[SCBG].mean,
                cells[PROXIMITY].mean,
                cells[MAXDEGREE].mean,
            )
    return result
