"""Comparing experiment results across runs, scales, or versions.

Reproduction claims are *ordinal* (who wins, what grows faster); this
module checks exactly those properties between two result documents (the
JSON dicts produced by :mod:`repro.experiments.report`), so scale- and
seed-sensitivity can be asserted mechanically:

* :func:`figure_winner_order` — algorithms ranked by final infected.
* :func:`compare_figures` — rank agreement + per-algorithm relative
  deltas between two figure documents.
* :func:`table_winners` / :func:`compare_tables` — per-cell winners and
  their agreement between two table documents.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ExperimentError

__all__ = [
    "figure_winner_order",
    "compare_figures",
    "table_winners",
    "compare_tables",
]

_ALGORITHM_COLUMNS = ("SCBG", "Proximity", "MaxDegree")


def figure_winner_order(figure_doc: dict) -> List[str]:
    """Algorithms sorted by final infected count (best first).

    The NoBlocking line is excluded — it is a reference, not a contender.
    """
    if figure_doc.get("kind") != "figure":
        raise ExperimentError("expected a figure document")
    finals = {
        name: values[-1]
        for name, values in figure_doc["series"].items()
        if name != "NoBlocking"
    }
    return sorted(finals, key=lambda name: (finals[name], name))


def compare_figures(left: dict, right: dict) -> Dict[str, object]:
    """Compare two figure documents (e.g. two scales of the same config).

    Returns:
        dict with ``same_winner`` (best algorithm agrees), ``same_order``
        (full ranking agrees), and ``relative_final`` — per-algorithm
        final-infected ratio right/left.
    """
    left_order = figure_winner_order(left)
    right_order = figure_winner_order(right)
    if set(left_order) != set(right_order):
        raise ExperimentError(
            f"figure documents compare different algorithms: "
            f"{sorted(left_order)} vs {sorted(right_order)}"
        )
    relative: Dict[str, float] = {}
    for name in left_order:
        left_final = left["series"][name][-1]
        right_final = right["series"][name][-1]
        relative[name] = right_final / left_final if left_final else float("inf")
    return {
        "same_winner": left_order[0] == right_order[0],
        "same_order": left_order == right_order,
        "left_order": left_order,
        "right_order": right_order,
        "relative_final": relative,
    }


def table_winners(table_doc: dict) -> Dict[Tuple[str, float], str]:
    """Per-cell winning algorithm of a Table-I style document."""
    if table_doc.get("kind") != "table":
        raise ExperimentError("expected a table document")
    winners: Dict[Tuple[str, float], str] = {}
    for row in table_doc["rows"]:
        cells = {name: row[name] for name in _ALGORITHM_COLUMNS if name in row}
        if not cells:
            raise ExperimentError("table row carries no algorithm columns")
        winner = min(cells, key=lambda name: (cells[name], name))
        winners[(row["dataset"], row["fraction"])] = winner
    return winners


def compare_tables(left: dict, right: dict) -> Dict[str, object]:
    """Compare two table documents cell by cell.

    Returns:
        dict with ``agreement`` (fraction of common cells whose winner
        matches), ``disagreements`` (list of cells), and ``common_cells``.
    """
    left_winners = table_winners(left)
    right_winners = table_winners(right)
    common = sorted(set(left_winners) & set(right_winners))
    if not common:
        raise ExperimentError("table documents share no cells")
    disagreements = [
        {
            "cell": cell,
            "left": left_winners[cell],
            "right": right_winners[cell],
        }
        for cell in common
        if left_winners[cell] != right_winners[cell]
    ]
    return {
        "common_cells": len(common),
        "agreement": 1.0 - len(disagreements) / len(common),
        "disagreements": disagreements,
    }
