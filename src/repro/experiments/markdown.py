"""Markdown rendering of experiment results.

EXPERIMENTS.md-style output generated mechanically from result documents,
so a full roster run can produce an auditable report in one step::

    repro experiment all --markdown report.md
"""

from __future__ import annotations

from typing import Iterable, List

from repro.errors import ExperimentError

__all__ = ["figure_markdown", "table_markdown", "roster_markdown"]


def _md_table(headers: List[str], rows: List[List[object]]) -> str:
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.1f}"
        return str(value)

    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(cell(v) for v in row) + " |")
    return "\n".join(lines)


def figure_markdown(doc: dict) -> str:
    """Markdown section for one figure document."""
    if doc.get("kind") != "figure":
        raise ExperimentError("expected a figure document")
    title = doc.get("title") or doc["name"]
    meta = (
        f"replica |N|={doc['nodes']}, |E|={doc['edges']}, "
        f"|C|={doc['community_size']}, |B|={doc['bridge_ends']:.1f}, "
        f"|R|={doc['rumor_seeds']}; model={doc['model']}, "
        f"runs={doc['runs']}, draws={doc['draws']}, scale={doc['scale']}"
    )
    series = doc["series"]
    finals = sorted(
        ((name, values[-1]) for name, values in series.items()),
        key=lambda kv: kv[1],
    )
    finals_table = _md_table(
        ["algorithm", "final infected"], [[name, value] for name, value in finals]
    )
    hops = len(next(iter(series.values())))
    quarter = max(1, (hops - 1) // 4)
    sampled_hops = list(range(0, hops, quarter))
    if sampled_hops[-1] != hops - 1:
        sampled_hops.append(hops - 1)
    series_table = _md_table(
        ["hop", *series.keys()],
        [[hop, *(series[name][hop] for name in series)] for hop in sampled_hops],
    )
    return (
        f"## {title}\n\n{meta}\n\n{finals_table}\n\n"
        f"Sampled series (full data in the JSON document):\n\n{series_table}"
    )


def table_markdown(doc: dict) -> str:
    """Markdown section for one table document."""
    if doc.get("kind") != "table":
        raise ExperimentError("expected a table document")
    headers = ["Dataset/|N|/|C|", "|R|", "SCBG", "Proximity", "MaxDegree"]
    rows = [
        [
            f"{row['dataset']}/{row['nodes']}/{row['community']}",
            f"{float(row['fraction']) * 100:.0f}%",
            row["SCBG"],
            row["Proximity"],
            row["MaxDegree"],
        ]
        for row in doc["rows"]
    ]
    meta = f"draws={doc['draws']}, scale={doc['scale']}"
    return f"## Table I — protectors under DOAM\n\n{meta}\n\n" + _md_table(
        headers, rows
    )


def roster_markdown(documents: Iterable[dict], heading: str = "") -> str:
    """Full report for a roster of result documents."""
    sections = []
    if heading:
        sections.append(f"# {heading}")
    for doc in documents:
        if doc.get("kind") == "figure":
            sections.append(figure_markdown(doc))
        elif doc.get("kind") == "table":
            sections.append(table_markdown(doc))
        else:
            raise ExperimentError(f"unknown document kind {doc.get('kind')!r}")
    return "\n\n".join(sections) + "\n"
