"""Zero-dependency metrics registry: counters, gauges, histograms, timers.

The paper's evaluation is a *cost accounting* argument — Monte-Carlo
greedy spends orders of magnitude more simulation work than the
heuristics, and the RIS literature bounds runtime by counting RR-set
traversal work. This module is the measurement substrate those claims
run on: every hot path in the library reports **work counters** (nodes
visited, worlds sampled, gain evaluations, lazy-queue hits) alongside
wall-clock, so perf numbers are reproducible and CI can diff them.

Design rules:

* **Null by default.** The process-wide active registry starts as
  :data:`NULL_REGISTRY`, whose operations are no-ops; instrumented code
  guards per-hop accumulation behind ``registry.enabled`` so the
  disabled cost is one attribute check per run/hop, not per event.
* **Snapshot and merge.** A registry's :meth:`~MetricsRegistry.snapshot`
  is a plain picklable dict; :meth:`~MetricsRegistry.merge_snapshot`
  folds one in additively (counters/timers add, gauges take the max,
  histograms concatenate). Parallel workers each accumulate into their
  own registry and ship snapshots back through the pool — no locks on
  the hot path, serial/parallel counter totals are identical.
* **Machine-readable.** :meth:`~MetricsRegistry.to_dict` /
  :meth:`~MetricsRegistry.write_json` emit the stable ``repro.obs/v1``
  schema the CLI's ``--metrics-out`` and the benchmark-regression gate
  consume (documented in ``docs/observability.md``).
"""

from __future__ import annotations

import json
import math
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.obs.timers import NULL_TIMER, NullTimer, Timer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "SCHEMA_VERSION",
    "metrics",
    "set_registry",
    "use_registry",
]

Number = Union[int, float]

#: Schema tag stamped into every serialized metrics document.
SCHEMA_VERSION = "repro.obs/v1"


class Counter:
    """Monotonically increasing work counter (events, visits, calls)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increment by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def merge(self, value: int) -> None:
        """Fold a snapshot value in (additive)."""
        self.value += value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-written level (sizes of live structures, watermarks).

    Merge semantics are **max**: when parallel workers report the same
    gauge, the high-water mark wins, keeping merges commutative.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: Number) -> None:
        """Overwrite the current level."""
        self.value = float(value)

    def merge(self, value: Number) -> None:
        """Fold a snapshot value in (max)."""
        self.value = max(self.value, float(value))

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Distribution of observed values (RR-set sizes, front widths).

    Keeps the raw observations (merges concatenate them), so percentiles
    are exact and order-independent: a merged histogram reports the same
    quantiles however the observations were partitioned across workers.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: List[float] = []

    def observe(self, value: Number) -> None:
        """Record one observation."""
        self.values.append(float(value))

    def merge(self, values: List[float]) -> None:
        """Fold a snapshot's observations in (concatenate)."""
        self.values.extend(values)

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self.values)

    @property
    def total(self) -> float:
        """Sum of observations."""
        return sum(self.values)

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.total / len(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in [0, 100] (0.0 when empty)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        if q == 0.0:
            return ordered[0]
        rank = math.ceil(q / 100.0 * len(ordered))
        return ordered[min(rank, len(ordered)) - 1]

    def to_dict(self) -> Dict[str, float]:
        """JSON-ready summary: count/mean/min/max and p50/p90/p99."""
        if not self.values:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": len(self.values),
            "mean": self.mean,
            "min": min(self.values),
            "max": max(self.values),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, count={self.count}, mean={self.mean:.2f})"


class MetricsRegistry:
    """Named metric store with get-or-create accessors.

    A registry is cheap to construct and meant to be scoped: per CLI
    invocation, per benchmark, per pool worker. Metric creation is
    lock-guarded (safe under threads); increments on an existing metric
    are plain attribute updates — the intended concurrency protocol is
    *one registry per worker, merge snapshots at the join point*, not
    shared-registry hammering.
    """

    #: False only on the null registry; hot paths branch on this once
    #: per run or hop to skip accumulation entirely.
    enabled: bool = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, Timer] = {}

    # -- get-or-create accessors ----------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        found = self._counters.get(name)
        if found is None:
            with self._lock:
                found = self._counters.setdefault(name, Counter(name))
        return found

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        found = self._gauges.get(name)
        if found is None:
            with self._lock:
                found = self._gauges.setdefault(name, Gauge(name))
        return found

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        found = self._histograms.get(name)
        if found is None:
            with self._lock:
                found = self._histograms.setdefault(name, Histogram(name))
        return found

    def timer(self, name: str) -> Union[Timer, NullTimer]:
        """The accumulating timer registered under ``name``."""
        found = self._timers.get(name)
        if found is None:
            with self._lock:
                found = self._timers.setdefault(name, Timer(name))
        return found

    # -- convenience shorthands ------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """``counter(name).add(amount)``."""
        self.counter(name).add(amount)

    def observe(self, name: str, value: Number) -> None:
        """``histogram(name).observe(value)``."""
        self.histogram(name).observe(value)

    def set_gauge(self, name: str, value: Number) -> None:
        """``gauge(name).set(value)``."""
        self.gauge(name).set(value)

    # -- inspection -------------------------------------------------------------

    def counter_value(self, name: str) -> int:
        """Current value of a counter (0 when never touched)."""
        found = self._counters.get(name)
        return found.value if found is not None else 0

    def counter_values(self) -> Dict[str, int]:
        """All counters as a plain ``name -> value`` dict."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    # -- snapshot-and-merge protocol --------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Picklable value-copy of every metric (workers ship these)."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in self._counters.items()},
                "gauges": {n: g.value for n, g in self._gauges.items()},
                "histograms": {n: list(h.values) for n, h in self._histograms.items()},
                "timers": {
                    n: {"seconds": t.elapsed, "calls": t.calls}
                    for n, t in self._timers.items()
                },
            }

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold a snapshot in: counters/timers add, gauges max, histograms extend."""
        for name, value in snap.get("counters", {}).items():
            self.counter(name).merge(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).merge(value)
        for name, values in snap.get("histograms", {}).items():
            self.histogram(name).merge(values)
        for name, record in snap.get("timers", {}).items():
            timer = self.timer(name)
            if isinstance(timer, Timer):
                timer.elapsed += record["seconds"]
                timer.calls += int(record["calls"])

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in via its snapshot."""
        self.merge_snapshot(other.snapshot())

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The stable ``repro.obs/v1`` JSON document (histograms summarized)."""
        with self._lock:
            return {
                "schema": SCHEMA_VERSION,
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.to_dict() for n, h in sorted(self._histograms.items())
                },
                "timers": {n: t.to_dict() for n, t in sorted(self._timers.items())},
            }

    def write_json(self, path: str, extra: Optional[Dict[str, Any]] = None) -> None:
        """Serialize :meth:`to_dict` (plus ``extra`` top-level keys) to ``path``."""
        document = self.to_dict()
        if extra:
            for key, value in extra.items():
                document.setdefault(key, value)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def clear(self) -> None:
        """Drop every registered metric."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._timers.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)}, "
            f"timers={len(self._timers)})"
        )


class _NullCounter(Counter):
    """Counter whose ``add`` does nothing (shared by the null registry)."""

    __slots__ = ()

    def add(self, amount: int = 1) -> None:
        return None

    def merge(self, value: int) -> None:
        return None


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: Number) -> None:
        return None

    def merge(self, value: Number) -> None:
        return None


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: Number) -> None:
        return None

    def merge(self, values: List[float]) -> None:
        return None


class NullMetricsRegistry(MetricsRegistry):
    """The default, do-nothing registry.

    Every accessor returns a shared no-op metric, so instrumented code
    can call ``metrics().counter(...).add(...)`` unconditionally; hot
    loops should still branch on :attr:`enabled` to skip accumulation.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str) -> Histogram:
        return self._null_histogram

    def timer(self, name: str) -> Union[Timer, NullTimer]:
        return NULL_TIMER

    def inc(self, name: str, amount: int = 1) -> None:
        return None

    def observe(self, name: str, value: Number) -> None:
        return None

    def set_gauge(self, name: str, value: Number) -> None:
        return None

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        return None


#: Process-wide default: metrics are off until a real registry is installed.
NULL_REGISTRY = NullMetricsRegistry()

_ACTIVE: MetricsRegistry = NULL_REGISTRY


def metrics() -> MetricsRegistry:
    """The currently active registry (the null registry by default)."""
    return _ACTIVE


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` (``None`` = null) and return the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry]) -> Iterator[MetricsRegistry]:
    """Scope ``registry`` as the active one for the duration of the block."""
    previous = set_registry(registry)
    try:
        yield metrics()
    finally:
        set_registry(previous)
