"""Accumulating wall-clock timers (the observability layer's time axis).

:class:`Timer` is a re-enterable context manager that accumulates elapsed
seconds across several timed sections — how the experiment harness
attributes time to pipeline stages. It grew out of
``repro.utils.timer`` (which still re-exports it for compatibility) and
gained the :meth:`merge` / :meth:`to_dict` halves of the
snapshot-and-merge protocol used by
:class:`repro.obs.registry.MetricsRegistry`.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

__all__ = ["Timer", "NullTimer", "NULL_TIMER"]


class Timer:
    """Accumulating wall-clock timer.

    Example:
        >>> timer = Timer("selection")
        >>> with timer:
        ...     _ = sum(range(1000))
        >>> timer.elapsed >= 0.0
        True
    """

    __slots__ = ("name", "elapsed", "calls", "_started_at")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.elapsed = 0.0
        self.calls = 0
        self._started_at: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._started_at = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._started_at is not None, "Timer exited without entering"
        self.elapsed += time.perf_counter() - self._started_at
        self.calls += 1
        self._started_at = None

    @property
    def running(self) -> bool:
        """True while inside a ``with`` block."""
        return self._started_at is not None

    def reset(self) -> None:
        """Zero the accumulated time and call count."""
        self.elapsed = 0.0
        self.calls = 0
        self._started_at = None

    def merge(self, other: "Timer") -> None:
        """Fold another timer's accumulated time into this one (in place).

        Timers merge additively: total elapsed and total calls. Parallel
        workers therefore report *CPU-section* time, which can exceed the
        parent's wall-clock — by design, this is the work axis.
        """
        self.elapsed += other.elapsed
        self.calls += other.calls

    def to_dict(self) -> Dict[str, float]:
        """JSON-ready ``{"seconds": ..., "calls": ...}`` record."""
        return {"seconds": self.elapsed, "calls": self.calls}

    def __repr__(self) -> str:
        label = self.name or "timer"
        return f"Timer({label}: {self.elapsed:.3f}s over {self.calls} call(s))"


class NullTimer:
    """No-op stand-in returned by the null registry's ``timer()``.

    Supports the same context-manager surface as :class:`Timer` at
    near-zero cost; the accumulators stay at zero forever.
    """

    __slots__ = ()

    name = ""
    elapsed = 0.0
    calls = 0
    running = False

    def __enter__(self) -> "NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def reset(self) -> None:
        return None

    def merge(self, other: object) -> None:
        return None

    def to_dict(self) -> Dict[str, float]:
        return {"seconds": 0.0, "calls": 0}

    def __repr__(self) -> str:
        return "NullTimer()"


#: Shared no-op timer instance (stateless, safe to reuse everywhere).
NULL_TIMER = NullTimer()
