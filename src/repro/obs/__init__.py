"""Observability layer: work counters, timers, and metrics plumbing.

Public surface:

* :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges,
  histograms, and accumulating timers behind get-or-create accessors.
* :func:`~repro.obs.registry.metrics` /
  :func:`~repro.obs.registry.set_registry` /
  :func:`~repro.obs.registry.use_registry` — the process-wide active
  registry (a no-op :data:`~repro.obs.registry.NULL_REGISTRY` unless a
  real one is installed).
* :class:`~repro.obs.timers.Timer` — the wall-clock context manager
  (formerly ``repro.utils.timer``, still re-exported there).

See ``docs/observability.md`` for the instrumented metric names, the
JSON schema, and how the CI benchmark-regression gate consumes it.
"""

from repro.obs.registry import (
    NULL_REGISTRY,
    SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    metrics,
    set_registry,
    use_registry,
)
from repro.obs.timers import NULL_TIMER, NullTimer, Timer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TIMER",
    "NullTimer",
    "SCHEMA_VERSION",
    "Timer",
    "metrics",
    "set_registry",
    "use_registry",
]
