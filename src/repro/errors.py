"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch one type to handle any
library-level failure while still letting programming errors
(``TypeError`` from misuse of Python itself, etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "CommunityError",
    "DiffusionError",
    "SeedError",
    "SelectionError",
    "CoverageError",
    "DatasetError",
    "ExperimentError",
    "ValidationError",
    "KernelError",
    "BackendUnavailableError",
    "UnsupportedModelError",
    "ExecError",
    "CheckpointError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A graph-level constraint was violated (bad edge, bad mutation)."""


class NodeNotFoundError(GraphError, KeyError):
    """A referenced node does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node

    def __str__(self) -> str:  # KeyError quotes its args; keep the message readable.
        return self.args[0]


class EdgeNotFoundError(GraphError, KeyError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, tail: object, head: object) -> None:
        super().__init__(f"edge ({tail!r} -> {head!r}) is not in the graph")
        self.tail = tail
        self.head = head

    def __str__(self) -> str:
        return self.args[0]


class CommunityError(ReproError):
    """A community structure is malformed (overlap, missing nodes, bad id)."""


class DiffusionError(ReproError):
    """A diffusion model was configured or driven incorrectly."""


class SeedError(DiffusionError):
    """Seed sets are invalid (overlapping cascades, unknown nodes, empty)."""


class SelectionError(ReproError):
    """A protector-selection algorithm cannot produce a valid answer."""


class CoverageError(SelectionError):
    """Set-cover style selection cannot cover the required universe."""

    def __init__(self, message: str, uncovered: frozenset = frozenset()) -> None:
        super().__init__(message)
        self.uncovered = frozenset(uncovered)


class DatasetError(ReproError):
    """A dataset could not be generated, loaded, or validated."""


class ExperimentError(ReproError):
    """An experiment configuration or run is invalid."""


class ValidationError(ReproError, ValueError):
    """A user-supplied parameter failed validation."""


class KernelError(ReproError):
    """A batched diffusion kernel was configured or driven incorrectly."""


class BackendUnavailableError(KernelError):
    """A requested kernel backend's dependency is not installed.

    Raised instead of ``ImportError`` so callers get an actionable
    message (the ``perf`` extra) and so ``backend="auto"`` can fall back
    to the pure-Python backend without special-casing import machinery.
    """


class UnsupportedModelError(KernelError):
    """A diffusion model has no batched-kernel equivalent."""


class ExecError(ReproError):
    """The parallel execution layer was configured or driven incorrectly."""


class CheckpointError(ExecError):
    """A checkpoint file is unreadable or belongs to a different run.

    Raised instead of silently resuming from foreign state: a checkpoint
    written under different run parameters (seed, model, instance) would
    otherwise corrupt the determinism guarantees resume relies on.
    """
