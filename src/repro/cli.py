"""Command-line interface.

Subcommands::

    repro datasets                      # list registered dataset settings
    repro stats --dataset hep           # replica statistics + community info
    repro communities --dataset hep     # detect + summarise communities
    repro select --dataset hep --algorithm scbg
    repro simulate --dataset hep --model doam --algorithm scbg
    repro bench --dataset enron-small --model doam --runs 50
    repro serve --dataset enron-small            # warm query service
    repro serve --dataset enron-small --loadgen 40
    repro experiment table1 [--scale 0.1] [--json out.json]
    repro experiment fig4 ...

Every subcommand accepts ``--seed`` and ``-v/-vv`` verbosity. The
``experiment`` subcommand regenerates any of the paper's tables/figures.

``select``, ``simulate``, and ``bench`` accept ``--metrics-out PATH``:
the command then runs with a real :class:`repro.obs.MetricsRegistry`
installed and writes every work counter, gauge, histogram, and stage
timer it accumulated as machine-readable JSON (see
``docs/observability.md`` for the schema and metric names).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.algorithms.celf import CELFGreedySelector
from repro.algorithms.heuristics import (
    MaxDegreeSelector,
    ProximitySelector,
    RandomSelector,
)
from repro.algorithms.pagerank import PageRankSelector
from repro.algorithms.scbg import SCBGSelector
from repro.community.metrics import conductance
from repro.datasets.registry import list_datasets, load_dataset
from repro.diffusion.base import PRIORITY_RULES
from repro.experiments.config import TableConfig
from repro.experiments.harness import make_model, run_figure, run_table
from repro.experiments.paper import PAPER_EXPERIMENTS, paper_experiment
from repro.experiments.report import (
    figure_to_dict,
    render_figure,
    render_table,
    save_json,
    table_to_dict,
)
from repro.graph.metrics import summarize
from repro.lcrb.evaluation import evaluate_protectors
from repro.lcrb.pipeline import draw_rumor_seeds
from repro.algorithms.base import SelectionContext
from repro.logging_utils import configure_logging
from repro.obs import MetricsRegistry, metrics, use_registry
from repro.rng import RngStream

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Least Cost Rumor Blocking (ICDCS 2013) reproduction toolkit",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0, help="-v info, -vv debug"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list registered dataset settings")

    def add_dataset_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", required=True, help="hep | enron-small | enron-large")
        p.add_argument("--scale", type=float, default=0.1, help="replica scale")
        p.add_argument("--seed", type=int, default=13, help="master seed")

    stats = sub.add_parser("stats", help="print replica statistics")
    add_dataset_args(stats)

    communities = sub.add_parser("communities", help="summarise detected communities")
    add_dataset_args(communities)
    communities.add_argument("--top", type=int, default=10, help="communities to show")

    def add_metrics_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--metrics-out",
            default=None,
            metavar="PATH",
            help="run with a real metrics registry and write work counters, "
            "histograms, and stage timers to PATH as JSON",
        )

    def add_backend_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend",
            default=None,
            choices=["auto", "python", "numpy"],
            help="run diffusion through a batched kernel backend "
            "(default: the per-replica reference path)",
        )

    def add_workers_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help="fan work out over N processes (0 = one per CPU); results "
            "are bit-identical to serial. greedy needs --backend for its "
            "batched sigma path",
        )
        p.add_argument(
            "--chunk-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-chunk deadline for pool work; a chunk that misses it "
            "is retried deterministically (default: wait forever)",
        )
        p.add_argument(
            "--chunk-retries",
            type=int,
            default=None,
            metavar="K",
            help="resubmissions per failed chunk before degrading to "
            "inline execution (default: 2); see docs/parallel.md",
        )

    def add_checkpoint_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--checkpoint",
            default=None,
            metavar="PATH",
            help="save selection/evaluation round state to PATH "
            "(repro.ckpt/v1 JSON) after every completed round",
        )
        p.add_argument(
            "--resume",
            action="store_true",
            help="with --checkpoint: resume from PATH when it exists and "
            "matches this run's configuration (results are bit-identical "
            "to an uninterrupted run)",
        )

    def add_sketch_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--epsilon", type=float, default=0.1,
            help="ris-greedy: relative precision of the sketch stopping rule",
        )
        p.add_argument(
            "--delta", type=float, default=0.05,
            help="ris-greedy: confidence parameter of the stopping rule",
        )

    select = sub.add_parser("select", help="select protector originators")
    add_dataset_args(select)
    select.add_argument(
        "--algorithm",
        default="scbg",
        choices=[
            "scbg",
            "greedy",
            "ris-greedy",
            "gvs",
            "maxdegree",
            "degreediscount",
            "kcore",
            "proximity",
            "random",
            "pagerank",
        ],
    )
    select.add_argument("--rumor-fraction", type=float, default=0.05)
    select.add_argument("--budget", type=int, default=None)
    add_backend_arg(select)
    add_sketch_args(select)
    add_workers_arg(select)
    add_checkpoint_args(select)
    add_metrics_arg(select)

    simulate = sub.add_parser("simulate", help="select then simulate a diffusion")
    add_dataset_args(simulate)
    simulate.add_argument(
        "--algorithm",
        default="scbg",
        choices=[
            "scbg",
            "greedy",
            "ris-greedy",
            "gvs",
            "maxdegree",
            "degreediscount",
            "kcore",
            "proximity",
            "random",
            "pagerank",
            "none",
        ],
    )
    simulate.add_argument("--model", default="doam", choices=["opoao", "doam", "ic", "lt"])
    simulate.add_argument("--rumor-fraction", type=float, default=0.05)
    simulate.add_argument("--budget", type=int, default=None)
    add_backend_arg(simulate)
    add_sketch_args(simulate)
    add_workers_arg(simulate)
    add_checkpoint_args(simulate)
    simulate.add_argument("--runs", type=int, default=100)
    simulate.add_argument("--hops", type=int, default=31)
    simulate.add_argument(
        "--chart",
        action="store_true",
        help="render the infected-per-hop curve as an ASCII chart (log scale)",
    )
    add_metrics_arg(simulate)

    bench = sub.add_parser(
        "bench", help="micro-benchmark a diffusion model on a dataset replica"
    )
    add_dataset_args(bench)
    bench.add_argument(
        "--model",
        default=None,
        choices=["opoao", "doam", "ic", "lt"],
        help="defaults to doam; with --backend, to opoao (the stochastic "
        "model the batched kernels are built for)",
    )
    bench.add_argument("--runs", type=int, default=50, help="replicas to simulate")
    bench.add_argument("--hops", type=int, default=31)
    bench.add_argument(
        "--rumor-fraction", type=float, default=0.05, help=argparse.SUPPRESS
    )
    add_backend_arg(bench)
    bench.add_argument(
        "--candidates",
        type=int,
        default=10,
        help="with --backend: protector candidates to time sigma over",
    )
    add_workers_arg(bench)
    add_metrics_arg(bench)

    inspect = sub.add_parser(
        "inspect", help="draw an LCRB instance and print its diagnostics"
    )
    add_dataset_args(inspect)
    inspect.add_argument("--rumor-fraction", type=float, default=0.05)

    sources = sub.add_parser(
        "sources", help="simulate a hidden-source rumor and locate it"
    )
    add_dataset_args(sources)
    sources.add_argument(
        "--method", default="jordan", choices=["jordan", "distance", "rumor"]
    )
    sources.add_argument("--spread-hops", type=int, default=4)
    sources.add_argument("--trials", type=int, default=5)

    sweep = sub.add_parser(
        "sweep", help="sweep community mixing vs blocking cost (ablation)"
    )
    sweep.add_argument("--nodes", type=int, default=1000)
    sweep.add_argument("--draws", type=int, default=3)
    sweep.add_argument("--seed", type=int, default=13)
    sweep.add_argument(
        "--mixings",
        type=float,
        nargs="+",
        default=[0.02, 0.05, 0.10, 0.20],
    )

    gossip = sub.add_parser(
        "gossip",
        help="run the discrete-event gossip workload (rumor mongering)",
    )
    add_dataset_args(gossip)
    gossip.add_argument(
        "--protocol",
        default="push",
        choices=["push", "pull", "push-pull"],
        help="rumor-mongering variant (who initiates a round's exchanges)",
    )
    gossip.add_argument(
        "--fanout", type=int, default=1, help="peers contacted per node per round"
    )
    gossip.add_argument(
        "--rumor-budget",
        type=int,
        default=8,
        help="rounds an informed node actively forwards before stopping",
    )
    gossip.add_argument(
        "--stop-rule",
        default="budget",
        choices=["budget", "lose-interest", "counter"],
        help="when spreaders stop: fixed budget, lose interest with "
        "probability 1/k on an informed contact, or after k informed contacts",
    )
    gossip.add_argument(
        "--stop-k", type=int, default=4, help="the k of lose-interest/counter"
    )
    gossip.add_argument(
        "--rounds", type=int, default=30, help="simulation horizon in rounds"
    )
    gossip.add_argument(
        "--anti-entropy-every",
        type=int,
        default=0,
        help="anti-entropy reconciliation period in rounds (0 = off)",
    )
    gossip.add_argument(
        "--protector-delay",
        type=float,
        default=2.0,
        help="rounds before the protector cascade is injected",
    )
    gossip.add_argument(
        "--protector-budget",
        type=int,
        default=None,
        help="protector spreaders' round budget (default: --rumor-budget)",
    )
    gossip.add_argument("--rumor-fraction", type=float, default=0.05)
    gossip.add_argument(
        "--protector-selector",
        default="maxdegree",
        choices=["ris-greedy", "maxdegree", "random", "none"],
        help="how the protector seed set is chosen",
    )
    gossip.add_argument(
        "--protectors", type=int, default=2, help="protector seed-set size"
    )
    gossip.add_argument("--runs", type=int, default=50, help="gossip replicas")
    gossip.add_argument(
        "--compare",
        action="store_true",
        help="run the blocking study instead: none/random/maxdegree/"
        "ris-greedy protector sets on messages-sent vs final-infected",
    )
    add_sketch_args(gossip)
    add_workers_arg(gossip)
    add_checkpoint_args(gossip)
    add_metrics_arg(gossip)

    distributed = sub.add_parser(
        "distributed",
        help="race K cascades: uncoordinated blocking campaigns vs a "
        "centralized planner (price of non-cooperation)",
    )
    add_dataset_args(distributed)
    distributed.add_argument(
        "--model", default="ic", choices=["opoao", "doam", "ic", "lt"]
    )
    distributed.add_argument(
        "--campaigns", type=int, default=2, help="positive campaigns (K - 1)"
    )
    distributed.add_argument(
        "--budget", type=int, default=2, help="seeds per campaign"
    )
    distributed.add_argument("--runs", type=int, default=100)
    distributed.add_argument("--hops", type=int, default=31)
    distributed.add_argument(
        "--select-runs",
        type=int,
        default=8,
        help="coupled replicas per greedy sigma estimate",
    )
    distributed.add_argument(
        "--priority",
        default="positives-first",
        choices=list(PRIORITY_RULES),
        help="who wins simultaneous arrivals (positives-first = paper rule)",
    )
    distributed.add_argument("--rumor-fraction", type=float, default=0.05)
    distributed.add_argument("--json", dest="json_path", default=None)
    distributed.add_argument(
        "--chart",
        action="store_true",
        help="render distributed vs centralized infected-per-hop curves",
    )
    add_metrics_arg(distributed)

    impressions = sub.add_parser(
        "impressions",
        help="score a K-cascade race by rumor-dominated weighted impressions",
    )
    add_dataset_args(impressions)
    impressions.add_argument(
        "--model", default="ic", choices=["opoao", "doam", "ic", "lt"]
    )
    impressions.add_argument(
        "--campaigns",
        type=int,
        default=2,
        help="positive campaigns when auto-selecting seeds (K - 1)",
    )
    impressions.add_argument(
        "--budget", type=int, default=2, help="seeds per auto-selected campaign"
    )
    impressions.add_argument(
        "--campaign-seeds",
        action="append",
        default=None,
        metavar="LABELS",
        help="explicit comma-separated seed labels for one campaign; "
        "repeat the flag once per campaign (overrides auto-selection)",
    )
    impressions.add_argument(
        "--weights",
        default=None,
        metavar="W0,W1,...",
        help="per-cascade impression weights, rumor first "
        "(default: 1.0 for every cascade)",
    )
    impressions.add_argument(
        "--threshold",
        type=float,
        default=1.0,
        help="rumor impression mass needed to dominate a node",
    )
    impressions.add_argument("--runs", type=int, default=100)
    impressions.add_argument("--hops", type=int, default=31)
    impressions.add_argument(
        "--priority", default="positives-first", choices=list(PRIORITY_RULES)
    )
    impressions.add_argument("--rumor-fraction", type=float, default=0.05)
    impressions.add_argument("--json", dest="json_path", default=None)
    add_checkpoint_args(impressions)
    add_metrics_arg(impressions)

    serve = sub.add_parser(
        "serve",
        help="run the warm rumor-blocking query service (newline-JSON)",
    )
    add_dataset_args(serve)
    serve.add_argument(
        "--semantics",
        default="opoao",
        choices=["opoao", "doam"],
        help="RR-sketch semantics the service answers under",
    )
    serve.add_argument(
        "--steps", type=int, default=31, help="diffusion horizon per world"
    )
    serve.add_argument(
        "--initial-worlds",
        type=int,
        default=64,
        help="sketch sample size before the first greedy pass",
    )
    serve.add_argument(
        "--max-worlds", type=int, default=4096, help="adaptive doubling cap"
    )
    serve.add_argument(
        "--invalidation",
        default="footprint",
        choices=["footprint", "members"],
        help="world-staleness rule for edge updates (footprint is exact)",
    )
    serve.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="serve on a unix socket instead of stdin/stdout",
    )
    serve.add_argument(
        "--loadgen",
        type=int,
        default=None,
        metavar="N",
        help="instead of serving, replay N queries of the deterministic "
        "query/update mix in-process and print the report",
    )
    serve.add_argument(
        "--update-every",
        type=int,
        default=5,
        help="loadgen: apply an edge-update batch before every N-th query",
    )
    serve.add_argument(
        "--budget", type=int, default=4, help="loadgen: protectors per query"
    )
    add_backend_arg(serve)
    add_sketch_args(serve)
    add_workers_arg(serve)
    add_metrics_arg(serve)

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument(
        "key",
        choices=sorted(PAPER_EXPERIMENTS) + ["all"],
        help="fig4..fig9, table1, or 'all' for the whole roster",
    )
    experiment.add_argument("--scale", type=float, default=None)
    experiment.add_argument("--runs", type=int, default=None)
    experiment.add_argument("--draws", type=int, default=None)
    experiment.add_argument("--seed", type=int, default=None)
    experiment.add_argument("--json", dest="json_path", default=None)
    experiment.add_argument(
        "--markdown", dest="markdown_path", default=None,
        help="write an EXPERIMENTS.md-style report of the run",
    )

    return parser


def _checkpoint_store(args):
    """The run's checkpoint store, from ``--checkpoint``/``--resume``."""
    path = getattr(args, "checkpoint", None)
    if path is None:
        return None
    from repro.exec.checkpoint import CheckpointStore

    return CheckpointStore(path, resume=getattr(args, "resume", False))


def _selector(name: str, rng: RngStream, args=None, checkpoint=None):
    if name == "scbg":
        return SCBGSelector()
    if name == "ris-greedy":
        from repro.algorithms.ris_greedy import RISGreedySelector

        # Sketch under the semantics being simulated; OPOAO sketches also
        # stand in for the stochastic extension models (ic/lt).
        semantics = "doam" if getattr(args, "model", "doam") == "doam" else "opoao"
        return RISGreedySelector(
            semantics=semantics,
            epsilon=getattr(args, "epsilon", 0.1),
            delta=getattr(args, "delta", 0.05),
            rng=rng.fork("ris-greedy"),
            verify_backend=getattr(args, "backend", None),
            workers=getattr(args, "workers", None),
            chunk_timeout=getattr(args, "chunk_timeout", None),
            chunk_retries=getattr(args, "chunk_retries", None),
            checkpoint=checkpoint,
            executor=getattr(args, "executor", None),
            backend=getattr(args, "backend", None),
        )
    if name == "gvs":
        from repro.algorithms.gvs import GreedyViralStopper

        return GreedyViralStopper(runs=8, max_candidates=150, rng=rng.fork("gvs"))
    if name == "greedy":
        return CELFGreedySelector(
            runs=8,
            max_candidates=150,
            rng=rng.fork("greedy"),
            backend=getattr(args, "backend", None),
            workers=getattr(args, "workers", None),
            chunk_timeout=getattr(args, "chunk_timeout", None),
            chunk_retries=getattr(args, "chunk_retries", None),
            checkpoint=checkpoint,
            executor=getattr(args, "executor", None),
        )
    if name == "maxdegree":
        return MaxDegreeSelector()
    if name == "degreediscount":
        from repro.algorithms.degree_discount import DegreeDiscountSelector

        return DegreeDiscountSelector()
    if name == "kcore":
        from repro.algorithms.heuristics import KCoreSelector

        return KCoreSelector()
    if name == "proximity":
        return ProximitySelector(rng=rng.fork("proximity"))
    if name == "random":
        return RandomSelector(rng=rng.fork("random"))
    if name == "pagerank":
        return PageRankSelector()
    raise ValueError(f"unknown algorithm {name!r}")


def _build_instance(args, rng: RngStream):
    with metrics().timer("stage.load"):
        dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    community_size = dataset.communities.size(dataset.rumor_community)
    count = max(1, round(getattr(args, "rumor_fraction", 0.05) * community_size))
    count = min(count, community_size - 1) or 1
    seeds = draw_rumor_seeds(
        dataset.communities, dataset.rumor_community, count, rng.fork("seeds")
    )
    context = SelectionContext(
        dataset.graph, dataset.rumor_community_nodes, seeds
    )
    return dataset, context


def _cmd_datasets(_args) -> int:
    print(f"{'name':<14} {'paper |N|':>9} {'paper |C|':>9} {'paper |B|':>9}  description")
    for spec in list_datasets():
        print(
            f"{spec.name:<14} {spec.paper_nodes:>9} {spec.paper_community:>9} "
            f"{spec.paper_bridge_ends:>9}  {spec.description}"
        )
    return 0


def _cmd_stats(args) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    print(summarize(dataset.graph))
    cover = dataset.communities
    print(
        f"communities: {cover.community_count}; rumor community "
        f"{dataset.rumor_community} has |C|={cover.size(dataset.rumor_community)} "
        f"(paper |C|={dataset.spec.paper_community})"
    )
    members = dataset.rumor_community_nodes
    print(
        f"rumor community: internal edge fraction="
        f"{cover.internal_edge_fraction(dataset.rumor_community):.2f}, "
        f"conductance={conductance(dataset.graph, members):.3f}"
    )
    return 0


def _cmd_communities(args) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    cover = dataset.communities
    sizes = sorted(cover.sizes().items(), key=lambda kv: -kv[1])
    print(f"{cover.community_count} communities detected (Louvain)")
    print(f"{'id':>4} {'size':>6} {'internal':>9} {'neighbors':>9}")
    for community_id, size in sizes[: args.top]:
        print(
            f"{community_id:>4} {size:>6} "
            f"{cover.internal_edge_fraction(community_id):>9.2f} "
            f"{len(cover.neighbor_communities(community_id)):>9}"
        )
    return 0


def _cmd_select(args) -> int:
    rng = RngStream(args.seed, name="cli-select")
    dataset, context = _build_instance(args, rng)
    selector = _selector(args.algorithm, rng, args, checkpoint=_checkpoint_store(args))
    with metrics().timer("stage.select"):
        protectors = selector.select(context, budget=args.budget)
    print(
        f"instance: |C|={len(context.rumor_community)} |S_R|={len(context.rumor_seeds)} "
        f"|B|={len(context.bridge_ends)}"
    )
    print(f"{selector.name} selected {len(protectors)} protector(s):")
    print(" ".join(str(p) for p in protectors))
    from repro.lcrb.report import render_cover_assessment

    print(render_cover_assessment(context, protectors))
    return 0


def _cmd_simulate(args) -> int:
    rng = RngStream(args.seed, name="cli-simulate")
    dataset, context = _build_instance(args, rng)
    checkpoint = _checkpoint_store(args)
    if args.algorithm == "none":
        protectors = []
        name = "NoBlocking"
    else:
        selector = _selector(args.algorithm, rng, args, checkpoint=checkpoint)
        with metrics().timer("stage.select"):
            protectors = selector.select(context, budget=args.budget)
        name = selector.name
    model = make_model(args.model)
    with metrics().timer("stage.evaluate"):
        result = evaluate_protectors(
            context,
            protectors,
            model,
            runs=args.runs,
            max_hops=args.hops,
            rng=rng.fork("eval"),
            backend=args.backend,
            workers=args.workers,
            checkpoint=checkpoint,
            chunk_timeout=args.chunk_timeout,
            chunk_retries=args.chunk_retries,
            executor=getattr(args, "executor", None),
        )
    print(
        f"{name} with |P|={len(protectors)} under {model.name}: "
        f"final infected={result.final_infected_mean:.1f}, "
        f"protected bridge fraction={result.protected_bridge_fraction:.3f}"
    )
    series = result.infected_per_hop
    print("infected per hop: " + " ".join(f"{v:.1f}" for v in series))
    if args.chart:
        from repro.utils.ascii_chart import line_chart

        print(line_chart({name: series}, height=12, log_scale=True))
    return 0


def _run_one_experiment(key: str, args) -> dict:
    config = paper_experiment(key)
    overrides = {
        field: getattr(args, field)
        for field in ("scale", "runs", "draws", "seed")
        if getattr(args, field) is not None and hasattr(config, field)
    }
    if overrides:
        config = config.scaled(**overrides)
    if isinstance(config, TableConfig):
        result = run_table(config)
        print(render_table(result))
        return table_to_dict(result)
    result = run_figure(config)
    print(render_figure(result))
    return figure_to_dict(result)


def _cmd_experiment(args) -> int:
    keys = sorted(PAPER_EXPERIMENTS) if args.key == "all" else [args.key]
    payloads = []
    for key in keys:
        payloads.append(_run_one_experiment(key, args))
        print()
    if args.json_path:
        document = payloads[0] if len(payloads) == 1 else {"experiments": payloads}
        save_json(document, args.json_path)
        print(f"saved JSON to {args.json_path}")
    if args.markdown_path:
        from repro.experiments.markdown import roster_markdown

        with open(args.markdown_path, "w", encoding="utf-8") as handle:
            handle.write(
                roster_markdown(payloads, heading="Experiment report")
            )
        print(f"saved markdown to {args.markdown_path}")
    return 0


def _print_parallel_line(
    workers: int, serial_seconds: float, parallel_seconds: float, what: str
) -> None:
    """Satellite of ``repro bench``: workers used + parallel efficiency."""
    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    print(
        f"parallel[{what}] workers={workers}: {parallel_seconds:.3f}s "
        f"vs {serial_seconds:.3f}s serial = {speedup:.2f}x speedup, "
        f"efficiency={speedup / max(workers, 1):.2f}"
    )


def _bench_sigma(args, context, model, rng: RngStream) -> int:
    """Sigma-estimation throughput through a kernel backend.

    Times σ̂ over a slice of the greedy candidate pool — one batched
    kernel sweep per candidate over ``--runs`` coupled worlds — which is
    exactly the work greedy/CELF spend their time on. Compare
    ``--backend python`` against ``--backend numpy`` for the speedup.
    """
    from repro.algorithms.greedy import candidate_pool
    from repro.kernels import BatchedSigmaEvaluator
    from repro.utils.timer import Timer

    evaluator = BatchedSigmaEvaluator(
        context,
        model=model,
        runs=args.runs,
        max_hops=args.hops,
        rng=rng.fork("sigma"),
        backend=args.backend,
        executor=getattr(args, "executor", None),
    )
    candidates = candidate_pool(context) or candidate_pool(context, "all")
    candidates = candidates[: args.candidates]
    if not candidates:
        print("no eligible protector candidates; nothing to benchmark")
        return 1
    evaluator.baseline  # sample worlds + baseline race outside the timer
    timer = Timer("bench-sigma")
    with timer:
        with metrics().timer("stage.bench"):
            for candidate in candidates:
                evaluator.sigma([candidate])
    evaluations = len(candidates)
    rate = evaluations / max(timer.elapsed, 1e-9)
    worlds = evaluations * evaluator.runs
    print(
        f"sigma[{model.name}] on {args.dataset} (scale={args.scale}) via "
        f"backend={evaluator.backend.name}: {evaluations} evaluations x "
        f"{evaluator.runs} worlds in {timer.elapsed:.3f}s = "
        f"{rate:.2f} sigma/s ({worlds / max(timer.elapsed, 1e-9):.1f} worlds/s)"
    )
    if args.workers is not None:
        from repro.exec.pool import resolve_workers

        worker_count = resolve_workers(args.workers, evaluations)
        evaluator.workers = worker_count
        parallel_timer = Timer("bench-sigma-parallel")
        with parallel_timer:
            with metrics().timer("stage.bench.parallel"):
                evaluator.sigma_many([[candidate] for candidate in candidates])
        _print_parallel_line(
            worker_count, timer.elapsed, parallel_timer.elapsed, "sigma"
        )
    registry = metrics()
    if registry.enabled:
        for metric_name, value in sorted(registry.counter_values().items()):
            print(f"  {metric_name} = {value}")
    return 0


def _cmd_bench(args) -> int:
    """Micro-benchmark: fixed-replica diffusion runs on one dataset replica.

    Prints runs/second; under ``--metrics-out`` the work counters
    (node/edge visits, rounds, activations) land in the JSON, giving a
    machine-readable work-per-run record for regression tracking.
    With ``--backend`` the benchmark switches to sigma-estimation
    throughput through the named kernel backend (see ``docs/kernels.md``).
    """
    from repro.diffusion.base import SeedSets
    from repro.utils.timer import Timer

    rng = RngStream(args.seed, name="cli-bench")
    _dataset, context = _build_instance(args, rng)
    if args.model is None:
        args.model = "opoao" if args.backend is not None else "doam"
    model = make_model(args.model)
    if args.backend is not None:
        return _bench_sigma(args, context, model, rng)
    seeds = SeedSets(rumors=context.rumor_seed_ids())
    indexed = context.indexed
    timer = Timer("bench")
    with timer:
        with metrics().timer("stage.bench"):
            for replica in range(args.runs):
                model.run(
                    indexed,
                    seeds,
                    rng=rng.replica(replica) if model.stochastic else None,
                    max_hops=args.hops,
                )
    rate = args.runs / max(timer.elapsed, 1e-9)
    print(
        f"{model.name} on {args.dataset} (scale={args.scale}): "
        f"{args.runs} runs in {timer.elapsed:.3f}s = {rate:.1f} runs/s"
    )
    if args.workers is not None and model.stochastic:
        from repro.diffusion.parallel import ParallelMonteCarloSimulator
        from repro.exec.pool import resolve_workers

        worker_count = resolve_workers(args.workers, args.runs)
        simulator = ParallelMonteCarloSimulator(
            model,
            runs=args.runs,
            max_hops=args.hops,
            processes=worker_count,
            executor=getattr(args, "executor", None),
        )
        parallel_timer = Timer("bench-parallel")
        with parallel_timer:
            with metrics().timer("stage.bench.parallel"):
                simulator.simulate(indexed, seeds, rng=rng)
        _print_parallel_line(
            worker_count, timer.elapsed, parallel_timer.elapsed, model.name
        )
    registry = metrics()
    if registry.enabled:
        for metric_name, value in sorted(registry.counter_values().items()):
            print(f"  {metric_name} = {value}")
    return 0


def _cmd_inspect(args) -> int:
    from repro.lcrb.report import build_instance_report, render_instance_report

    rng = RngStream(args.seed, name="cli-inspect")
    _, context = _build_instance(args, rng)
    print(render_instance_report(build_instance_report(context)))
    return 0


def _cmd_sources(args) -> int:
    from repro.algorithms.source_detection import estimate_sources
    from repro.diffusion.base import INFECTED, SeedSets
    from repro.diffusion.doam import DOAMModel
    from repro.graph.traversal import shortest_hop_distance

    rng = RngStream(args.seed, name="cli-sources")
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    indexed = dataset.graph.to_indexed()
    nodes = list(dataset.graph.nodes())
    print(f"{'trial':>5} {'true source':>12} {'estimate':>12} {'hop error':>9}")
    for trial in range(args.trials):
        source = rng.fork("trial", trial).choice(nodes)
        outcome = DOAMModel().run(
            indexed,
            SeedSets(rumors=[indexed.index(source)]),
            max_hops=args.spread_hops,
        )
        infected = [
            indexed.labels[i]
            for i, state in enumerate(outcome.states)
            if state == INFECTED
        ]
        if len(infected) < 3:
            print(f"{trial:>5} {source!s:>12} {'(tiny spread)':>12} {'-':>9}")
            continue
        (estimate,) = estimate_sources(dataset.graph, infected, method=args.method)
        hops = shortest_hop_distance(dataset.graph, estimate, source)
        if hops is None:
            hops = shortest_hop_distance(dataset.graph, source, estimate)
        print(f"{trial:>5} {source!s:>12} {estimate!s:>12} {str(hops):>9}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.experiments.sweep import mixing_sweep
    from repro.utils.tables import format_table

    rows = mixing_sweep(
        mixings=args.mixings, nodes=args.nodes, draws=args.draws, seed=args.seed
    )
    table_rows = [
        [
            f"{row['value']:.2f}",
            row["boundary_edges"],
            row["bridge_ends"],
            row["scbg_protectors"],
            row["proximity_protectors"],
        ]
        for row in rows
    ]
    print(
        format_table(
            ["mixing", "boundary edges", "|B|", "SCBG |P|", "Proximity |P|"],
            table_rows,
            title="Community-mixing sweep",
        )
    )
    return 0


def _cmd_gossip(args) -> int:
    from repro.gossip import GossipConfig, GossipMonteCarlo

    rng = RngStream(args.seed, name="cli-gossip")
    dataset, context = _build_instance(args, rng)
    config = GossipConfig(
        protocol=args.protocol,
        fanout=args.fanout,
        rumor_budget=args.rumor_budget,
        stop_rule=args.stop_rule,
        stop_k=args.stop_k,
        max_rounds=args.rounds,
        anti_entropy_every=args.anti_entropy_every,
        protector_delay=args.protector_delay,
        protector_budget=args.protector_budget,
    )
    checkpoint = _checkpoint_store(args)
    if args.compare:
        from repro.lcrb.gossip_blocking import GossipBlockingScenario

        scenario = GossipBlockingScenario(
            config,
            runs=args.runs,
            budget=args.protectors,
            processes=args.workers,
            chunk_timeout=args.chunk_timeout,
            chunk_retries=args.chunk_retries,
            checkpoint=checkpoint,
            executor=getattr(args, "executor", None),
        )
        with metrics().timer("stage.gossip"):
            result = scenario.run(context, rng.fork("blocking"))
        print(result.to_table())
        return 0
    if args.protector_selector == "none":
        protector_ids: List[int] = []
        name = "NoBlocking"
    else:
        selector = _selector(
            args.protector_selector, rng, args, checkpoint=checkpoint
        )
        with metrics().timer("stage.select"):
            chosen = selector.select(context, budget=args.protectors)
        protector_ids = sorted(context.indexed.indices(chosen))
        name = selector.name
    runner = GossipMonteCarlo(
        config,
        runs=args.runs,
        processes=args.workers,
        chunk_timeout=args.chunk_timeout,
        chunk_retries=args.chunk_retries,
        checkpoint=checkpoint,
        executor=getattr(args, "executor", None),
    )
    with metrics().timer("stage.gossip"):
        aggregate = runner.run(
            context.indexed,
            context.rumor_seed_ids(),
            protector_ids,
            rng=rng.fork("gossip"),
        )
    print(
        f"{config.protocol} gossip on {args.dataset} "
        f"({aggregate.replicas} replicas, {name}, |P|={len(protector_ids)}): "
        f"mean infected={aggregate.mean_infected:.2f}, "
        f"mean protected={aggregate.mean_protected:.2f}, "
        f"worst infected={aggregate.max_infected}"
    )
    print(
        f"messages/replica={aggregate.mean_messages:.1f} "
        f"(total={aggregate.messages_total}); "
        f"events={aggregate.events}, node-rounds={aggregate.rounds}"
    )
    by_kind = " ".join(
        f"{kind}={count}"
        for kind, count in sorted(aggregate.messages.items())
        if count
    )
    print(f"messages by kind: {by_kind or 'none'}")
    series = aggregate.mean_series()
    print("infected per round: " + " ".join(f"{value:.1f}" for value in series))
    return 0


def _parse_label(token: str):
    """A CLI seed token as a graph label (ints stay ints)."""
    token = token.strip()
    try:
        return int(token)
    except ValueError:
        return token


def _cmd_distributed(args) -> int:
    from repro.lcrb.multicascade import DistributedBlockingScenario

    rng = RngStream(args.seed, name="cli-distributed")
    _dataset, context = _build_instance(args, rng)
    scenario = DistributedBlockingScenario(
        make_model(args.model),
        campaigns=args.campaigns,
        budget=args.budget,
        runs=args.runs,
        select_runs=args.select_runs,
        max_hops=args.hops,
        priority=args.priority,
    )
    with metrics().timer("stage.distributed"):
        result = scenario.run(context, rng.fork("scenario"))
    print(result.to_table())
    if args.chart:
        from repro.utils.ascii_chart import line_chart

        print(
            line_chart(
                {
                    "distributed": result.distributed_series,
                    "centralized": result.centralized_series,
                },
                height=12,
                log_scale=True,
            )
        )
    if args.json_path:
        save_json(result.to_dict(), args.json_path)
        print(f"saved JSON to {args.json_path}")
    return 0


def _cmd_impressions(args) -> int:
    from repro.lcrb.multicascade import ImpressionScenario

    rng = RngStream(args.seed, name="cli-impressions")
    _dataset, context = _build_instance(args, rng)
    if args.campaign_seeds is not None:
        campaigns = [
            [_parse_label(token) for token in spec.split(",") if token.strip()]
            for spec in args.campaign_seeds
        ]
    else:
        # Auto-selection: one maxdegree pool split round-robin, so the
        # campaigns field disjoint seed sets without any coordination
        # machinery in the CLI.
        selector = _selector("maxdegree", rng, args)
        chosen = selector.select(context, args.campaigns * args.budget)
        campaigns = [chosen[c :: args.campaigns] for c in range(args.campaigns)]
    if args.weights is not None:
        weights = [float(token) for token in args.weights.split(",")]
    else:
        weights = [1.0] * (len(campaigns) + 1)
    scenario = ImpressionScenario(
        make_model(args.model),
        weights=weights,
        threshold=args.threshold,
        runs=args.runs,
        max_hops=args.hops,
        priority=args.priority,
        checkpoint=_checkpoint_store(args),
    )
    with metrics().timer("stage.impressions"):
        result = scenario.run(context, campaigns, rng.fork("scenario"))
    print(result.to_table())
    if args.json_path:
        save_json(result.to_dict(), args.json_path)
        print(f"saved JSON to {args.json_path}")
    return 0


def _cmd_serve(args) -> int:
    """Run the warm query service (or its in-process load generator).

    Default transport is newline-JSON over stdin/stdout; ``--socket``
    serves a unix socket instead. ``--loadgen N`` skips serving and
    replays the deterministic query/update mix, printing the report
    (this is what ``benchmarks/bench_serve.py`` wraps).
    """
    import asyncio
    import json as json_module

    from repro.serve import RumorBlockingService, run_loadgen, serve_stdio
    from repro.serve import serve_unix_socket

    with metrics().timer("stage.load"):
        dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        indexed = dataset.graph.to_indexed()
        community_ids = sorted(
            indexed.indices(dataset.rumor_community_nodes)
        )
    service = RumorBlockingService(
        indexed,
        community_ids,
        semantics=args.semantics,
        steps=args.steps,
        seed=args.seed,
        initial_worlds=args.initial_worlds,
        max_worlds=args.max_worlds,
        invalidation=args.invalidation,
        workers=args.workers,
        executor=getattr(args, "executor", None),
        backend=getattr(args, "backend", None),
    )
    if args.loadgen is not None:
        with metrics().timer("stage.loadgen"):
            report = run_loadgen(
                service,
                queries=args.loadgen,
                update_every=args.update_every,
                budget=args.budget,
                epsilon=args.epsilon,
                delta=args.delta,
                seed=args.seed,
            )
        report.pop("rrsets_sampled_trace", None)
        print(json_module.dumps(report, indent=2, sort_keys=True))
        return 0
    if args.socket is not None:
        print(f"serving on unix socket {args.socket}", file=sys.stderr)
        asyncio.run(serve_unix_socket(service, args.socket))
        return 0
    asyncio.run(serve_stdio(service))
    return 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "stats": _cmd_stats,
    "communities": _cmd_communities,
    "select": _cmd_select,
    "simulate": _cmd_simulate,
    "bench": _cmd_bench,
    "inspect": _cmd_inspect,
    "sources": _cmd_sources,
    "sweep": _cmd_sweep,
    "gossip": _cmd_gossip,
    "distributed": _cmd_distributed,
    "impressions": _cmd_impressions,
    "serve": _cmd_serve,
    "experiment": _cmd_experiment,
}


def _run_command(command, args) -> int:
    """Run one command with at most one shared process pool.

    When ``--workers`` is given, a single :class:`~repro.exec.pool.\
ParallelExecutor` is built up front and stashed on ``args.executor``;
    every parallel consumer the command touches (selection, evaluation,
    benchmarks, gossip) submits to it, so one invocation creates exactly
    one pool and one graph publication. Without ``--workers`` the
    attribute is ``None`` and consumers fall back to their own settings.
    """
    workers = getattr(args, "workers", None)
    if workers is None:
        args.executor = None
        return command(args)
    from repro.exec.pool import ParallelExecutor

    with ParallelExecutor(
        workers,
        timeout=getattr(args, "chunk_timeout", None),
        retries=getattr(args, "chunk_retries", None),
    ) as executor:
        args.executor = executor
        return command(args)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.verbose)
    command = _COMMANDS[args.command]
    metrics_path = getattr(args, "metrics_out", None)
    if metrics_path is None:
        return _run_command(command, args)
    registry = MetricsRegistry()
    with use_registry(registry):
        code = _run_command(command, args)
    registry.write_json(
        metrics_path,
        extra={
            "command": args.command,
            "dataset": getattr(args, "dataset", None),
            "seed": getattr(args, "seed", None),
        },
    )
    print(f"wrote metrics JSON to {metrics_path}")
    return code


if __name__ == "__main__":
    sys.exit(main())
