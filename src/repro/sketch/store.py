"""Flat-array storage for sampled RR sets, with adaptive sample control.

A :class:`SketchStore` owns the RR sets produced by a
:mod:`repro.sketch.rrset` sampler and answers the two queries selection
needs fast:

* **membership** — which RR sets contain node ``u`` (the inverted
  ``node -> set ids`` index; lazy-greedy max coverage is heap pops over
  these lists), and
* **coverage** — how many sets (per world) a candidate protector set
  intersects, which is the σ̂ estimate.

Sets are stored structure-of-arrays style: one flat int32 array of
member ids plus an offsets array, rather than a list of Python sets —
compact, cache-friendly, and cheap to extend. The inverted index is a
CSR-packed postings table (``node -> ascending set ids``) built lazily
from those arrays — with NumPy when available, via a counting sort
otherwise — and invalidated whenever a world is appended, so membership
queries return flat slices instead of per-node Python buckets and
coverage counts vectorise. Worlds are append-only and derived purely
from their replica index, so a store can **double** its sample size in
place (IMM-style sample-size control) without disturbing the sets
already drawn: growing a store from 32 to 64 worlds yields the same
arrays as sampling 64 worlds up front, which also makes stores safely
shareable across selector calls.

Sampling itself goes through :func:`repro.sketch.kernels.sample_worlds`
— the ``backend`` knob picks the batched kernel (``"numpy"``,
``"python"``, or auto) both for serial rounds and inside pool workers,
and every backend is bit-identical by contract.

The stopping rule is the classic relative-precision test: keep doubling
until the empirical (1 - δ)-confidence half-width of σ̂(A) is at most
ε · max(σ̂(A), 1). Deterministic samplers (DOAM) need exactly one world
and always report sufficient precision.

Dynamic graphs: when the sampler's graph mutates in place
(:meth:`repro.graph.compact.IndexedDiGraph.apply_updates` returns the
touched endpoint ids), :meth:`SketchStore.refresh` resamples **only**
the worlds the mutation could have changed — by default those whose
dependency footprint (see :class:`repro.sketch.rrset.WorldSample`)
intersects the touched set — and re-appends every other world
unchanged. Because worlds are pure functions of their index, the
refreshed arrays are bit-identical to a from-scratch store sampled on
the mutated graph with the same seed.

Because world ``i`` is a pure function of its index, a growth step is
embarrassingly parallel: with ``workers`` configured, each doubling
round fans contiguous index chunks out over a
:class:`repro.exec.pool.ParallelExecutor` (workers rebuild the sampler
from its graph-free payload) and appends the returned
:class:`~repro.sketch.rrset.WorldSample`\\ s **in index order** in the
parent — arrays, inverted index, and ``sketch.*`` metrics come out
bit-identical to a serial store.
"""

from __future__ import annotations

import math
from array import array
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ValidationError
from repro.obs.registry import metrics
from repro.utils.validation import check_fraction, check_positive

__all__ = ["SketchStore"]


def _sampler_worker_setup(graph, payload):
    """Pool worker set-up: rebuild the RR sampler against the shared graph."""
    from repro.sketch.rrset import rebuild_sampler

    return rebuild_sampler(graph, payload["sampler"]), payload.get("backend")


def _sampler_worker_chunk(state, indices):
    """Pool worker task: sample a contiguous chunk of world indices."""
    from repro.sketch.kernels import sample_worlds

    sampler, backend = state
    return sample_worlds(sampler, indices, backend=backend)


class SketchStore:
    """Append-only RR-set store with an inverted node index.

    Args:
        sampler: an object with ``sample_world(index) -> WorldSample``
            and a ``stochastic`` flag (see :mod:`repro.sketch.rrset`).
        workers: worker request for parallel world sampling (``None``/
            ``1`` serial, ``0`` one per CPU). Needs a sampler exposing
            ``worker_payload()``; contents are bit-identical either way.
        share: graph publication mode for the pool (see
            :func:`repro.exec.shm.publish_graph`).
        chunk_timeout: per-chunk pool deadline in seconds (``None``
            waits forever); see ``docs/parallel.md``.
        chunk_retries: deterministic resubmission budget per failed
            chunk (``None`` uses the executor default).
        executor: a shared :class:`~repro.exec.pool.ParallelExecutor`
            to fan doubling rounds out over (its knobs then govern);
            ``None`` lazily builds a store-owned one from the knobs
            above — either way the same warm pool serves every round.
        backend: sketch-kernel backend for world sampling (``"numpy"``,
            ``"python"``, or ``None``/``"auto"`` for the fastest
            available); applied serially and inside pool workers. All
            backends are bit-identical, so this is purely a speed knob.
    """

    __slots__ = (
        "sampler",
        "workers",
        "share",
        "chunk_timeout",
        "chunk_retries",
        "backend",
        "_executor",
        "worlds",
        "_members",
        "_offsets",
        "_roots",
        "_world_of",
        "_sets_per_world",
        "_node_ids",
        "_postings",
        "_world_np",
        "_footprints",
    )

    #: accepted ``rule=`` values of :meth:`stale_worlds` / :meth:`refresh`.
    INVALIDATION_RULES = ("footprint", "members")

    def __init__(
        self,
        sampler,
        workers=None,
        share: str = "auto",
        chunk_timeout=None,
        chunk_retries=None,
        executor=None,
        backend=None,
    ) -> None:
        self.sampler = sampler
        self.workers = workers
        self.share = share
        self.chunk_timeout = chunk_timeout
        self.chunk_retries = chunk_retries
        self.backend = backend
        self._executor = executor
        #: number of worlds sampled so far.
        self.worlds = 0
        self._members = array("i")  # all RR-set members, concatenated
        self._offsets = array("q", [0])  # set i = members[offsets[i]:offsets[i+1]]
        self._roots = array("i")  # bridge end each set was grown from
        self._world_of = array("i")  # world index each set belongs to
        self._sets_per_world = array("i")
        self._node_ids: set = set()  # node ids appearing in any RR set
        # Lazily built CSR postings table: (indptr, set_ids, np module or
        # None). Invalidated whenever the set arrays grow or reset.
        self._postings = None
        self._world_np = None  # numpy copy of _world_of, same lifetime
        # per-world dependency footprint (frozenset of node ids, or None
        # when unknown — e.g. restored from a pre-footprint checkpoint).
        self._footprints: List = []

    # -- growth -----------------------------------------------------------------

    def ensure_worlds(self, count: int) -> "SketchStore":
        """Sample worlds up to ``count`` (no-op when already there)."""
        check_positive(count, "count")
        if not self.sampler.stochastic:
            count = min(count, 1)  # a deterministic sampler has one world
        if count > self.worlds > 0:
            metrics().inc("sketch.store_doublings")
        for world in self._sample_range(range(self.worlds, count)):
            self._append_world(world)
        return self

    def _sample_range(self, indices) -> List:
        """Worlds for ``indices`` in order, via the pool when configured.

        Serial rounds and pool workers both sample through
        :func:`repro.sketch.kernels.sample_worlds` with the store's
        ``backend``, so the batched kernels serve every path. Falls back
        to serial sampling when the round is trivial, the sampler is
        deterministic (one cached world — nothing to fan out), or it
        cannot describe itself for worker-side rebuilding.
        """
        from repro.exec.pool import ParallelExecutor, resolve_workers
        from repro.sketch.kernels import sample_worlds

        workers = (
            self._executor.workers if self._executor is not None
            else self.workers
        )
        worker_count = resolve_workers(workers, len(indices))
        payload_fn = getattr(self.sampler, "worker_payload", None)
        if (
            worker_count <= 1
            or len(indices) < 2
            or payload_fn is None
            or not self.sampler.stochastic
        ):
            return sample_worlds(self.sampler, list(indices), backend=self.backend)
        if self._executor is None:
            self._executor = ParallelExecutor(
                self.workers,
                share=self.share,
                timeout=self.chunk_timeout,
                retries=self.chunk_retries,
            )
        return self._executor.map_items(
            _sampler_worker_setup,
            _sampler_worker_chunk,
            {"sampler": payload_fn(), "backend": self.backend},
            list(indices),
            graph=self.sampler.graph,
        )

    def double(self, minimum: int = 32) -> "SketchStore":
        """IMM-style growth step: at least ``minimum``, else twice the worlds."""
        self.ensure_worlds(max(minimum, 2 * self.worlds))
        return self

    # -- incremental invalidation ------------------------------------------------

    def stale_worlds(
        self, touched: Iterable[int], rule: str = "footprint"
    ) -> List[int]:
        """World indices an edge-update batch could have changed.

        Args:
            touched: endpoint ids of the mutated edges (what
                :meth:`~repro.graph.compact.IndexedDiGraph.apply_updates`
                returns).
            rule: ``"footprint"`` (default, exact) marks a world stale
                when its dependency footprint intersects ``touched`` —
                refreshing under this rule reproduces a from-scratch
                store bit for bit. ``"members"`` only consults the
                inverted member index; it is cheaper but *approximate*
                (a mutated row can change a world without any touched
                node being an RR-set member), so refreshed estimates
                agree only statistically.
        """
        if rule not in self.INVALIDATION_RULES:
            raise ValidationError(
                f"rule must be one of {self.INVALIDATION_RULES}, got {rule!r}"
            )
        touched_set = frozenset(touched)
        if not touched_set or self.worlds == 0:
            return []
        stale = set()
        if rule == "members":
            for node in touched_set:
                for set_id in self.sets_containing(node):
                    stale.add(int(self._world_of[set_id]))
        else:
            for world, footprint in enumerate(self._footprints):
                if footprint is None or footprint & touched_set:
                    stale.add(world)
        return sorted(stale)

    def refresh(
        self, touched: Iterable[int], rule: str = "footprint"
    ) -> Tuple[int, int]:
        """Resample the worlds invalidated by an edge-update batch.

        Worlds are pure functions of their replica index, so resampling
        exactly the stale indices on the (mutated) sampler graph and
        re-appending every fresh world unchanged rebuilds the arrays to
        what a from-scratch store on the mutated graph would hold (the
        ``"footprint"`` rule makes that equality bit-exact). Resampling
        fans out over the configured pool like any growth round.

        Only freshly resampled worlds count toward the ``sketch.*``
        sampling metrics.

        Returns:
            ``(stale_world_count, invalidated_set_count)`` — the number
            of worlds resampled and the number of previously stored RR
            sets they held (what ``serve.rrsets.invalidated`` reports).
        """
        stale = self.stale_worlds(touched, rule)
        forget = getattr(self.sampler, "forget", None)
        if forget is not None:
            forget()  # a cached deterministic world is stale wholesale
        if not stale:
            return 0, 0
        invalidated = sum(self._sets_per_world[world] for world in stale)
        resampled = dict(zip(stale, self._sample_range(stale)))
        from repro.sketch.rrset import WorldSample

        kept: List = []
        for world in range(self.worlds):
            fresh = resampled.get(world)
            if fresh is None:
                lo = sum(self._sets_per_world[:world])
                hi = lo + self._sets_per_world[world]
                rr_sets = [
                    (self._roots[set_id], self.members(set_id))
                    for set_id in range(lo, hi)
                ]
                fresh = WorldSample(
                    world, rr_sets, footprint=self._footprints[world]
                )
                kept.append((fresh, False))
            else:
                kept.append((fresh, True))
        self.worlds = 0
        self._members = array("i")
        self._offsets = array("q", [0])
        self._roots = array("i")
        self._world_of = array("i")
        self._sets_per_world = array("i")
        self._node_ids = set()
        self._postings = None
        self._world_np = None
        self._footprints = []
        for world, counted in kept:
            self._append_world(world, count=counted)
        registry = metrics()
        if registry.enabled:
            registry.counter("sketch.worlds_invalidated").add(len(stale))
            registry.counter("sketch.rrsets_invalidated").add(invalidated)
        return len(stale), invalidated

    def _append_world(self, world, count: bool = True) -> None:
        """Append one world's sets; ``count=False`` skips the sampling
        metrics (used by :meth:`refresh` when re-appending a world that
        was *not* resampled — its sampling was already counted when it
        was first drawn)."""
        registry = metrics()
        track = registry.enabled and count
        footprint = getattr(world, "footprint", None)
        self._footprints.append(
            None if footprint is None else frozenset(footprint)
        )
        packed = getattr(world, "packed", None)
        if packed is not None:
            roots, offsets, members = packed()
            set_count = len(roots)
            base = len(self._members)
            self._roots.extend(roots)
            self._world_of.extend([self.worlds] * set_count)
            self._members.extend(members)
            for position in range(set_count):
                self._offsets.append(base + offsets[position + 1])
                if track:
                    registry.histogram("sketch.rrset_size").observe(
                        offsets[position + 1] - offsets[position]
                    )
            self._node_ids.update(members)
        else:  # duck-typed world: fall back to the tuple view
            set_count = len(world.rr_sets)
            for root, members in world.rr_sets:
                self._roots.append(root)
                self._world_of.append(self.worlds)
                self._members.extend(members)
                self._offsets.append(len(self._members))
                self._node_ids.update(members)
                if track:
                    registry.histogram("sketch.rrset_size").observe(len(members))
        self._postings = None
        self._world_np = None
        self.worlds += 1
        self._sets_per_world.append(set_count)
        if track:
            registry.counter("sketch.worlds_sampled").add(1)
            registry.counter("sketch.rrsets_sampled").add(set_count)
            registry.counter("sketch.rrset_members_stored").add(
                self._offsets[-1] - self._offsets[-1 - set_count]
            )
            registry.set_gauge("sketch.index_nodes", len(self._node_ids))
            registry.set_gauge("sketch.set_count", len(self._roots))

    # -- checkpointing ----------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """JSON-serialisable snapshot of the sampled worlds.

        Captures the flat arrays only — the sampler itself is rebuilt by
        the resuming run from its own configuration, and the inverted
        index is re-derived in :meth:`load_state`. Because worlds are
        pure functions of their index, a restored store is bit-identical
        to one that sampled the same rounds itself.
        """
        return {
            "worlds": self.worlds,
            "members": list(self._members),
            "offsets": list(self._offsets),
            "roots": list(self._roots),
            "world_of": list(self._world_of),
            "sets_per_world": list(self._sets_per_world),
            "footprints": [
                None if footprint is None else sorted(footprint)
                for footprint in self._footprints
            ],
        }

    def load_state(self, state: Dict[str, object]) -> "SketchStore":
        """Restore a :meth:`state_dict` snapshot into this (empty) store.

        Restoration deliberately does **not** replay the ``sketch.*``
        metrics — the interrupted run already counted that sampling
        work; the resumed run only counts what it samples itself.
        """
        if self.worlds or self._roots:
            raise ValidationError(
                "load_state requires an empty store; build a fresh one"
            )
        self.worlds = int(state["worlds"])
        self._members = array("i", (int(v) for v in state["members"]))
        self._offsets = array("q", (int(v) for v in state["offsets"]))
        self._roots = array("i", (int(v) for v in state["roots"]))
        self._world_of = array("i", (int(v) for v in state["world_of"]))
        self._sets_per_world = array(
            "i", (int(v) for v in state["sets_per_world"])
        )
        # pre-footprint checkpoints restore as unknown footprints, which
        # stale_worlds treats conservatively (always stale).
        footprints = state.get("footprints")
        if footprints is None:
            self._footprints = [None] * self.worlds
        else:
            self._footprints = [
                None if footprint is None else frozenset(footprint)
                for footprint in footprints
            ]
        self._node_ids = set(self._members)
        self._postings = None
        self._world_np = None
        return self

    # -- inspection -------------------------------------------------------------

    @property
    def set_count(self) -> int:
        """Total RR sets across all worlds."""
        return len(self._roots)

    @property
    def at_risk_total(self) -> int:
        """Sum over worlds of the number of at-risk bridge ends."""
        return len(self._roots)

    def members(self, set_id: int) -> Tuple[int, ...]:
        """Sorted member ids of one RR set."""
        lo, hi = self._offsets[set_id], self._offsets[set_id + 1]
        return tuple(self._members[lo:hi])

    def root(self, set_id: int) -> int:
        """The bridge end RR set ``set_id`` was grown from."""
        return self._roots[set_id]

    def world_of(self, set_id: int) -> int:
        """The world index RR set ``set_id`` belongs to."""
        return self._world_of[set_id]

    def _node_postings(self):
        """The CSR postings table ``(indptr, set_ids, np_module_or_None)``.

        ``set_ids[indptr[node]:indptr[node + 1]]`` are the ids of the RR
        sets containing ``node``, ascending. Built lazily — vectorized
        with NumPy when importable, by counting sort otherwise — and
        rebuilt from scratch after any append (appends batch, queries
        dominate). The arrays are *copies* of the member storage, so the
        store's own arrays stay free to grow.
        """
        cached = self._postings
        if cached is not None:
            return cached
        try:
            import numpy as np_mod
        except ImportError:
            np_mod = None
        top = (max(self._node_ids) + 1) if self._node_ids else 0
        if np_mod is not None:
            members = np_mod.array(self._members, dtype=np_mod.int32)
            counts = np_mod.diff(np_mod.array(self._offsets, dtype=np_mod.int64))
            set_ids = np_mod.repeat(
                np_mod.arange(len(self._roots), dtype=np_mod.int32), counts
            )
            # Stable sort by node: within one node the original order —
            # and therefore the set ids — stay ascending.
            order = np_mod.argsort(members, kind="stable")
            postings = set_ids[order]
            indptr = np_mod.zeros(top + 1, dtype=np_mod.int64)
            if members.size:
                np_mod.cumsum(
                    np_mod.bincount(members, minlength=top), out=indptr[1:]
                )
            self._postings = (indptr, postings, np_mod)
            return self._postings
        counts_list = [0] * top
        for node in self._members:
            counts_list[node] += 1
        indptr_arr = array("q", [0] * (top + 1))
        for node in range(top):
            indptr_arr[node + 1] = indptr_arr[node] + counts_list[node]
        cursor = list(indptr_arr[:top])
        postings_arr = array("i", bytes(4 * len(self._members)))
        for set_id in range(len(self._roots)):
            for position in range(self._offsets[set_id], self._offsets[set_id + 1]):
                node = self._members[position]
                postings_arr[cursor[node]] = set_id
                cursor[node] += 1
        self._postings = (indptr_arr, postings_arr, None)
        return self._postings

    def sets_containing(self, node: int) -> Sequence[int]:
        """Ids of the RR sets containing ``node``, ascending (empty if none).

        Returns a flat slice of the CSR postings table (a NumPy array or
        machine array depending on availability), suitable for direct
        ``covered[ids]`` masking.
        """
        indptr, postings, _np_mod = self._node_postings()
        if 0 <= node < len(indptr) - 1:
            return postings[indptr[node] : indptr[node + 1]]
        return postings[:0]

    def nodes(self) -> List[int]:
        """All node ids appearing in at least one RR set, ascending."""
        return sorted(self._node_ids)

    # -- estimation -------------------------------------------------------------

    def _covered_set_ids(self, node_ids: Iterable[int]):
        """Distinct covered set ids: NumPy array, or a Python set."""
        indptr, postings, np_mod = self._node_postings()
        if np_mod is None:
            covered = set()
            for node in node_ids:
                if 0 <= node < len(indptr) - 1:
                    covered.update(postings[indptr[node] : indptr[node + 1]])
            return covered
        slices = [
            postings[indptr[node] : indptr[node + 1]]
            for node in node_ids
            if 0 <= node < len(indptr) - 1
        ]
        if not slices:
            return postings[:0]
        return np_mod.unique(np_mod.concatenate(slices))

    def coverage_count(self, node_ids: Iterable[int]) -> int:
        """Number of distinct RR sets intersecting ``node_ids``."""
        return len(self._covered_set_ids(node_ids))

    def per_world_covered(self, node_ids: Iterable[int]) -> List[int]:
        """Per-world count of RR sets intersecting ``node_ids``."""
        covered = self._covered_set_ids(node_ids)
        if isinstance(covered, set):
            counts = [0] * self.worlds
            for set_id in covered:
                counts[self._world_of[set_id]] += 1
            return counts
        np_mod = self._node_postings()[2]
        if self._world_np is None:
            self._world_np = np_mod.array(self._world_of, dtype=np_mod.int32)
        return np_mod.bincount(
            self._world_np[covered], minlength=self.worlds
        ).tolist()

    def sigma(self, node_ids: Iterable[int]) -> float:
        """σ̂: mean covered (= saved) bridge ends per world."""
        if self.worlds == 0:
            raise ValidationError("store holds no worlds; call ensure_worlds first")
        return self.coverage_count(node_ids) / self.worlds

    def sigma_interval(
        self, node_ids: Iterable[int], delta: float = 0.05
    ) -> Tuple[float, float]:
        """``(σ̂, half_width)`` of a (1 - δ)-confidence interval.

        Uses the per-world covered counts' empirical variance with the
        sub-Gaussian critical value ``sqrt(2 ln(1/δ))``. Deterministic
        samplers have zero variance and return half-width 0.
        """
        check_fraction(delta, "delta", exclusive=True)
        samples = self.per_world_covered(node_ids)
        count = len(samples)
        if count == 0:
            raise ValidationError("store holds no worlds; call ensure_worlds first")
        mean = sum(samples) / count
        if count == 1:
            return mean, (0.0 if not self.sampler.stochastic else math.inf)
        variance = sum((value - mean) ** 2 for value in samples) / (count - 1)
        critical = math.sqrt(2.0 * math.log(1.0 / delta))
        return mean, critical * math.sqrt(variance / count)

    def precision_ok(
        self, node_ids: Iterable[int], epsilon: float = 0.1, delta: float = 0.05
    ) -> bool:
        """True when σ̂(node_ids) meets the (ε, δ) relative-precision target.

        The target half-width is ``ε · max(σ̂, 1)`` — relative for sets
        with real influence, with an absolute floor of ε so zero-gain
        sets terminate too.
        """
        check_fraction(epsilon, "epsilon", exclusive=True)
        if not self.sampler.stochastic:
            return self.worlds >= 1
        mean, half_width = self.sigma_interval(node_ids, delta)
        return half_width <= epsilon * max(mean, 1.0)

    def __repr__(self) -> str:
        return (
            f"SketchStore(sampler={self.sampler.name}, worlds={self.worlds}, "
            f"sets={self.set_count}, nodes={len(self._node_ids)})"
        )
