"""Lazy-greedy weighted max coverage over a :class:`SketchStore`.

The selection core shared by :class:`repro.algorithms.ris_greedy.\
RISGreedySelector` and the query service (:mod:`repro.serve`): picking
the node contained in the most not-yet-covered RR sets maximises the σ̂
marginal gain exactly, so the CELF-style lazy heap applies with *exact*
stale bounds — coverage counts are integers, not noisy estimates.

Both problem flavours come through the usual ``budget`` convention:
``budget=k`` stops after ``k`` picks (LCRB); ``budget=None`` keeps
covering until the estimated protected fraction of bridge ends reaches
``alpha`` (LCRB-P), raising :class:`~repro.errors.SelectionError` when
the sketches run dry first.

The pass is a pure function of the store's arrays and its arguments —
no RNG — so two stores with bit-identical arrays yield bit-identical
picks (ties break by ascending node id). That determinism is what the
serve layer's concurrency tests lean on.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Tuple

from repro.errors import SelectionError
from repro.obs.registry import metrics

try:  # pragma: no cover - exercised by the no-NumPy CI job
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

__all__ = ["max_coverage", "protected_fraction"]


def protected_fraction(store, covered_total: int, end_count: int) -> float:
    """Estimated fraction of bridge ends protected at ``covered_total``.

    Per world, ``end_count - at_risk + covered`` ends are safe (never
    reached, or reached but their RR set is covered); averaging over
    worlds gives the sketch estimate of the protected fraction.
    """
    safe = store.worlds * end_count - store.at_risk_total + covered_total
    return safe / (store.worlds * end_count)


def max_coverage(
    store,
    *,
    budget: Optional[int] = None,
    excluded: Iterable[int] = (),
    alpha: Optional[float] = None,
    end_count: Optional[int] = None,
) -> List[int]:
    """One lazy-greedy pass over the store's current sets.

    Args:
        store: a :class:`~repro.sketch.store.SketchStore` with at least
            one sampled world.
        budget: stop after this many picks; ``None`` selects until the
            protected fraction reaches ``alpha`` (which then requires
            ``alpha`` and ``end_count``).
        excluded: node ids never to pick (the rumor seeds).
        alpha: protection target for the budget-free mode.
        end_count: number of bridge ends ``|B|`` (budget-free mode).

    Returns:
        Picked node ids in selection order.

    Raises:
        SelectionError: budget-free mode exhausted every useful node
            below the ``alpha`` target.
    """
    excluded_set = set(excluded)
    covered = bytearray(store.set_count)
    covered_total = 0
    # NumPy view sharing the bytearray's memory: writes through either
    # side are visible to the other, so `covered[postings]` masking and
    # the scalar fallback stay interchangeable mid-pass.
    covered_np = None
    if _np is not None:
        covered_np = _np.frombuffer(covered, dtype=_np.uint8)

    # Heap of (-gain, node); gains are exact set counts, so a lazy
    # re-evaluation that stays on top is provably the argmax. Node-id
    # order breaks ties deterministically.
    heap: List[Tuple[int, int]] = []
    for node in store.nodes():
        if node in excluded_set:
            continue
        count = len(store.sets_containing(node))
        if count:
            heap.append((-count, node))
    heapq.heapify(heap)

    # Coverage-gain queries play the role σ̂ evaluations play in the
    # Monte-Carlo selectors; the initial exact gains count too.
    sigma_evaluations = len(heap)
    queue_hits = 0
    reevaluations = 0

    picked: List[int] = []

    def done() -> bool:
        if budget is not None:
            return len(picked) >= budget
        return protected_fraction(store, covered_total, end_count) >= alpha

    while not done():
        gain = 0
        postings: Iterable[int] = ()
        while heap:
            negative, node = heapq.heappop(heap)
            # Bind the postings once per pop: the recount below and the
            # cover loop after a winning pop reuse the same slice.
            postings = store.sets_containing(node)
            if covered_np is not None and isinstance(postings, _np.ndarray):
                gain = int(len(postings) - covered_np[postings].sum())
            else:
                gain = sum(
                    1 for set_id in postings if not covered[set_id]
                )
            sigma_evaluations += 1
            if not heap or gain >= -heap[0][0]:
                queue_hits += 1
                break  # fresh gain still on top -> true argmax
            reevaluations += 1
            if gain:
                heapq.heappush(heap, (-gain, node))
        else:
            node = None
        if node is None or gain == 0:
            if budget is None:
                raise SelectionError(
                    f"sketches exhausted at protected fraction "
                    f"{protected_fraction(store, covered_total, end_count):.3f}"
                    f" < alpha={alpha}"
                )
            break  # nothing left worth adding; return a short set
        picked.append(node)
        if covered_np is not None and isinstance(postings, _np.ndarray):
            newly = postings[covered_np[postings] == 0]
            covered_np[newly] = 1
            covered_total += int(len(newly))
        else:
            for set_id in postings:
                if not covered[set_id]:
                    covered[set_id] = 1
                    covered_total += 1
    registry = metrics()
    if registry.enabled:
        registry.counter("selector.sigma_evaluations").add(sigma_evaluations)
        registry.counter("selector.marginal_gain_calls").add(sigma_evaluations)
        registry.counter("selector.celf_queue_hits").add(queue_hits)
        registry.counter("selector.celf_reevaluations").add(reevaluations)
    return picked
