"""Reverse-reachable (RR) set samplers for the paper's two semantics.

Reverse Influence Sampling (Borgs et al.; Tong et al., arXiv:1701.02368
for the rumor-blocking variant) turns protector evaluation inside out:
instead of forward-simulating every candidate set, sample random *worlds*
once, extract for each at-risk bridge end the set of nodes that could
have saved it in that world, and score any protector set by how many of
those RR sets it intersects. Coverage of the sampled sets is an unbiased
estimator of σ(A), and maximising coverage is plain weighted max
coverage — submodular, lazily greedifiable, and embarrassingly cheap per
candidate compared to Monte-Carlo simulation.

Two samplers, one per diffusion semantics:

* :class:`OPOAORRSampler` — the OPOAO selection process, proof-style
  (Section V.A.1): each world draws an independent rumor record via
  :func:`repro.diffusion.timestamps.record_cascade` (``G_R``) and one
  *shared* protector choice table (``G_P``): a per-node row of uniform
  out-neighbor picks, one per step, lazily sampled during reverse
  traversal. A node ``u`` belongs to ``RR(v)`` exactly when a protector
  cascade seeded at ``u`` alone would, under that choice table, reach
  ``v`` no later than the rumor does in ``G_R`` (Lemma 2's timestamp
  comparison; P wins ties). Because the whole table is shared, the
  arrival of a protector *set* is the min over its members, so
  ``A ∩ RR(v) ≠ ∅  ⇔  A saves v`` holds world by world.
* :class:`DOAMRRSampler` — DOAM is deterministic, so there is exactly
  one world: the rumor front arrives at ``v`` at its BFS distance
  ``t_R(v)`` from the nearest rumor seed (the fixpoint of
  :mod:`repro.diffusion.arrival`), and ``u`` saves ``v`` iff
  ``d(u → v) <= t_R(v)`` (Theorem 2's coverage criterion). ``RR(v)`` is
  a reverse BFS of depth ``t_R(v)`` — the BBST of ``v``, flattened.

Both samplers derive every random draw from ``rng.replica(index)``, so
world ``i`` is identical no matter when, in what order, or in which
process it is sampled — the property that makes
:class:`repro.sketch.store.SketchStore` incrementally extendable and
parallel-safe.

Each sampled world also carries a **dependency footprint**: the set of
node ids whose adjacency rows the sampling actually read (rumor-reached
nodes, lazily drawn choice rows, every RR-set member, and all bridge
ends). When the graph mutates in place
(:meth:`repro.graph.compact.IndexedDiGraph.apply_updates`), a world
whose footprint avoids every touched endpoint would replay to the exact
same draws and sets on the mutated graph — so the store only resamples
worlds whose footprint intersects the touched set (see
:meth:`repro.sketch.store.SketchStore.refresh`).
"""

from __future__ import annotations

from array import array
from collections import deque
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from repro.diffusion.base import DEFAULT_MAX_HOPS
from repro.diffusion.timestamps import record_cascade
from repro.errors import SeedError, ValidationError
from repro.graph.compact import IndexedDiGraph
from repro.rng import RngStream
from repro.utils.validation import check_positive

__all__ = [
    "WorldSample",
    "OPOAORRSampler",
    "DOAMRRSampler",
    "sampler_for",
    "rebuild_sampler",
    "SKETCH_SEMANTICS",
]

#: semantics names accepted by :func:`sampler_for` (and the CLI).
SKETCH_SEMANTICS = ("opoao", "doam")


class WorldSample:
    """One sampled world: an RR set per bridge end the rumor reaches.

    Sets and footprint are stored CSR-packed in int32/int64 machine
    arrays rather than per-set Python tuples, so a world costs a few
    flat buffers however many sets it holds — and pickles (pool workers
    ship worlds back to the parent; checkpoints embed them) shrink
    accordingly. The ``rr_sets`` / ``footprint`` views below present
    the packed data in the historical tuple shapes.

    Attributes:
        index: the replica index the world was derived from.
        rr_sets: ``(root, members)`` pairs — ``root`` is the at-risk
            bridge end, ``members`` the sorted node ids whose singleton
            protector cascade saves it in this world.
        footprint: sorted node ids whose adjacency rows sampling read
            (``None`` when the producing sampler predates footprints —
            the store then treats the world as always-stale on updates).
    """

    __slots__ = ("index", "_roots", "_offsets", "_members", "_footprint", "_view")

    def __init__(
        self,
        index: int,
        rr_sets: Sequence[Tuple[int, Tuple[int, ...]]],
        footprint: Optional[Sequence[int]] = None,
    ) -> None:
        self.index = index
        roots = array("i")
        offsets = array("q", [0])
        members = array("i")
        for root, set_members in rr_sets:
            roots.append(root)
            members.extend(set_members)
            offsets.append(len(members))
        self._roots = roots
        self._offsets = offsets
        self._members = members
        self._footprint = (
            None if footprint is None else array("i", sorted(footprint))
        )
        self._view: Optional[List[Tuple[int, Tuple[int, ...]]]] = None

    @property
    def rr_sets(self) -> List[Tuple[int, Tuple[int, ...]]]:
        """``(root, members)`` tuples, materialised lazily from the arrays."""
        if self._view is None:
            offsets = self._offsets
            members = self._members
            self._view = [
                (root, tuple(members[offsets[i] : offsets[i + 1]]))
                for i, root in enumerate(self._roots)
            ]
        return self._view

    @property
    def footprint(self) -> Optional[Tuple[int, ...]]:
        """Sorted dependency footprint (``None`` when unknown)."""
        return None if self._footprint is None else tuple(self._footprint)

    def packed(self) -> Tuple[array, array, array]:
        """The raw ``(roots, offsets, members)`` arrays (read-only use)."""
        return self._roots, self._offsets, self._members

    def __getstate__(self):
        return (self.index, self._roots, self._offsets, self._members, self._footprint)

    def __setstate__(self, state) -> None:
        if isinstance(state, tuple) and len(state) == 2:
            # Pre-packing pickle: ({}, {slot: value}) from older runs.
            payload = state[1] or {}
            self.__init__(
                payload["index"],
                payload.get("rr_sets", []),
                footprint=payload.get("footprint"),
            )
            return
        self.index, self._roots, self._offsets, self._members, self._footprint = state
        self._view = None

    def __repr__(self) -> str:
        return f"WorldSample(index={self.index}, rr_sets={len(self._roots)})"


def _check_ids(graph: IndexedDiGraph, ids: Sequence[int], name: str) -> List[int]:
    out = sorted(set(ids))
    for node in out:
        if not isinstance(node, int) or isinstance(node, bool) or not (
            0 <= node < graph.node_count
        ):
            raise SeedError(f"{name} id {node!r} is not a node id")
    return out


class OPOAORRSampler:
    """RR sets under the OPOAO selection-process (timestamp) semantics.

    Args:
        graph: indexed graph.
        rumor_ids: rumor originators (node ids; non-empty).
        bridge_end_ids: the bridge ends ``B`` (node ids).
        steps: selection-step horizon (paper: 31).
        rng: base stream; world ``i`` draws only from ``rng.replica(i)``.
    """

    name = "OPOAO-RR"
    stochastic = True

    def __init__(
        self,
        graph: IndexedDiGraph,
        rumor_ids: Sequence[int],
        bridge_end_ids: Sequence[int],
        steps: int = DEFAULT_MAX_HOPS,
        rng: Optional[RngStream] = None,
    ) -> None:
        self.graph = graph
        self.rumor_ids = _check_ids(graph, rumor_ids, "rumor seed")
        if not self.rumor_ids:
            raise SeedError("rumor seed set must not be empty")
        self.end_ids = _check_ids(graph, bridge_end_ids, "bridge end")
        self.steps = int(check_positive(steps, "steps"))
        self.rng = rng or RngStream(name="opoao-rr")

    def _choice_row(self, world: RngStream, node: int) -> Tuple[int, ...]:
        """The node's out-neighbor pick for every step of this world.

        Drawn from a stream forked off the world by node id, so the row
        is identical regardless of the order reverse traversals touch it.
        """
        neighbors = self.graph.out[node]
        stream = world.fork("choices", node)
        count = len(neighbors)
        return tuple(neighbors[stream.randrange(count)] for _ in range(self.steps))

    def _reverse_reachable(
        self,
        end: int,
        deadline: int,
        rows: Dict[int, Tuple[int, ...]],
        world: RngStream,
    ) -> Tuple[int, ...]:
        """Nodes whose singleton cascade reaches ``end`` by ``deadline``.

        Runs a max-slack Dijkstra backwards from ``end``: ``slack(x)`` is
        the latest step a cascade may *arrive* at ``x`` and still be
        relayed to ``end`` by the deadline. A node belongs to the RR set
        iff its slack is >= 0 (a seed arrives at itself at step 0).
        """
        graph = self.graph
        slack: Dict[int, int] = {end: deadline}
        heap: List[Tuple[int, int]] = [(-deadline, end)]
        while heap:
            negative, node = heappop(heap)
            arrive_by = -negative
            if arrive_by < slack.get(node, -1):
                continue  # stale heap entry
            if arrive_by < 1:
                continue  # cannot relay further: choices happen at steps >= 1
            for tail in graph.inn[node]:
                row = rows.get(tail)
                if row is None:
                    row = self._choice_row(world, tail)
                    rows[tail] = row
                # Latest step t <= arrive_by at which `tail` picks `node`;
                # the cascade must have arrived at `tail` strictly before t.
                candidate = -1
                for step in range(min(arrive_by, self.steps), 0, -1):
                    if row[step - 1] == node:
                        candidate = step - 1
                        break
                if candidate > slack.get(tail, -1):
                    slack[tail] = candidate
                    heappush(heap, (-candidate, tail))
        return tuple(sorted(slack))

    def worker_payload(self) -> Dict[str, object]:
        """Graph-free description a pool worker rebuilds this sampler from.

        Only the base seed matters for reproduction: world ``i`` derives
        everything from ``rng.replica(i)``, so a rebuilt sampler yields
        bit-identical :class:`WorldSample`\\ s for every index.
        """
        return {
            "semantics": "opoao",
            "rumor_ids": list(self.rumor_ids),
            "end_ids": list(self.end_ids),
            "steps": self.steps,
            "seed": self.rng.seed,
        }

    def sample_world(self, index: int) -> WorldSample:
        """Sample world ``index``: one rumor record, one RR set per at-risk end.

        The returned sample's footprint is every node whose rows the
        world read: rumor-reached nodes (their out-rows drive the
        cascade), nodes with a drawn choice row, all RR-set members
        (their in-rows drive the reverse Dijkstra), and every bridge end
        (its in-row feeds the deadline lookup).
        """
        world = self.rng.replica(index)
        rumor = record_cascade(
            self.graph, self.rumor_ids, steps=self.steps, rng=world.fork("rumor")
        )
        rows: Dict[int, Tuple[int, ...]] = {}
        rr_sets: List[Tuple[int, Tuple[int, ...]]] = []
        for end in self.end_ids:
            deadline = rumor.min_in_timestamp(end, self.graph.inn[end])
            if deadline is None:
                continue  # the rumor never arrives; nothing to save
            rr_sets.append((end, self._reverse_reachable(end, deadline, rows, world)))
        footprint = set(rumor.arrival)
        footprint.update(rows)
        footprint.update(self.end_ids)
        for _, members in rr_sets:
            footprint.update(members)
        return WorldSample(index, rr_sets, footprint=sorted(footprint))

    def __repr__(self) -> str:
        return (
            f"OPOAORRSampler(|R|={len(self.rumor_ids)}, |B|={len(self.end_ids)}, "
            f"steps={self.steps})"
        )


class DOAMRRSampler:
    """RR sets under DOAM: the flattened BBST of each at-risk bridge end.

    DOAM consumes no randomness, so every world index yields the same
    sample; the sets are computed once and cached. ``rng`` is accepted
    for interface symmetry and ignored.
    """

    name = "DOAM-RR"
    stochastic = False

    def __init__(
        self,
        graph: IndexedDiGraph,
        rumor_ids: Sequence[int],
        bridge_end_ids: Sequence[int],
        max_hops: int = DEFAULT_MAX_HOPS,
        rng: Optional[RngStream] = None,
    ) -> None:
        self.graph = graph
        self.rumor_ids = _check_ids(graph, rumor_ids, "rumor seed")
        if not self.rumor_ids:
            raise SeedError("rumor seed set must not be empty")
        self.end_ids = _check_ids(graph, bridge_end_ids, "bridge end")
        self.max_hops = int(check_positive(max_hops, "max_hops"))
        self.rng = rng
        self._cached: Optional[Tuple[List, Tuple[int, ...]]] = None

    def _rumor_arrival(self) -> Dict[int, int]:
        """Multi-source BFS hop distance from the nearest rumor seed."""
        distance: Dict[int, int] = {seed: 0 for seed in self.rumor_ids}
        queue = deque(self.rumor_ids)
        while queue:
            node = queue.popleft()
            hops = distance[node]
            if hops >= self.max_hops:
                continue
            for head in self.graph.out[node]:
                if head not in distance:
                    distance[head] = hops + 1
                    queue.append(head)
        return distance

    def _reverse_ball(self, end: int, depth: int) -> Tuple[int, ...]:
        """All nodes within ``depth`` reverse hops of ``end``."""
        distance: Dict[int, int] = {end: 0}
        queue = deque([end])
        while queue:
            node = queue.popleft()
            hops = distance[node]
            if hops >= depth:
                continue
            for tail in self.graph.inn[node]:
                if tail not in distance:
                    distance[tail] = hops + 1
                    queue.append(tail)
        return tuple(sorted(distance))

    def worker_payload(self) -> Dict[str, object]:
        """Graph-free description a pool worker rebuilds this sampler from."""
        return {
            "semantics": "doam",
            "rumor_ids": list(self.rumor_ids),
            "end_ids": list(self.end_ids),
            "steps": self.max_hops,
            "seed": None,
        }

    def forget(self) -> None:
        """Drop the cached world (call after the graph mutates in place)."""
        self._cached = None

    def sample_world(self, index: int) -> WorldSample:
        """The (unique) DOAM world, whatever ``index`` is passed."""
        if self._cached is None:
            arrival = self._rumor_arrival()
            rr_sets = [
                (end, self._reverse_ball(end, arrival[end]))
                for end in self.end_ids
                if end in arrival
            ]
            footprint = set(arrival)
            footprint.update(self.end_ids)
            for _, members in rr_sets:
                footprint.update(members)
            self._cached = (rr_sets, tuple(sorted(footprint)))
        rr_sets, footprint = self._cached
        return WorldSample(index, rr_sets, footprint=footprint)

    def __repr__(self) -> str:
        return (
            f"DOAMRRSampler(|R|={len(self.rumor_ids)}, |B|={len(self.end_ids)}, "
            f"max_hops={self.max_hops})"
        )


def sampler_for(
    semantics: str,
    context,
    steps: int = DEFAULT_MAX_HOPS,
    rng: Optional[RngStream] = None,
):
    """Build the RR sampler for a resolved LCRB instance.

    Args:
        semantics: ``"opoao"`` or ``"doam"``.
        context: a :class:`repro.algorithms.base.SelectionContext`.
        steps: horizon (OPOAO selection steps / DOAM hops).
        rng: base stream (OPOAO only).

    Returns:
        An :class:`OPOAORRSampler` or :class:`DOAMRRSampler` bound to the
        context's indexed graph, rumor seeds, and bridge ends.
    """
    if semantics not in SKETCH_SEMANTICS:
        raise ValidationError(
            f"semantics must be one of {SKETCH_SEMANTICS}, got {semantics!r}"
        )
    graph = context.indexed
    rumor_ids = context.rumor_seed_ids()
    end_ids = context.bridge_end_ids()
    if semantics == "opoao":
        return OPOAORRSampler(graph, rumor_ids, end_ids, steps=steps, rng=rng)
    return DOAMRRSampler(graph, rumor_ids, end_ids, max_hops=steps, rng=rng)


def rebuild_sampler(graph: IndexedDiGraph, payload: Dict[str, object]):
    """Reconstruct a sampler from its :meth:`worker_payload` in a worker.

    The stream *name* is cosmetic (only the seed feeds
    :func:`repro.rng.derive_seed`), so the rebuilt sampler's worlds are
    bit-identical to the original's.
    """
    semantics = payload["semantics"]
    if semantics == "opoao":
        return OPOAORRSampler(
            graph,
            payload["rumor_ids"],
            payload["end_ids"],
            steps=payload["steps"],
            rng=RngStream(payload["seed"], name="opoao-rr"),
        )
    if semantics == "doam":
        return DOAMRRSampler(
            graph,
            payload["rumor_ids"],
            payload["end_ids"],
            max_hops=payload["steps"],
        )
    raise ValidationError(f"unknown sampler semantics {semantics!r}")
