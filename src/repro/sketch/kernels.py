"""Batched RR-set sampling kernels: python / numpy backends, bit-identical.

The per-world samplers in :mod:`repro.sketch.rrset` are pure functions of
their replica index, so a batched kernel that races many worlds over the
graph's CSR arrays can replace them wholesale — provided it reproduces
every draw bit for bit. This module provides that kernel layer, mirroring
the :mod:`repro.kernels` registry the forward simulators got in PR 3:

* ``python`` — the reference backend: a per-world loop over
  ``sampler.sample_world`` (always available, trivially identical);
* ``numpy`` — vectorized batched sampling on CSR arrays;
* ``auto`` — the fastest backend that loads, degrading silently.

**Bit-identity contract.** For every replica index, backends return the
same :class:`~repro.sketch.rrset.WorldSample` — same ``rr_sets`` (roots,
sorted members), same dependency ``footprint`` — as the per-world python
samplers. :class:`repro.sketch.store.SketchStore` therefore produces the
same arrays whichever backend samples, serially or across pool workers,
and :meth:`~repro.sketch.store.SketchStore.refresh` invalidation stays
exact. The differential suite (``tests/sketch/test_sketch_kernels.py``)
enforces the contract property-style.

How the numpy backend reproduces the python draws exactly:

* **MT19937 word-stream replay.** ``random.Random(seed)`` and
  ``numpy.random.RandomState(key)`` share the same Mersenne Twister;
  seeding ``RandomState`` with the seed's little-endian 32-bit words
  reproduces CPython's ``getrandbits(32)`` stream exactly (CPython's
  ``init_by_array`` key). ``randrange(n)`` is then replayed with the
  same rejection sampling CPython uses (top ``n.bit_length()`` bits of
  each word, rejecting values >= n). Multi-word keys only: the rare
  sub-2^32 seed (:func:`repro.rng.derive_seed` emits 63-bit seeds, so
  probability ~2^-31) falls back to ``random.Random`` for that stream.
* **Rumor cascade.** ``record_cascade`` is replayed on a lean
  min-arrival sweep: per step, the sorted snapshot of reached nodes with
  out-neighbors each draws one uniform pick, recording first arrivals
  and the first event step into every node (which is exactly
  ``min_in_timestamp`` at the bridge ends).
* **Choice rows** are drawn lazily, one fork per node, exactly when the
  reverse traversal first touches the node's in-row — so the drawn-row
  set (part of the footprint) matches the python sampler's lazy set.
* **Reverse max-slack search** runs as a bucketed integer Dijkstra over
  an ``ends x nodes`` slack matrix: levels descend from the deadline,
  each level relaxes all (end, node) pairs finalised at that slack in
  one vectorized sweep (pick bitmasks dotted against powers of two;
  the highest permitted set bit recovered through ``frexp``). The
  fixpoint — and therefore membership and footprints — equals the
  per-end heap Dijkstra's.

Deterministic DOAM needs no randomness: the backend vectorizes the
forward BFS and the depth-bounded reverse balls, priming the sampler's
single-world cache so serve/refresh cache semantics are unchanged.
"""

from __future__ import annotations

import hashlib
import random as _stdlib_random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import BackendUnavailableError, KernelError
from repro.rng import derive_seed
from repro.sketch.rrset import DOAMRRSampler, OPOAORRSampler, WorldSample

__all__ = [
    "SKETCH_BACKEND_AUTO",
    "available_sketch_backends",
    "register_sketch_backend",
    "resolve_sketch_backend",
    "sample_worlds",
    "PythonSketchKernel",
    "NumpySketchKernel",
]

#: Resolve to the fastest sketch backend that loads.
SKETCH_BACKEND_AUTO = "auto"

#: Preference order for ``auto`` resolution (fastest first).
_AUTO_ORDER = ("numpy", "python")

#: Seeds below 2^32 are single-word MT keys, which numpy's RandomState
#: initialises differently from CPython — replay those with the stdlib.
_MIN_VECTOR_SEED = 1 << 32

#: Pick bitmasks must stay exactly representable in float64 for the
#: ``frexp`` highest-bit trick; beyond this the kernel defers to python.
_MAX_FREXP_STEPS = 53

#: Slack-matrix budget (ends-per-block x node_count cells).
_BLOCK_CELLS = 4_000_000

#: Graphs at most this many edges also keep plain-list CSR copies for the
#: cascade's tight scalar loop (python list indexing beats ndarray items).
_LIST_CSR_MAX_EDGES = 2_000_000


class PythonSketchKernel:
    """Reference backend: the per-world samplers, one index at a time."""

    name = "python"

    def sample(self, sampler, indices: Sequence[int]) -> List[WorldSample]:
        """Worlds for ``indices`` in order (definitionally bit-identical)."""
        return [sampler.sample_world(int(index)) for index in indices]


def _mt_key(np_mod, seed: int):
    """CPython's ``init_by_array`` key: little-endian 32-bit words."""
    words = []
    value = seed
    while value:
        words.append(value & 0xFFFFFFFF)
        value >>= 32
    return np_mod.array(words or [0], dtype=np_mod.uint32)


class _ReplayStream:
    """Replays ``random.Random(seed).randrange`` draws bit-exactly.

    Wraps one shared ``RandomState`` (re-seeded per stream) whose raw
    byte output is CPython's ``getrandbits(32)`` word stream for
    multi-word seeds; sub-2^32 seeds fall back to the stdlib generator.
    The wrapped state must not be re-seeded elsewhere between this
    stream's construction and its last draw.
    """

    __slots__ = ("_np", "_rs", "_py", "_buf", "_pos")

    def __init__(self, np_mod, rand_state, seed: int) -> None:
        self._np = np_mod
        if seed < _MIN_VECTOR_SEED:
            self._py = _stdlib_random.Random(seed)
            self._rs = None
        else:
            self._py = None
            self._rs = rand_state
            rand_state.seed(_mt_key(np_mod, seed))
        self._buf: List[int] = []
        self._pos = 0

    def randrange(self, n: int) -> int:
        """One ``randrange(n)`` draw, consuming exactly CPython's words."""
        if self._py is not None:
            return self._py.randrange(n)
        shift = 32 - n.bit_length()
        buf, pos = self._buf, self._pos
        while True:
            if pos >= len(buf):
                raw = self._rs.bytes(4 * 1024)
                buf = self._np.frombuffer(raw, dtype="<u4").tolist()
                self._buf = buf
                pos = 0
            value = buf[pos] >> shift
            pos += 1
            if value < n:
                self._pos = pos
                return value

    def randrange_block(self, n: int, count: int):
        """``count`` sequential ``randrange(n)`` draws as an int64 array.

        May consume words past the final accepted draw, so it is only
        valid as the stream's last use (choice rows draw one block and
        discard the stream).
        """
        np_mod = self._np
        if self._py is not None:
            draws = [self._py.randrange(n) for _ in range(count)]
            return np_mod.array(draws, dtype=np_mod.int64)
        shift = np_mod.uint32(32 - n.bit_length())
        pieces = []
        have = 0
        while have < count:
            raw = self._rs.bytes(4 * max(2 * (count - have) + 16, 32))
            values = np_mod.frombuffer(raw, dtype="<u4") >> shift
            accepted = values[values < n]
            pieces.append(accepted)
            have += int(accepted.size)
        block = pieces[0] if len(pieces) == 1 else np_mod.concatenate(pieces)
        return block[:count].astype(np_mod.int64)


class _GraphData:
    """CSR + reverse-CSR arrays for one graph snapshot."""

    __slots__ = (
        "csr_ref",
        "node_count",
        "indptr",
        "indices",
        "out_deg",
        "in_indptr",
        "in_indices",
        "in_deg",
        "in_heads",
        "indptr_list",
        "indices_list",
        "deg_list",
        "shift_list",
    )


class _RowTable:
    """Lazily drawn choice rows, packed node -> row of neighbor picks."""

    __slots__ = ("_np", "table", "position", "count")

    def __init__(self, np_mod, node_count: int, steps: int) -> None:
        self._np = np_mod
        self.table = np_mod.empty((0, steps), dtype=np_mod.int64)
        self.position = np_mod.full(node_count, -1, dtype=np_mod.int64)
        self.count = 0

    def ensure(self, nodes, draw: Callable[[int], Any]) -> None:
        """Draw rows for every node in ``nodes`` that lacks one."""
        np_mod = self._np
        missing = nodes[self.position[nodes] < 0]
        if missing.size == 0:
            return
        needed = self.count + int(missing.size)
        if needed > len(self.table):
            capacity = max(256, 2 * len(self.table))
            while capacity < needed:
                capacity *= 2
            grown = np_mod.empty(
                (capacity, self.table.shape[1]), dtype=np_mod.int64
            )
            grown[: self.count] = self.table[: self.count]
            self.table = grown
        for node in missing.tolist():
            self.table[self.count] = draw(node)
            self.position[node] = self.count
            self.count += 1

    def rows_for(self, tails):
        return self.table[self.position[tails]]

    def drawn_nodes(self):
        return self._np.nonzero(self.position >= 0)[0]


class NumpySketchKernel:
    """Vectorized batched RR sampling on CSR arrays (bit-identical)."""

    name = "numpy"

    def __init__(self) -> None:
        import numpy

        self._np = numpy
        # Keyed by id() of the graph's memoized CSR export; the strong
        # reference inside each entry keeps that id stable, and a mutated
        # graph re-exports a fresh CSR object so stale hits are impossible.
        self._graphs: Dict[int, _GraphData] = {}
        #: list-CSR threshold (attribute so tests can force the array path).
        self.list_csr_max_edges = _LIST_CSR_MAX_EDGES

    # -- graph arrays ------------------------------------------------------------

    def _graph_data(self, graph) -> _GraphData:
        np_mod = self._np
        csr = graph.csr()
        cached = self._graphs.get(id(csr))
        if cached is not None and cached.csr_ref is csr:
            return cached
        data = _GraphData()
        data.csr_ref = csr
        data.indptr = np_mod.asarray(csr.indptr, dtype=np_mod.int64)
        data.indices = np_mod.asarray(csr.indices, dtype=np_mod.int64)
        node_count = len(data.indptr) - 1
        data.node_count = node_count
        data.out_deg = np_mod.diff(data.indptr)
        edge_tails = np_mod.repeat(
            np_mod.arange(node_count, dtype=np_mod.int64), data.out_deg
        )
        order = np_mod.argsort(data.indices, kind="stable")
        data.in_indices = edge_tails[order]
        in_counts = np_mod.bincount(data.indices, minlength=node_count)
        data.in_indptr = np_mod.concatenate(
            (np_mod.zeros(1, dtype=np_mod.int64), np_mod.cumsum(in_counts))
        )
        data.in_deg = np_mod.diff(data.in_indptr)
        # Head node of every reverse-CSR edge position (for mask filling).
        data.in_heads = np_mod.repeat(
            np_mod.arange(node_count, dtype=np_mod.int64), data.in_deg
        )
        if len(data.indices) <= self.list_csr_max_edges:
            data.indptr_list = data.indptr.tolist()
            data.indices_list = data.indices.tolist()
            data.deg_list = data.out_deg.tolist()
            data.shift_list = [
                32 - degree.bit_length() if degree else 32
                for degree in data.deg_list
            ]
        else:
            data.indptr_list = None
            data.indices_list = None
            data.deg_list = None
            data.shift_list = None
        if len(self._graphs) >= 4:  # tiny LRU: serve holds few live graphs
            self._graphs.pop(next(iter(self._graphs)))
        self._graphs[id(csr)] = data
        return data

    @staticmethod
    def _ragged_positions(np_mod, starts, counts, total: int):
        """Flat edge positions of the ragged rows ``[starts, starts+counts)``."""
        offsets = np_mod.cumsum(counts) - counts
        return np_mod.repeat(starts - offsets, counts) + np_mod.arange(total)

    # -- OPOAO -------------------------------------------------------------------

    def _rumor_cascade(self, sampler, data: _GraphData, seed: int, rand_state):
        """Lean replay of :func:`repro.diffusion.timestamps.record_cascade`.

        Only per-node minima matter downstream: the first arrival step
        (which fixes each step's drawing snapshot) and the first event
        step into a node (the min preserved in-timestamp at that node).
        Draw order — sorted snapshot of reached nodes, skipping those
        without out-neighbors — matches the recorder's exactly.
        """
        if data.deg_list is not None and seed >= _MIN_VECTOR_SEED:
            return self._rumor_cascade_fast(sampler, data, seed, rand_state)
        np_mod = self._np
        arrival = np_mod.full(data.node_count, -1, dtype=np_mod.int64)
        first_event = np_mod.full(data.node_count, -1, dtype=np_mod.int64)
        reached = np_mod.array(sampler.rumor_ids, dtype=np_mod.int64)
        arrival[reached] = 0
        stream = _ReplayStream(np_mod, rand_state, seed)
        randrange = stream.randrange
        indptr, indices, out_deg = data.indptr, data.indices, data.out_deg
        for step in range(1, sampler.steps + 1):
            active = reached[
                (out_deg[reached] > 0) & (arrival[reached] < step)
            ]
            if active.size == 0:
                break  # no node can ever draw again
            fresh: List[int] = []
            for node in active.tolist():
                pick = randrange(int(out_deg[node]))
                head = int(indices[int(indptr[node]) + pick])
                if first_event[head] < 0:
                    first_event[head] = step
                if arrival[head] < 0:
                    arrival[head] = step
                    fresh.append(head)
            if fresh:
                reached = np_mod.union1d(
                    reached, np_mod.array(fresh, dtype=np_mod.int64)
                )
        return arrival, first_event

    def _rumor_cascade_fast(self, sampler, data: _GraphData, seed, rand_state):
        """List-CSR cascade sweep with the word rejection loop inlined.

        Identical draw-for-draw to the generic path: every snapshot node
        (sorted, out-degree > 0) consumes ``getrandbits(k)`` words until
        one lands below its degree. Arrival values are write-once and
        always precede the current step, so the drawing snapshot is just
        the sorted reached-so-far set.
        """
        np_mod = self._np
        node_count = data.node_count
        arrival = [-1] * node_count
        first_event = [-1] * node_count
        for node in sampler.rumor_ids:
            arrival[node] = 0
        deg_list, shift_list = data.deg_list, data.shift_list
        indptr_list, indices_list = data.indptr_list, data.indices_list
        rand_state.seed(_mt_key(np_mod, seed))
        buffer: List[int] = []
        cursor = 0
        filled = 0
        active = sorted(
            node for node in sampler.rumor_ids if deg_list[node] > 0
        )
        for step in range(1, sampler.steps + 1):
            if not active:
                break  # no node can ever draw again
            fresh: List[int] = []
            for node in active:
                degree = deg_list[node]
                shift = shift_list[node]
                while True:
                    if cursor >= filled:
                        raw = rand_state.bytes(4 * 4096)
                        buffer = np_mod.frombuffer(raw, dtype="<u4").tolist()
                        cursor = 0
                        filled = len(buffer)
                    pick = buffer[cursor] >> shift
                    cursor += 1
                    if pick < degree:
                        break
                head = indices_list[indptr_list[node] + pick]
                if first_event[head] < 0:
                    first_event[head] = step
                if arrival[head] < 0:
                    arrival[head] = step
                    if deg_list[head] > 0:
                        fresh.append(head)
            if fresh:
                active = sorted(active + fresh)
        return (
            np_mod.array(arrival, dtype=np_mod.int64),
            np_mod.array(first_event, dtype=np_mod.int64),
        )

    def _draw_row(self, sampler, data: _GraphData, rand_state, prefix, node):
        """One node's choice row: out-neighbor picks for every step.

        ``prefix`` is the shared sha256 state of
        ``derive_seed(world_seed, "choices", ...)`` up to the node part,
        so per-row seed derivation is one hash copy + finalise.
        """
        np_mod = self._np
        hasher = prefix.copy()
        hasher.update(b"/%d" % node)
        seed = (
            int.from_bytes(hasher.digest()[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF
        )
        steps = sampler.steps
        degree = int(data.out_deg[node])
        if seed < _MIN_VECTOR_SEED:  # single-word MT key: replay via stdlib
            rng = _stdlib_random.Random(seed)
            picks = [rng.randrange(degree) for _ in range(steps)]
        else:
            rand_state.seed(_mt_key(np_mod, seed))
            raw = rand_state.bytes(4 * (2 * steps + 16))
            words = np_mod.frombuffer(raw, dtype="<u4").tolist()
            shift = 32 - degree.bit_length()
            picks = []
            pos = 0
            while len(picks) < steps:
                if pos >= len(words):
                    raw = rand_state.bytes(4 * 64)
                    words = np_mod.frombuffer(raw, dtype="<u4").tolist()
                    pos = 0
                value = words[pos] >> shift
                pos += 1
                if value < degree:
                    picks.append(value)
        if data.indices_list is not None:
            base = data.indptr_list[node]
            return [data.indices_list[base + pick] for pick in picks]
        base = int(data.indptr[node])
        return data.indices[np_mod.array(picks, dtype=np_mod.int64) + base]

    def _relax_block(
        self,
        data: _GraphData,
        steps: int,
        block: List[Tuple[int, int]],
        row_table: _RowTable,
        draw: Callable[[int], Any],
        edge_masks,
        edge_done,
    ):
        """Bucketed integer Dijkstra over the block's slack matrix.

        ``S[e, x]`` is the latest arrival step at ``x`` that still relays
        to the block's ``e``-th end by its deadline. Levels descend, so
        each (end, node) pair is expanded exactly once, at its final
        slack — matching the per-end heap Dijkstra's pop set, and in
        particular drawing choice rows for exactly the same tails.

        ``edge_masks``/``edge_done`` cache the pick bitmask per
        reverse-CSR edge position across ends and blocks of one world
        (the mask depends only on the tail's row and the head), so each
        edge's row comparison runs once per world, not once per end.
        """
        np_mod = self._np
        node_count = data.node_count
        slack = np_mod.full((len(block), node_count), -1, dtype=np_mod.int64)
        flat = slack.ravel()
        top = max(deadline for _end, deadline in block)
        buckets: List[List[Any]] = [[] for _ in range(top + 1)]
        for position, (end, deadline) in enumerate(block):
            slack[position, end] = deadline
            buckets[deadline].append(
                np_mod.array([position * node_count + end], dtype=np_mod.int64)
            )
        pow2 = np_mod.left_shift(
            np_mod.int64(1), np_mod.arange(steps, dtype=np_mod.int64)
        )
        in_indptr, in_indices, in_deg = (
            data.in_indptr,
            data.in_indices,
            data.in_deg,
        )
        for level in range(top, 0, -1):
            entries = buckets[level]
            if not entries:
                continue
            keys = entries[0] if len(entries) == 1 else np_mod.concatenate(entries)
            keys = keys[flat[keys] == level]  # drop stale (improved) pairs
            if keys.size == 0:
                continue
            keys = np_mod.unique(keys)
            nodes = keys % node_count
            counts = in_deg[nodes]
            total = int(counts.sum())
            if total == 0:
                continue
            positions = self._ragged_positions(
                np_mod, in_indptr[nodes], counts, total
            )
            tails = in_indices[positions]
            fresh = positions[~edge_done[positions]]
            if fresh.size:
                fresh = np_mod.unique(fresh)
                fresh_tails = in_indices[fresh]
                row_table.ensure(np_mod.unique(fresh_tails), draw)
                rows = row_table.rows_for(fresh_tails)
                # Bit t-1 set <=> the tail picks this head at step t.
                edge_masks[fresh] = (
                    (rows == data.in_heads[fresh][:, None]) * pow2
                ).sum(axis=1)
                edge_done[fresh] = True
            end_base = np_mod.repeat(keys - nodes, counts)  # end row * n
            # The highest set bit at or below min(level, steps) is the
            # latest usable pick; its index is the candidate slack.
            allowed = edge_masks[positions] & ((1 << min(level, steps)) - 1)
            _mant, exponents = np_mod.frexp(allowed.astype(np_mod.float64))
            candidates = exponents.astype(np_mod.int64) - 1
            targets = end_base + tails
            improved = candidates > flat[targets]
            if not improved.any():
                continue
            targets = targets[improved]
            np_mod.maximum.at(flat, targets, candidates[improved])
            final = flat[targets]
            for value in np_mod.unique(final).tolist():
                buckets[value].append(targets[final == value])
        return slack

    def _opoao_world(
        self, sampler, data: _GraphData, index: int, rand_state
    ) -> WorldSample:
        np_mod = self._np
        world_seed = derive_seed(sampler.rng.seed, "replica", index)
        arrival, first_event = self._rumor_cascade(
            sampler, data, derive_seed(world_seed, "rumor"), rand_state
        )
        at_risk = [
            (end, int(first_event[end]))
            for end in sampler.end_ids
            if first_event[end] >= 0
        ]
        row_table = _RowTable(np_mod, data.node_count, sampler.steps)
        # sha256 state of derive_seed(world_seed, "choices", <node>) up to
        # the node component; _draw_row finalises a copy per node.
        prefix = hashlib.sha256(
            str(world_seed).encode("ascii") + b"/'choices'"
        )

        def draw(node: int):
            return self._draw_row(sampler, data, rand_state, prefix, node)

        rr_sets: List[Tuple[int, Tuple[int, ...]]] = []
        if at_risk:
            edge_count = len(data.in_indices)
            edge_masks = np_mod.zeros(edge_count, dtype=np_mod.int64)
            edge_done = np_mod.zeros(edge_count, dtype=bool)
            block_size = max(1, _BLOCK_CELLS // max(data.node_count, 1))
            for start in range(0, len(at_risk), block_size):
                block = at_risk[start : start + block_size]
                slack = self._relax_block(
                    data,
                    sampler.steps,
                    block,
                    row_table,
                    draw,
                    edge_masks,
                    edge_done,
                )
                for position, (end, _deadline) in enumerate(block):
                    members = np_mod.nonzero(slack[position] >= 0)[0]
                    rr_sets.append((end, tuple(members.tolist())))
        footprint = set(np_mod.nonzero(arrival >= 0)[0].tolist())
        footprint.update(row_table.drawn_nodes().tolist())
        footprint.update(sampler.end_ids)
        for _end, members in rr_sets:
            footprint.update(members)
        return WorldSample(index, rr_sets, footprint=sorted(footprint))

    # -- DOAM --------------------------------------------------------------------

    def _doam_cached(self, sampler) -> Tuple[List, Tuple[int, ...]]:
        """The single DOAM world's ``(rr_sets, footprint)`` payload."""
        np_mod = self._np
        data = self._graph_data(sampler.graph)
        distance = np_mod.full(data.node_count, -1, dtype=np_mod.int64)
        frontier = np_mod.array(sampler.rumor_ids, dtype=np_mod.int64)
        distance[frontier] = 0
        for hop in range(sampler.max_hops):
            counts = data.out_deg[frontier]
            total = int(counts.sum())
            if total == 0:
                break
            positions = self._ragged_positions(
                np_mod, data.indptr[frontier], counts, total
            )
            heads = np_mod.unique(data.indices[positions])
            heads = heads[distance[heads] < 0]
            if heads.size == 0:
                break
            distance[heads] = hop + 1
            frontier = heads
        stamp = np_mod.full(data.node_count, -1, dtype=np_mod.int64)
        rr_sets: List[Tuple[int, Tuple[int, ...]]] = []
        for mark, end in enumerate(sampler.end_ids):
            if distance[end] < 0:
                continue  # the rumor never arrives; nothing to save
            members = self._reverse_ball(
                data, stamp, mark, end, int(distance[end])
            )
            rr_sets.append((end, tuple(members)))
        footprint = set(np_mod.nonzero(distance >= 0)[0].tolist())
        footprint.update(sampler.end_ids)
        for _end, members in rr_sets:
            footprint.update(members)
        return rr_sets, tuple(sorted(footprint))

    def _reverse_ball(
        self, data: _GraphData, stamp, mark: int, end: int, depth: int
    ) -> List[int]:
        """Sorted node ids within ``depth`` reverse hops of ``end``."""
        np_mod = self._np
        stamp[end] = mark
        layers = [np_mod.array([end], dtype=np_mod.int64)]
        frontier = layers[0]
        for _hop in range(depth):
            counts = data.in_deg[frontier]
            total = int(counts.sum())
            if total == 0:
                break
            positions = self._ragged_positions(
                np_mod, data.in_indptr[frontier], counts, total
            )
            tails = np_mod.unique(data.in_indices[positions])
            tails = tails[stamp[tails] != mark]
            if tails.size == 0:
                break
            stamp[tails] = mark
            layers.append(tails)
            frontier = tails
        members = np_mod.concatenate(layers)
        members.sort()
        return members.tolist()

    # -- dispatch ----------------------------------------------------------------

    def sample(self, sampler, indices: Sequence[int]) -> List[WorldSample]:
        """Worlds for ``indices`` in order, bit-identical to python.

        Unknown sampler types — and OPOAO horizons past the float64-exact
        bitmask range — defer to the per-world reference path.
        """
        index_list = [int(index) for index in indices]
        if isinstance(sampler, DOAMRRSampler):
            if sampler._cached is None:
                sampler._cached = self._doam_cached(sampler)
            return [sampler.sample_world(index) for index in index_list]
        if (
            isinstance(sampler, OPOAORRSampler)
            and sampler.steps <= _MAX_FREXP_STEPS
        ):
            data = self._graph_data(sampler.graph)
            rand_state = self._np.random.RandomState()
            return [
                self._opoao_world(sampler, data, index, rand_state)
                for index in index_list
            ]
        return [sampler.sample_world(index) for index in index_list]


# -- registry --------------------------------------------------------------------

_FACTORIES: Dict[str, Callable[[], Any]] = {}
_INSTANCES: Dict[str, Any] = {}


def register_sketch_backend(name: str, factory: Callable[[], Any]) -> None:
    """Register (or replace) a sketch-kernel factory under ``name``."""
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


register_sketch_backend("python", PythonSketchKernel)
register_sketch_backend("numpy", NumpySketchKernel)


def resolve_sketch_backend(name: Optional[str] = SKETCH_BACKEND_AUTO):
    """The sketch kernel registered under ``name`` (``None`` == ``"auto"``).

    Raises:
        BackendUnavailableError: the backend exists but its dependency
            is missing (never for ``"auto"``, which falls back).
        KernelError: no backend of that name exists.
    """
    if name is None or name == SKETCH_BACKEND_AUTO:
        for candidate in _AUTO_ORDER:
            try:
                return resolve_sketch_backend(candidate)
            except BackendUnavailableError:
                continue
        raise KernelError("no sketch backend could be loaded")  # unreachable
    cached = _INSTANCES.get(name)
    if cached is not None:
        return cached
    factory = _FACTORIES.get(name)
    if factory is None:
        raise KernelError(
            f"unknown sketch backend {name!r}; registered: {sorted(_FACTORIES)}"
        )
    try:
        instance = factory()
    except ImportError as error:
        raise BackendUnavailableError(
            f"sketch backend {name!r} needs an optional dependency "
            f"({error}); install the 'perf' extra: pip install repro-lcrb[perf]"
        ) from error
    _INSTANCES[name] = instance
    return instance


def available_sketch_backends() -> List[str]:
    """Names of sketch backends that load here, in registration order."""
    names: List[str] = []
    for name in _FACTORIES:
        try:
            resolve_sketch_backend(name)
        except BackendUnavailableError:
            continue
        names.append(name)
    return names


def sample_worlds(
    sampler, indices: Sequence[int], backend: Optional[str] = None
) -> List[WorldSample]:
    """Sample ``indices`` through the named (or auto) sketch backend."""
    return resolve_sketch_backend(backend).sample(sampler, list(indices))
