"""RR-sketch σ estimator, drop-in compatible with the Monte-Carlo seam.

:class:`SketchSigmaEstimator` exposes the same surface as
:class:`repro.algorithms.greedy.SigmaEstimator` and
:class:`repro.algorithms.sigma_timestamp.TimestampSigmaEstimator` —
``sigma(protectors)``, ``protected_fraction(protectors)``, and an
``evaluations`` counter — so anything written against that seam (greedy
loops, ablation benches, reports) can swap in sketches unchanged.

The crucial cost difference: the Monte-Carlo estimators re-simulate
diffusion for **every** candidate set, while this one samples worlds
**once** into a :class:`repro.sketch.store.SketchStore` and answers each
σ̂ query with an inverted-index coverage count. Evaluations after the
first are near-free, which is what makes sketch-greedy selection fast.

Under DOAM the estimate is exact (one deterministic world). Under OPOAO
it is an unbiased estimate of the submodularity proof's timestamped
``(G_R, G_P)`` construction (Section V.A.1) — the same quantity
:class:`TimestampSigmaEstimator` measures — which tracks the interacting
simulation closely on community-structured instances (see
``docs/sketch.md`` and ``tests/properties/test_sketch_unbiased.py``).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.algorithms.base import SelectionContext
from repro.diffusion.base import DEFAULT_MAX_HOPS
from repro.errors import SelectionError
from repro.graph.digraph import Node
from repro.obs.registry import metrics
from repro.rng import RngStream
from repro.sketch.rrset import sampler_for
from repro.sketch.store import SketchStore
from repro.utils.validation import check_fraction, check_positive

__all__ = ["SketchSigmaEstimator"]


class SketchSigmaEstimator:
    """σ̂(A) via RR-set coverage over a (possibly shared) sketch store.

    Args:
        context: the LCRB instance.
        semantics: ``"opoao"`` or ``"doam"``.
        worlds: sketch sample size (deterministic semantics clamp to 1).
        steps: diffusion horizon per world (paper: 31).
        epsilon: optional relative-precision target; when given together
            with ``delta``, each σ̂ query doubles the store until the
            (ε, δ) stopping rule is met (capped at ``max_worlds``).
        delta: confidence parameter for the stopping rule.
        max_worlds: hard cap for adaptive growth.
        rng: base stream for world sampling.
        store: pre-built :class:`SketchStore` to reuse (its sampler wins
            over ``semantics``/``steps``/``rng``); sharing one store
            across estimators amortises sampling entirely.
    """

    def __init__(
        self,
        context: SelectionContext,
        semantics: str = "opoao",
        worlds: int = 128,
        steps: int = DEFAULT_MAX_HOPS,
        epsilon: Optional[float] = None,
        delta: float = 0.05,
        max_worlds: int = 4096,
        rng: Optional[RngStream] = None,
        store: Optional[SketchStore] = None,
    ) -> None:
        self.context = context
        self.worlds = int(check_positive(worlds, "worlds"))
        if epsilon is not None:
            epsilon = check_fraction(epsilon, "epsilon", exclusive=True)
        self.epsilon = epsilon
        self.delta = check_fraction(delta, "delta", exclusive=True)
        self.max_worlds = int(check_positive(max_worlds, "max_worlds"))
        if store is None:
            sampler = sampler_for(
                semantics, context, steps=steps, rng=rng or RngStream(name="sketch")
            )
            store = SketchStore(sampler)
        self.store = store
        self._rumor_ids = frozenset(context.rumor_seed_ids())
        self._end_count = len(context.bridge_end_ids())
        #: σ̂ calls made, mirroring the Monte-Carlo estimators' counter.
        self.evaluations = 0

    def _resolve(self, protectors: Iterable[Node]) -> List[int]:
        ids = self.context.indexed.indices(dict.fromkeys(protectors))
        overlap = set(ids) & self._rumor_ids
        if overlap:
            raise SelectionError(
                f"protectors overlap rumor seeds: {sorted(overlap)[:5]}"
            )
        return ids

    def _ensure_sampled(self, ids: List[int]) -> None:
        self.store.ensure_worlds(self.worlds)
        if self.epsilon is None or not self.store.sampler.stochastic:
            return
        while (
            not self.store.precision_ok(ids, self.epsilon, self.delta)
            and self.store.worlds < self.max_worlds
        ):
            self.store.ensure_worlds(min(self.max_worlds, 2 * self.store.worlds))

    def sigma(self, protectors: Iterable[Node]) -> float:
        """Expected saved bridge ends |PB(A)|, by RR-set coverage."""
        ids = self._resolve(protectors)
        self.evaluations += 1
        metrics().inc("selector.sigma_evaluations")
        if not ids:
            self.store.ensure_worlds(self.worlds)
            return 0.0
        self._ensure_sampled(ids)
        return self.store.sigma(ids)

    def protected_fraction(self, protectors: Iterable[Node]) -> float:
        """Mean fraction of bridge ends the rumor does not take.

        Per world: ends never reached by the rumor are safe for free,
        at-risk ends are safe iff covered — Definition 2's protection
        level, estimated from the same sketches as :meth:`sigma`.
        """
        if self._end_count == 0:
            return 1.0
        ids = self._resolve(protectors)
        self.evaluations += 1
        metrics().inc("selector.sigma_evaluations")
        self._ensure_sampled(ids)
        store = self.store
        safe = store.worlds * self._end_count - store.at_risk_total
        safe += store.coverage_count(ids)
        return safe / (store.worlds * self._end_count)

    def __repr__(self) -> str:
        return (
            f"SketchSigmaEstimator(sampler={self.store.sampler.name}, "
            f"worlds={self.store.worlds}, |B|={self._end_count})"
        )
