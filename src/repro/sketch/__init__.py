"""RR-set sketch engine: sampling-based σ estimation for rumor blocking.

The Monte-Carlo estimators in :mod:`repro.algorithms` pay a full
diffusion simulation per candidate evaluation; this package replaces
that with Reverse Influence Sampling (Tong et al., arXiv:1701.02368
brought the technique to rumor blocking): sample random worlds once,
keep one reverse-reachable (RR) set per at-risk bridge end, and score
any protector set by sketch coverage. Three layers:

* :mod:`repro.sketch.rrset` — samplers producing the RR sets under the
  paper's two semantics (OPOAO timestamp process, DOAM arrival times).
* :mod:`repro.sketch.kernels` — batched sampling kernels racing many
  worlds on CSR arrays (python / numpy backends, bit-identical).
* :mod:`repro.sketch.store` — :class:`SketchStore`: flat-array set
  storage, inverted node index, incremental doubling with an (ε, δ)
  stopping rule, and footprint-based incremental invalidation
  (:meth:`SketchStore.refresh`) for dynamic graphs.
* :mod:`repro.sketch.coverage` — :func:`max_coverage`, the lazy-greedy
  (CELF) selection core shared by the batch selector and the query
  service.
* :mod:`repro.sketch.estimator` — :class:`SketchSigmaEstimator`, a
  drop-in for the Monte-Carlo σ estimator seam.

The selector built on top lives in :mod:`repro.algorithms.ris_greedy`;
the long-running query service in :mod:`repro.serve`.
"""

from repro.sketch.coverage import max_coverage, protected_fraction
from repro.sketch.estimator import SketchSigmaEstimator
from repro.sketch.kernels import (
    available_sketch_backends,
    resolve_sketch_backend,
    sample_worlds,
)
from repro.sketch.rrset import (
    SKETCH_SEMANTICS,
    DOAMRRSampler,
    OPOAORRSampler,
    WorldSample,
    sampler_for,
)
from repro.sketch.store import SketchStore

__all__ = [
    "SKETCH_SEMANTICS",
    "WorldSample",
    "OPOAORRSampler",
    "DOAMRRSampler",
    "sampler_for",
    "SketchStore",
    "SketchSigmaEstimator",
    "max_coverage",
    "protected_fraction",
    "available_sketch_backends",
    "resolve_sketch_backend",
    "sample_worlds",
]
