"""Backend-shared kernel infrastructure.

A kernel backend runs **B diffusion worlds at once** over one graph: it
consumes a :class:`~repro.kernels.worlds.WorldBatch` (the entire
randomness of every world, pre-sampled) plus one seed configuration and
returns a :class:`BatchOutcome` — final per-world node states and the
per-hop cumulative activation series the simulation aggregate needs.

:class:`KernelBackend` is the template: :meth:`KernelBackend.run_worlds`
validates inputs, times the run (``time.kernel``), and reports the obs
counters (``kernel.worlds``, ``kernel.batches``, ``kernel.hops``,
``kernel.activations``, histogram ``kernel.batch_worlds``); concrete
backends implement only :meth:`KernelBackend._run` (and may override
:meth:`KernelBackend.sample_worlds` with a faster *native* sampler).
"""

from __future__ import annotations

import abc
from typing import FrozenSet, Iterable, List, Optional, Sequence

from repro.diffusion.base import (
    DEFAULT_MAX_HOPS,
    INFECTED,
    CascadeSet,
)
from repro.graph.compact import IndexedDiGraph
from repro.kernels.spec import KernelSpec
from repro.kernels.worlds import WorldBatch, sample_shared_worlds
from repro.obs.registry import metrics
from repro.utils.validation import check_positive

__all__ = ["BatchOutcome", "KernelBackend"]


class BatchOutcome:
    """Final states and per-hop series of a batched kernel run.

    Attributes:
        kind: model kind that produced the batch.
        batch: number of worlds.
        node_count: nodes per world.
        states: per-world final node states; ``states[b][v]`` is INACTIVE
            or ``cascade + 1`` (INFECTED/PROTECTED for K=2).
            Backend-native storage (nested lists or a NumPy ``int8``
            matrix) — use the accessors, which normalise to plain Python
            values.
        cascade_hops: one hop-major plane per cascade;
            ``cascade_hops[k][h][b]`` is world ``b``'s total cascade-``k``
            nodes after hop ``h`` (hop 0 = seeds). The series ends at the
            last hop *any* world was still spreading.
        infected_hops: ``cascade_hops[0]`` — the rumor plane.
        protected_hops: all positive campaigns summed; for K=2 this is
            literally ``cascade_hops[1]``.
    """

    __slots__ = (
        "kind",
        "batch",
        "node_count",
        "states",
        "cascade_hops",
        "infected_hops",
        "protected_hops",
    )

    def __init__(
        self,
        kind: str,
        node_count: int,
        states: Sequence[Sequence[int]],
        infected_hops: Optional[Sequence[Sequence[int]]] = None,
        protected_hops: Optional[Sequence[Sequence[int]]] = None,
        cascade_hops: Optional[Sequence[Sequence[Sequence[int]]]] = None,
    ) -> None:
        self.kind = kind
        self.node_count = int(node_count)
        self.states = states
        self.batch = len(states)
        if cascade_hops is None:
            if infected_hops is None or protected_hops is None:
                raise ValueError(
                    "BatchOutcome needs cascade_hops or both two-cascade planes"
                )
            cascade_hops = (infected_hops, protected_hops)
        self.cascade_hops = list(cascade_hops)
        self.infected_hops = self.cascade_hops[0]
        if len(self.cascade_hops) == 2:
            self.protected_hops = self.cascade_hops[1]
        else:
            # K > 2: the compat "protected" plane sums every positive
            # campaign (cold path; scenarios read cascade_hops directly).
            self.protected_hops = [
                [
                    int(sum(values))
                    for values in zip(
                        *(plane[hop] for plane in self.cascade_hops[1:])
                    )
                ]
                for hop in range(len(self.cascade_hops[0]))
            ]

    @property
    def hops(self) -> int:
        """Hops actually executed (series length minus the seed entry)."""
        return len(self.infected_hops) - 1

    def infected_at(self, world: int, hop: int) -> int:
        """World ``world``'s cumulative infected count at ``hop`` (clamped)."""
        return int(self.infected_hops[min(hop, self.hops)][world])

    def protected_at(self, world: int, hop: int) -> int:
        """World ``world``'s cumulative protected count at ``hop`` (clamped)."""
        return int(self.protected_hops[min(hop, self.hops)][world])

    def final_infected(self, world: int) -> int:
        """World ``world``'s final infected count."""
        return int(self.infected_hops[-1][world])

    def final_protected(self, world: int) -> int:
        """World ``world``'s final protected count."""
        return int(self.protected_hops[-1][world])

    def cascade_at(self, world: int, cascade: int, hop: int) -> int:
        """World ``world``'s cumulative cascade-``cascade`` count at ``hop``."""
        plane = self.cascade_hops[cascade]
        return int(plane[min(hop, len(plane) - 1)][world])

    def final_cascade(self, world: int, cascade: int) -> int:
        """World ``world``'s final cascade-``cascade`` count."""
        return int(self.cascade_hops[cascade][-1][world])

    def state_of(self, world: int, node_id: int) -> int:
        """Final state of one node in one world, as a plain int."""
        return int(self.states[world][node_id])

    def infected_members(
        self, world: int, node_ids: Iterable[int]
    ) -> FrozenSet[int]:
        """Which of ``node_ids`` ended INFECTED in ``world``."""
        row = self.states[world]
        return frozenset(node for node in node_ids if int(row[node]) == INFECTED)

    def cascade_members(
        self, world: int, cascade: int, node_ids: Iterable[int]
    ) -> FrozenSet[int]:
        """Which of ``node_ids`` cascade ``cascade`` claimed in ``world``."""
        row = self.states[world]
        wanted = cascade + 1
        return frozenset(node for node in node_ids if int(row[node]) == wanted)

    def states_row(self, world: int) -> List[int]:
        """One world's final states as a plain list of ints."""
        return [int(state) for state in self.states[world]]

    def total_activations(self) -> int:
        """Infected + protected totals summed over all worlds."""
        return int(
            sum(self.infected_hops[-1]) + sum(self.protected_hops[-1])
        )

    def __repr__(self) -> str:
        return (
            f"BatchOutcome(kind={self.kind!r}, batch={self.batch}, "
            f"nodes={self.node_count}, hops={self.hops})"
        )


class KernelBackend(abc.ABC):
    """A batched diffusion engine.

    Concrete backends implement :meth:`_run` — the hop loop consuming a
    sampled :class:`WorldBatch` — and inherit validation, timing, and obs
    reporting from :meth:`run_worlds`. Two backends given the *same*
    world batch must return bit-identical outcomes; that contract is what
    ``tests/kernels/test_backend_equivalence.py`` enforces.
    """

    #: registry key (``"python"``, ``"numpy"``).
    name: str = "abstract"

    def sample_worlds(
        self,
        graph: IndexedDiGraph,
        spec: KernelSpec,
        batch: int,
        max_hops: int = DEFAULT_MAX_HOPS,
        seed: int = 0,
    ) -> WorldBatch:
        """Sample a world batch this backend can run.

        The base implementation uses the backend-agnostic shared sampler
        (:func:`~repro.kernels.worlds.sample_shared_worlds`), so batches
        are portable across backends; fast backends may override this with
        a native sampler that is only *statistically* equivalent.
        """
        return sample_shared_worlds(graph.csr(), spec, batch, max_hops, seed)

    def run_worlds(
        self,
        graph: IndexedDiGraph,
        spec: KernelSpec,
        worlds: WorldBatch,
        seeds: CascadeSet,
        max_hops: int = DEFAULT_MAX_HOPS,
    ) -> BatchOutcome:
        """Run every world in ``worlds`` under one seed configuration.

        Args:
            graph: the indexed graph (backends read its CSR snapshot).
            spec: which model semantics to race.
            worlds: pre-sampled randomness; must match ``spec.kind`` and
                cover ``max_hops``.
            seeds: validated cascade seed ids (``SeedSets`` for the
                two-cascade case, any :class:`CascadeSet` for K > 2).
            max_hops: horizon per world.

        Returns:
            The :class:`BatchOutcome` over all ``worlds.batch`` worlds.
        """
        check_positive(max_hops, "max_hops")
        seeds.validate_against(graph)
        worlds.check_run(spec.kind, max_hops)
        registry = metrics()
        with registry.timer("time.kernel"):
            outcome = self._run(graph, spec, worlds, seeds, max_hops)
        if registry.enabled:
            registry.counter("kernel.batches").add(1)
            registry.counter("kernel.worlds").add(outcome.batch)
            registry.counter("kernel.hops").add(outcome.hops)
            registry.counter("kernel.activations").add(
                outcome.total_activations()
            )
            registry.histogram("kernel.batch_worlds").observe(outcome.batch)
        return outcome

    @abc.abstractmethod
    def _run(
        self,
        graph: IndexedDiGraph,
        spec: KernelSpec,
        worlds: WorldBatch,
        seeds: CascadeSet,
        max_hops: int,
    ) -> BatchOutcome:
        """Race the cascades through every world (inputs pre-validated)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def seeded_counts(seeds: CascadeSet, batch: int) -> tuple:
    """Hop-0 series entries shared by all backends: seed counts per world."""
    infected0 = [len(seeds.cascades[0])] * batch
    protected0 = [sum(len(c) for c in seeds.cascades[1:])] * batch
    return infected0, protected0


def seeded_states(node_count: int, seeds: CascadeSet) -> List[int]:
    """One world's initial state row (cascade ``k`` seeds -> state ``k+1``)."""
    states = [0] * node_count
    for index, cascade in enumerate(seeds.cascades):
        state = index + 1
        for node in cascade:
            states[node] = state
    return states
