"""Batched σ(A) estimation on top of the kernel backends.

Drop-in peer of :class:`repro.algorithms.greedy.SigmaEstimator` with the
same coupled common-random-numbers semantics, but the coupling is a
pre-sampled :class:`~repro.kernels.worlds.WorldBatch` instead of replica
RNG streams: the worlds are sampled **once**, lazily, and every σ̂
evaluation — baseline and every candidate set — replays the same batch
through one kernel call. Greedy/CELF then spend one vectorized sweep per
candidate instead of ``runs`` Python simulations, which is where the
sigma-throughput acceptance number comes from.

Deterministic models (DOAM) collapse to a single world, making σ̂ exact.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Union

from repro.algorithms.base import SelectionContext
from repro.diffusion.base import DEFAULT_MAX_HOPS, DiffusionModel, SeedSets
from repro.diffusion.opoao import OPOAOModel
from repro.errors import KernelError, SelectionError
from repro.graph.digraph import Node
from repro.kernels.base import BatchOutcome, KernelBackend
from repro.kernels.registry import BACKEND_AUTO, resolve_backend
from repro.kernels.spec import spec_for_model
from repro.kernels.worlds import WorldBatch, sample_shared_worlds
from repro.obs.registry import metrics
from repro.rng import RngStream, derive_seed
from repro.utils.validation import check_positive

__all__ = ["BatchedSigmaEvaluator"]


class BatchedSigmaEvaluator:
    """Kernel-backed estimator of the protector influence σ(A).

    Args:
        context: the LCRB instance.
        model: diffusion model (OPOAO by default); reduced to its kernel
            spec via :func:`~repro.kernels.spec.spec_for_model`.
        runs: number of coupled worlds (deterministic models use 1).
        max_hops: horizon per world.
        rng: base stream; only its *seed* is consumed (worlds are derived
            deterministically from it, so two evaluators built from equal
            streams see identical worlds).
        backend: backend name (``"python"``/``"numpy"``/``"auto"``) or a
            ready :class:`~repro.kernels.base.KernelBackend` instance.
        world_source: ``"native"`` (the backend's fastest sampler) or
            ``"shared"`` (the backend-agnostic sampler, bit-identical
            across backends — what the differential tests use).
    """

    def __init__(
        self,
        context: SelectionContext,
        model: Optional[DiffusionModel] = None,
        runs: int = 30,
        max_hops: int = DEFAULT_MAX_HOPS,
        rng: Optional[RngStream] = None,
        backend: Union[str, KernelBackend, None] = BACKEND_AUTO,
        world_source: str = "native",
    ) -> None:
        self.context = context
        self.model = model or OPOAOModel()
        self.spec = spec_for_model(self.model)
        if isinstance(backend, KernelBackend):
            self.backend = backend
        else:
            self.backend = resolve_backend(backend)
        self.max_hops = int(check_positive(max_hops, "max_hops"))
        self.runs = (
            int(check_positive(runs, "runs")) if self.spec.stochastic else 1
        )
        if world_source not in ("native", "shared"):
            raise KernelError(
                f"world_source must be 'native' or 'shared', "
                f"got {world_source!r}"
            )
        self.world_source = world_source
        self.rng = rng or RngStream(name="sigma")
        self._rumor_ids = context.rumor_seed_ids()
        self._end_ids = context.bridge_end_ids()
        self._worlds: Optional[WorldBatch] = None
        self._baseline: Optional[List[FrozenSet[int]]] = None
        self.evaluations = 0  # σ̂ calls, mirroring SigmaEstimator

    @property
    def worlds(self) -> WorldBatch:
        """The lazily-sampled coupled world batch (sampled exactly once)."""
        if self._worlds is None:
            seed = derive_seed(self.rng.seed, "sigma-worlds")
            if self.world_source == "shared":
                self._worlds = sample_shared_worlds(
                    self.context.indexed.csr(),
                    self.spec,
                    self.runs,
                    self.max_hops,
                    seed,
                )
            else:
                self._worlds = self.backend.sample_worlds(
                    self.context.indexed,
                    self.spec,
                    self.runs,
                    self.max_hops,
                    seed,
                )
        return self._worlds

    def run_batch(self, protector_ids: Sequence[int]) -> BatchOutcome:
        """Race every world against one protector configuration."""
        seeds = SeedSets(rumors=self._rumor_ids, protectors=protector_ids)
        return self.backend.run_worlds(
            self.context.indexed, self.spec, self.worlds, seeds, self.max_hops
        )

    def infected_end_sets(
        self, protector_ids: Sequence[int]
    ) -> List[FrozenSet[int]]:
        """Per-world sets of bridge ends the rumor takes under ``A``."""
        outcome = self.run_batch(protector_ids)
        return [
            outcome.infected_members(world, self._end_ids)
            for world in range(outcome.batch)
        ]

    @property
    def baseline(self) -> List[FrozenSet[int]]:
        """Per-world bridge ends infected with **no** protectors."""
        if self._baseline is None:
            self._baseline = self.infected_end_sets(())
        return self._baseline

    def _protector_ids(self, protectors: Iterable[Node]) -> List[int]:
        protector_ids = self.context.indexed.indices(dict.fromkeys(protectors))
        overlap = set(protector_ids) & set(self._rumor_ids)
        if overlap:
            raise SelectionError(
                f"protectors overlap rumor seeds: {sorted(overlap)[:5]}"
            )
        return protector_ids

    def sigma(self, protectors: Iterable[Node]) -> float:
        """σ̂(A): mean size of the protector blocking set over the worlds."""
        protector_ids = self._protector_ids(protectors)
        self.evaluations += 1
        metrics().inc("selector.sigma_evaluations")
        saved_total = 0
        for at_risk, infected_now in zip(
            self.baseline, self.infected_end_sets(protector_ids)
        ):
            saved_total += len(at_risk - infected_now)
        return saved_total / self.runs

    def protected_fraction(self, protectors: Iterable[Node]) -> float:
        """Mean fraction of bridge ends not infected at the end."""
        if not self._end_ids:
            return 1.0
        protector_ids = self._protector_ids(protectors)
        self.evaluations += 1
        metrics().inc("selector.sigma_evaluations")
        safe_total = 0
        for infected_now in self.infected_end_sets(protector_ids):
            safe_total += len(self._end_ids) - len(infected_now)
        return safe_total / (self.runs * len(self._end_ids))

    def __repr__(self) -> str:
        return (
            f"BatchedSigmaEvaluator(model={self.model.name}, "
            f"backend={self.backend.name}, runs={self.runs}, "
            f"max_hops={self.max_hops})"
        )
