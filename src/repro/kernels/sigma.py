"""Batched σ(A) estimation on top of the kernel backends.

Drop-in peer of :class:`repro.algorithms.greedy.SigmaEstimator` with the
same coupled common-random-numbers semantics, but the coupling is a
pre-sampled :class:`~repro.kernels.worlds.WorldBatch` instead of replica
RNG streams: the worlds are sampled **once**, lazily, and every σ̂
evaluation — baseline and every candidate set — replays the same batch
through one kernel call. Greedy/CELF then spend one vectorized sweep per
candidate instead of ``runs`` Python simulations, which is where the
sigma-throughput acceptance number comes from.

With ``workers`` configured, :meth:`BatchedSigmaEvaluator.sigma_many`
fans a whole candidate round out over a :class:`repro.exec.pool.\
ParallelExecutor`: every worker re-derives the *same* coupled world
batch from the evaluator's seed (world sampling is a pure function of
``(seed, spec, runs)``), races its candidate chunk against it, and the
per-candidate σ̂ values come back in submission order — bit-identical to
calling :meth:`~BatchedSigmaEvaluator.sigma` in a loop.

Deterministic models (DOAM) collapse to a single world, making σ̂ exact.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.algorithms.base import SelectionContext
from repro.diffusion.base import DEFAULT_MAX_HOPS, DiffusionModel, SeedSets
from repro.diffusion.opoao import OPOAOModel
from repro.errors import KernelError, SelectionError
from repro.graph.digraph import Node
from repro.kernels.base import BatchOutcome, KernelBackend
from repro.kernels.registry import BACKEND_AUTO, resolve_backend
from repro.kernels.spec import KernelSpec, spec_for_model
from repro.kernels.worlds import WorldBatch, sample_shared_worlds
from repro.obs.registry import metrics
from repro.rng import RngStream, derive_seed
from repro.utils.validation import check_positive

if TYPE_CHECKING:
    from repro.exec.pool import ParallelExecutor

__all__ = ["BatchedSigmaEvaluator"]


def _sample_worlds(backend, graph, spec, runs, max_hops, seed, world_source):
    """The evaluator's world batch — a pure function of its arguments.

    Both the parent evaluator and every pool worker call this with the
    same seed, so all processes replay identical coupled worlds.
    """
    if world_source == "shared":
        return sample_shared_worlds(graph.csr(), spec, runs, max_hops, seed)
    return backend.sample_worlds(graph, spec, runs, max_hops, seed)


def _race_end_sets(
    backend, graph, spec, worlds, rumor_ids, protector_ids, end_ids, max_hops
) -> List[FrozenSet[int]]:
    """Per-world sets of bridge ends the rumor takes under ``protector_ids``.

    The single code path every σ̂ evaluation goes through — serial calls
    and pool workers run exactly these kernel invocations, which is what
    keeps their work counters and results identical.
    """
    seeds = SeedSets(rumors=rumor_ids, protectors=protector_ids)
    outcome = backend.run_worlds(graph, spec, worlds, seeds, max_hops)
    return [
        outcome.infected_members(world, end_ids)
        for world in range(outcome.batch)
    ]


def _sigma_from_race(state: Dict[str, object], protector_ids) -> float:
    """One σ̂ evaluation against a prepared race state (shared with workers)."""
    metrics().inc("selector.sigma_evaluations")
    infected_now_per_world = _race_end_sets(
        state["backend"], state["graph"], state["spec"], state["worlds"],
        state["rumor_ids"], protector_ids, state["end_ids"], state["max_hops"],
    )
    saved_total = 0
    for at_risk, infected_now in zip(state["baseline"], infected_now_per_world):
        saved_total += len(at_risk - infected_now)
    return saved_total / state["runs"]


def _sigma_worker_setup(graph, payload):
    """Pool worker set-up: rebuild the race state from primitives.

    Runs under the null registry (see :mod:`repro.exec.pool`): the
    re-derived world sample and baseline race are redundant per-worker
    preparation and must not inflate the merged work counters.
    """
    backend = resolve_backend(payload["backend"])
    spec = KernelSpec(payload["kind"], payload["probability"])
    worlds = _sample_worlds(
        backend, graph, spec, payload["runs"], payload["max_hops"],
        payload["seed"], payload["world_source"],
    )
    state = {
        "backend": backend,
        "graph": graph,
        "spec": spec,
        "worlds": worlds,
        "rumor_ids": payload["rumor_ids"],
        "end_ids": payload["end_ids"],
        "max_hops": payload["max_hops"],
        "runs": payload["runs"],
    }
    state["baseline"] = _race_end_sets(
        backend, graph, spec, worlds, payload["rumor_ids"], (),
        payload["end_ids"], payload["max_hops"],
    )
    return state


def _sigma_worker_chunk(state, chunk):
    """Pool worker task: σ̂ for a chunk of resolved protector-id lists."""
    return [_sigma_from_race(state, protector_ids) for protector_ids in chunk]


class BatchedSigmaEvaluator:
    """Kernel-backed estimator of the protector influence σ(A).

    Args:
        context: the LCRB instance.
        model: diffusion model (OPOAO by default); reduced to its kernel
            spec via :func:`~repro.kernels.spec.spec_for_model`.
        runs: number of coupled worlds (deterministic models use 1).
        max_hops: horizon per world.
        rng: base stream; only its *seed* is consumed (worlds are derived
            deterministically from it, so two evaluators built from equal
            streams see identical worlds).
        backend: backend name (``"python"``/``"numpy"``/``"auto"``) or a
            ready :class:`~repro.kernels.base.KernelBackend` instance.
        world_source: ``"native"`` (the backend's fastest sampler) or
            ``"shared"`` (the backend-agnostic sampler, bit-identical
            across backends — what the differential tests use).
        workers: worker request for :meth:`sigma_many` (``None``/``1``
            serial, ``0`` one per CPU); parallel evaluation is
            bit-identical to serial, see ``docs/parallel.md``.
        share: graph publication mode for the pool (``"auto"``/``"shm"``/
            ``"pickle"``).
        chunk_timeout: per-chunk deadline in seconds for the pool
            (``None`` waits forever); see the failure-semantics section
            of ``docs/parallel.md``.
        chunk_retries: deterministic resubmission budget per failed
            chunk (``None`` uses the executor default).
        executor: a shared :class:`~repro.exec.pool.ParallelExecutor`
            to submit rounds to (its ``workers``/``share``/timeout
            knobs then govern and the per-evaluator knobs above are
            ignored). ``None`` lazily builds an evaluator-owned
            executor from those knobs on the first parallel round and
            reuses it for the evaluator's lifetime — either way the
            pool is warm across greedy/CELF candidate rounds.
    """

    def __init__(
        self,
        context: SelectionContext,
        model: Optional[DiffusionModel] = None,
        runs: int = 30,
        max_hops: int = DEFAULT_MAX_HOPS,
        rng: Optional[RngStream] = None,
        backend: Union[str, KernelBackend, None] = BACKEND_AUTO,
        world_source: str = "native",
        workers: Union[int, str, None] = None,
        share: str = "auto",
        chunk_timeout: Optional[float] = None,
        chunk_retries: Optional[int] = None,
        executor: Optional["ParallelExecutor"] = None,
    ) -> None:
        self.context = context
        self.model = model or OPOAOModel()
        self.spec = spec_for_model(self.model)
        if isinstance(backend, KernelBackend):
            self.backend = backend
        else:
            self.backend = resolve_backend(backend)
        self.max_hops = int(check_positive(max_hops, "max_hops"))
        self.runs = (
            int(check_positive(runs, "runs")) if self.spec.stochastic else 1
        )
        if world_source not in ("native", "shared"):
            raise KernelError(
                f"world_source must be 'native' or 'shared', "
                f"got {world_source!r}"
            )
        self.world_source = world_source
        self.workers = workers
        self.share = share
        self.chunk_timeout = chunk_timeout
        self.chunk_retries = chunk_retries
        self._executor = executor
        self.rng = rng or RngStream(name="sigma")
        self._rumor_ids = context.rumor_seed_ids()
        self._end_ids = context.bridge_end_ids()
        self._worlds: Optional[WorldBatch] = None
        self._baseline: Optional[List[FrozenSet[int]]] = None
        self.evaluations = 0  # σ̂ calls, mirroring SigmaEstimator

    @property
    def worlds(self) -> WorldBatch:
        """The lazily-sampled coupled world batch (sampled exactly once)."""
        if self._worlds is None:
            self._worlds = _sample_worlds(
                self.backend,
                self.context.indexed,
                self.spec,
                self.runs,
                self.max_hops,
                derive_seed(self.rng.seed, "sigma-worlds"),
                self.world_source,
            )
        return self._worlds

    def run_batch(self, protector_ids: Sequence[int]) -> BatchOutcome:
        """Race every world against one protector configuration."""
        seeds = SeedSets(rumors=self._rumor_ids, protectors=protector_ids)
        return self.backend.run_worlds(
            self.context.indexed, self.spec, self.worlds, seeds, self.max_hops
        )

    def infected_end_sets(
        self, protector_ids: Sequence[int]
    ) -> List[FrozenSet[int]]:
        """Per-world sets of bridge ends the rumor takes under ``A``."""
        return _race_end_sets(
            self.backend, self.context.indexed, self.spec, self.worlds,
            self._rumor_ids, protector_ids, self._end_ids, self.max_hops,
        )

    @property
    def baseline(self) -> List[FrozenSet[int]]:
        """Per-world bridge ends infected with **no** protectors."""
        if self._baseline is None:
            self._baseline = self.infected_end_sets(())
        return self._baseline

    def _protector_ids(self, protectors: Iterable[Node]) -> List[int]:
        protector_ids = self.context.indexed.indices(dict.fromkeys(protectors))
        overlap = set(protector_ids) & set(self._rumor_ids)
        if overlap:
            raise SelectionError(
                f"protectors overlap rumor seeds: {sorted(overlap)[:5]}"
            )
        return protector_ids

    def _race_state(self) -> Dict[str, object]:
        """This evaluator's own race state, in worker-state shape."""
        return {
            "backend": self.backend,
            "graph": self.context.indexed,
            "spec": self.spec,
            "worlds": self.worlds,
            "rumor_ids": self._rumor_ids,
            "end_ids": self._end_ids,
            "max_hops": self.max_hops,
            "runs": self.runs,
            "baseline": self.baseline,
        }

    def _worker_payload(self) -> Dict[str, object]:
        """Primitives a pool worker rebuilds the race state from."""
        return {
            "backend": self.backend.name,
            "kind": self.spec.kind,
            "probability": self.spec.probability,
            "runs": self.runs,
            "max_hops": self.max_hops,
            "seed": derive_seed(self.rng.seed, "sigma-worlds"),
            "world_source": self.world_source,
            "rumor_ids": list(self._rumor_ids),
            "end_ids": list(self._end_ids),
        }

    def _get_executor(self) -> "ParallelExecutor":
        """The shared executor, or a lazily-built evaluator-owned one.

        Either way the same executor (and so the same warm pool, graph
        publication, and cached worker race state) serves every
        subsequent :meth:`sigma_many` round.
        """
        if self._executor is None:
            from repro.exec.pool import ParallelExecutor

            self._executor = ParallelExecutor(
                self.workers,
                share=self.share,
                timeout=self.chunk_timeout,
                retries=self.chunk_retries,
            )
        return self._executor

    def sigma(self, protectors: Iterable[Node]) -> float:
        """σ̂(A): mean size of the protector blocking set over the worlds."""
        protector_ids = self._protector_ids(protectors)
        self.evaluations += 1
        return _sigma_from_race(self._race_state(), protector_ids)

    def sigma_many(
        self, protector_sets: Sequence[Iterable[Node]]
    ) -> List[float]:
        """σ̂ for many candidate sets, fanned out over the worker pool.

        Bit-identical to ``[self.sigma(s) for s in protector_sets]`` in
        values, order, and merged work counters: the parent races its
        own baseline exactly once (counted, as in serial), workers
        re-derive worlds and baseline silently, and each candidate's
        race is counted exactly once in whichever process runs it.
        """
        id_sets = [self._protector_ids(sets) for sets in protector_sets]
        if not id_sets:
            return []
        from repro.exec.pool import resolve_workers

        workers = (
            self._executor.workers if self._executor is not None
            else self.workers
        )
        if resolve_workers(workers, len(id_sets)) <= 1:
            state = self._race_state()
            self.evaluations += len(id_sets)
            return [_sigma_from_race(state, ids) for ids in id_sets]
        self.baseline  # noqa: B018 - parent samples + races once, counted
        sigmas = self._get_executor().map_items(
            _sigma_worker_setup,
            _sigma_worker_chunk,
            self._worker_payload(),
            id_sets,
            graph=self.context.indexed,
        )
        self.evaluations += len(id_sets)
        return sigmas

    def protected_fraction(self, protectors: Iterable[Node]) -> float:
        """Mean fraction of bridge ends not infected at the end."""
        if not self._end_ids:
            return 1.0
        protector_ids = self._protector_ids(protectors)
        self.evaluations += 1
        metrics().inc("selector.sigma_evaluations")
        safe_total = 0
        for infected_now in self.infected_end_sets(protector_ids):
            safe_total += len(self._end_ids) - len(infected_now)
        return safe_total / (self.runs * len(self._end_ids))

    def __repr__(self) -> str:
        return (
            f"BatchedSigmaEvaluator(model={self.model.name}, "
            f"backend={self.backend.name}, runs={self.runs}, "
            f"max_hops={self.max_hops}, workers={self.workers!r})"
        )
