"""Vectorized NumPy kernel backend.

Runs all B worlds of a batch simultaneously: node states live in a
``B × N`` int8 matrix and each hop processes every world's frontier in a
handful of array operations. Everything stays *sparse*: IC/LT/DOAM track
frontiers as ``world * n + node`` keys (IC/DOAM additionally race over a
flattened live adjacency built once per batch), and OPOAO tracks only
its *live* pickers — active nodes that still have an inactive
out-neighbor — via reverse-adjacency bookkeeping, so per-hop cost
follows the work actually left in each world rather than ``B × N``. No
per-world Python loop survives on the hot path, which is where the
sigma-throughput win over the reference backend comes from.

Bit-identical equivalence with the pure-Python backend on a shared
:class:`~repro.kernels.worlds.WorldBatch` is maintained by matching its
operation *order* wherever floats accumulate: LT in-weights are added
with unbuffered ``np.add.at`` in (world, node, edge-position) order —
exactly the reference backend's loop order — and OPOAO pick indices use
the same ``floor(r * d_out)`` IEEE arithmetic.

This module imports ``numpy`` at import time; it is only loaded through
:mod:`repro.kernels.registry`, which converts an ``ImportError`` into
:class:`~repro.errors.BackendUnavailableError` (install the ``perf``
extra) and can fall back to the reference backend.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.diffusion.base import (
    DEFAULT_MAX_HOPS,
    INACTIVE,
    INFECTED,
    PROTECTED,
    SeedSets,
)
from repro.errors import KernelError
from repro.graph.compact import IndexedDiGraph
from repro.kernels.base import BatchOutcome, KernelBackend
from repro.kernels.spec import KernelSpec
from repro.kernels.worlds import WorldBatch
from repro.rng import derive_seed

__all__ = ["NumpyKernelBackend"]

#: Graph-array cache capacity (distinct graphs kept vectorized at once).
_CACHE_LIMIT = 8

#: Largest ``batch * node_count`` the flattened live adjacency may span
#: (its indptr takes 8 bytes per key; 2^25 keys ~ 256 MiB of index).
_MAX_FLAT_KEYS = 1 << 25

_EMPTY = np.zeros(0, dtype=np.int64)


class _GraphArrays:
    """NumPy views of one graph's CSR snapshot, built once per graph."""

    __slots__ = (
        "indptr",
        "indices",
        "weights",
        "out_deg",
        "inv_indeg",
        "edge_tails",
        "in_indptr",
        "in_tails",
    )

    def __init__(self, graph: IndexedDiGraph) -> None:
        csr = graph.csr()
        n = csr.node_count
        self.indptr = np.asarray(csr.indptr, dtype=np.int64)
        self.indices = np.asarray(csr.indices, dtype=np.int64)
        self.weights = np.asarray(csr.weights, dtype=np.float64)
        self.out_deg = self.indptr[1:] - self.indptr[:-1]
        in_deg = np.bincount(self.indices, minlength=n) if n else np.zeros(0)
        self.inv_indeg = 1.0 / np.maximum(1, in_deg).astype(np.float64)
        self.edge_tails = np.repeat(
            np.arange(n, dtype=np.int64), self.out_deg
        )
        # Reverse adjacency (in-neighbors per node), for OPOAO's
        # inactive-out-neighbor accounting.
        order = np.argsort(self.indices, kind="stable")
        self.in_tails = self.edge_tails[order]
        self.in_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(in_deg, out=self.in_indptr[1:])


class NumpyKernelBackend(KernelBackend):
    """Batched bit-matrix diffusion kernels over CSR arrays."""

    name = "numpy"

    def __init__(self) -> None:
        self._cache: Dict[int, Tuple[IndexedDiGraph, _GraphArrays]] = {}

    def _arrays(self, graph: IndexedDiGraph) -> _GraphArrays:
        key = id(graph)
        hit = self._cache.get(key)
        if hit is not None and hit[0] is graph:
            return hit[1]
        arrays = _GraphArrays(graph)
        if len(self._cache) >= _CACHE_LIMIT:
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = (graph, arrays)
        return arrays

    # -- native (fast, statistically-equivalent) world sampling ----------------

    def sample_worlds(
        self,
        graph: IndexedDiGraph,
        spec: KernelSpec,
        batch: int,
        max_hops: int = DEFAULT_MAX_HOPS,
        seed: int = 0,
    ) -> WorldBatch:
        """Sample worlds with NumPy's PCG64 instead of the shared sampler.

        Same distribution as
        :func:`~repro.kernels.worlds.sample_shared_worlds`, different
        stream: results agree with the python backend statistically, not
        bit-for-bit. Use the shared sampler when exact cross-backend
        agreement matters (the differential tests do).
        """
        if spec.kind == "doam":
            return WorldBatch("doam", batch, max_hops, {})
        arrays = self._arrays(graph)
        rng = np.random.default_rng(derive_seed(seed, "kernel-native", spec.kind))
        n = graph.node_count
        if spec.kind == "ic":
            probabilities = self._edge_probabilities(arrays, spec)
            live = rng.random((batch, arrays.indices.size)) < probabilities
            return WorldBatch("ic", batch, max_hops, {"live": live})
        if spec.kind == "lt":
            thresholds = rng.random((batch, n))
            return WorldBatch("lt", batch, max_hops, {"thresholds": thresholds})
        picks = rng.random((batch, max_hops, n))
        return WorldBatch("opoao", batch, max_hops, {"picks": picks})

    @staticmethod
    def _edge_probabilities(arrays: _GraphArrays, spec: KernelSpec):
        if spec.probability is not None:
            return spec.probability
        weights = arrays.weights
        if weights.size and (weights.min() < 0.0 or weights.max() > 1.0):
            raise KernelError("weighted IC needs edge weights in [0, 1]")
        return weights

    # -- the batched race -------------------------------------------------------

    def _run(
        self,
        graph: IndexedDiGraph,
        spec: KernelSpec,
        worlds: WorldBatch,
        seeds: SeedSets,
        max_hops: int,
    ) -> BatchOutcome:
        arrays = self._arrays(graph)
        batch = worlds.batch
        n = graph.node_count
        states = np.zeros((batch, n), dtype=np.int8)
        protectors = sorted(seeds.protectors)
        rumors = sorted(seeds.rumors)
        if protectors:
            states[:, protectors] = PROTECTED
        states[:, rumors] = INFECTED
        if spec.kind in ("ic", "doam"):
            live = None
            if spec.kind == "ic":
                live = _batch_array(worlds, "live", np.bool_)
            return self._race(arrays, states, seeds, live, max_hops, worlds)
        if spec.kind == "lt":
            thresholds = _batch_array(worlds, "thresholds", np.float64)
            return self._lt(arrays, states, seeds, thresholds, max_hops)
        picks = _batch_array(worlds, "picks", np.float64)
        return self._opoao(arrays, states, seeds, picks, max_hops)

    def _race(
        self, arrays, states, seeds, live, max_hops, worlds=None
    ) -> BatchOutcome:
        """IC (live-edge mask) and DOAM (``live=None``): BFS race, P wins ties.

        The race runs on a *flattened* live adjacency — one virtual graph
        of ``batch * n`` nodes whose node ``w * n + u`` carries world
        ``w``'s live out-edges of ``u`` — built once per world batch and
        cached, so every σ̂ replay skips the per-edge coin lookups
        entirely and BFS expansion only ever touches live edges.
        """
        batch, n = states.shape
        # The flattened adjacency needs O(batch * n) index space; past the
        # cap, fall back to per-hop live-mask filtering instead.
        flat = None
        if batch * n <= _MAX_FLAT_KEYS:
            flat = self._flat_adjacency(worlds, live, arrays, batch, n)
        flat_states = states.reshape(-1)
        front_p = _seed_keys(seeds.protectors, batch, n)
        front_i = _seed_keys(seeds.rumors, batch, n)
        infected = np.full(batch, len(seeds.rumors), dtype=np.int64)
        protected = np.full(batch, len(seeds.protectors), dtype=np.int64)
        infected_hops = [infected.copy()]
        protected_hops = [protected.copy()]
        for _hop in range(max_hops):
            if front_p.size == 0 and front_i.size == 0:
                break
            if flat is not None:
                keys_p = _reach_flat(front_p, flat, flat_states)
                keys_i = _reach_flat(front_i, flat, flat_states)
            else:
                keys_p = _reach_masked(front_p, live, arrays, flat_states, n)
                keys_i = _reach_masked(front_i, live, arrays, flat_states, n)
            if keys_p.size and keys_i.size:
                keys_i = keys_i[~np.isin(keys_i, keys_p, assume_unique=True)]
            if keys_p.size == 0 and keys_i.size == 0:
                break
            flat_states[keys_p] = PROTECTED
            flat_states[keys_i] = INFECTED
            protected = protected + np.bincount(keys_p // n, minlength=batch)
            infected = infected + np.bincount(keys_i // n, minlength=batch)
            infected_hops.append(infected.copy())
            protected_hops.append(protected.copy())
            front_p, front_i = keys_p, keys_i
        kind = "doam" if live is None else "ic"
        return BatchOutcome(kind, n, states, infected_hops, protected_hops)

    @staticmethod
    def _flat_adjacency(worlds, live, arrays, batch: int, n: int):
        """``(indptr, head_keys)`` of the flattened live adjacency.

        For IC the structure is cached inside the :class:`WorldBatch`
        payload (keyed by the graph arrays), because sigma evaluation
        replays the same batch once per candidate. DOAM (``live=None``)
        replicates the full CSR, which for its single world is cheap.
        """
        cached = worlds.data.get("_flat") if worlds is not None else None
        if cached is not None and cached[0] is arrays:
            return cached[1]
        if live is None:
            edge_count = arrays.indices.size
            worlds_offset = np.repeat(
                np.arange(batch, dtype=np.int64) * n, edge_count
            )
            head_keys = worlds_offset + np.tile(arrays.indices, batch)
            counts = np.tile(arrays.out_deg, batch)
        else:
            live_w, live_e = np.nonzero(live)
            # live_e ascends within each world and CSR edges sort by tail,
            # so head_keys lands grouped by (world, tail) in edge order.
            tail_keys = live_w * n + arrays.edge_tails[live_e]
            head_keys = live_w * n + arrays.indices[live_e]
            counts = np.bincount(tail_keys, minlength=batch * n)
        indptr = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        flat = (indptr, head_keys)
        if worlds is not None:
            worlds.data["_flat"] = (arrays, flat)
        return flat

    def _lt(self, arrays, states, seeds, thresholds, max_hops) -> BatchOutcome:
        batch, n = states.shape
        weight_p = np.zeros((batch, n), dtype=np.float64)
        weight_i = np.zeros((batch, n), dtype=np.float64)
        front_p = _seed_pairs(seeds.protectors, batch)
        front_i = _seed_pairs(seeds.rumors, batch)
        infected = np.full(batch, len(seeds.rumors), dtype=np.int64)
        protected = np.full(batch, len(seeds.protectors), dtype=np.int64)
        infected_hops = [infected.copy()]
        protected_hops = [protected.copy()]
        for _hop in range(max_hops):
            if front_p[0].size == 0 and front_i[0].size == 0:
                break
            keys_tp = _feed(front_p, weight_p, arrays, states, n)
            keys_ti = _feed(front_i, weight_i, arrays, states, n)
            touched = np.unique(np.concatenate((keys_tp, keys_ti)))
            if touched.size == 0:
                break
            tw, tu = touched // n, touched % n
            theta = thresholds[tw, tu]
            crosses_p = weight_p[tw, tu] + 1e-12 >= theta
            # P priority when both cascades cross in the same hop.
            crosses_i = (weight_i[tw, tu] + 1e-12 >= theta) & ~crosses_p
            if not crosses_p.any() and not crosses_i.any():
                break
            front_p = (tw[crosses_p], tu[crosses_p])
            front_i = (tw[crosses_i], tu[crosses_i])
            states[front_p] = PROTECTED
            states[front_i] = INFECTED
            protected = protected + np.bincount(front_p[0], minlength=batch)
            infected = infected + np.bincount(front_i[0], minlength=batch)
            infected_hops.append(infected.copy())
            protected_hops.append(protected.copy())
        return BatchOutcome("lt", n, states, infected_hops, protected_hops)

    def _opoao(self, arrays, states, seeds, picks, max_hops) -> BatchOutcome:
        """OPOAO: *live* pickers tracked as sparse ``world * n + node`` keys.

        Each live picker reads its pick with the same ``floor(r * d)``
        IEEE arithmetic as the reference backend, just gathered for all
        worlds at once. ``remaining`` counts every active node's inactive
        out-neighbors (maintained via the reverse adjacency), so dead
        pickers — whose picks never land, hence never matter — are pruned
        permanently and late-game saturated worlds cost almost nothing.
        It also makes termination exact for free: a live picker exists
        iff some world still has an active -> inactive edge, which is
        precisely the reference backend's stop condition.
        """
        batch, n = states.shape
        indptr, indices, out_deg = arrays.indptr, arrays.indices, arrays.out_deg
        infected = np.full(batch, len(seeds.rumors), dtype=np.int64)
        protected = np.full(batch, len(seeds.protectors), dtype=np.int64)
        infected_hops = [infected.copy()]
        protected_hops = [protected.copy()]
        if indices.size == 0:
            return BatchOutcome("opoao", n, states, infected_hops, protected_hops)
        flat_states = states.reshape(-1)
        seed_ids = np.asarray(
            sorted(seeds.rumors | seeds.protectors), dtype=np.int64
        )
        # Inactive-out-neighbor counts per (world, node): seeds are the
        # same in every world, so compute once and tile.
        seed_mask = np.zeros(n, dtype=bool)
        seed_mask[seed_ids] = True
        seeded_out = np.bincount(
            arrays.edge_tails[seed_mask[indices]], minlength=n
        )
        remaining = np.tile(out_deg - seeded_out, batch)
        picker_ids = seed_ids[out_deg[seed_ids] > 0]
        act_keys = (
            np.repeat(np.arange(batch, dtype=np.int64) * n, picker_ids.size)
            + np.tile(picker_ids, batch)
        )
        act_keys = act_keys[remaining[act_keys] > 0]
        for hop in range(max_hops):
            if act_keys.size == 0:
                break  # no live picker anywhere <=> no live edge anywhere
            act_u = act_keys % n
            draws = picks[act_keys // n, hop, act_u]
            degrees = out_deg[act_u]
            offsets = (draws * degrees).astype(np.int64)
            np.minimum(offsets, degrees - 1, out=offsets)
            target_keys = act_keys - act_u + indices[indptr[act_u] + offsets]
            hit = flat_states[target_keys] == INACTIVE
            if hit.any():
                hit_keys = target_keys[hit]
                from_p = flat_states[act_keys[hit]] == PROTECTED
                keys_p = np.unique(hit_keys[from_p])
                keys_i = np.unique(hit_keys[~from_p])
                if keys_p.size and keys_i.size:  # P-priority on conflicts
                    keys_i = keys_i[~np.isin(keys_i, keys_p, assume_unique=True)]
                flat_states[keys_p] = PROTECTED
                flat_states[keys_i] = INFECTED
                protected = protected + np.bincount(keys_p // n, minlength=batch)
                infected = infected + np.bincount(keys_i // n, minlength=batch)
                new_keys = np.concatenate((keys_p, keys_i))
                dec_w, _, dec_tails = _edges_of(
                    new_keys // n, new_keys % n,
                    arrays.in_indptr, arrays.in_tails,
                )
                np.subtract.at(remaining, dec_w * n + dec_tails, 1)
                act_keys = np.concatenate(
                    (act_keys, new_keys[out_deg[new_keys % n] > 0])
                )
            # Zero-hit hops are wasted repeat-selection steps: recorded,
            # and the race continues (there is still a live picker).
            infected_hops.append(infected.copy())
            protected_hops.append(protected.copy())
            act_keys = act_keys[remaining[act_keys] > 0]
        return BatchOutcome("opoao", n, states, infected_hops, protected_hops)


def _batch_array(worlds: WorldBatch, key: str, dtype) -> np.ndarray:
    """The batch payload as an ndarray, converted once and cached in place
    (sigma evaluation replays the same batch hundreds of times)."""
    data = worlds.data[key]
    if not isinstance(data, np.ndarray) or data.dtype != dtype:
        data = np.asarray(data, dtype=dtype)
        worlds.data[key] = data
    return data


def _seed_pairs(nodes, batch: int) -> Tuple[np.ndarray, np.ndarray]:
    """Seed frontier as sorted ``(world, node)`` index pairs."""
    ids = np.asarray(sorted(nodes), dtype=np.int64)
    worlds_idx = np.repeat(np.arange(batch, dtype=np.int64), ids.size)
    return worlds_idx, np.tile(ids, batch)


def _seed_keys(nodes, batch: int, n: int) -> np.ndarray:
    """Seed frontier as sorted flat ``world * n + node`` keys."""
    worlds_idx, ids = _seed_pairs(nodes, batch)
    return worlds_idx * n + ids


def _edges_of(
    worlds_idx: np.ndarray,
    nodes: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Ragged CSR gather: all out-edges of ``(world, node)`` pairs.

    Returns ``(world, edge_position, head)`` triples, one per out-edge,
    in (world, node, edge-position) order — the reference backend's loop
    order, which matters when the caller accumulates floats.
    """
    counts = indptr[nodes + 1] - indptr[nodes]
    total = int(counts.sum())
    if total == 0:
        return _EMPTY, _EMPTY, _EMPTY
    cumulative = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        cumulative - counts, counts
    )
    positions = np.repeat(indptr[nodes], counts) + offsets
    return np.repeat(worlds_idx, counts), positions, indices[positions]


def _reach_masked(front_keys, live, arrays, flat_states, n: int) -> np.ndarray:
    """BFS step filtering the live-edge mask per hop (large-batch fallback)."""
    edge_w, edge_pos, heads = _edges_of(
        front_keys // n, front_keys % n, arrays.indptr, arrays.indices
    )
    if edge_w.size == 0:
        return _EMPTY
    keys = edge_w * n + heads
    ok = flat_states[keys] == INACTIVE
    if live is not None:
        ok &= live[edge_w, edge_pos]
    return np.unique(keys[ok])


def _reach_flat(front_keys, flat, flat_states) -> np.ndarray:
    """One BFS step on the flattened live adjacency: unique keys of
    inactive nodes reached from the frontier keys."""
    if front_keys.size == 0:
        return _EMPTY
    indptr, head_keys = flat
    counts = indptr[front_keys + 1] - indptr[front_keys]
    total = int(counts.sum())
    if total == 0:
        return _EMPTY
    cumulative = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        cumulative - counts, counts
    )
    heads = head_keys[np.repeat(indptr[front_keys], counts) + offsets]
    return np.unique(heads[flat_states[heads] == INACTIVE])


def _feed(front, weights, arrays, states, n: int) -> np.ndarray:
    """LT influence push: add ``1/d_in`` from front nodes to their inactive
    out-neighbors (unbuffered, in reference loop order). Returns the
    ``world * n + node`` keys of the touched targets (with duplicates)."""
    front_w, front_u = front
    if front_w.size == 0:
        return _EMPTY
    edge_w, _, heads = _edges_of(
        front_w, front_u, arrays.indptr, arrays.indices
    )
    if edge_w.size == 0:
        return _EMPTY
    ok = states[edge_w, heads] == INACTIVE
    edge_w, heads = edge_w[ok], heads[ok]
    np.add.at(weights, (edge_w, heads), arrays.inv_indeg[heads])
    return edge_w * n + heads
