"""Vectorized NumPy kernel backend.

Runs all B worlds of a batch simultaneously: node states live in a
``B × N`` int8 matrix and each hop processes every world's frontier in a
handful of array operations. Everything stays *sparse*: IC/LT/DOAM track
frontiers as ``world * n + node`` keys (IC/DOAM additionally race over a
flattened live adjacency built once per batch), and OPOAO tracks only
its *live* pickers — active nodes that still have an inactive
out-neighbor — via reverse-adjacency bookkeeping, so per-hop cost
follows the work actually left in each world rather than ``B × N``. No
per-world Python loop survives on the hot path, which is where the
sigma-throughput win over the reference backend comes from.

Bit-identical equivalence with the pure-Python backend on a shared
:class:`~repro.kernels.worlds.WorldBatch` is maintained by matching its
operation *order* wherever floats accumulate: LT in-weights are added
with unbuffered ``np.add.at`` in (world, node, edge-position) order —
exactly the reference backend's loop order — and OPOAO pick indices use
the same ``floor(r * d_out)`` IEEE arithmetic.

This module imports ``numpy`` at import time; it is only loaded through
:mod:`repro.kernels.registry`, which converts an ``ImportError`` into
:class:`~repro.errors.BackendUnavailableError` (install the ``perf``
extra) and can fall back to the reference backend.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.diffusion.base import (
    DEFAULT_MAX_HOPS,
    INACTIVE,
    CascadeSet,
)
from repro.errors import KernelError
from repro.graph.compact import IndexedDiGraph
from repro.kernels.base import BatchOutcome, KernelBackend
from repro.kernels.spec import KernelSpec
from repro.kernels.worlds import WorldBatch
from repro.rng import derive_seed

__all__ = ["NumpyKernelBackend"]

#: Graph-array cache capacity (distinct graphs kept vectorized at once).
_CACHE_LIMIT = 8

#: Largest ``batch * node_count`` the flattened live adjacency may span
#: (its indptr takes 8 bytes per key; 2^25 keys ~ 256 MiB of index).
_MAX_FLAT_KEYS = 1 << 25

_EMPTY = np.zeros(0, dtype=np.int64)


class _GraphArrays:
    """NumPy views of one graph's CSR snapshot, built once per graph."""

    __slots__ = (
        "indptr",
        "indices",
        "weights",
        "out_deg",
        "inv_indeg",
        "edge_tails",
        "in_indptr",
        "in_tails",
    )

    def __init__(self, graph: IndexedDiGraph) -> None:
        csr = graph.csr()
        n = csr.node_count
        self.indptr = np.asarray(csr.indptr, dtype=np.int64)
        self.indices = np.asarray(csr.indices, dtype=np.int64)
        self.weights = np.asarray(csr.weights, dtype=np.float64)
        self.out_deg = self.indptr[1:] - self.indptr[:-1]
        in_deg = np.bincount(self.indices, minlength=n) if n else np.zeros(0)
        self.inv_indeg = 1.0 / np.maximum(1, in_deg).astype(np.float64)
        self.edge_tails = np.repeat(
            np.arange(n, dtype=np.int64), self.out_deg
        )
        # Reverse adjacency (in-neighbors per node), for OPOAO's
        # inactive-out-neighbor accounting.
        order = np.argsort(self.indices, kind="stable")
        self.in_tails = self.edge_tails[order]
        self.in_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(in_deg, out=self.in_indptr[1:])


class NumpyKernelBackend(KernelBackend):
    """Batched bit-matrix diffusion kernels over CSR arrays."""

    name = "numpy"

    def __init__(self) -> None:
        self._cache: Dict[int, Tuple[IndexedDiGraph, _GraphArrays]] = {}

    def _arrays(self, graph: IndexedDiGraph) -> _GraphArrays:
        key = id(graph)
        hit = self._cache.get(key)
        if hit is not None and hit[0] is graph:
            return hit[1]
        arrays = _GraphArrays(graph)
        if len(self._cache) >= _CACHE_LIMIT:
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = (graph, arrays)
        return arrays

    # -- native (fast, statistically-equivalent) world sampling ----------------

    def sample_worlds(
        self,
        graph: IndexedDiGraph,
        spec: KernelSpec,
        batch: int,
        max_hops: int = DEFAULT_MAX_HOPS,
        seed: int = 0,
    ) -> WorldBatch:
        """Sample worlds with NumPy's PCG64 instead of the shared sampler.

        Same distribution as
        :func:`~repro.kernels.worlds.sample_shared_worlds`, different
        stream: results agree with the python backend statistically, not
        bit-for-bit. Use the shared sampler when exact cross-backend
        agreement matters (the differential tests do).
        """
        if spec.kind == "doam":
            return WorldBatch("doam", batch, max_hops, {})
        arrays = self._arrays(graph)
        rng = np.random.default_rng(derive_seed(seed, "kernel-native", spec.kind))
        n = graph.node_count
        if spec.kind == "ic":
            probabilities = self._edge_probabilities(arrays, spec)
            live = rng.random((batch, arrays.indices.size)) < probabilities
            return WorldBatch("ic", batch, max_hops, {"live": live})
        if spec.kind == "lt":
            thresholds = rng.random((batch, n))
            return WorldBatch("lt", batch, max_hops, {"thresholds": thresholds})
        picks = rng.random((batch, max_hops, n))
        return WorldBatch("opoao", batch, max_hops, {"picks": picks})

    @staticmethod
    def _edge_probabilities(arrays: _GraphArrays, spec: KernelSpec):
        if spec.probability is not None:
            return spec.probability
        weights = arrays.weights
        if weights.size and (weights.min() < 0.0 or weights.max() > 1.0):
            raise KernelError("weighted IC needs edge weights in [0, 1]")
        return weights

    # -- the batched race -------------------------------------------------------

    def _run(
        self,
        graph: IndexedDiGraph,
        spec: KernelSpec,
        worlds: WorldBatch,
        seeds: CascadeSet,
        max_hops: int,
    ) -> BatchOutcome:
        arrays = self._arrays(graph)
        batch = worlds.batch
        n = graph.node_count
        states = np.zeros((batch, n), dtype=np.int8)
        for cascade, members in enumerate(seeds.cascades):
            ids = sorted(members)
            if ids:
                states[:, ids] = cascade + 1
        if spec.kind in ("ic", "doam"):
            live = None
            if spec.kind == "ic":
                live = _batch_array(worlds, "live", np.bool_)
            return self._race(arrays, states, seeds, live, max_hops, worlds)
        if spec.kind == "lt":
            thresholds = _batch_array(worlds, "thresholds", np.float64)
            return self._lt(arrays, states, seeds, thresholds, max_hops)
        picks = _batch_array(worlds, "picks", np.float64)
        return self._opoao(arrays, states, seeds, picks, max_hops)

    def _race(
        self, arrays, states, seeds, live, max_hops, worlds=None
    ) -> BatchOutcome:
        """IC (live-edge mask) and DOAM (``live=None``): BFS race, priority ties.

        The race runs on a *flattened* live adjacency — one virtual graph
        of ``batch * n`` nodes whose node ``w * n + u`` carries world
        ``w``'s live out-edges of ``u`` — built once per world batch and
        cached, so every σ̂ replay skips the per-edge coin lookups
        entirely and BFS expansion only ever touches live edges.
        """
        batch, n = states.shape
        # The flattened adjacency needs O(batch * n) index space; past the
        # cap, fall back to per-hop live-mask filtering instead.
        flat = None
        if batch * n <= _MAX_FLAT_KEYS:
            flat = self._flat_adjacency(worlds, live, arrays, batch, n)
        flat_states = states.reshape(-1)
        order = seeds.priority
        fronts = [_seed_keys(members, batch, n) for members in seeds.cascades]
        counts = [
            np.full(batch, len(members), dtype=np.int64)
            for members in seeds.cascades
        ]
        planes = [[count.copy()] for count in counts]
        for _hop in range(max_hops):
            if all(front.size == 0 for front in fronts):
                break
            if flat is not None:
                reached = [
                    _reach_flat(front, flat, flat_states) for front in fronts
                ]
            else:
                reached = [
                    _reach_masked(front, live, arrays, flat_states, n)
                    for front in fronts
                ]
            # Priority tie-break: a later cascade in the order drops keys
            # an earlier one claimed this hop (all key sets stay unique
            # and pairwise disjoint, so assume_unique holds).
            claimed = _EMPTY
            for cascade in order:
                keys = reached[cascade]
                if claimed.size and keys.size:
                    keys = keys[~np.isin(keys, claimed, assume_unique=True)]
                    reached[cascade] = keys
                claimed = keys if not claimed.size else np.concatenate((claimed, keys))
            if all(keys.size == 0 for keys in reached):
                break
            for cascade, keys in enumerate(reached):
                flat_states[keys] = cascade + 1
                counts[cascade] = counts[cascade] + np.bincount(
                    keys // n, minlength=batch
                )
                planes[cascade].append(counts[cascade].copy())
            fronts = reached
        kind = "doam" if live is None else "ic"
        return BatchOutcome(kind, n, states, cascade_hops=planes)

    @staticmethod
    def _flat_adjacency(worlds, live, arrays, batch: int, n: int):
        """``(indptr, head_keys)`` of the flattened live adjacency.

        For IC the structure is cached inside the :class:`WorldBatch`
        payload (keyed by the graph arrays), because sigma evaluation
        replays the same batch once per candidate. DOAM (``live=None``)
        replicates the full CSR, which for its single world is cheap.
        """
        cached = worlds.data.get("_flat") if worlds is not None else None
        if cached is not None and cached[0] is arrays:
            return cached[1]
        if live is None:
            edge_count = arrays.indices.size
            worlds_offset = np.repeat(
                np.arange(batch, dtype=np.int64) * n, edge_count
            )
            head_keys = worlds_offset + np.tile(arrays.indices, batch)
            counts = np.tile(arrays.out_deg, batch)
        else:
            live_w, live_e = np.nonzero(live)
            # live_e ascends within each world and CSR edges sort by tail,
            # so head_keys lands grouped by (world, tail) in edge order.
            tail_keys = live_w * n + arrays.edge_tails[live_e]
            head_keys = live_w * n + arrays.indices[live_e]
            counts = np.bincount(tail_keys, minlength=batch * n)
        indptr = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        flat = (indptr, head_keys)
        if worlds is not None:
            worlds.data["_flat"] = (arrays, flat)
        return flat

    def _lt(self, arrays, states, seeds, thresholds, max_hops) -> BatchOutcome:
        batch, n = states.shape
        order = seeds.priority
        weights = [
            np.zeros((batch, n), dtype=np.float64) for _ in seeds.cascades
        ]
        fronts = [_seed_pairs(members, batch) for members in seeds.cascades]
        counts = [
            np.full(batch, len(members), dtype=np.int64)
            for members in seeds.cascades
        ]
        planes = [[count.copy()] for count in counts]
        for _hop in range(max_hops):
            if all(front[0].size == 0 for front in fronts):
                break
            # Feed in priority order — each cascade accumulates into its
            # own weight matrix in the reference backend's loop order.
            touched_keys = [
                _feed(fronts[cascade], weights[cascade], arrays, states, n)
                for cascade in order
            ]
            touched = np.unique(np.concatenate(touched_keys))
            if touched.size == 0:
                break
            tw, tu = touched // n, touched % n
            theta = thresholds[tw, tu]
            # The first cascade in priority order whose own in-weight
            # crosses θ claims the node (P priority for K=2).
            crosses = [np.zeros(0, dtype=bool)] * len(fronts)
            prior = np.zeros(touched.size, dtype=bool)
            for cascade in order:
                cross = (weights[cascade][tw, tu] + 1e-12 >= theta) & ~prior
                crosses[cascade] = cross
                prior = prior | cross
            if not prior.any():
                break
            fronts = [
                (tw[crosses[cascade]], tu[crosses[cascade]])
                for cascade in range(len(fronts))
            ]
            for cascade, front in enumerate(fronts):
                states[front] = cascade + 1
                counts[cascade] = counts[cascade] + np.bincount(
                    front[0], minlength=batch
                )
                planes[cascade].append(counts[cascade].copy())
        return BatchOutcome("lt", n, states, cascade_hops=planes)

    def _opoao(self, arrays, states, seeds, picks, max_hops) -> BatchOutcome:
        """OPOAO: *live* pickers tracked as sparse ``world * n + node`` keys.

        Each live picker reads its pick with the same ``floor(r * d)``
        IEEE arithmetic as the reference backend, just gathered for all
        worlds at once. ``remaining`` counts every active node's inactive
        out-neighbors (maintained via the reverse adjacency), so dead
        pickers — whose picks never land, hence never matter — are pruned
        permanently and late-game saturated worlds cost almost nothing.
        It also makes termination exact for free: a live picker exists
        iff some world still has an active -> inactive edge, which is
        precisely the reference backend's stop condition.
        """
        batch, n = states.shape
        indptr, indices, out_deg = arrays.indptr, arrays.indices, arrays.out_deg
        order = seeds.priority
        counts = [
            np.full(batch, len(members), dtype=np.int64)
            for members in seeds.cascades
        ]
        planes = [[count.copy()] for count in counts]
        if indices.size == 0:
            return BatchOutcome("opoao", n, states, cascade_hops=planes)
        flat_states = states.reshape(-1)
        seed_ids = np.asarray(sorted(seeds.all_seeds()), dtype=np.int64)
        # Inactive-out-neighbor counts per (world, node): seeds are the
        # same in every world, so compute once and tile.
        seed_mask = np.zeros(n, dtype=bool)
        seed_mask[seed_ids] = True
        seeded_out = np.bincount(
            arrays.edge_tails[seed_mask[indices]], minlength=n
        )
        remaining = np.tile(out_deg - seeded_out, batch)
        picker_ids = seed_ids[out_deg[seed_ids] > 0]
        act_keys = (
            np.repeat(np.arange(batch, dtype=np.int64) * n, picker_ids.size)
            + np.tile(picker_ids, batch)
        )
        act_keys = act_keys[remaining[act_keys] > 0]
        for hop in range(max_hops):
            if act_keys.size == 0:
                break  # no live picker anywhere <=> no live edge anywhere
            act_u = act_keys % n
            draws = picks[act_keys // n, hop, act_u]
            degrees = out_deg[act_u]
            offsets = (draws * degrees).astype(np.int64)
            np.minimum(offsets, degrees - 1, out=offsets)
            target_keys = act_keys - act_u + indices[indptr[act_u] + offsets]
            hit = flat_states[target_keys] == INACTIVE
            if hit.any():
                hit_keys = target_keys[hit]
                act_states = flat_states[act_keys[hit]]
                reached = [
                    np.unique(hit_keys[act_states == cascade + 1])
                    for cascade in range(len(counts))
                ]
                # Priority resolves conflicts: later cascades in the
                # order drop keys an earlier one claimed this hop.
                claimed = _EMPTY
                for cascade in order:
                    keys = reached[cascade]
                    if claimed.size and keys.size:
                        keys = keys[~np.isin(keys, claimed, assume_unique=True)]
                        reached[cascade] = keys
                    claimed = (
                        keys if not claimed.size
                        else np.concatenate((claimed, keys))
                    )
                for cascade, keys in enumerate(reached):
                    flat_states[keys] = cascade + 1
                    counts[cascade] = counts[cascade] + np.bincount(
                        keys // n, minlength=batch
                    )
                # ``claimed`` concatenates the new keys in priority order
                # (the pre-refactor P-then-R order for K=2).
                new_keys = claimed
                dec_w, _, dec_tails = _edges_of(
                    new_keys // n, new_keys % n,
                    arrays.in_indptr, arrays.in_tails,
                )
                np.subtract.at(remaining, dec_w * n + dec_tails, 1)
                act_keys = np.concatenate(
                    (act_keys, new_keys[out_deg[new_keys % n] > 0])
                )
            for cascade, count in enumerate(counts):
                # Zero-hit hops are wasted repeat-selection steps:
                # recorded, and the race continues (still a live picker).
                planes[cascade].append(count.copy())
            act_keys = act_keys[remaining[act_keys] > 0]
        return BatchOutcome("opoao", n, states, cascade_hops=planes)


def _batch_array(worlds: WorldBatch, key: str, dtype) -> np.ndarray:
    """The batch payload as an ndarray, converted once and cached in place
    (sigma evaluation replays the same batch hundreds of times)."""
    data = worlds.data[key]
    if not isinstance(data, np.ndarray) or data.dtype != dtype:
        data = np.asarray(data, dtype=dtype)
        worlds.data[key] = data
    return data


def _seed_pairs(nodes, batch: int) -> Tuple[np.ndarray, np.ndarray]:
    """Seed frontier as sorted ``(world, node)`` index pairs."""
    ids = np.asarray(sorted(nodes), dtype=np.int64)
    worlds_idx = np.repeat(np.arange(batch, dtype=np.int64), ids.size)
    return worlds_idx, np.tile(ids, batch)


def _seed_keys(nodes, batch: int, n: int) -> np.ndarray:
    """Seed frontier as sorted flat ``world * n + node`` keys."""
    worlds_idx, ids = _seed_pairs(nodes, batch)
    return worlds_idx * n + ids


def _edges_of(
    worlds_idx: np.ndarray,
    nodes: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Ragged CSR gather: all out-edges of ``(world, node)`` pairs.

    Returns ``(world, edge_position, head)`` triples, one per out-edge,
    in (world, node, edge-position) order — the reference backend's loop
    order, which matters when the caller accumulates floats.
    """
    counts = indptr[nodes + 1] - indptr[nodes]
    total = int(counts.sum())
    if total == 0:
        return _EMPTY, _EMPTY, _EMPTY
    cumulative = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        cumulative - counts, counts
    )
    positions = np.repeat(indptr[nodes], counts) + offsets
    return np.repeat(worlds_idx, counts), positions, indices[positions]


def _reach_masked(front_keys, live, arrays, flat_states, n: int) -> np.ndarray:
    """BFS step filtering the live-edge mask per hop (large-batch fallback)."""
    edge_w, edge_pos, heads = _edges_of(
        front_keys // n, front_keys % n, arrays.indptr, arrays.indices
    )
    if edge_w.size == 0:
        return _EMPTY
    keys = edge_w * n + heads
    ok = flat_states[keys] == INACTIVE
    if live is not None:
        ok &= live[edge_w, edge_pos]
    return np.unique(keys[ok])


def _reach_flat(front_keys, flat, flat_states) -> np.ndarray:
    """One BFS step on the flattened live adjacency: unique keys of
    inactive nodes reached from the frontier keys."""
    if front_keys.size == 0:
        return _EMPTY
    indptr, head_keys = flat
    counts = indptr[front_keys + 1] - indptr[front_keys]
    total = int(counts.sum())
    if total == 0:
        return _EMPTY
    cumulative = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        cumulative - counts, counts
    )
    heads = head_keys[np.repeat(indptr[front_keys], counts) + offsets]
    return np.unique(heads[flat_states[heads] == INACTIVE])


def _feed(front, weights, arrays, states, n: int) -> np.ndarray:
    """LT influence push: add ``1/d_in`` from front nodes to their inactive
    out-neighbors (unbuffered, in reference loop order). Returns the
    ``world * n + node`` keys of the touched targets (with duplicates)."""
    front_w, front_u = front
    if front_w.size == 0:
        return _EMPTY
    edge_w, _, heads = _edges_of(
        front_w, front_u, arrays.indptr, arrays.indices
    )
    if edge_w.size == 0:
        return _EMPTY
    ok = states[edge_w, heads] == INACTIVE
    edge_w, heads = edge_w[ok], heads[ok]
    np.add.at(weights, (edge_w, heads), arrays.inv_indeg[heads])
    return edge_w * n + heads
