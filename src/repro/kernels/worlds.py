"""Explicit world samples for the batched diffusion kernels.

A *world* is the entire randomness one diffusion run consumes, drawn up
front so the run itself becomes deterministic:

* **IC** — one liveness bit per edge (the classic live-edge graph; under
  weighted IC each edge's weight is its liveness probability);
* **LT** — one threshold per node;
* **OPOAO** — one uniform float per (hop, node), mapped to an out-neighbor
  pick via ``floor(r * d_out)``;
* **DOAM** — nothing (the model is deterministic).

A :class:`WorldBatch` holds ``batch`` such worlds. Because worlds are
plain data, the *same* batch can be fed to any backend, and two backends
given the same batch must produce **bit-identical** outcomes — the
property the differential test suite pins down. Batches sampled here, via
:func:`sample_shared_worlds`, use the library's :class:`~repro.rng.RngStream`
(world ``b`` draws from ``rng.replica(b)``), so they are reproducible on
any machine with or without NumPy; backends may additionally offer faster
*native* samplers that are only statistically equivalent across backends
(see ``docs/kernels.md``).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.errors import KernelError
from repro.graph.compact import CSRArrays
from repro.kernels.spec import KernelSpec
from repro.rng import RngStream
from repro.utils.validation import check_positive

__all__ = ["WorldBatch", "sample_shared_worlds"]


class WorldBatch:
    """A batch of pre-sampled diffusion worlds.

    Attributes:
        kind: model kind the worlds were sampled for.
        batch: number of worlds.
        max_hops: horizon the worlds cover (only OPOAO consumes per-hop
            randomness, but every batch records the horizon it was
            sampled for so a mismatched run fails loudly).
        data: per-kind payload —
            ``{"live": ...}`` (``batch × edge_count`` bools) for IC,
            ``{"thresholds": ...}`` (``batch × node_count`` floats) for LT,
            ``{"picks": ...}`` (``batch × max_hops × node_count`` floats)
            for OPOAO, ``{}`` for DOAM. Values are nested lists when
            sampled by :func:`sample_shared_worlds` and NumPy arrays when
            sampled natively by the NumPy backend; backends accept both.
    """

    __slots__ = ("kind", "batch", "max_hops", "data")

    def __init__(
        self, kind: str, batch: int, max_hops: int, data: Dict[str, Any]
    ) -> None:
        self.kind = kind
        self.batch = int(check_positive(batch, "batch"))
        self.max_hops = int(check_positive(max_hops, "max_hops"))
        self.data = data

    def check_run(self, kind: str, max_hops: int) -> None:
        """Fail loudly when a batch is replayed under mismatched settings."""
        if kind != self.kind:
            raise KernelError(
                f"world batch sampled for {self.kind!r} cannot run {kind!r}"
            )
        if max_hops > self.max_hops:
            raise KernelError(
                f"world batch covers {self.max_hops} hops; asked to run "
                f"{max_hops}"
            )

    def __repr__(self) -> str:
        return (
            f"WorldBatch(kind={self.kind!r}, batch={self.batch}, "
            f"max_hops={self.max_hops})"
        )


def sample_shared_worlds(
    csr: CSRArrays,
    spec: KernelSpec,
    batch: int,
    max_hops: int,
    seed: int,
) -> WorldBatch:
    """Sample a backend-agnostic :class:`WorldBatch` with :class:`RngStream`.

    World ``b`` draws exclusively from ``RngStream(seed).replica(b)``:

    * IC — one uniform per edge, in CSR edge order; live iff ``r < p_e``;
    * LT — one threshold per node, in node-id order;
    * OPOAO — ``max_hops × node_count`` uniforms, hop-major.

    The draw order is part of the batch's contract: any sampler claiming
    to be "shared" must reproduce it exactly.
    """
    rng = RngStream(seed, name="kernel-worlds")
    n = csr.node_count
    if spec.kind == "doam":
        return WorldBatch("doam", batch, max_hops, {})
    if spec.kind == "ic":
        probabilities = _edge_probabilities(csr, spec)
        live: List[List[bool]] = []
        for world in range(batch):
            stream = rng.replica(world)
            live.append([stream.random() < p for p in probabilities])
        return WorldBatch("ic", batch, max_hops, {"live": live})
    if spec.kind == "lt":
        thresholds = [
            [rng.replica(world).random() for _ in range(n)]
            for world in range(batch)
        ]
        return WorldBatch("lt", batch, max_hops, {"thresholds": thresholds})
    if spec.kind == "opoao":
        picks: List[List[List[float]]] = []
        for world in range(batch):
            stream = rng.replica(world)
            picks.append(
                [[stream.random() for _ in range(n)] for _ in range(max_hops)]
            )
        return WorldBatch("opoao", batch, max_hops, {"picks": picks})
    raise KernelError(f"unknown kernel kind {spec.kind!r}")


def _edge_probabilities(csr: CSRArrays, spec: KernelSpec) -> List[float]:
    """Per-edge liveness probabilities for IC, in CSR edge order."""
    if spec.probability is not None:
        return [spec.probability] * csr.edge_count
    for weight in csr.weights:
        if not 0.0 <= weight <= 1.0:
            raise KernelError(
                f"weighted IC needs edge weights in [0, 1]; got {weight!r}"
            )
    return list(csr.weights)
