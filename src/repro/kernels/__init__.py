"""Batched diffusion kernels behind a pluggable backend registry.

Public API:

* :func:`~repro.kernels.registry.resolve_backend` /
  :func:`~repro.kernels.registry.available_backends` — pick an engine
  (``"python"`` always works; ``"numpy"`` needs the ``perf`` extra;
  ``"auto"`` prefers the fastest available).
* :class:`~repro.kernels.spec.KernelSpec` /
  :func:`~repro.kernels.spec.spec_for_model` — reduce a diffusion model
  to its world-sample semantics.
* :class:`~repro.kernels.worlds.WorldBatch` /
  :func:`~repro.kernels.worlds.sample_shared_worlds` — pre-sampled
  randomness, portable across backends.
* :class:`~repro.kernels.base.KernelBackend` /
  :class:`~repro.kernels.base.BatchOutcome` — the engine contract.
* :class:`~repro.kernels.sigma.BatchedSigmaEvaluator` — kernel-backed
  σ(A) estimation for the greedy/CELF selectors.

See ``docs/kernels.md`` for backend selection and the bit-identical vs
statistically-equivalent guarantees.
"""

from repro.kernels.base import BatchOutcome, KernelBackend
from repro.kernels.registry import (
    BACKEND_AUTO,
    available_backends,
    register_backend,
    resolve_backend,
)
from repro.kernels.sigma import BatchedSigmaEvaluator
from repro.kernels.spec import KERNEL_KINDS, KernelSpec, spec_for_model
from repro.kernels.worlds import WorldBatch, sample_shared_worlds

__all__ = [
    "BACKEND_AUTO",
    "BatchOutcome",
    "BatchedSigmaEvaluator",
    "KERNEL_KINDS",
    "KernelBackend",
    "KernelSpec",
    "WorldBatch",
    "available_backends",
    "register_backend",
    "resolve_backend",
    "sample_shared_worlds",
    "spec_for_model",
]
