"""Pure-Python reference kernel backend.

Runs each world of the batch as an explicit deterministic race over the
pre-sampled randomness. This is the semantic ground truth the NumPy
backend is tested against — every rule here (P-priority, the LT
``+1e-12`` crossing tolerance, OPOAO's repeat selection and liveness
termination) mirrors the per-run models in :mod:`repro.diffusion`, just
driven by a :class:`~repro.kernels.worlds.WorldBatch` instead of a live
RNG. It is also the fallback engine when NumPy is not installed, keeping
the core zero-dependency.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.diffusion.base import INACTIVE, INFECTED, PROTECTED, SeedSets
from repro.graph.compact import IndexedDiGraph
from repro.kernels.base import BatchOutcome, KernelBackend, seeded_states
from repro.kernels.spec import KernelSpec
from repro.kernels.worlds import WorldBatch

__all__ = ["PythonKernelBackend"]

#: (final states, cumulative infected per hop, cumulative protected per hop)
WorldRun = Tuple[List[int], List[int], List[int]]


class PythonKernelBackend(KernelBackend):
    """Zero-dependency reference implementation of the batched kernels."""

    name = "python"

    def _run(
        self,
        graph: IndexedDiGraph,
        spec: KernelSpec,
        worlds: WorldBatch,
        seeds: SeedSets,
        max_hops: int,
    ) -> BatchOutcome:
        runs: List[WorldRun] = []
        if spec.kind in ("ic", "doam"):
            live = worlds.data.get("live")
            for world in range(worlds.batch):
                live_row = None if live is None else live[world]
                runs.append(_race_world(graph, live_row, seeds, max_hops))
        elif spec.kind == "lt":
            thresholds = worlds.data["thresholds"]
            for world in range(worlds.batch):
                runs.append(
                    _lt_world(graph, thresholds[world], seeds, max_hops)
                )
        else:  # opoao (spec validated upstream)
            picks = worlds.data["picks"]
            for world in range(worlds.batch):
                runs.append(_opoao_world(graph, picks[world], seeds, max_hops))
        return _assemble(spec.kind, graph.node_count, runs)


def _assemble(
    kind: str, node_count: int, runs: Sequence[WorldRun]
) -> BatchOutcome:
    """Transpose per-world series to the hop-major layout, padding short
    worlds with their final (frozen) counts so every hop has one entry per
    world — the same shape the vectorized backend produces natively."""
    length = max(len(infected) for _, infected, _ in runs)
    infected_hops: List[List[int]] = []
    protected_hops: List[List[int]] = []
    for hop in range(length):
        infected_hops.append(
            [inf[min(hop, len(inf) - 1)] for _, inf, _ in runs]
        )
        protected_hops.append(
            [prot[min(hop, len(prot) - 1)] for _, _, prot in runs]
        )
    states = [run_states for run_states, _, _ in runs]
    return BatchOutcome(kind, node_count, states, infected_hops, protected_hops)


def _race_world(
    graph: IndexedDiGraph,
    live_row,
    seeds: SeedSets,
    max_hops: int,
) -> WorldRun:
    """IC/DOAM: simultaneous BFS race on the live subgraph, P wins ties.

    ``live_row`` is indexed by CSR edge position (``None`` = every edge
    live, which is exactly DOAM).
    """
    out = graph.out
    indptr = graph.csr().indptr
    states = seeded_states(graph.node_count, seeds)
    infected_total = len(seeds.rumors)
    protected_total = len(seeds.protectors)
    infected_series = [infected_total]
    protected_series = [protected_total]
    protected_front: List[int] = sorted(seeds.protectors)
    infected_front: List[int] = sorted(seeds.rumors)

    for _hop in range(max_hops):
        if not protected_front and not infected_front:
            break
        protected_targets: Set[int] = set()
        for node in protected_front:
            base = indptr[node]
            for position, neighbor in enumerate(out[node]):
                if states[neighbor] == INACTIVE and (
                    live_row is None or live_row[base + position]
                ):
                    protected_targets.add(neighbor)
        infected_targets: Set[int] = set()
        for node in infected_front:
            base = indptr[node]
            for position, neighbor in enumerate(out[node]):
                if (
                    states[neighbor] == INACTIVE
                    and neighbor not in protected_targets
                    and (live_row is None or live_row[base + position])
                ):
                    infected_targets.add(neighbor)
        if not protected_targets and not infected_targets:
            break
        for node in protected_targets:
            states[node] = PROTECTED
        for node in infected_targets:
            states[node] = INFECTED
        protected_total += len(protected_targets)
        infected_total += len(infected_targets)
        infected_series.append(infected_total)
        protected_series.append(protected_total)
        protected_front = sorted(protected_targets)
        infected_front = sorted(infected_targets)
    return states, infected_series, protected_series


def _lt_world(
    graph: IndexedDiGraph,
    thresholds,
    seeds: SeedSets,
    max_hops: int,
) -> WorldRun:
    """Competitive LT on fixed thresholds (per-cascade crossing, P priority).

    The accumulation order (protected front fed first, fronts walked in
    ascending node order, out-rows in CSR order) is part of the contract:
    the NumPy backend reproduces the same float addition order so shared
    worlds give bit-identical sums.
    """
    n = graph.node_count
    out = graph.out
    states = seeded_states(n, seeds)
    protected_weight = [0.0] * n
    infected_weight = [0.0] * n

    def feed(front: List[int], weights: List[float]) -> Set[int]:
        touched: Set[int] = set()
        for node in front:
            for neighbor in out[node]:
                if states[neighbor] != INACTIVE:
                    continue
                weights[neighbor] += 1.0 / max(1, graph.in_degree(neighbor))
                touched.add(neighbor)
        return touched

    infected_total = len(seeds.rumors)
    protected_total = len(seeds.protectors)
    infected_series = [infected_total]
    protected_series = [protected_total]
    protected_front: List[int] = sorted(seeds.protectors)
    infected_front: List[int] = sorted(seeds.rumors)

    for _hop in range(max_hops):
        if not protected_front and not infected_front:
            break
        touched = feed(protected_front, protected_weight)
        touched |= feed(infected_front, infected_weight)
        new_protected: List[int] = []
        new_infected: List[int] = []
        for node in sorted(touched):
            crosses_protected = (
                protected_weight[node] + 1e-12 >= thresholds[node]
            )
            crosses_infected = infected_weight[node] + 1e-12 >= thresholds[node]
            if crosses_protected:  # P priority when both cascades cross
                new_protected.append(node)
            elif crosses_infected:
                new_infected.append(node)
        if not new_protected and not new_infected:
            break
        for node in new_protected:
            states[node] = PROTECTED
        for node in new_infected:
            states[node] = INFECTED
        protected_total += len(new_protected)
        infected_total += len(new_infected)
        infected_series.append(infected_total)
        protected_series.append(protected_total)
        protected_front = new_protected
        infected_front = new_infected
    return states, infected_series, protected_series


def _opoao_world(
    graph: IndexedDiGraph,
    picks,
    seeds: SeedSets,
    max_hops: int,
) -> WorldRun:
    """OPOAO on a fixed pick table: ``picks[hop][node]`` is the node's
    uniform draw for that step, mapped to out-neighbor ``floor(r * d_out)``.

    A step with zero successful activations does **not** end the run
    (repeat selection may succeed later); the run ends when no active
    node has an inactive out-neighbor left. Every active node reads its
    pick every step — a node whose out-neighbors are all active picks a
    wasted target, which is what the vectorized backend computes too, so
    both backends consume the table identically.
    """
    out = graph.out
    states = seeded_states(graph.node_count, seeds)
    active: List[int] = sorted(seeds.rumors | seeds.protectors)

    infected_total = len(seeds.rumors)
    protected_total = len(seeds.protectors)
    infected_series = [infected_total]
    protected_series = [protected_total]

    for hop in range(max_hops):
        row = picks[hop]
        alive = False
        protected_targets: Set[int] = set()
        infected_targets: Set[int] = set()
        for node in active:
            neighbors = out[node]
            if not neighbors:
                continue
            if not alive and any(
                states[neighbor] == INACTIVE for neighbor in neighbors
            ):
                alive = True
            degree = len(neighbors)
            index = int(row[node] * degree)
            if index >= degree:  # r == 1.0 cannot happen, but stay safe
                index = degree - 1
            target = neighbors[index]
            if states[target] != INACTIVE:
                continue  # repeat selection wasted on an active neighbor
            if states[node] == PROTECTED:
                protected_targets.add(target)
            else:
                infected_targets.add(target)
        if not alive:
            break  # no active node can ever activate anything again
        infected_targets -= protected_targets  # P-priority on conflicts
        for node in protected_targets:
            states[node] = PROTECTED
        for node in infected_targets:
            states[node] = INFECTED
        active.extend(sorted(protected_targets | infected_targets))
        protected_total += len(protected_targets)
        infected_total += len(infected_targets)
        infected_series.append(infected_total)
        protected_series.append(protected_total)
    return states, infected_series, protected_series
