"""Pure-Python reference kernel backend.

Runs each world of the batch as an explicit deterministic race over the
pre-sampled randomness. This is the semantic ground truth the NumPy
backend is tested against — every rule here (priority tie-breaking, the
LT ``+1e-12`` crossing tolerance, OPOAO's repeat selection and liveness
termination) mirrors the per-run models in :mod:`repro.diffusion`, just
driven by a :class:`~repro.kernels.worlds.WorldBatch` instead of a live
RNG. It is also the fallback engine when NumPy is not installed, keeping
the core zero-dependency.

All races are K-cascade: fronts advance in the
:class:`~repro.diffusion.base.CascadeSet` priority order, and a target
claimed by an earlier cascade this hop is invisible to later ones. With
the default ``positives-first`` order and K=2 this is bit-identical to
the historical two-cascade race (P wins ties).
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.diffusion.base import INACTIVE, CascadeSet
from repro.graph.compact import IndexedDiGraph
from repro.kernels.base import BatchOutcome, KernelBackend, seeded_states
from repro.kernels.spec import KernelSpec
from repro.kernels.worlds import WorldBatch

__all__ = ["PythonKernelBackend"]

#: (final states, per-cascade cumulative series — one list per cascade)
WorldRun = Tuple[List[int], List[List[int]]]


class PythonKernelBackend(KernelBackend):
    """Zero-dependency reference implementation of the batched kernels."""

    name = "python"

    def _run(
        self,
        graph: IndexedDiGraph,
        spec: KernelSpec,
        worlds: WorldBatch,
        seeds: CascadeSet,
        max_hops: int,
    ) -> BatchOutcome:
        runs: List[WorldRun] = []
        if spec.kind in ("ic", "doam"):
            live = worlds.data.get("live")
            for world in range(worlds.batch):
                live_row = None if live is None else live[world]
                runs.append(_race_world(graph, live_row, seeds, max_hops))
        elif spec.kind == "lt":
            thresholds = worlds.data["thresholds"]
            for world in range(worlds.batch):
                runs.append(
                    _lt_world(graph, thresholds[world], seeds, max_hops)
                )
        else:  # opoao (spec validated upstream)
            picks = worlds.data["picks"]
            for world in range(worlds.batch):
                runs.append(_opoao_world(graph, picks[world], seeds, max_hops))
        return _assemble(spec.kind, graph.node_count, runs, seeds.cascade_count)


def _assemble(
    kind: str, node_count: int, runs: Sequence[WorldRun], cascade_count: int
) -> BatchOutcome:
    """Transpose per-world series to the hop-major layout, padding short
    worlds with their final (frozen) counts so every hop has one entry per
    world — the same shape the vectorized backend produces natively."""
    length = max(len(series[0]) for _, series in runs)
    planes: List[List[List[int]]] = []
    for cascade in range(cascade_count):
        plane: List[List[int]] = []
        for hop in range(length):
            plane.append(
                [
                    series[cascade][min(hop, len(series[cascade]) - 1)]
                    for _, series in runs
                ]
            )
        planes.append(plane)
    states = [run_states for run_states, _ in runs]
    return BatchOutcome(kind, node_count, states, cascade_hops=planes)


def _race_world(
    graph: IndexedDiGraph,
    live_row,
    seeds: CascadeSet,
    max_hops: int,
) -> WorldRun:
    """IC/DOAM: simultaneous BFS race on the live subgraph, priority ties.

    ``live_row`` is indexed by CSR edge position (``None`` = every edge
    live, which is exactly DOAM).
    """
    out = graph.out
    indptr = graph.csr().indptr
    states = seeded_states(graph.node_count, seeds)
    order = seeds.priority
    totals = [len(cascade) for cascade in seeds.cascades]
    series: List[List[int]] = [[total] for total in totals]
    fronts: List[List[int]] = [sorted(cascade) for cascade in seeds.cascades]

    for _hop in range(max_hops):
        if not any(fronts):
            break
        targets: List[Set[int]] = [set() for _ in fronts]
        claimed: Set[int] = set()
        for cascade in order:
            chosen = targets[cascade]
            for node in fronts[cascade]:
                base = indptr[node]
                for position, neighbor in enumerate(out[node]):
                    if (
                        states[neighbor] == INACTIVE
                        and neighbor not in claimed
                        and (live_row is None or live_row[base + position])
                    ):
                        chosen.add(neighbor)
            claimed |= chosen
        if not claimed:
            break
        for cascade, chosen in enumerate(targets):
            state = cascade + 1
            for node in chosen:
                states[node] = state
            totals[cascade] += len(chosen)
            series[cascade].append(totals[cascade])
        fronts = [sorted(chosen) for chosen in targets]
    return states, series


def _lt_world(
    graph: IndexedDiGraph,
    thresholds,
    seeds: CascadeSet,
    max_hops: int,
) -> WorldRun:
    """Competitive LT on fixed thresholds (per-cascade crossing, priority).

    The accumulation order (fronts fed in priority order — protected
    first for K=2 — fronts walked in ascending node order, out-rows in
    CSR order) is part of the contract: the NumPy backend reproduces the
    same float addition order so shared worlds give bit-identical sums.
    """
    n = graph.node_count
    out = graph.out
    states = seeded_states(n, seeds)
    order = seeds.priority
    cascade_weight: List[List[float]] = [[0.0] * n for _ in seeds.cascades]

    def feed(front: List[int], weights: List[float]) -> Set[int]:
        touched: Set[int] = set()
        for node in front:
            for neighbor in out[node]:
                if states[neighbor] != INACTIVE:
                    continue
                weights[neighbor] += 1.0 / max(1, graph.in_degree(neighbor))
                touched.add(neighbor)
        return touched

    totals = [len(cascade) for cascade in seeds.cascades]
    series: List[List[int]] = [[total] for total in totals]
    fronts: List[List[int]] = [sorted(cascade) for cascade in seeds.cascades]

    for _hop in range(max_hops):
        if not any(fronts):
            break
        touched: Set[int] = set()
        for cascade in order:
            touched |= feed(fronts[cascade], cascade_weight[cascade])
        news: List[List[int]] = [[] for _ in fronts]
        for node in sorted(touched):
            for cascade in order:
                if cascade_weight[cascade][node] + 1e-12 >= thresholds[node]:
                    news[cascade].append(node)
                    break
        if not any(news):
            break
        for cascade, new in enumerate(news):
            state = cascade + 1
            for node in new:
                states[node] = state
            totals[cascade] += len(new)
            series[cascade].append(totals[cascade])
        fronts = news
    return states, series


def _opoao_world(
    graph: IndexedDiGraph,
    picks,
    seeds: CascadeSet,
    max_hops: int,
) -> WorldRun:
    """OPOAO on a fixed pick table: ``picks[hop][node]`` is the node's
    uniform draw for that step, mapped to out-neighbor ``floor(r * d_out)``.

    A step with zero successful activations does **not** end the run
    (repeat selection may succeed later); the run ends when no active
    node has an inactive out-neighbor left. Every active node reads its
    pick every step — a node whose out-neighbors are all active picks a
    wasted target, which is what the vectorized backend computes too, so
    both backends consume the table identically.
    """
    out = graph.out
    states = seeded_states(graph.node_count, seeds)
    order = seeds.priority
    active: List[int] = sorted(seeds.all_seeds())

    totals = [len(cascade) for cascade in seeds.cascades]
    series: List[List[int]] = [[total] for total in totals]

    for hop in range(max_hops):
        row = picks[hop]
        alive = False
        targets: List[Set[int]] = [set() for _ in seeds.cascades]
        for node in active:
            neighbors = out[node]
            if not neighbors:
                continue
            if not alive and any(
                states[neighbor] == INACTIVE for neighbor in neighbors
            ):
                alive = True
            degree = len(neighbors)
            index = int(row[node] * degree)
            if index >= degree:  # r == 1.0 cannot happen, but stay safe
                index = degree - 1
            target = neighbors[index]
            if states[target] != INACTIVE:
                continue  # repeat selection wasted on an active neighbor
            targets[states[node] - 1].add(target)
        if not alive:
            break  # no active node can ever activate anything again
        claimed: Set[int] = set()
        for cascade in order:  # priority resolves conflicts
            targets[cascade] -= claimed
            claimed |= targets[cascade]
        for cascade, chosen in enumerate(targets):
            state = cascade + 1
            for node in chosen:
                states[node] = state
            totals[cascade] += len(chosen)
            series[cascade].append(totals[cascade])
        active.extend(sorted(claimed))
    return states, series
