"""Kernel model descriptors.

The batched kernels do not run :class:`~repro.diffusion.base.DiffusionModel`
objects — they run *world-sample semantics*: a model is reduced to the
random world it samples (live edges, thresholds, or pick tables) plus a
deterministic race consuming that world. :class:`KernelSpec` is the small
value object naming which semantics to run; :func:`spec_for_model` maps
the library's model objects onto it (and refuses models that have no
batched equivalent, such as the weighted-OPOAO extension).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import UnsupportedModelError

__all__ = ["KernelSpec", "spec_for_model", "KERNEL_KINDS"]

#: Model kinds the kernel backends implement.
KERNEL_KINDS = ("ic", "lt", "opoao", "doam")


class KernelSpec:
    """Which batched semantics to run, plus its scalar parameters.

    Attributes:
        kind: one of :data:`KERNEL_KINDS`.
        probability: IC's uniform edge probability; ``None`` under
            weighted IC (each edge's weight is its probability).
    """

    __slots__ = ("kind", "probability")

    def __init__(self, kind: str, probability: Optional[float] = None) -> None:
        if kind not in KERNEL_KINDS:
            raise UnsupportedModelError(
                f"kernel kind must be one of {KERNEL_KINDS}, got {kind!r}"
            )
        self.kind = kind
        self.probability = probability

    @property
    def stochastic(self) -> bool:
        """Whether the semantics consume a sampled world (DOAM does not)."""
        return self.kind != "doam"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, KernelSpec)
            and self.kind == other.kind
            and self.probability == other.probability
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.probability))

    def __repr__(self) -> str:
        if self.kind == "ic":
            return f"KernelSpec('ic', probability={self.probability})"
        return f"KernelSpec({self.kind!r})"


def spec_for_model(model) -> KernelSpec:
    """Reduce a :class:`DiffusionModel` instance to its kernel spec.

    Raises:
        UnsupportedModelError: for models the kernels do not implement
            (weighted OPOAO, the no-repeat OPOAO variant, timestamped
            models, ...). Callers wanting a graceful fallback catch this
            and keep the per-run Python path.
    """
    from repro.diffusion.doam import DOAMModel
    from repro.diffusion.ic import CompetitiveICModel
    from repro.diffusion.lt import CompetitiveLTModel
    from repro.diffusion.opoao import OPOAOModel

    if isinstance(model, DOAMModel):
        return KernelSpec("doam")
    if isinstance(model, CompetitiveICModel):
        return KernelSpec("ic", probability=model.probability)
    if isinstance(model, CompetitiveLTModel):
        return KernelSpec("lt")
    if isinstance(model, OPOAOModel):
        if model.weighted:
            raise UnsupportedModelError(
                "weighted OPOAO has no batched kernel; use the per-run model"
            )
        return KernelSpec("opoao")
    raise UnsupportedModelError(
        f"model {model!r} has no batched kernel equivalent"
    )
