"""Kernel backend registry: named engines with graceful degradation.

The library core is zero-dependency, so the vectorized backend is an
optional extra: ``pip install repro-lcrb[perf]``. This module is the one
place that knows which backends exist and what they need:

* ``resolve_backend("python")`` — always works;
* ``resolve_backend("numpy")`` — raises
  :class:`~repro.errors.BackendUnavailableError` (with the install hint)
  when NumPy is missing;
* ``resolve_backend("auto")`` — the fastest backend that actually loads,
  falling back to pure Python silently.

Backend instances are cached (the NumPy backend keeps a per-graph array
cache worth preserving across calls); third parties can
:func:`register_backend` their own engines under new names.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import BackendUnavailableError, KernelError
from repro.kernels.base import KernelBackend

__all__ = [
    "available_backends",
    "register_backend",
    "resolve_backend",
    "BACKEND_AUTO",
]

#: Resolve to the fastest importable backend.
BACKEND_AUTO = "auto"

#: Preference order for ``auto`` resolution (fastest first).
_AUTO_ORDER = ("numpy", "python")

_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {}
_INSTANCES: Dict[str, KernelBackend] = {}


def register_backend(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register (or replace) a backend factory under ``name``.

    The factory runs on first :func:`resolve_backend` for that name; an
    :exc:`ImportError` it raises is reported as
    :class:`BackendUnavailableError`.
    """
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def _make_python() -> KernelBackend:
    from repro.kernels.python_backend import PythonKernelBackend

    return PythonKernelBackend()


def _make_numpy() -> KernelBackend:
    from repro.kernels.numpy_backend import NumpyKernelBackend

    return NumpyKernelBackend()


register_backend("python", _make_python)
register_backend("numpy", _make_numpy)


def resolve_backend(name: Optional[str] = BACKEND_AUTO) -> KernelBackend:
    """The backend registered under ``name`` (``None`` == ``"auto"``).

    Raises:
        BackendUnavailableError: the backend exists but its dependency is
            not installed (never raised for ``"auto"``, which falls back).
        KernelError: no backend of that name exists.
    """
    if name is None or name == BACKEND_AUTO:
        for candidate in _AUTO_ORDER:
            try:
                return resolve_backend(candidate)
            except BackendUnavailableError:
                continue
        raise KernelError("no kernel backend could be loaded")  # unreachable
    cached = _INSTANCES.get(name)
    if cached is not None:
        return cached
    factory = _FACTORIES.get(name)
    if factory is None:
        raise KernelError(
            f"unknown kernel backend {name!r}; "
            f"registered: {sorted(_FACTORIES)}"
        )
    try:
        instance = factory()
    except ImportError as error:
        raise BackendUnavailableError(
            f"kernel backend {name!r} needs an optional dependency "
            f"({error}); install the 'perf' extra: pip install repro-lcrb[perf]"
        ) from error
    _INSTANCES[name] = instance
    return instance


def available_backends() -> List[str]:
    """Names of backends that load on this machine, in registration order."""
    names: List[str] = []
    for name in _FACTORIES:
        try:
            resolve_backend(name)
        except BackendUnavailableError:
            continue
        names.append(name)
    return names
