"""Argument validation helpers.

Each helper validates one numeric constraint and returns the (possibly
coerced) value, so call sites stay one-liners::

    self.alpha = check_fraction(alpha, "alpha", exclusive=True)

All failures raise :class:`repro.errors.ValidationError`, which is also a
``ValueError`` so generic callers behave as expected.
"""

from __future__ import annotations

from typing import Union

from repro.errors import ValidationError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_fraction",
    "check_int",
]

Number = Union[int, float]


def check_int(value: object, name: str) -> int:
    """Require ``value`` to be an integer (bools rejected); return it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{name} must be an int, got {value!r}")
    return value


def check_positive(value: Number, name: str) -> Number:
    """Require ``value > 0``; return it."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a number, got {value!r}")
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: Number, name: str) -> Number:
    """Require ``value >= 0``; return it."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a number, got {value!r}")
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(value: Number, name: str) -> float:
    """Require ``0 <= value <= 1``; return it as float."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a number, got {value!r}")
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def check_fraction(value: Number, name: str, exclusive: bool = False) -> float:
    """Require a fraction in ``[0, 1]`` (or ``(0, 1)`` if ``exclusive``).

    The paper's protection level alpha for LCRB-P is strictly inside (0, 1)
    (Definition 3); pass ``exclusive=True`` to enforce that.
    """
    value = check_probability(value, name)
    if exclusive and (value == 0.0 or value == 1.0):
        raise ValidationError(f"{name} must be strictly inside (0, 1), got {value!r}")
    return value
