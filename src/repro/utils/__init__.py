"""General-purpose utilities shared across the library.

Submodules:

* :mod:`repro.utils.validation` — argument checking helpers that raise
  :class:`repro.errors.ValidationError` with actionable messages.
* :mod:`repro.utils.timer` — wall-clock timers for experiment reporting.
* :mod:`repro.utils.tables` — plain-text table rendering for experiment
  output (no third-party dependency).
* :mod:`repro.utils.stats` — small statistics helpers (mean, stdev,
  confidence intervals) used by the Monte-Carlo harness.
"""

from repro.utils.stats import RunningStats, mean, stdev
from repro.utils.tables import format_series, format_table
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "RunningStats",
    "mean",
    "stdev",
    "format_series",
    "format_table",
    "Timer",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
