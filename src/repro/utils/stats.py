"""Small statistics helpers for Monte-Carlo aggregation.

The simulation harness aggregates per-hop infected counts over many random
replicas. :class:`RunningStats` implements Welford's online algorithm so the
harness never materialises all samples, and :func:`confidence_interval`
provides the half-width the experiment reports print.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

__all__ = [
    "mean",
    "stdev",
    "RunningStats",
    "confidence_interval",
    "bootstrap_mean_diff",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on an empty sequence."""
    if not values:
        raise ValueError("mean() of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1 denominator); 0.0 for n < 2."""
    n = len(values)
    if n < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (n - 1))


class RunningStats:
    """Welford online mean/variance accumulator.

    Example:
        >>> rs = RunningStats()
        >>> for v in (1.0, 2.0, 3.0):
        ...     rs.add(v)
        >>> rs.mean
        2.0
    """

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the accumulator."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold many samples into the accumulator."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        """Mean of the samples seen so far (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0.0 for n < 2."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator equivalent to seeing both sample sets."""
        merged = RunningStats()
        if self.count == 0:
            merged.count, merged._mean, merged._m2 = other.count, other._mean, other._m2
        elif other.count == 0:
            merged.count, merged._mean, merged._m2 = self.count, self._mean, self._m2
        else:
            total = self.count + other.count
            delta = other._mean - self._mean
            merged.count = total
            merged._mean = self._mean + delta * other.count / total
            merged._m2 = (
                self._m2 + other._m2 + delta * delta * self.count * other.count / total
            )
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged

    def __repr__(self) -> str:
        return f"RunningStats(n={self.count}, mean={self.mean:.4g}, sd={self.stdev:.4g})"


def bootstrap_mean_diff(
    left: Sequence[float],
    right: Sequence[float],
    rng,
    iterations: int = 2000,
    confidence: float = 0.95,
) -> Tuple[float, Tuple[float, float], float]:
    """Bootstrap the difference of means ``mean(left) - mean(right)``.

    Used to decide whether an algorithm comparison ("Greedy infected fewer
    nodes than Proximity") is resolved by the Monte-Carlo sample or still
    noise.

    Args:
        left / right: independent samples (e.g. per-replica final infected
            counts of two algorithms).
        rng: an :class:`repro.rng.RngStream` (consumed).
        iterations: bootstrap resamples.
        confidence: two-sided interval mass.

    Returns:
        ``(observed_diff, (lo, hi), p_left_smaller)`` where
        ``p_left_smaller`` is the bootstrap probability that left's mean
        is strictly below right's.
    """
    if not left or not right:
        raise ValueError("bootstrap needs non-empty samples on both sides")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if iterations < 10:
        raise ValueError("iterations must be >= 10")
    observed = mean(list(left)) - mean(list(right))
    diffs = []
    n_left, n_right = len(left), len(right)
    for _ in range(iterations):
        resample_left = [left[rng.randrange(n_left)] for _ in range(n_left)]
        resample_right = [right[rng.randrange(n_right)] for _ in range(n_right)]
        diffs.append(mean(resample_left) - mean(resample_right))
    diffs.sort()
    tail = (1.0 - confidence) / 2.0
    lo_index = int(tail * iterations)
    hi_index = min(iterations - 1, int((1.0 - tail) * iterations))
    p_left_smaller = sum(1 for d in diffs if d < 0) / iterations
    return observed, (diffs[lo_index], diffs[hi_index]), p_left_smaller


def confidence_interval(stats: RunningStats, z: float = 1.96) -> Tuple[float, float]:
    """Normal-approximation confidence interval ``(lo, hi)`` for the mean.

    Uses z=1.96 (95%) by default; adequate for the replica counts the
    benchmarks use (>= 30).
    """
    if stats.count == 0:
        return (0.0, 0.0)
    half = z * stats.stdev / math.sqrt(stats.count)
    return (stats.mean - half, stats.mean + half)
