"""Wall-clock timing for experiments (compatibility shim).

The :class:`Timer` implementation moved to :mod:`repro.obs.timers`,
where it doubles as the timer metric of the observability registry;
this module re-exports it so existing imports keep working.

Example:
    >>> from repro.utils.timer import Timer
    >>> timer = Timer("selection")
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.calls
    1
"""

from __future__ import annotations

from repro.obs.timers import Timer

__all__ = ["Timer"]
