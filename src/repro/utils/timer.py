"""Wall-clock timing for experiments.

:class:`Timer` is a context manager that records elapsed seconds; it can be
re-entered to accumulate across several timed sections, which is how the
experiment harness attributes time to pipeline stages.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["Timer"]


class Timer:
    """Accumulating wall-clock timer.

    Example:
        >>> timer = Timer("selection")
        >>> with timer:
        ...     _ = sum(range(1000))
        >>> timer.elapsed >= 0.0
        True
    """

    __slots__ = ("name", "elapsed", "calls", "_started_at")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.elapsed = 0.0
        self.calls = 0
        self._started_at: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._started_at = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._started_at is not None, "Timer exited without entering"
        self.elapsed += time.perf_counter() - self._started_at
        self.calls += 1
        self._started_at = None

    @property
    def running(self) -> bool:
        """True while inside a ``with`` block."""
        return self._started_at is not None

    def reset(self) -> None:
        """Zero the accumulated time and call count."""
        self.elapsed = 0.0
        self.calls = 0
        self._started_at = None

    def __repr__(self) -> str:
        label = self.name or "timer"
        return f"Timer({label}: {self.elapsed:.3f}s over {self.calls} call(s))"
