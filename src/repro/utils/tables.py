"""Plain-text rendering of experiment tables and hop-by-hop series.

The benchmark harness prints the same rows/series the paper reports; these
formatters keep that output aligned and dependency-free.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: column names.
        rows: row cells; floats are formatted to one decimal, matching the
            paper's Table I presentation.
        title: optional title line above the table.

    Returns:
        The table as a single string (no trailing newline).
    """
    text_rows = [[_cell(value) for value in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    separator = "-+-".join("-" * w for w in widths)
    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(separator)
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def format_series(
    series: Mapping[str, Sequence[float]],
    x_label: str = "hop",
    title: str = "",
) -> str:
    """Render hop-indexed series (one column per algorithm) as a table.

    Args:
        series: mapping from series name (e.g. ``"Greedy"``) to the per-hop
            values; all series must have equal length.
        x_label: name of the index column.
        title: optional title line.
    """
    if not series:
        raise ValueError("format_series() needs at least one series")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    (length,) = lengths
    headers = [x_label, *series.keys()]
    rows = [
        [hop, *(series[name][hop] for name in series)]
        for hop in range(length)
    ]
    return format_table(headers, rows, title=title)
