"""Terminal line charts for hop-indexed series.

The paper's figures are log-scale line plots; in a terminal-only
environment the closest faithful rendering is a character grid. The CLI's
``simulate`` command and the examples use this to show curve *shapes*
(crossovers, flattening) without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Sequence

__all__ = ["line_chart"]

#: distinct plot glyphs, assigned to series in order.
_GLYPHS = "*o+x#@%&"


def line_chart(
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    log_scale: bool = False,
    title: str = "",
) -> str:
    """Render series as an ASCII chart (x = index/hop, y = value).

    Args:
        series: name -> values; equal lengths required.
        height: chart rows (y resolution).
        log_scale: plot log10(1 + y), mirroring the paper's log-time
            charts ("Since the number of infected nodes is large, we adopt
            the log-time chart").
        title: optional heading.

    Returns:
        The chart plus a legend, as one string.
    """
    if not series:
        raise ValueError("line_chart needs at least one series")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    (width,) = lengths
    if width == 0:
        raise ValueError("series must not be empty")
    if height < 2:
        raise ValueError("height must be >= 2")

    def transform(value: float) -> float:
        if log_scale:
            return math.log10(1.0 + max(0.0, value))
        return value

    transformed = {
        name: [transform(v) for v in values] for name, values in series.items()
    }
    top = max(max(values) for values in transformed.values())
    bottom = min(min(values) for values in transformed.values())
    span = top - bottom or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(transformed.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, value in enumerate(values):
            y = int(round((value - bottom) / span * (height - 1)))
            row = height - 1 - y
            grid[row][x] = glyph

    def y_label(row: int) -> float:
        value = bottom + (height - 1 - row) / (height - 1) * span
        if log_scale:
            return 10.0**value - 1.0
        return value

    lines: List[str] = []
    if title:
        lines.append(title)
    for row in range(height):
        label = f"{y_label(row):>9.1f} |"
        lines.append(label + "".join(grid[row]))
    lines.append(" " * 10 + "+" + "-" * width)
    axis = " " * 11 + "0" + " " * max(0, width - len(str(width - 1)) - 1) + str(width - 1)
    lines.append(axis)
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)
