"""Logging configuration helpers.

The library logs through the standard :mod:`logging` module under the
``"repro"`` namespace and never configures handlers on import (library code
must not hijack the host application's logging). Scripts and the CLI call
:func:`configure_logging` explicitly.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["get_logger", "configure_logging"]

_ROOT_LOGGER_NAME = "repro"
_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger under the library's namespace.

    Args:
        name: dotted suffix, e.g. ``"algorithms.greedy"``. ``None`` returns
            the library root logger.
    """
    if not name:
        return logging.getLogger(_ROOT_LOGGER_NAME)
    if name.startswith(_ROOT_LOGGER_NAME + ".") or name == _ROOT_LOGGER_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_LOGGER_NAME}.{name}")


def configure_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Configure console logging for scripts, examples, and the CLI.

    Safe to call repeatedly; replaces any handler previously installed by
    this function and leaves foreign handlers untouched.

    Args:
        verbosity: 0 = WARNING, 1 = INFO, 2+ = DEBUG.
        stream: destination stream; defaults to ``sys.stderr``.

    Returns:
        The configured root library logger.
    """
    level = logging.WARNING
    if verbosity == 1:
        level = logging.INFO
    elif verbosity >= 2:
        level = logging.DEBUG

    logger = logging.getLogger(_ROOT_LOGGER_NAME)
    logger.setLevel(level)

    for handler in list(logger.handlers):
        if getattr(handler, "_repro_installed", False):
            logger.removeHandler(handler)

    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, _DATE_FORMAT))
    handler._repro_installed = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.propagate = False
    return logger
