"""Discrete-event gossip-protocol workload (rumor mongering + anti-entropy).

The paper evaluates rumor blocking on batched, synchronous cascade models;
real dissemination in distributed systems is message-passing gossip. This
package simulates that setting over the existing graph engine:

* :mod:`repro.gossip.config` — :class:`GossipConfig`: protocol
  (push / pull / push-pull), fanout, per-rumor budgets, stop rules
  (budget, lose-interest-with-probability-1/k, seen-counter),
  anti-entropy period, protector-cascade injection delay.
* :mod:`repro.gossip.events` — the event queue, keyed by
  :class:`repro.rng.EventOrder` ``(time, priority, jitter, seq)`` keys so
  replica runs are deterministic and serialisable.
* :mod:`repro.gossip.sim` — :class:`GossipEngine`, the single-replica
  discrete-event simulator, with ``state_dict``/``load_state`` so an
  in-flight event queue checkpoints through
  :mod:`repro.exec.checkpoint` and resumes bit-identical.
* :mod:`repro.gossip.runner` — :class:`GossipMonteCarlo`: replica
  fan-out through :class:`repro.exec.pool.ParallelExecutor` with
  serial-vs-parallel bit-identity, replica-batch checkpointing, and
  ``repro.obs`` counters for events, messages, rounds, and
  residual-infected gauges.

The blocking study lives in :mod:`repro.lcrb.gossip_blocking`
(:class:`~repro.lcrb.gossip_blocking.GossipBlockingScenario`); the CLI
front-end is ``repro gossip`` (see ``docs/gossip.md``).
"""

from repro.gossip.config import GossipConfig, PROTOCOLS, STOP_RULES
from repro.gossip.events import EventQueue, GossipEvent
from repro.gossip.runner import (
    GossipAggregate,
    GossipMonteCarlo,
    GossipReplicaRecord,
)
from repro.gossip.sim import GossipEngine, GossipOutcome, run_gossip

__all__ = [
    "GossipAggregate",
    "GossipConfig",
    "GossipEngine",
    "GossipEvent",
    "GossipMonteCarlo",
    "GossipOutcome",
    "GossipReplicaRecord",
    "EventQueue",
    "PROTOCOLS",
    "STOP_RULES",
    "run_gossip",
]
