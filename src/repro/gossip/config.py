"""Gossip-workload configuration.

One frozen dataclass describes a full protocol instance — rumor mongering
variant, budgets, stop rule, anti-entropy cadence, and the protector
cascade's injection parameters — so the engine, the replica runner, the
checkpoint run-key, the CLI, and the benchmarks all share one vocabulary.

The protocol semantics follow the classic rumor-mongering literature
(Demers et al. anti-entropy; Karp et al. push-pull with
lose-interest-with-probability-1/k) as implemented by message-passing
replica simulators; see ``docs/gossip.md`` for the normative description.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Optional

from repro.errors import ValidationError
from repro.utils.validation import check_positive

__all__ = ["GossipConfig", "PROTOCOLS", "STOP_RULES"]

#: Rumor-mongering variants: who initiates a round's exchanges.
PROTOCOLS = ("push", "pull", "push-pull")

#: When an informed node stops forwarding the rumor:
#: ``budget`` — after spending its per-rumor round budget;
#: ``lose-interest`` — after contacting an already-informed peer, with
#: probability ``1/k`` (Karp et al.'s coin variant);
#: ``counter`` — after ``k`` already-informed contacts (counter variant).
STOP_RULES = ("budget", "lose-interest", "counter")


@dataclass(frozen=True)
class GossipConfig:
    """Parameters of one gossip workload.

    Attributes:
        protocol: ``push`` (informed nodes forward), ``pull``
            (uninformed nodes query), or ``push-pull`` (both).
        fanout: peers contacted per node per round.
        rumor_budget: rounds an informed node actively forwards before
            stopping (the ``budget`` stop rule's budget; also the hard
            cap under the other rules).
        stop_rule: one of :data:`STOP_RULES`.
        stop_k: the ``k`` of the ``lose-interest`` and ``counter`` rules.
        max_rounds: simulation horizon in rounds (events beyond it are
            dropped; every run terminates).
        anti_entropy_every: run an anti-entropy reconciliation sweep
            every this many rounds (``0`` disables it).
        protector_delay: time at which the protector cascade is
            injected (rounds; the rumor starts at 0).
        protector_budget: round budget of protector-cascade spreaders
            (``None`` = same as ``rumor_budget``).
        count_acks: whether feedback replies ("seen"/"new" acks) count
            toward the message totals, as real gossip transports would.
    """

    protocol: str = "push"
    fanout: int = 1
    rumor_budget: int = 8
    stop_rule: str = "budget"
    stop_k: int = 4
    max_rounds: int = 30
    anti_entropy_every: int = 0
    protector_delay: float = 2.0
    protector_budget: Optional[int] = None
    count_acks: bool = True

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValidationError(
                f"unknown protocol {self.protocol!r}; known: {', '.join(PROTOCOLS)}"
            )
        if self.stop_rule not in STOP_RULES:
            raise ValidationError(
                f"unknown stop rule {self.stop_rule!r}; known: {', '.join(STOP_RULES)}"
            )
        check_positive(self.fanout, "fanout")
        check_positive(self.rumor_budget, "rumor_budget")
        check_positive(self.stop_k, "stop_k")
        check_positive(self.max_rounds, "max_rounds")
        if self.anti_entropy_every < 0:
            raise ValidationError(
                f"anti_entropy_every must be >= 0, got {self.anti_entropy_every!r}"
            )
        if self.protector_delay < 0:
            raise ValidationError(
                f"protector_delay must be >= 0, got {self.protector_delay!r}"
            )
        if self.protector_budget is not None:
            check_positive(self.protector_budget, "protector_budget")

    @property
    def effective_protector_budget(self) -> int:
        """The protector cascade's round budget (defaults to the rumor's)."""
        return (
            self.rumor_budget
            if self.protector_budget is None
            else self.protector_budget
        )

    def with_overrides(self, **overrides: Any) -> "GossipConfig":
        """A copy with the named fields replaced (re-validated)."""
        return replace(self, **overrides)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form, used by checkpoint run-keys and JSON reports."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GossipConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        return cls(**data)
