"""Single-replica discrete-event gossip engine.

Simulates message-passing rumor mongering over an
:class:`~repro.graph.compact.IndexedDiGraph`:

* **Rounds.** Every node acts at integer times (1, 2, ...). An informed
  *spreader* pushes the rumor (or the antidote) to ``fanout`` random
  out-neighbors per round; an uninformed node in a pull protocol queries
  ``fanout`` random out-neighbors instead.
* **Messages.** A message sent in round ``t`` is delivered at
  ``t + 0.5``; a pull response arrives one full round after the request.
  Feedback ("new"/"seen" acks) applies at delivery and drives the stop
  rules: ``budget`` (fixed number of active rounds), ``lose-interest``
  (after contacting an informed peer, stop with probability ``1/k``) and
  ``counter`` (stop after ``k`` informed contacts).
* **Anti-entropy.** Every ``anti_entropy_every`` rounds each node
  reconciles with one random out-neighbor; an uninformed side acquires
  the informed side's cascade (and starts spreading it — repair recruits
  spreaders).
* **Blocking.** At ``protector_delay`` the protector cascade is injected
  at the configured seed nodes; the antidote spreads by the same
  mechanics and *inoculates* nodes it reaches first. Activation is
  progressive and first-come-wins, with the protector cascade winning
  exact ties via event priority — the same three common properties the
  batched diffusion models enforce.

Determinism: all ordering comes from
:class:`~repro.gossip.events.EventQueue` keys and all randomness from
two forks of the replica stream, so a run is a pure function of
``(graph, config, seeds, rng.seed)`` — and :meth:`GossipEngine.state_dict`
/ :meth:`GossipEngine.load_state` serialise the whole thing (event queue
included) to JSON, so an interrupted run resumes bit-identical through
:mod:`repro.exec.checkpoint`.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.diffusion.base import INACTIVE, INFECTED, PROTECTED
from repro.errors import SeedError
from repro.gossip.config import GossipConfig
from repro.gossip.events import (
    EventQueue,
    PRIORITY_ANTI_ENTROPY,
    PRIORITY_MSG_PROTECTOR,
    PRIORITY_MSG_RUMOR,
    PRIORITY_PROTECT,
    PRIORITY_ROUND,
)
from repro.graph.compact import IndexedDiGraph
from repro.rng import RngStream

__all__ = ["GossipEngine", "GossipOutcome", "run_gossip", "MESSAGE_KINDS"]

#: Message-count categories every outcome reports (fixed key set so
#: aggregation and checkpoints never see ragged dicts).
MESSAGE_KINDS = (
    "push.rumor",
    "push.protector",
    "ack",
    "pull.request",
    "pull.response",
    "anti_entropy",
)

#: Transit time of a gossip message, in rounds.
_DELIVERY_DELAY = 0.5


def _msg_priority(cascade: int) -> int:
    """Delivery priority for a message carrying ``cascade``."""
    return PRIORITY_MSG_PROTECTOR if cascade == PROTECTED else PRIORITY_MSG_RUMOR


class GossipOutcome:
    """Final record of one gossip replica.

    Attributes:
        states: per-node final state (INACTIVE / INFECTED / PROTECTED).
        infected_count / protected_count: final cascade sizes.
        messages: message counts by kind (keys = :data:`MESSAGE_KINDS`).
        events: events processed.
        rounds: round events processed (node-rounds, not wall rounds).
        infected_series: cumulative infected count at the end of round
            0..max_rounds (round 0 = the rumor seeds).
    """

    __slots__ = (
        "states",
        "infected_count",
        "protected_count",
        "messages",
        "events",
        "rounds",
        "infected_series",
    )

    def __init__(
        self,
        states: Tuple[int, ...],
        infected_count: int,
        protected_count: int,
        messages: Dict[str, int],
        events: int,
        rounds: int,
        infected_series: Tuple[int, ...],
    ) -> None:
        self.states = states
        self.infected_count = infected_count
        self.protected_count = protected_count
        self.messages = messages
        self.events = events
        self.rounds = rounds
        self.infected_series = infected_series

    @property
    def messages_total(self) -> int:
        """All messages sent, across kinds."""
        return sum(self.messages.values())

    def __repr__(self) -> str:
        return (
            f"GossipOutcome(infected={self.infected_count}, "
            f"protected={self.protected_count}, "
            f"messages={self.messages_total}, events={self.events})"
        )


class GossipEngine:
    """One replica's event loop (see the module docstring for semantics).

    Args:
        graph: the network (integer node ids).
        config: the protocol instance.
        rumors: rumor-seed node ids (non-empty).
        protectors: protector-seed node ids, injected at
            ``config.protector_delay`` (disjoint from ``rumors``).
        rng: the replica stream; the engine forks ``draws`` (peer picks,
            stop-rule coins) and ``event-order`` (tie jitter) from it.
    """

    def __init__(
        self,
        graph: IndexedDiGraph,
        config: GossipConfig,
        rumors: Sequence[int],
        protectors: Sequence[int] = (),
        rng: Optional[RngStream] = None,
    ) -> None:
        self.graph = graph
        self.config = config
        self.rumors = tuple(dict.fromkeys(int(r) for r in rumors))
        self.protectors = tuple(dict.fromkeys(int(p) for p in protectors))
        self._check_seeds()
        rng = rng or RngStream(name="gossip")
        self._draws = rng.fork("draws")
        self._queue = EventQueue(rng.event_order())
        n = graph.node_count
        self._states: List[int] = [INACTIVE] * n
        self._sends_left: List[int] = [0] * n
        self._seen_hits: List[int] = [0] * n
        self._ticking: List[bool] = [False] * n
        self.infected_count = 0
        self.protected_count = 0
        self.messages: Dict[str, int] = {kind: 0 for kind in MESSAGE_KINDS}
        self.events = 0
        self.rounds = 0
        self._series: List[int] = []
        self._prime()

    # -- construction helpers ------------------------------------------------

    def _check_seeds(self) -> None:
        if not self.rumors:
            raise SeedError("rumor seed set must not be empty")
        overlap = set(self.rumors) & set(self.protectors)
        if overlap:
            raise SeedError(
                f"seed sets must be disjoint; both contain {sorted(overlap)[:5]}"
            )
        n = self.graph.node_count
        for seed in self.rumors + self.protectors:
            if not 0 <= seed < n:
                raise SeedError(f"seed id {seed} out of range [0, {n})")

    def _prime(self) -> None:
        """Initial state: rumor seeds at time 0, scheduled first events."""
        config = self.config
        for node in self.rumors:
            self._states[node] = INFECTED
            self._sends_left[node] = config.rumor_budget
            self.infected_count += 1
        if self._pull_enabled():
            # Pull protocols: every node ticks from round 1 (uninformed
            # nodes query; informed spreaders push when enabled).
            for node in range(self.graph.node_count):
                self._ticking[node] = True
                self._queue.push(1.0, PRIORITY_ROUND, ("round", node), jitter=True)
        elif self._push_enabled():
            for node in self.rumors:
                self._ticking[node] = True
                self._queue.push(1.0, PRIORITY_ROUND, ("round", node), jitter=True)
        if self.protectors:
            self._queue.push(
                config.protector_delay, PRIORITY_PROTECT, ("protect",)
            )
        if config.anti_entropy_every:
            period = float(config.anti_entropy_every)
            if period <= config.max_rounds:
                self._queue.push(period, PRIORITY_ANTI_ENTROPY, ("anti",))

    def _push_enabled(self) -> bool:
        return self.config.protocol in ("push", "push-pull")

    def _pull_enabled(self) -> bool:
        return self.config.protocol in ("pull", "push-pull")

    # -- the event loop ------------------------------------------------------

    def run(self, max_events: Optional[int] = None) -> bool:
        """Process events until the queue drains (or ``max_events`` pass).

        Returns ``True`` when the replica finished, ``False`` when it
        stopped early on the event budget (checkpoint it and resume).
        """
        budget = math.inf if max_events is None else int(max_events)
        processed = 0
        while self._queue:
            if processed >= budget:
                return False
            time, _priority, event = self._queue.pop()
            self._record_progress(time)
            self.events += 1
            processed += 1
            kind = event[0]
            if kind == "round":
                self._on_round(time, event[1])
            elif kind == "push":
                self._on_push(time, event[1], event[2], event[3])
            elif kind == "pull-req":
                self._on_pull_request(time, event[1], event[2])
            elif kind == "pull-resp":
                self._on_pull_response(time, event[2], event[3])
            elif kind == "protect":
                self._on_protect(time)
            elif kind == "anti":
                self._on_anti_entropy(time)
            else:  # pragma: no cover - queue only ever holds known kinds
                raise ValueError(f"unknown gossip event kind {kind!r}")
        self._record_progress(math.inf)
        return True

    @property
    def done(self) -> bool:
        """True once the event queue has drained."""
        return not self._queue

    def outcome(self) -> GossipOutcome:
        """The final record (call after :meth:`run` returns ``True``)."""
        self._record_progress(math.inf)
        return GossipOutcome(
            states=tuple(self._states),
            infected_count=self.infected_count,
            protected_count=self.protected_count,
            messages=dict(self.messages),
            events=self.events,
            rounds=self.rounds,
            infected_series=tuple(self._series),
        )

    # -- progress series -----------------------------------------------------

    def _record_progress(self, time: float) -> None:
        """Fill ``series[r]`` for every round boundary fully behind ``time``.

        ``series[r]`` is the cumulative infected count once every event
        of round ``r`` (ticks at ``r``, deliveries at ``r + 0.5``) has
        been processed — i.e. when simulation time reaches ``r + 1``.
        """
        horizon = min(time, float(self.config.max_rounds) + 1.0)
        while len(self._series) <= self.config.max_rounds and (
            len(self._series) + 1 <= horizon
        ):
            self._series.append(self.infected_count)

    # -- node activation -----------------------------------------------------

    def _activate(self, node: int, time: float, cascade: int) -> None:
        """Inform ``node`` with ``cascade`` and recruit it as a spreader."""
        config = self.config
        self._states[node] = cascade
        self._seen_hits[node] = 0
        if cascade == INFECTED:
            self._sends_left[node] = config.rumor_budget
            self.infected_count += 1
        else:
            self._sends_left[node] = config.effective_protector_budget
            self.protected_count += 1
        if self._push_enabled() and not self._ticking[node]:
            first_tick = math.floor(time) + 1.0
            if first_tick <= config.max_rounds:
                self._ticking[node] = True
                self._queue.push(
                    first_tick, PRIORITY_ROUND, ("round", node), jitter=True
                )

    def _feedback_seen(self, src: int) -> None:
        """Apply an already-informed contact to ``src``'s stop rule."""
        config = self.config
        self._seen_hits[src] += 1
        if config.stop_rule == "counter":
            if self._seen_hits[src] >= config.stop_k:
                self._sends_left[src] = 0
        elif config.stop_rule == "lose-interest":
            if self._draws.random() < 1.0 / config.stop_k:
                self._sends_left[src] = 0

    # -- event handlers ------------------------------------------------------

    def _on_round(self, time: float, node: int) -> None:
        config = self.config
        self.rounds += 1
        neighbors = self.graph.out[node]
        state = self._states[node]
        if (
            self._push_enabled()
            and state != INACTIVE
            and self._sends_left[node] > 0
        ):
            if neighbors:
                kind = "push.protector" if state == PROTECTED else "push.rumor"
                for _ in range(config.fanout):
                    dst = self._draws.choice(neighbors)
                    self.messages[kind] += 1
                    self._queue.push(
                        time + _DELIVERY_DELAY,
                        _msg_priority(state),
                        ("push", node, dst, state),
                    )
            self._sends_left[node] -= 1
        elif self._pull_enabled() and state == INACTIVE and neighbors:
            for _ in range(config.fanout):
                dst = self._draws.choice(neighbors)
                self.messages["pull.request"] += 1
                self._queue.push(
                    time + _DELIVERY_DELAY,
                    PRIORITY_MSG_RUMOR,
                    ("pull-req", node, dst),
                )
        next_tick = time + 1.0
        state = self._states[node]
        still_pushing = (
            self._push_enabled()
            and state != INACTIVE
            and self._sends_left[node] > 0
        )
        still_pulling = self._pull_enabled() and state == INACTIVE
        if next_tick <= config.max_rounds and (still_pushing or still_pulling):
            self._queue.push(next_tick, PRIORITY_ROUND, ("round", node), jitter=True)
        else:
            self._ticking[node] = False

    def _on_push(self, time: float, src: int, dst: int, cascade: int) -> None:
        if self._states[dst] == INACTIVE:
            self._activate(dst, time, cascade)
            if self.config.count_acks:
                self.messages["ack"] += 1
        else:
            if self.config.count_acks:
                self.messages["ack"] += 1
            self._feedback_seen(src)

    def _on_pull_request(self, time: float, src: int, dst: int) -> None:
        """``src`` asked ``dst`` for news; ``dst`` replies with its state."""
        cascade = self._states[dst]
        self.messages["pull.response"] += 1
        self._queue.push(
            time + _DELIVERY_DELAY,
            _msg_priority(cascade),
            ("pull-resp", dst, src, cascade),
        )

    def _on_pull_response(self, time: float, dst: int, cascade: int) -> None:
        if cascade != INACTIVE and self._states[dst] == INACTIVE:
            # Response delivery lands on a round boundary; the requester
            # first acts in the following round.
            self._activate(dst, time, cascade)

    def _on_protect(self, time: float) -> None:
        for node in self.protectors:
            if self._states[node] == INACTIVE:
                self._activate(node, time, PROTECTED)

    def _on_anti_entropy(self, time: float) -> None:
        """One reconciliation sweep: every node syncs with a random peer."""
        out = self.graph.out
        for node in range(self.graph.node_count):
            neighbors = out[node]
            if not neighbors:
                continue
            peer = self._draws.choice(neighbors)
            self.messages["anti_entropy"] += 2  # offer + reply
            a, b = self._states[node], self._states[peer]
            if a == INACTIVE and b != INACTIVE:
                self._activate(node, time, b)
            elif b == INACTIVE and a != INACTIVE:
                self._activate(peer, time, a)
        next_sweep = time + float(self.config.anti_entropy_every)
        if next_sweep <= self.config.max_rounds:
            self._queue.push(next_sweep, PRIORITY_ANTI_ENTROPY, ("anti",))

    # -- checkpointable state ------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot of the whole in-flight replica."""
        return {
            "queue": self._queue.state_dict(),
            "draws": self._draws.state_dict(),
            "states": list(self._states),
            "sends_left": list(self._sends_left),
            "seen_hits": list(self._seen_hits),
            "ticking": [int(flag) for flag in self._ticking],
            "infected_count": self.infected_count,
            "protected_count": self.protected_count,
            "messages": dict(self.messages),
            "events": self.events,
            "rounds": self.rounds,
            "series": list(self._series),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot (graph/config unchanged)."""
        self._queue = EventQueue.from_state(state["queue"])
        self._draws = RngStream.from_state(state["draws"])
        self._states = [int(value) for value in state["states"]]
        self._sends_left = [int(value) for value in state["sends_left"]]
        self._seen_hits = [int(value) for value in state["seen_hits"]]
        self._ticking = [bool(value) for value in state["ticking"]]
        self.infected_count = int(state["infected_count"])
        self.protected_count = int(state["protected_count"])
        self.messages = {
            kind: int(state["messages"].get(kind, 0)) for kind in MESSAGE_KINDS
        }
        self.events = int(state["events"])
        self.rounds = int(state["rounds"])
        self._series = [int(value) for value in state["series"]]

    def __repr__(self) -> str:
        return (
            f"GossipEngine({self.config.protocol}, nodes={self.graph.node_count}, "
            f"pending={len(self._queue)}, events={self.events})"
        )


def run_gossip(
    graph: IndexedDiGraph,
    config: GossipConfig,
    rumors: Sequence[int],
    protectors: Sequence[int] = (),
    rng: Optional[RngStream] = None,
) -> GossipOutcome:
    """Run one gossip replica to completion and return its outcome."""
    engine = GossipEngine(graph, config, rumors, protectors, rng=rng)
    engine.run()
    return engine.outcome()
