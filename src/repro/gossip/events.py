"""The gossip simulator's event queue.

A binary heap of ``(time, priority, jitter, seq, event)`` entries whose
keys come from :class:`repro.rng.EventOrder` — so the processing order is
a deterministic function of the replica stream and the queue serialises
to JSON for mid-run checkpointing.

Priorities (lower runs first at equal times) encode the paper's tie
rules in event form: the protector cascade's messages outrank the
rumor's (P wins ties, Section III common property 2), deliveries outrank
round ticks at round boundaries, and anti-entropy sweeps run after the
round's organic traffic.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Tuple

from repro.rng import EventOrder

__all__ = [
    "EventQueue",
    "GossipEvent",
    "PRIORITY_PROTECT",
    "PRIORITY_MSG_PROTECTOR",
    "PRIORITY_MSG_RUMOR",
    "PRIORITY_ROUND",
    "PRIORITY_ANTI_ENTROPY",
]

#: Protector-cascade injection (runs before anything else at its time).
PRIORITY_PROTECT = -1
#: Protector-cascade message deliveries (P wins ties with R).
PRIORITY_MSG_PROTECTOR = 0
#: Rumor-cascade message deliveries.
PRIORITY_MSG_RUMOR = 1
#: Per-node gossip round ticks.
PRIORITY_ROUND = 2
#: Anti-entropy reconciliation sweeps (after the round's own traffic).
PRIORITY_ANTI_ENTROPY = 3

#: One event: a ``(kind, *payload)`` tuple of JSON-scalar fields, e.g.
#: ``("round", node)`` or ``("push", src, dst, cascade)``. Tuples keep
#: the queue allocation-light and trivially serialisable.
GossipEvent = Tuple[Any, ...]


class EventQueue:
    """Deterministic, checkpointable discrete-event queue.

    Args:
        order: the :class:`EventOrder` issuing keys; sharing one order
            across the queue's lifetime keeps ``seq`` strictly monotone,
            which is what makes the heap order total and reproducible.
    """

    __slots__ = ("order", "_heap")

    def __init__(self, order: EventOrder) -> None:
        self.order = order
        self._heap: List[Tuple[float, int, int, int, GossipEvent]] = []

    def push(
        self,
        time: float,
        priority: int,
        event: GossipEvent,
        jitter: bool = False,
    ) -> None:
        """Schedule ``event`` at ``time`` with the given tie priority."""
        key = self.order.key(time, priority, jitter=jitter)
        heapq.heappush(self._heap, key + (tuple(event),))

    def pop(self) -> Tuple[float, int, GossipEvent]:
        """Remove and return the earliest ``(time, priority, event)``."""
        time, priority, _jitter, _seq, event = heapq.heappop(self._heap)
        return time, priority, event

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    # -- checkpointable state ------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot: every pending entry plus the order."""
        return {
            "order": self.order.state_dict(),
            "entries": [list(entry[:4]) + [list(entry[4])] for entry in self._heap],
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "EventQueue":
        """Rebuild a queue (heap invariant restored) from a snapshot."""
        queue = cls(EventOrder.from_state(state["order"]))
        queue._heap = [
            (float(row[0]), int(row[1]), int(row[2]), int(row[3]), tuple(row[4]))
            for row in state["entries"]
        ]
        heapq.heapify(queue._heap)
        return queue

    def __repr__(self) -> str:
        return f"EventQueue(pending={len(self._heap)})"
