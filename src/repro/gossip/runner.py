"""Replica fan-out for the gossip engine.

Gossip replicas never communicate, so they parallelise exactly like the
diffusion Monte-Carlo loop (:mod:`repro.diffusion.parallel`): replica
``i`` always runs on ``rng.replica(i)`` no matter which worker executes
it, workers ship compact :class:`GossipReplicaRecord` rows home, and the
parent folds them into the :class:`GossipAggregate` in replica order —
serial (``processes=1``, the pool's inline path) and parallel runs are
bit-identical.

Completed replica batches checkpoint through
:mod:`repro.exec.checkpoint` under kind ``"gossip"``; ``runs`` is kept
out of the run-key on purpose so a shorter run's prefix seeds a longer
one. Workers report ``gossip.*`` counters, a ``gossip.final_infected``
histogram, and a ``gossip.residual_infected`` gauge (max over replicas)
through the pool's snapshot-merge protocol.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.exec.pool import ParallelExecutor
from repro.gossip.config import GossipConfig
from repro.gossip.sim import MESSAGE_KINDS, GossipEngine, GossipOutcome
from repro.graph.compact import IndexedDiGraph
from repro.obs.registry import metrics
from repro.rng import RngStream
from repro.utils.validation import check_positive

__all__ = [
    "GossipAggregate",
    "GossipMonteCarlo",
    "GossipReplicaRecord",
    "record_gossip_outcome",
]


class GossipReplicaRecord(NamedTuple):
    """One gossip replica, reduced to the integers aggregation needs."""

    final_infected: int
    final_protected: int
    #: message counts aligned with :data:`repro.gossip.sim.MESSAGE_KINDS`.
    messages: Tuple[int, ...]
    events: int
    rounds: int
    #: cumulative infected count at the end of round 0..max_rounds.
    infected_series: Tuple[int, ...]

    @property
    def messages_total(self) -> int:
        return sum(self.messages)


def record_gossip_outcome(outcome: GossipOutcome) -> GossipReplicaRecord:
    """Reduce one engine outcome to its :class:`GossipReplicaRecord`."""
    return GossipReplicaRecord(
        outcome.infected_count,
        outcome.protected_count,
        tuple(outcome.messages[kind] for kind in MESSAGE_KINDS),
        outcome.events,
        outcome.rounds,
        tuple(outcome.infected_series),
    )


class GossipAggregate:
    """Replica-order fold of :class:`GossipReplicaRecord` rows.

    Attributes:
        replicas: replicas folded so far.
        messages: summed message counts by kind.
        events / rounds: summed event and node-round counts.
        max_infected: worst replica's final infected count (the
            residual-infected gauge).
    """

    def __init__(self, max_rounds: int) -> None:
        self.max_rounds = int(max_rounds)
        self.replicas = 0
        self._infected_sum = 0
        self._protected_sum = 0
        self.messages: Dict[str, int] = {kind: 0 for kind in MESSAGE_KINDS}
        self.events = 0
        self.rounds = 0
        self.max_infected = 0
        self._series_sum = [0] * (self.max_rounds + 1)

    def add_record(self, record: GossipReplicaRecord) -> None:
        """Fold one replica (call in replica order for bit-identity)."""
        self.replicas += 1
        self._infected_sum += record.final_infected
        self._protected_sum += record.final_protected
        for kind, count in zip(MESSAGE_KINDS, record.messages):
            self.messages[kind] += count
        self.events += record.events
        self.rounds += record.rounds
        if record.final_infected > self.max_infected:
            self.max_infected = record.final_infected
        for index, value in enumerate(record.infected_series):
            if index <= self.max_rounds:
                self._series_sum[index] += value

    @property
    def messages_total(self) -> int:
        return sum(self.messages.values())

    @property
    def mean_infected(self) -> float:
        return self._infected_sum / self.replicas if self.replicas else 0.0

    @property
    def mean_protected(self) -> float:
        return self._protected_sum / self.replicas if self.replicas else 0.0

    @property
    def mean_messages(self) -> float:
        return self.messages_total / self.replicas if self.replicas else 0.0

    def mean_series(self) -> List[float]:
        """Mean cumulative infected count per round boundary."""
        if not self.replicas:
            return [0.0] * (self.max_rounds + 1)
        return [value / self.replicas for value in self._series_sum]

    def summary(self) -> Dict[str, object]:
        """Plain-dict report (CLI/benchmark JSON output)."""
        return {
            "replicas": self.replicas,
            "mean_infected": self.mean_infected,
            "mean_protected": self.mean_protected,
            "max_infected": self.max_infected,
            "messages_total": self.messages_total,
            "mean_messages": self.mean_messages,
            "messages": dict(self.messages),
            "events": self.events,
            "rounds": self.rounds,
            "infected_series": self.mean_series(),
        }

    def __repr__(self) -> str:
        return (
            f"GossipAggregate(replicas={self.replicas}, "
            f"mean_infected={self.mean_infected:.2f}, "
            f"messages={self.messages_total})"
        )


def _records_to_state(records: List[GossipReplicaRecord]) -> dict:
    """JSON-serialisable checkpoint state for a replica-record prefix."""
    return {
        "records": [
            [
                record.final_infected,
                record.final_protected,
                list(record.messages),
                record.events,
                record.rounds,
                list(record.infected_series),
            ]
            for record in records
        ]
    }


def _records_from_state(state: dict) -> List[GossipReplicaRecord]:
    return [
        GossipReplicaRecord(
            int(row[0]),
            int(row[1]),
            tuple(int(value) for value in row[2]),
            int(row[3]),
            int(row[4]),
            tuple(int(value) for value in row[5]),
        )
        for row in state["records"]
    ]


def _gossip_worker_setup(graph, payload):
    """Pool worker set-up: shared replica-run state (uncounted)."""
    return {
        "graph": graph,
        "config": GossipConfig.from_dict(payload["config"]),
        "rumors": payload["rumors"],
        "protectors": payload["protectors"],
        "base": RngStream(payload["seed"], name="gossip-worker"),
    }


def _gossip_worker_chunk(state, replica_indices) -> List[GossipReplicaRecord]:
    """Pool worker task: run a chunk of replicas on their index streams."""
    records = []
    for replica_index in replica_indices:
        engine = GossipEngine(
            state["graph"],
            state["config"],
            state["rumors"],
            state["protectors"],
            rng=state["base"].replica(replica_index),
        )
        engine.run()
        records.append(record_gossip_outcome(engine.outcome()))
    registry = metrics()
    if registry.enabled:
        registry.counter("gossip.replicas").add(len(records))
        registry.counter("gossip.events").add(sum(r.events for r in records))
        registry.counter("gossip.rounds").add(sum(r.rounds for r in records))
        registry.counter("gossip.messages").add(
            sum(r.messages_total for r in records)
        )
        for position, kind in enumerate(MESSAGE_KINDS):
            total = sum(r.messages[position] for r in records)
            if total:
                registry.counter(f"gossip.messages.{kind}").add(total)
        for record in records:
            registry.observe("gossip.final_infected", record.final_infected)
        registry.gauge("gossip.residual_infected").merge(
            max(r.final_infected for r in records)
        )
    return records


class GossipMonteCarlo:
    """Replica fan-out with serial-identical aggregates.

    Args:
        config: the gossip protocol instance.
        runs: replica count.
        processes: worker request (``None``/``1`` = inline serial,
            ``0``/``"auto"``-style counts as in
            :func:`repro.exec.pool.resolve_workers`).
        share: graph publication mode for the pool.
        chunk_timeout / chunk_retries: pool resilience knobs
            (see ``docs/parallel.md``).
        checkpoint: a path or
            :class:`~repro.exec.checkpoint.CheckpointStore`; completed
            replica batches are saved under kind ``"gossip"`` and a
            matching checkpoint resumes after its prefix bit-identically.
        checkpoint_every: replicas per checkpointed batch.
        executor: a shared :class:`~repro.exec.pool.ParallelExecutor`
            (its knobs then govern); ``None`` lazily builds a
            runner-owned one — either way every batch of every
            :meth:`run` call (e.g. a blocking scenario's strategy
            panels) reuses the same warm pool.
    """

    def __init__(
        self,
        config: GossipConfig,
        runs: int = 100,
        processes: Optional[int] = None,
        share: str = "auto",
        chunk_timeout: Optional[float] = None,
        chunk_retries: Optional[int] = None,
        checkpoint=None,
        checkpoint_every: int = 32,
        executor: Optional[ParallelExecutor] = None,
    ) -> None:
        self.config = config
        self.runs = int(check_positive(runs, "runs"))
        if processes is not None and processes != 0:
            processes = int(check_positive(processes, "processes"))
        self.processes = processes
        self.share = share
        self.chunk_timeout = chunk_timeout
        self.chunk_retries = chunk_retries
        self.checkpoint = checkpoint
        self.checkpoint_every = int(
            check_positive(checkpoint_every, "checkpoint_every")
        )
        self._executor = executor

    def run(
        self,
        graph: IndexedDiGraph,
        rumors: Sequence[int],
        protectors: Sequence[int] = (),
        rng: Optional[RngStream] = None,
    ) -> GossipAggregate:
        """Run all replicas and fold them in replica order."""
        aggregate, _records = self.run_detailed(graph, rumors, protectors, rng=rng)
        return aggregate

    def run_detailed(
        self,
        graph: IndexedDiGraph,
        rumors: Sequence[int],
        protectors: Sequence[int] = (),
        rng: Optional[RngStream] = None,
    ) -> Tuple[GossipAggregate, List[GossipReplicaRecord]]:
        """Like :meth:`run`, also returning every replica's record."""
        if rng is None:
            raise ValueError("gossip replicas are stochastic and need an RngStream")
        rumors = tuple(int(node) for node in rumors)
        protectors = tuple(int(node) for node in protectors)
        registry = metrics()
        if self._executor is None:
            workers: Union[int, str] = (
                self.processes if self.processes is not None else 1
            )
            self._executor = ParallelExecutor(
                workers,
                share=self.share,
                timeout=self.chunk_timeout,
                retries=self.chunk_retries,
            )
        executor = self._executor
        payload = {
            "config": self.config.to_dict(),
            "rumors": rumors,
            "protectors": protectors,
            "seed": rng.seed,
        }
        from repro.exec.checkpoint import as_store

        ckpt = as_store(self.checkpoint)
        records: List[GossipReplicaRecord] = []
        key = ""
        if ckpt is not None:
            key = self._checkpoint_key(graph, rumors, protectors, rng)
            entry = ckpt.load("gossip", key)
            if entry is not None:
                # ``runs`` is outside the key on purpose: replica i is a
                # pure function of rng.replica(i), so a shorter run's
                # prefix seeds a longer one (and a longer one truncates).
                records = _records_from_state(entry["state"])[: self.runs]
                if records:
                    registry.inc("exec.resumed_rounds", len(records))
        with registry.timer("time.gossip.replicas"):
            start = len(records)
            while start < self.runs:
                stop = (
                    self.runs
                    if ckpt is None
                    else min(self.runs, start + self.checkpoint_every)
                )
                indices = list(range(start, stop))
                records.extend(executor.map_items(
                    _gossip_worker_setup,
                    _gossip_worker_chunk,
                    payload,
                    indices,
                    graph=graph,
                ))
                start = stop
                if ckpt is not None:
                    ckpt.save(
                        "gossip",
                        key,
                        _records_to_state(records),
                        rounds=len(records),
                    )
        aggregate = GossipAggregate(self.config.max_rounds)
        for record in records:  # replica order -> bit-identical to serial
            aggregate.add_record(record)
        return aggregate, records

    def _checkpoint_key(self, graph, rumors, protectors, rng) -> str:
        """Run-key fingerprint for gossip checkpoints (sans runs)."""
        from repro.exec.checkpoint import run_key

        return run_key(
            kind="gossip",
            config=self.config.to_dict(),
            seed=rng.seed,
            nodes=graph.node_count,
            edges=graph.edge_count,
            rumors=sorted(rumors),
            protectors=sorted(protectors),
        )

    def __repr__(self) -> str:
        return (
            f"GossipMonteCarlo({self.config.protocol}, runs={self.runs}, "
            f"processes={self.processes or 1})"
        )
