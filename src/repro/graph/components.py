"""Connected components of directed graphs.

Weak components are used by the dataset generators (to guarantee a usable
giant component) and by validation; strong components (Tarjan, iterative)
are provided for completeness and used in tests of reachability reasoning.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.graph.digraph import DiGraph, Node

__all__ = [
    "weakly_connected_components",
    "largest_weak_component",
    "strongly_connected_components",
    "is_weakly_connected",
]


def weakly_connected_components(graph: DiGraph) -> List[Set[Node]]:
    """Weakly connected components (edge direction ignored).

    Returns components sorted by size, largest first; ties broken by the
    smallest insertion index of a member so output is deterministic.
    """
    order = {node: position for position, node in enumerate(graph.nodes())}
    seen: Set[Node] = set()
    components: List[Set[Node]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component: Set[Node] = {start}
        stack = [start]
        seen.add(start)
        while stack:
            node = stack.pop()
            for neighbor in graph.successors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    component.add(neighbor)
                    stack.append(neighbor)
            for neighbor in graph.predecessors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    component.add(neighbor)
                    stack.append(neighbor)
        components.append(component)
    components.sort(key=lambda comp: (-len(comp), min(order[n] for n in comp)))
    return components


def largest_weak_component(graph: DiGraph) -> Set[Node]:
    """Node set of the largest weakly connected component (empty graph -> empty)."""
    components = weakly_connected_components(graph)
    return components[0] if components else set()


def is_weakly_connected(graph: DiGraph) -> bool:
    """True if the graph has exactly one weak component (and is non-empty)."""
    return len(weakly_connected_components(graph)) == 1


def strongly_connected_components(graph: DiGraph) -> List[Set[Node]]:
    """Strongly connected components via iterative Tarjan.

    Iterative (explicit stack) so large chains do not hit the recursion
    limit. Components are returned in reverse topological order of the
    condensation, then sorted largest-first for deterministic output.
    """
    index_counter = 0
    indices: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    components: List[Set[Node]] = []

    for root in graph.nodes():
        if root in indices:
            continue
        # Each frame: (node, iterator over successors).
        work = [(root, iter(list(graph.successors(root))))]
        indices[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for neighbor in successors:
                if neighbor not in indices:
                    indices[neighbor] = lowlink[neighbor] = index_counter
                    index_counter += 1
                    stack.append(neighbor)
                    on_stack.add(neighbor)
                    work.append((neighbor, iter(list(graph.successors(neighbor)))))
                    advanced = True
                    break
                if neighbor in on_stack:
                    lowlink[node] = min(lowlink[node], indices[neighbor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == indices[node]:
                component: Set[Node] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)

    order = {node: position for position, node in enumerate(graph.nodes())}
    components.sort(key=lambda comp: (-len(comp), min(order[n] for n in comp)))
    return components
